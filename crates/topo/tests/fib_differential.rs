//! Differential bit-identity: compiled FIBs vs dynamic routers.
//!
//! Every in-tree topology is built, its FIBs compiled, and every switch is
//! asked for its forwarding decision over every bound destination address,
//! a spread of flow ids (ECMP hashing) and every ingress port. The
//! compiled answer must equal the dynamic router's, bit for bit —
//! including the "no route" panic for (switch, destination) pairs the
//! topology never uses (torus/testbed switches only know their paths).

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use xmp_des::{Bandwidth, SimDuration, SimRng};
use xmp_netsim::{
    Addr, Agent, Ctx, FlowId, NodeId, Packet, PortId, QdiscConfig, Sim,
};
use xmp_topo::fat_tree::{FatTree, FatTreeConfig, RoutingMode};
use xmp_topo::testbed::{FairnessTestbed, ShiftTestbed, TestbedConfig};
use xmp_topo::torus::{Torus, TorusConfig};
use xmp_topo::Dumbbell;

#[derive(Default)]
struct Probe;
impl Agent<u64> for Probe {
    fn on_packet(&mut self, _p: Packet<u64>, _port: PortId, _c: &mut Ctx<'_, u64>) {}
    fn on_timer(&mut self, _t: u64, _c: &mut Ctx<'_, u64>) {}
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Flow ids to sweep: small consecutive ids plus seeded 64-bit ones, so
/// both hash words (low bits for the first ECMP level, bits 16.. for the
/// second) get exercised.
fn flow_set(extra: usize) -> Vec<u64> {
    let mut flows: Vec<u64> = (0..16).collect();
    let mut rng = SimRng::new(0xF1B);
    flows.extend((0..extra).map(|_| rng.uniform_u64(0, u64::MAX - 1)));
    flows
}

/// Assert `route_on` (compiled, with dynamic fallback) equals
/// `route_dynamic` for every (switch, dst, flow, in_port) combination.
/// Unroutable pairs must panic on both paths.
fn assert_fib_identical(sim: &mut Sim<u64>, name: &str, flows: &[u64], max_in_ports: usize) {
    sim.compile_fibs();
    let addrs: Vec<Addr> = sim.addresses().map(|(a, _)| a).collect();
    assert!(!addrs.is_empty(), "{name}: no bound addresses");
    let switches: Vec<NodeId> = (0..sim.node_count() as u32)
        .map(NodeId)
        .filter(|&n| !sim.node(n).is_host())
        .collect();
    assert!(!switches.is_empty(), "{name}: no switches");

    // Silence expected "no route" panics while probing routability.
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut checked = 0u64;
    for &swid in &switches {
        let ports = sim.node(swid).port_count().min(max_in_ports);
        for &dst in &addrs {
            for &f in flows {
                for p in 0..ports {
                    let in_port = PortId(p as u16);
                    let dynamic = panic::catch_unwind(AssertUnwindSafe(|| {
                        sim.route_dynamic(swid, dst, FlowId(f), in_port)
                    }));
                    let compiled = panic::catch_unwind(AssertUnwindSafe(|| {
                        sim.route_on(swid, dst, FlowId(f), in_port)
                    }));
                    match (dynamic, compiled) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(
                                a, b,
                                "{name}: {swid:?} dst {dst} flow {f} in {in_port:?}"
                            );
                            checked += 1;
                        }
                        (Err(_), Err(_)) => {} // both unroutable: identical
                        (Ok(p), Err(_)) => {
                            panic::set_hook(hook);
                            panic!("{name}: compiled panicked where dynamic routes {swid:?} dst {dst} -> {p:?}");
                        }
                        (Err(_), Ok(p)) => {
                            panic::set_hook(hook);
                            panic!("{name}: compiled invented route {swid:?} dst {dst} -> {p:?}");
                        }
                    }
                }
            }
        }
    }
    panic::set_hook(hook);
    assert!(checked > 0, "{name}: nothing was routable");
}

#[test]
fn dumbbell_fib_is_bit_identical() {
    let mut sim: Sim<u64> = Sim::new(1);
    Dumbbell::build(
        &mut sim,
        4,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(224),
        QdiscConfig::DropTail { cap: 100 },
        |_| Box::<Probe>::default(),
    );
    assert_fib_identical(&mut sim, "dumbbell", &flow_set(16), usize::MAX);
}

#[test]
fn fat_tree_k4_fib_is_bit_identical_both_modes() {
    for routing in [RoutingMode::TwoLevel, RoutingMode::EcmpPerFlow] {
        let mut sim: Sim<u64> = Sim::new(1);
        let cfg = FatTreeConfig {
            k: 4,
            routing,
            ..FatTreeConfig::paper(QdiscConfig::DropTail { cap: 100 })
        };
        FatTree::build(&mut sim, &cfg, |_| Box::<Probe>::default());
        assert_fib_identical(&mut sim, &format!("fat_tree k=4 {routing:?}"), &flow_set(16), usize::MAX);
    }
}

#[test]
fn fat_tree_k8_fib_is_bit_identical_both_modes() {
    // k=8: 80 switches x 2048 bound aliases; keep the flow/in-port spread
    // small so the exhaustive destination sweep stays fast.
    let flows: Vec<u64> = flow_set(4).into_iter().step_by(5).collect();
    for routing in [RoutingMode::TwoLevel, RoutingMode::EcmpPerFlow] {
        let mut sim: Sim<u64> = Sim::new(1);
        let cfg = FatTreeConfig {
            k: 8,
            routing,
            ..FatTreeConfig::paper(QdiscConfig::DropTail { cap: 100 })
        };
        FatTree::build(&mut sim, &cfg, |_| Box::<Probe>::default());
        assert_fib_identical(&mut sim, &format!("fat_tree k=8 {routing:?}"), &flows, 2);
    }
}

#[test]
fn torus_fib_is_bit_identical() {
    let mut sim: Sim<u64> = Sim::new(1);
    Torus::build(&mut sim, &TorusConfig::default(), |_| {
        Box::<Probe>::default()
    });
    assert_fib_identical(&mut sim, "torus", &flow_set(16), usize::MAX);
}

#[test]
fn testbeds_fib_is_bit_identical() {
    let mut sim: Sim<u64> = Sim::new(1);
    ShiftTestbed::build(&mut sim, &TestbedConfig::default(), |_| {
        Box::<Probe>::default()
    });
    assert_fib_identical(&mut sim, "shift testbed", &flow_set(16), usize::MAX);

    let mut sim: Sim<u64> = Sim::new(1);
    FairnessTestbed::build(&mut sim, &TestbedConfig::default(), |_| {
        Box::<Probe>::default()
    });
    assert_fib_identical(&mut sim, "fairness testbed", &flow_set(16), usize::MAX);
}
