//! The five-bottleneck ring of Fig. 5, used for the rate-compensation
//! experiment (Fig. 7).
//!
//! Five bottleneck links L1..L5 with capacities 0.8 / 1.2 / 2 / 1.5 /
//! 0.5 Gbps. Five MPTCP flows; flow *i* (1-based) places one subflow on
//! L_i and one on L_{i+1} (mod 5), so consecutive flows share a bottleneck
//! and a congestion event on one link ripples around the ring with
//! attenuation ("attenuated Dominos"). A background host pair sits on L3
//! to create the paper's 25–45 s congestion epoch; L3 can be "closed" at
//! 60 s via [`Sim::set_link_drop_prob`].
//!
//! Every path's no-load RTT is 350 µs (paper Section 5.1); per-link BDPs
//! range from ~15 packets (L5) to ~58 (L3).

use xmp_des::{Bandwidth, SimDuration};
use xmp_netsim::network::Payload;
use xmp_netsim::routing::StaticRouter;
use xmp_netsim::{Addr, Agent, LinkId, LinkParams, NodeId, PortId, QdiscConfig, Sim};

use crate::testbed::Path;

/// Number of bottlenecks / flows in the ring.
pub const RING: usize = 5;

/// Paper capacities of L1..L5 in Gbps.
pub const CAPACITIES_GBPS: [f64; RING] = [0.8, 1.2, 2.0, 1.5, 0.5];

/// Construction parameters.
#[derive(Clone, Debug)]
pub struct TorusConfig {
    /// Marking threshold K on the bottlenecks (paper: 20/15/10 for
    /// β = 4/5/6).
    pub k: usize,
    /// Bottleneck queue capacity (paper: 100).
    pub queue_cap: usize,
    /// No-load round-trip time of every path (paper: 350 µs).
    pub rtt: SimDuration,
}

impl Default for TorusConfig {
    fn default() -> Self {
        TorusConfig {
            k: 20,
            queue_cap: 100,
            rtt: SimDuration::from_micros(350),
        }
    }
}

/// The built ring.
#[derive(Debug)]
pub struct Torus {
    /// Source host of flow `i`.
    pub src: [NodeId; RING],
    /// Destination host of flow `i`.
    pub dst: [NodeId; RING],
    /// Background source/destination (attached to L3).
    pub bg_src: NodeId,
    /// Background destination.
    pub bg_dst: NodeId,
    /// Bottleneck links L1..L5 (direction 0 carries the flows).
    pub bottlenecks: [LinkId; RING],
}

impl Torus {
    /// Build the ring. `host_factory(i)` is called for the 12 hosts in the
    /// order S1..S5, D1..D5, BgS, BgD.
    pub fn build<P: Payload, A: Agent<P>>(
        sim: &mut Sim<P, A>,
        cfg: &TorusConfig,
        mut host_factory: impl FnMut(usize) -> A,
    ) -> Torus {
        // One-way budget rtt/2 split as access + bottleneck + access
        // (e.g. 50 + 75 + 50 µs for the paper's 350 µs RTT).
        let access_delay = cfg.rtt / 7;
        let access = LinkParams::new(
            Bandwidth::from_gbps(10),
            access_delay,
            QdiscConfig::DropTail { cap: 10_000 },
        );
        let bneck_delay = cfg.rtt / 2 - access_delay * 2;

        // Switch pair per bottleneck; bottleneck is port 0 on each.
        let mut swa = Vec::with_capacity(RING);
        let mut swb = Vec::with_capacity(RING);
        let mut bottlenecks = Vec::with_capacity(RING);
        #[allow(clippy::needless_range_loop)] // j also derives labels
        for j in 0..RING {
            let a = sim.add_switch(format!("SwA{}", j + 1), Box::new(StaticRouter::new()));
            let b = sim.add_switch(format!("SwB{}", j + 1), Box::new(StaticRouter::new()));
            let params = LinkParams::new(
                Bandwidth::from_gbps_f64(CAPACITIES_GBPS[j]),
                bneck_delay,
                QdiscConfig::EcnThreshold {
                    cap: cfg.queue_cap,
                    k: cfg.k,
                },
            );
            bottlenecks.push(sim.connect(a, b, &params, format!("L{}", j + 1)));
            swa.push(a);
            swb.push(b);
        }

        let mut routers_a: Vec<StaticRouter> = (0..RING).map(|_| StaticRouter::new()).collect();
        let mut routers_b: Vec<StaticRouter> = (0..RING).map(|_| StaticRouter::new()).collect();

        // Hosts.
        let mut idx = 0;
        let mut hosts = |sim: &mut Sim<P, A>, name: String| {
            let n = sim.add_host(name, host_factory(idx));
            idx += 1;
            n
        };
        let src: Vec<NodeId> = (0..RING)
            .map(|i| hosts(sim, format!("S{}", i + 1)))
            .collect();
        let dst: Vec<NodeId> = (0..RING)
            .map(|i| hosts(sim, format!("D{}", i + 1)))
            .collect();
        let bg_src = hosts(sim, "BgS".into());
        let bg_dst = hosts(sim, "BgD".into());

        // Wire flow i's two paths: x = 0 over L_i, x = 1 over L_{i+1}.
        for i in 0..RING {
            for x in 0..2 {
                let j = (i + x) % RING;
                let s_addr = Self::src_addr(i, x);
                let d_addr = Self::dst_addr(i, x);
                // Source side.
                sim.connect(src[i], swa[j], &access, format!("acc-S{}-{}", i + 1, x));
                let pa = PortId((sim.node(swa[j]).port_count() - 1) as u16);
                routers_a[j] = std::mem::take(&mut routers_a[j])
                    .to(s_addr, pa)
                    .to(d_addr, PortId(0));
                // Destination side.
                sim.connect(dst[i], swb[j], &access, format!("acc-D{}-{}", i + 1, x));
                let pb = PortId((sim.node(swb[j]).port_count() - 1) as u16);
                routers_b[j] = std::mem::take(&mut routers_b[j])
                    .to(d_addr, pb)
                    .to(s_addr, PortId(0));
                sim.bind_addr(s_addr, src[i]);
                sim.bind_addr(d_addr, dst[i]);
            }
        }
        // Background pair on L3 (index 2).
        let j = 2;
        sim.connect(bg_src, swa[j], &access, "acc-BgS");
        let pa = PortId((sim.node(swa[j]).port_count() - 1) as u16);
        sim.connect(bg_dst, swb[j], &access, "acc-BgD");
        let pb = PortId((sim.node(swb[j]).port_count() - 1) as u16);
        let (bs, bd) = (Self::bg_src_addr(), Self::bg_dst_addr());
        routers_a[j] = std::mem::take(&mut routers_a[j])
            .to(bs, pa)
            .to(bd, PortId(0));
        routers_b[j] = std::mem::take(&mut routers_b[j])
            .to(bd, pb)
            .to(bs, PortId(0));
        sim.bind_addr(bs, bg_src);
        sim.bind_addr(bd, bg_dst);

        for j in 0..RING {
            sim.set_router(swa[j], Box::new(std::mem::take(&mut routers_a[j])));
            sim.set_router(swb[j], Box::new(std::mem::take(&mut routers_b[j])));
        }

        Torus {
            src: src.try_into().unwrap(),
            dst: dst.try_into().unwrap(),
            bg_src,
            bg_dst,
            bottlenecks: bottlenecks.try_into().unwrap(),
        }
    }

    /// Source address of flow `i` on path `x` (0 = via L_{i+1-1}, 1 = next).
    pub fn src_addr(i: usize, x: usize) -> Addr {
        Addr::new(10, (i + 1) as u8, x as u8, 1)
    }

    /// Destination address of flow `i` on path `x`.
    pub fn dst_addr(i: usize, x: usize) -> Addr {
        Addr::new(10, (i + 1) as u8, x as u8, 2)
    }

    /// Background pair addresses.
    pub fn bg_src_addr() -> Addr {
        Addr::new(10, 9, 0, 1)
    }

    /// Background destination address.
    pub fn bg_dst_addr() -> Addr {
        Addr::new(10, 9, 0, 2)
    }

    /// Flow `i`'s two subflow paths. Subflow 0 rides L_{i+1} (1-based
    /// numbering: flow i+1's "left" bottleneck), subflow 1 rides the next
    /// bottleneck around the ring.
    pub fn flow_paths(&self, i: usize) -> [Path; 2] {
        [
            Path {
                port: PortId(0),
                src: Self::src_addr(i, 0),
                dst: Self::dst_addr(i, 0),
            },
            Path {
                port: PortId(1),
                src: Self::src_addr(i, 1),
                dst: Self::dst_addr(i, 1),
            },
        ]
    }

    /// The background path over L3.
    pub fn bg_path(&self) -> Path {
        Path {
            port: PortId(0),
            src: Self::bg_src_addr(),
            dst: Self::bg_dst_addr(),
        }
    }

    /// The bottleneck link carrying flow `i`'s subflow `x`.
    pub fn bottleneck_of(&self, i: usize, x: usize) -> LinkId {
        self.bottlenecks[(i + x) % RING]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use xmp_des::{ByteSize, SimTime};
    use xmp_netsim::{Ctx, Ecn, FlowId, Packet};

    #[derive(Default)]
    struct Probe {
        got: Vec<Addr>,
    }
    impl Agent<u32> for Probe {
        fn on_packet(&mut self, p: Packet<u32>, _port: PortId, _c: &mut Ctx<'_, u32>) {
            self.got.push(p.dst);
        }
        fn on_timer(&mut self, _t: u64, _c: &mut Ctx<'_, u32>) {}
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn build(sim: &mut Sim<u32>) -> Torus {
        Torus::build(sim, &TorusConfig::default(), |_| Box::<Probe>::default())
    }

    #[test]
    fn capacities_match_paper() {
        let mut sim: Sim<u32> = Sim::new(1);
        let t = build(&mut sim);
        let got: Vec<f64> = t
            .bottlenecks
            .iter()
            .map(|&l| sim.link(l).bandwidth.as_gbps_f64())
            .collect();
        assert_eq!(got, CAPACITIES_GBPS.to_vec());
    }

    #[test]
    fn every_subflow_path_delivers_over_its_bottleneck() {
        for i in 0..RING {
            for x in 0..2 {
                let mut sim: Sim<u32> = Sim::new(1);
                let t = build(&mut sim);
                let path = t.flow_paths(i)[x];
                sim.with_agent::<Probe, _>(t.src[i], |_, ctx| {
                    ctx.send(
                        path.port,
                        Packet::new(
                            path.src,
                            path.dst,
                            FlowId(1),
                            Ecn::NotEct,
                            ByteSize::from_bytes(1500),
                            0,
                        ),
                    );
                });
                sim.run_until_quiet(SimTime::from_millis(10));
                assert_eq!(
                    sim.with_agent::<Probe, _>(t.dst[i], |p, _| p.got.len()),
                    1,
                    "flow {i} path {x}"
                );
                let l = t.bottleneck_of(i, x);
                assert_eq!(
                    sim.link(l).dir(0).stats.delivered,
                    1,
                    "flow {i} path {x} must cross L{}",
                    (i + x) % RING + 1
                );
            }
        }
    }

    #[test]
    fn consecutive_flows_share_a_bottleneck() {
        let mut sim: Sim<u32> = Sim::new(1);
        let t = build(&mut sim);
        for i in 0..RING {
            assert_eq!(t.bottleneck_of(i, 1), t.bottleneck_of((i + 1) % RING, 0));
        }
    }

    #[test]
    fn rtt_is_350us() {
        let mut sim: Sim<u32> = Sim::new(1);
        let t = build(&mut sim);
        let path = t.flow_paths(0)[0];
        sim.with_agent::<Probe, _>(t.src[0], |_, ctx| {
            ctx.send(
                path.port,
                Packet::new(
                    path.src,
                    path.dst,
                    FlowId(1),
                    Ecn::NotEct,
                    ByteSize::from_bytes(40),
                    0,
                ),
            );
        });
        sim.run_until_quiet(SimTime::from_millis(10));
        // One small packet one way ~ rtt/2 (serialization negligible).
        let one_way = sim.now().as_micros();
        assert!((170..182).contains(&one_way), "one-way {one_way}us");
    }

    #[test]
    fn closing_l3_blackholes_it() {
        let mut sim: Sim<u32> = Sim::new(1);
        let t = build(&mut sim);
        sim.set_link_drop_prob(t.bottlenecks[2], 1.0);
        // Flow 2 (index 1) path 1 rides L3.
        let path = t.flow_paths(1)[1];
        sim.with_agent::<Probe, _>(t.src[1], |_, ctx| {
            ctx.send(
                path.port,
                Packet::new(
                    path.src,
                    path.dst,
                    FlowId(1),
                    Ecn::NotEct,
                    ByteSize::from_bytes(1500),
                    0,
                ),
            );
        });
        sim.run_until_quiet(SimTime::from_millis(10));
        assert_eq!(sim.with_agent::<Probe, _>(t.dst[1], |p, _| p.got.len()), 0);
        assert_eq!(sim.link(t.bottlenecks[2]).dir(0).stats.fault_dropped, 1);
    }

    #[test]
    fn bg_path_rides_l3() {
        let mut sim: Sim<u32> = Sim::new(1);
        let t = build(&mut sim);
        let path = t.bg_path();
        sim.with_agent::<Probe, _>(t.bg_src, |_, ctx| {
            ctx.send(
                path.port,
                Packet::new(
                    path.src,
                    path.dst,
                    FlowId(1),
                    Ecn::NotEct,
                    ByteSize::from_bytes(1500),
                    0,
                ),
            );
        });
        sim.run_until_quiet(SimTime::from_millis(10));
        assert_eq!(sim.link(t.bottlenecks[2]).dir(0).stats.delivered, 1);
        assert_eq!(sim.with_agent::<Probe, _>(t.bg_dst, |p, _| p.got.len()), 1);
    }
}
