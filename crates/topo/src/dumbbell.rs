//! N host pairs across a single bottleneck — the Fig. 1 microbenchmark
//! topology and the unit-test workhorse.

use xmp_des::{Bandwidth, SimDuration};
use xmp_netsim::network::Payload;
use xmp_netsim::routing::{AddrPattern, StaticRouter};
use xmp_netsim::{Addr, Agent, LinkId, LinkParams, NodeId, PortId, QdiscConfig, Sim};

/// A built dumbbell.
#[derive(Debug)]
pub struct Dumbbell {
    /// Source hosts.
    pub sources: Vec<NodeId>,
    /// Destination hosts.
    pub sinks: Vec<NodeId>,
    /// Left switch.
    pub left: NodeId,
    /// Right switch.
    pub right: NodeId,
    /// The bottleneck link (direction 0 = left→right).
    pub bottleneck: LinkId,
}

impl Dumbbell {
    /// Build `n` pairs across a bottleneck of `bandwidth` with the given
    /// queue. The no-load RTT is `rtt` for 40 B control packets: one-way
    /// propagation is `rtt/2` split as access/4 + bottleneck/2 + access/4
    /// (access links run at 4x the bottleneck rate with large drop-tail
    /// buffers so only the bottleneck queue matters).
    pub fn build<P: Payload, A: Agent<P>>(
        sim: &mut Sim<P, A>,
        n: usize,
        bandwidth: Bandwidth,
        rtt: SimDuration,
        queue: QdiscConfig,
        mut host_factory: impl FnMut(usize) -> A,
    ) -> Dumbbell {
        assert!((1..200).contains(&n));
        let access_delay = rtt / 8;
        let mid_delay = rtt / 4;
        let access = LinkParams::new(
            Bandwidth::from_bps(bandwidth.as_bps() * 4),
            access_delay,
            QdiscConfig::DropTail { cap: 10_000 },
        );
        let left = sim.add_switch("left", Box::new(StaticRouter::new()));
        let right = sim.add_switch("right", Box::new(StaticRouter::new()));
        // Bottleneck first: port 0 on both switches.
        let bottleneck = sim.connect(
            left,
            right,
            &LinkParams::new(bandwidth, mid_delay, queue),
            "bottleneck",
        );
        let mut sources = Vec::new();
        let mut sinks = Vec::new();
        let mut lr = StaticRouter::new().add(AddrPattern::any(), PortId(0));
        let mut rr = StaticRouter::new().add(AddrPattern::any(), PortId(0));
        for i in 0..n {
            let s = sim.add_host(format!("src{i}"), host_factory(i));
            let d = sim.add_host(format!("dst{i}"), host_factory(n + i));
            sim.connect(s, left, &access, format!("acc-s{i}"));
            sim.connect(d, right, &access, format!("acc-d{i}"));
            sim.bind_addr(Self::src_addr(i), s);
            sim.bind_addr(Self::dst_addr(i), d);
            // Host i hangs off switch port i+1 (port 0 is the bottleneck).
            lr = lr.to(Self::src_addr(i), PortId((i + 1) as u16));
            rr = rr.to(Self::dst_addr(i), PortId((i + 1) as u16));
            sources.push(s);
            sinks.push(d);
        }
        sim.set_router(left, Box::new(lr));
        sim.set_router(right, Box::new(rr));
        Dumbbell {
            sources,
            sinks,
            left,
            right,
            bottleneck,
        }
    }

    /// Source host `i`'s address.
    pub fn src_addr(i: usize) -> Addr {
        Addr::new(10, 0, 1, i as u8)
    }

    /// Destination host `i`'s address.
    pub fn dst_addr(i: usize) -> Addr {
        Addr::new(10, 0, 2, i as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use xmp_des::{ByteSize, SimTime};
    use xmp_netsim::{Ctx, Ecn, FlowId, Packet};

    #[derive(Default)]
    struct Probe {
        got: u32,
    }
    impl Agent<u32> for Probe {
        fn on_packet(&mut self, _p: Packet<u32>, _port: PortId, _c: &mut Ctx<'_, u32>) {
            self.got += 1;
        }
        fn on_timer(&mut self, _t: u64, _c: &mut Ctx<'_, u32>) {}
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn pairs_are_isolated_and_reachable() {
        let mut sim: Sim<u32> = Sim::new(1);
        let db = Dumbbell::build(
            &mut sim,
            4,
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(224),
            QdiscConfig::DropTail { cap: 100 },
            |_| Box::<Probe>::default(),
        );
        for i in 0..4 {
            sim.with_agent::<Probe, _>(db.sources[i], |_, ctx| {
                ctx.send(
                    PortId(0),
                    Packet::new(
                        Dumbbell::src_addr(i),
                        Dumbbell::dst_addr(i),
                        FlowId(i as u64),
                        Ecn::NotEct,
                        ByteSize::from_bytes(1500),
                        9,
                    ),
                );
            });
        }
        sim.run_until_quiet(SimTime::from_millis(5));
        for i in 0..4 {
            assert_eq!(sim.with_agent::<Probe, _>(db.sinks[i], |p, _| p.got), 1);
        }
        assert_eq!(sim.link(db.bottleneck).dir(0).stats.delivered, 4);
    }

    #[test]
    fn no_load_rtt_matches_parameterization() {
        // One small packet each way ~ rtt (serialization of 40B at >=1Gbps
        // is negligible: < 1us).
        let mut sim: Sim<u32> = Sim::new(1);
        let db = Dumbbell::build(
            &mut sim,
            1,
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(224),
            QdiscConfig::DropTail { cap: 100 },
            |_| Box::<Probe>::default(),
        );
        sim.with_agent::<Probe, _>(db.sources[0], |_, ctx| {
            ctx.send(
                PortId(0),
                Packet::new(
                    Dumbbell::src_addr(0),
                    Dumbbell::dst_addr(0),
                    FlowId(0),
                    Ecn::NotEct,
                    ByteSize::from_bytes(40),
                    0,
                ),
            );
        });
        sim.run_until_quiet(SimTime::from_millis(5));
        let one_way = sim.now().as_micros();
        assert!((112..118).contains(&one_way), "one_way={one_way}us");
    }
}
