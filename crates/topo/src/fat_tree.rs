//! The k-ary fat tree (Al-Fares et al., SIGCOMM 2008) with deterministic
//! Two-Level Routing Lookup — the paper's simulation topology
//! (Section 5.2.1).
//!
//! Layout for port count `k` (even):
//!
//! * `k` pods, each with `k/2` edge and `k/2` aggregation switches,
//! * `(k/2)²` core switches, indexed `(i, j)`: core `(i, j)` connects to
//!   aggregation switch `i` of every pod,
//! * `k/2` hosts per edge switch → `k³/4` hosts.
//!
//! **Addressing.** Host `h` under edge `e` of pod `p` owns the addresses
//! `(10, p, e, 2 + h + (k/2)·t)` for path tags `t ∈ 0..tag_count`. Tag 0
//! is the Al-Fares address; higher tags are the *alias addresses* the
//! paper assigns so each MPTCP subflow can ride a different path. For
//! k ≤ 12 the tag space is the full `(k/2)²`; beyond that the fourth
//! octet caps it (see [`FatTree::tag_count`]) — k = 16 gets 31 of its 64
//! core paths, k = 32 gets 15, still ample multipath diversity at
//! datacenter scale. Routing is a pure function of the destination
//! address (no per-flow hashing):
//!
//! * edge uplink  = `(h + t) mod k/2`,
//! * agg uplink   = `(h + ⌊t / (k/2)⌋) mod k/2`,
//! * core down-port = destination pod; agg/edge down-ports by address.
//!
//! For a fixed destination host, tag `t` rides core `(t mod k/2,
//! ⌊t / (k/2)⌋)` — distinct tags, distinct cores.

use xmp_des::{Bandwidth, SimDuration};
use xmp_netsim::fib::{CompiledFib, FibBuilder};
use xmp_netsim::network::Payload;
use xmp_netsim::{
    mix64, Addr, Agent, FlowId, LinkId, LinkParams, NodeId, PortId, QdiscConfig, Router, Sim,
};

/// Which layer a link belongs to (Fig. 11 groups utilization by layer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkLayer {
    /// Host ↔ edge (rack) links.
    Rack,
    /// Edge ↔ aggregation links.
    Aggregation,
    /// Aggregation ↔ core links.
    Core,
}

/// Paper's flow locality classes (Figs. 8c/8d/10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlowCategory {
    /// Same edge switch.
    InnerRack,
    /// Same pod, different edge switch.
    InterRack,
    /// Different pods.
    InterPod,
}

/// How switches pick uplinks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// The paper's deterministic Two-Level Routing Lookup: the uplink is a
    /// pure function of the destination address (host id + path tag), so
    /// MPTCP controls its paths exactly via alias addresses.
    #[default]
    TwoLevel,
    /// Per-flow ECMP (what Raiciu et al. ran MPTCP over, and what the
    /// paper replaced): uplinks chosen by a hash of the flow id. Subflows
    /// still take distinct 5-tuples but may collide on a core.
    EcmpPerFlow,
}

/// Construction parameters.
#[derive(Clone, Debug)]
pub struct FatTreeConfig {
    /// Switch port count `k` (even, ≥ 4). The paper uses 8.
    pub k: usize,
    /// Uplink selection (default: the paper's two-level lookup).
    pub routing: RoutingMode,
    /// Link bandwidth (all layers). The paper uses 1 Gbps.
    pub bandwidth: Bandwidth,
    /// One-way delay of rack links (paper: 20 µs).
    pub rack_delay: SimDuration,
    /// One-way delay of aggregation links (paper: 30 µs).
    pub agg_delay: SimDuration,
    /// One-way delay of core links (paper: 40 µs).
    pub core_delay: SimDuration,
    /// Queue discipline on every port.
    pub queue: QdiscConfig,
}

impl FatTreeConfig {
    /// The paper's Section 5.2.1 settings with the given queue config.
    pub fn paper(queue: QdiscConfig) -> Self {
        FatTreeConfig {
            k: 8,
            routing: RoutingMode::TwoLevel,
            bandwidth: Bandwidth::from_gbps(1),
            rack_delay: SimDuration::from_micros(20),
            agg_delay: SimDuration::from_micros(30),
            core_delay: SimDuration::from_micros(40),
            queue,
        }
    }
}

/// A built fat tree: node handles, addressing and link classification.
#[derive(Debug)]
pub struct FatTree {
    k: usize,
    /// Hosts in global index order.
    pub hosts: Vec<NodeId>,
    /// Edge switches, `[pod][e]` flattened.
    pub edges: Vec<NodeId>,
    /// Aggregation switches, `[pod][a]` flattened.
    pub aggs: Vec<NodeId>,
    /// Core switches, `[i][j]` flattened.
    pub cores: Vec<NodeId>,
    /// Links by layer.
    pub rack_links: Vec<LinkId>,
    /// Edge–aggregation links.
    pub agg_links: Vec<LinkId>,
    /// Aggregation–core links.
    pub core_links: Vec<LinkId>,
}

impl FatTree {
    /// Build the tree inside `sim`; `host_factory(i)` supplies host `i`'s
    /// agent.
    pub fn build<P: Payload, A: Agent<P>>(
        sim: &mut Sim<P, A>,
        config: &FatTreeConfig,
        mut host_factory: impl FnMut(usize) -> A,
    ) -> FatTree {
        let k = config.k;
        assert!(k >= 4 && k.is_multiple_of(2), "fat tree needs even k >= 4");
        assert!(k < 256, "pod index overflows an address octet");
        let h = k / 2;
        assert!(
            Self::tag_count_for(k) >= 2,
            "alias addressing leaves no multipath diversity for this k"
        );

        let mut ft = FatTree {
            k,
            hosts: Vec::new(),
            edges: Vec::new(),
            aggs: Vec::new(),
            cores: Vec::new(),
            rack_links: Vec::new(),
            agg_links: Vec::new(),
            core_links: Vec::new(),
        };

        // Core switches (i, j).
        for i in 0..h {
            for j in 0..h {
                ft.cores.push(sim.add_switch(
                    format!("core{i}.{j}"),
                    Box::new(FatTreeRouter::core(k)),
                ));
            }
        }

        // Pods: edges, aggs, hosts.
        for p in 0..k {
            for e in 0..h {
                ft.edges.push(sim.add_switch(
                    format!("edge{p}.{e}"),
                    Box::new(FatTreeRouter::edge(k, p as u8, e as u8, config.routing)),
                ));
            }
            for a in 0..h {
                ft.aggs.push(sim.add_switch(
                    format!("agg{p}.{a}"),
                    Box::new(FatTreeRouter::agg(k, p as u8, config.routing)),
                ));
            }
            for e in 0..h {
                let edge = ft.edges[p * h + e];
                for hh in 0..h {
                    let idx = ft.hosts.len();
                    let host = sim.add_host(format!("h{p}.{e}.{hh}"), host_factory(idx));
                    ft.hosts.push(host);
                    // Edge port order: hosts first (ports 0..h-1).
                    let l = sim.connect(
                        host,
                        edge,
                        &LinkParams::new(config.bandwidth, config.rack_delay, config.queue.clone()),
                        format!("rack{p}.{e}.{hh}"),
                    );
                    ft.rack_links.push(l);
                    // Bind every path alias of this host.
                    for t in 0..Self::tag_count_for(k) {
                        sim.bind_addr(Self::addr_of(k, p, e, hh, t), host);
                    }
                }
            }
            // Edge uplinks (edge ports h..k-1 = agg index).
            for e in 0..h {
                let edge = ft.edges[p * h + e];
                for a in 0..h {
                    let agg = ft.aggs[p * h + a];
                    // Agg port order: edges first (ports 0..h-1, = e).
                    let l = sim.connect(
                        edge,
                        agg,
                        &LinkParams::new(config.bandwidth, config.agg_delay, config.queue.clone()),
                        format!("agg{p}.{e}-{a}"),
                    );
                    ft.agg_links.push(l);
                }
            }
        }

        // Agg uplinks to core: agg (p, a) port h + j → core (a, j);
        // core (i, j) port p → pod p. Iterate pods outer, then j, so core
        // ports are appended in pod order.
        for a in 0..h {
            for j in 0..h {
                let core = ft.cores[a * h + j];
                for p in 0..k {
                    let agg = ft.aggs[p * h + a];
                    let l = sim.connect(
                        core,
                        agg,
                        &LinkParams::new(config.bandwidth, config.core_delay, config.queue.clone()),
                        format!("core{a}.{j}-p{p}"),
                    );
                    ft.core_links.push(l);
                }
            }
        }

        // Fix-up: connecting cores appended agg ports *after* the edge
        // ports, but interleaved across the (a, j) loops; agg (p, a)'s
        // uplink ports are h + j in j order because for fixed (p, a) the
        // inner loops hit j = 0..h in order. (Edge ports 0..h-1 were wired
        // in the pod loop above.)
        ft
    }

    /// Total host count `k³/4`.
    pub fn host_count(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// The address of host `(p, e, h)` under path tag `t`.
    pub fn addr_of(k: usize, p: usize, e: usize, h: usize, t: usize) -> Addr {
        let half = k / 2;
        debug_assert!(h < half && t < Self::tag_count_for(k));
        Addr::new(10, p as u8, e as u8, (2 + h + half * t) as u8)
    }

    /// The address of global host index `i` under path tag `t`.
    pub fn host_addr(&self, i: usize, t: usize) -> Addr {
        let (p, e, h) = self.locate(i);
        Self::addr_of(self.k, p, e, h, t)
    }

    /// Node id of global host index `i`.
    pub fn host(&self, i: usize) -> NodeId {
        self.hosts[i]
    }

    /// `(pod, edge, host)` coordinates of global host index `i`.
    pub fn locate(&self, i: usize) -> (usize, usize, usize) {
        let h = self.k / 2;
        let per_pod = h * h;
        (i / per_pod, (i % per_pod) / h, i % h)
    }

    /// Number of distinct path tags (inter-pod path diversity): the full
    /// `(k/2)²` when every alias fits the fourth address octet (k ≤ 12),
    /// otherwise every tag that keeps `2 + (k/2 - 1) + (k/2)·t ≤ 255`.
    pub fn tag_count(&self) -> usize {
        Self::tag_count_for(self.k)
    }

    /// [`FatTree::tag_count`] as a function of `k` (used during
    /// construction, before the tree exists).
    pub fn tag_count_for(k: usize) -> usize {
        let h = k / 2;
        (h * h).min((254 - h) / h + 1)
    }

    /// The aggregation↔core link between core `(i, j)` and pod `p`'s
    /// aggregation switch `i`. Inter-pod traffic under tag `t` crosses
    /// core `(t % (k/2), t / (k/2))`, so killing one of these severs
    /// exactly one path tag between pods — the failover experiment's
    /// fault.
    pub fn core_link(&self, i: usize, j: usize, p: usize) -> LinkId {
        let h = self.k / 2;
        assert!(i < h && j < h && p < self.k, "core_link out of range");
        self.core_links[(i * h + j) * self.k + p]
    }

    /// Locality class of a host pair.
    pub fn category(&self, src: usize, dst: usize) -> FlowCategory {
        let (ps, es, _) = self.locate(src);
        let (pd, ed, _) = self.locate(dst);
        if ps != pd {
            FlowCategory::InterPod
        } else if es != ed {
            FlowCategory::InterRack
        } else {
            FlowCategory::InnerRack
        }
    }

    /// Pod-based shard assignment for a partitioned run
    /// ([`xmp_netsim::PartitionedSim`]): each shard takes `k / workers`
    /// consecutive pods wholesale (hosts + edge + aggregation switches),
    /// and the `(k/2)²` core switches spread round-robin across shards.
    /// Rack and edge–aggregation links never cross shards; the cut set is
    /// a subset of the aggregation↔core links, so the conservative
    /// lookahead is the core-link delay (40 µs under the paper's
    /// parameters).
    ///
    /// # Panics
    /// Panics if `workers` is zero or does not divide `k`.
    pub fn partition_plan(&self, workers: usize) -> xmp_netsim::PartitionPlan {
        assert!(workers > 0, "need at least one worker");
        assert!(
            self.k.is_multiple_of(workers),
            "workers ({workers}) must divide k ({})",
            self.k
        );
        let h = self.k / 2;
        let pods_per_shard = self.k / workers;
        let nodes = h * h + self.k * (2 * h + h * h);
        let mut assignment = vec![0u32; nodes];
        for (c, &core) in self.cores.iter().enumerate() {
            assignment[core.0 as usize] = (c % workers) as u32;
        }
        for (i, &sw) in self.edges.iter().enumerate() {
            assignment[sw.0 as usize] = ((i / h) / pods_per_shard) as u32;
        }
        for (i, &sw) in self.aggs.iter().enumerate() {
            assignment[sw.0 as usize] = ((i / h) / pods_per_shard) as u32;
        }
        for (i, &host) in self.hosts.iter().enumerate() {
            assignment[host.0 as usize] = ((i / (h * h)) / pods_per_shard) as u32;
        }
        xmp_netsim::PartitionPlan::new(assignment)
    }

    /// All links with their layer, for utilization reports.
    pub fn links_by_layer(&self) -> impl Iterator<Item = (LinkLayer, LinkId)> + '_ {
        self.rack_links
            .iter()
            .map(|&l| (LinkLayer::Rack, l))
            .chain(self.agg_links.iter().map(|&l| (LinkLayer::Aggregation, l)))
            .chain(self.core_links.iter().map(|&l| (LinkLayer::Core, l)))
    }
}

/// Decompose an address's fourth octet into `(host, tag)`.
fn split_host_octet(k: usize, d: u8) -> (usize, usize) {
    let half = k / 2;
    let v = (d as usize).saturating_sub(2);
    (v % half, v / half)
}

/// The router for all three switch roles (two-level or ECMP uplinks).
#[derive(Debug)]
struct FatTreeRouter {
    k: usize,
    role: Role,
    mode: RoutingMode,
}

#[derive(Debug)]
enum Role {
    Edge { pod: u8, index: u8 },
    Agg { pod: u8 },
    Core,
}

impl FatTreeRouter {
    fn edge(k: usize, pod: u8, index: u8, mode: RoutingMode) -> Self {
        FatTreeRouter {
            k,
            role: Role::Edge { pod, index },
            mode,
        }
    }
    fn agg(k: usize, pod: u8, mode: RoutingMode) -> Self {
        FatTreeRouter {
            k,
            role: Role::Agg { pod },
            mode,
        }
    }
    fn core(k: usize) -> Self {
        FatTreeRouter {
            k,
            role: Role::Core,
            mode: RoutingMode::TwoLevel, // cores have a single down-path
        }
    }
}

impl Router for FatTreeRouter {
    fn route(&self, dst: Addr, flow: FlowId, _in_port: PortId) -> PortId {
        let h = self.k / 2;
        let (host, tag) = split_host_octet(self.k, dst.host());
        // Uplink selectors: address-determined (two-level) or flow-hashed
        // (ECMP). The down-paths are identical in both modes.
        let (up1, up2) = match self.mode {
            RoutingMode::TwoLevel => ((host + tag) % h, (host + tag / h) % h),
            RoutingMode::EcmpPerFlow => {
                let hash = mix64(flow.0);
                ((hash as usize) % h, (hash >> 16) as usize % h)
            }
        };
        match self.role {
            Role::Edge { pod, index } => {
                if dst.pod() == pod && dst.switch() == index {
                    PortId(host as u16) // down to the host
                } else {
                    PortId((h + up1) as u16)
                }
            }
            Role::Agg { pod } => {
                if dst.pod() == pod {
                    PortId(u16::from(dst.switch())) // down to the edge
                } else {
                    PortId((h + up2) as u16)
                }
            }
            Role::Core => PortId(u16::from(dst.pod())),
        }
    }

    fn compile(&self, dsts: &[Addr]) -> Option<CompiledFib> {
        let h = self.k / 2;
        let mut b = FibBuilder::new(dsts.len());
        // ECMP uplinks spread over ports h..k-1; both switch levels hash
        // the same `mix64(flow)` word, the aggregation level consuming
        // bits 16.. (hence the shift) so the two choices are independent.
        let up_ports: Vec<PortId> = (0..h).map(|i| PortId((h + i) as u16)).collect();
        let mut up_group: Option<(u32, u16)> = None;
        for (i, &dst) in dsts.iter().enumerate() {
            // Two-level lookup is a pure function of the destination
            // address, as are all down-paths; only ECMP uplinks hash.
            let deterministic = match (self.mode, &self.role) {
                (RoutingMode::TwoLevel, _) | (_, Role::Core) => true,
                (RoutingMode::EcmpPerFlow, Role::Edge { pod, index }) => {
                    dst.pod() == *pod && dst.switch() == *index
                }
                (RoutingMode::EcmpPerFlow, Role::Agg { pod }) => dst.pod() == *pod,
            };
            if deterministic {
                b.port(i, self.route(dst, FlowId(0), PortId(0)));
            } else {
                let g = *up_group.get_or_insert_with(|| b.group(&up_ports));
                let shift = match self.role {
                    Role::Agg { .. } => 16,
                    _ => 0,
                };
                b.hashed(i, g, shift, 0);
            }
        }
        Some(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use xmp_netsim::{Ctx, Ecn, Packet};

    #[derive(Default)]
    struct Probe {
        got: Vec<(Addr, u64)>,
    }
    impl Agent<u64> for Probe {
        fn on_packet(&mut self, pkt: Packet<u64>, _port: PortId, _ctx: &mut Ctx<'_, u64>) {
            self.got.push((pkt.dst, pkt.payload));
        }
        fn on_timer(&mut self, _t: u64, _ctx: &mut Ctx<'_, u64>) {}
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn build(k: usize) -> (Sim<u64>, FatTree) {
        let mut sim: Sim<u64> = Sim::new(1);
        let cfg = FatTreeConfig {
            k,
            ..FatTreeConfig::paper(QdiscConfig::DropTail { cap: 100 })
        };
        let ft = FatTree::build(&mut sim, &cfg, |_| Box::<Probe>::default());
        (sim, ft)
    }

    #[test]
    fn paper_scale_k8() {
        let (sim, ft) = build(8);
        assert_eq!(ft.hosts.len(), 128);
        assert_eq!(ft.edges.len() + ft.aggs.len() + ft.cores.len(), 80);
        assert_eq!(ft.rack_links.len(), 128);
        assert_eq!(ft.agg_links.len(), 8 * 16);
        assert_eq!(ft.core_links.len(), 16 * 8);
        assert_eq!(sim.node_count(), 128 + 80);
        assert_eq!(ft.tag_count(), 16);
    }

    #[test]
    fn tag_space_caps_at_the_address_octet() {
        // Full (k/2)² diversity while every alias fits the fourth octet…
        assert_eq!(FatTree::tag_count_for(4), 4);
        assert_eq!(FatTree::tag_count_for(8), 16);
        assert_eq!(FatTree::tag_count_for(12), 36);
        // …then capped to what the octet can encode.
        assert_eq!(FatTree::tag_count_for(16), 31);
        assert_eq!(FatTree::tag_count_for(32), 15);

        // A k = 16 tree builds, and the highest tag's alias still routes:
        // the last octet of every bound alias stays within u8.
        let (sim, ft) = build(16);
        assert_eq!(ft.hosts.len(), 1024);
        assert_eq!(ft.tag_count(), 31);
        let t = ft.tag_count() - 1;
        let a = ft.host_addr(0, t);
        assert_eq!(sim.lookup_addr(a), Some(ft.host(0)));
    }

    #[test]
    fn partition_plan_keeps_pods_whole() {
        let (sim, ft) = build(8);
        for workers in [1, 2, 4, 8] {
            let plan = ft.partition_plan(workers);
            assert_eq!(plan.workers(), workers);
            assert_eq!(plan.assignment().len(), sim.node_count());
            let pods_per_shard = 8 / workers;
            for (i, &host) in ft.hosts.iter().enumerate() {
                let (p, e, _) = ft.locate(i);
                let shard = (p / pods_per_shard) as u32;
                assert_eq!(plan.owner(host), shard);
                assert_eq!(plan.owner(ft.edges[p * 4 + e]), shard);
            }
            for (c, &core) in ft.cores.iter().enumerate() {
                assert_eq!(plan.owner(core), (c % workers) as u32);
            }
        }
    }

    #[test]
    #[should_panic(expected = "must divide k")]
    fn partition_plan_rejects_non_divisor() {
        let (_, ft) = build(8);
        let _ = ft.partition_plan(3);
    }

    #[test]
    fn locate_round_trips() {
        let (_, ft) = build(4);
        for i in 0..ft.hosts.len() {
            let (p, e, h) = ft.locate(i);
            assert_eq!(ft.host(i), ft.hosts[(p * 2 + e) * 2 + h]);
        }
    }

    #[test]
    fn categories() {
        let (_, ft) = build(8);
        assert_eq!(ft.category(0, 1), FlowCategory::InnerRack);
        assert_eq!(ft.category(0, 4), FlowCategory::InterRack);
        assert_eq!(ft.category(0, 16), FlowCategory::InterPod);
    }

    fn send_and_receive(k: usize, src: usize, dst: usize, tag: usize) {
        let (mut sim, ft) = build(k);
        let d = ft.host_addr(dst, tag);
        let s = ft.host_addr(src, 0);
        let payload = (src * 1000 + dst) as u64;
        sim.with_agent::<Probe, _>(ft.host(src), |_, ctx| {
            ctx.send(
                PortId(0),
                Packet::new(
                    s,
                    d,
                    FlowId(7),
                    Ecn::NotEct,
                    xmp_des::ByteSize::from_bytes(1500),
                    payload,
                ),
            );
        });
        sim.run_until_quiet(xmp_des::SimTime::from_millis(10));
        let got = sim.with_agent::<Probe, _>(ft.host(dst), |p, _| p.got.clone());
        assert_eq!(got, vec![(d, payload)], "k={k} {src}->{dst} tag={tag}");
    }

    #[test]
    fn delivers_across_every_locality() {
        send_and_receive(4, 0, 1, 0); // inner rack
        send_and_receive(4, 0, 2, 1); // inter rack
        send_and_receive(4, 0, 15, 3); // inter pod
        send_and_receive(8, 0, 127, 15);
        send_and_receive(8, 127, 0, 9);
    }

    #[test]
    fn tags_reach_distinct_cores() {
        // For an inter-pod pair, each tag must cross a different core
        // switch. Trace which core link carries the packet by delivered
        // counters.
        let k = 4;
        for dst_host in 0..2 {
            let mut seen = std::collections::HashSet::new();
            for tag in 0..4 {
                let (mut sim, ft) = build(k);
                let src = 0;
                let dst = 12 + dst_host; // pod 3
                let d = ft.host_addr(dst, tag);
                sim.with_agent::<Probe, _>(ft.host(src), |_, ctx| {
                    ctx.send(
                        PortId(0),
                        Packet::new(
                            ft.host_addr(src, 0),
                            d,
                            FlowId(1),
                            Ecn::NotEct,
                            xmp_des::ByteSize::from_bytes(1500),
                            1,
                        ),
                    );
                });
                sim.run_until_quiet(xmp_des::SimTime::from_millis(10));
                // Find which core links saw traffic.
                let mut used = Vec::new();
                for (li, &l) in ft.core_links.iter().enumerate() {
                    let link = sim.link(l);
                    if link.dirs[0].stats.delivered + link.dirs[1].stats.delivered > 0 {
                        used.push(li / k); // core index (i*h+j)
                    }
                }
                assert_eq!(used.len(), 2, "up + down through exactly one core");
                assert_eq!(used[0], used[1], "same core for up and down leg");
                seen.insert(used[0]);
            }
            assert_eq!(seen.len(), 4, "4 tags -> 4 distinct cores (k=4)");
        }
    }

    #[test]
    fn inter_pod_rtt_matches_paper_budget() {
        // 1500B data + hop delays: 6 hops each way; serialization 12us per
        // hop at 1Gbps. One-way prop: 20+30+40+40+30+20 = 180us.
        let (mut sim, ft) = build(8);
        let d = ft.host_addr(127, 0);
        sim.with_agent::<Probe, _>(ft.host(0), |_, ctx| {
            ctx.send(
                PortId(0),
                Packet::new(
                    ft.host_addr(0, 0),
                    d,
                    FlowId(1),
                    Ecn::NotEct,
                    xmp_des::ByteSize::from_bytes(1500),
                    1,
                ),
            );
        });
        sim.run_until_quiet(xmp_des::SimTime::from_millis(10));
        let one_way = sim.now().as_micros();
        // 180us prop + 6 x 12us serialization = 252us.
        assert_eq!(one_way, 252);
    }

    fn build_ecmp(k: usize) -> (Sim<u64>, FatTree) {
        let mut sim: Sim<u64> = Sim::new(1);
        let cfg = FatTreeConfig {
            k,
            routing: RoutingMode::EcmpPerFlow,
            ..FatTreeConfig::paper(QdiscConfig::DropTail { cap: 100 })
        };
        let ft = FatTree::build(&mut sim, &cfg, |_| Box::<Probe>::default());
        (sim, ft)
    }

    #[test]
    fn ecmp_mode_delivers_and_is_per_flow_consistent() {
        for flow in [1u64, 77, 12345] {
            let (mut sim, ft) = build_ecmp(4);
            let (src, dst) = (0usize, 13usize);
            let d = ft.host_addr(dst, 0);
            sim.with_agent::<Probe, _>(ft.host(src), |_, ctx| {
                for i in 0..3 {
                    ctx.send(
                        PortId(0),
                        Packet::new(
                            ft.host_addr(src, 0),
                            d,
                            FlowId(flow),
                            Ecn::NotEct,
                            xmp_des::ByteSize::from_bytes(1500),
                            i,
                        ),
                    );
                }
            });
            sim.run_until_quiet(xmp_des::SimTime::from_millis(10));
            let got = sim.with_agent::<Probe, _>(ft.host(dst), |p, _| p.got.len());
            assert_eq!(got, 3, "flow {flow}");
            // All three packets crossed exactly one core (flow-consistent).
            let cores_used = ft
                .core_links
                .iter()
                .filter(|&&l| sim.link(l).dirs[0].stats.delivered > 0
                    || sim.link(l).dirs[1].stats.delivered > 0)
                .count();
            assert_eq!(cores_used, 2, "one up + one down core hop per flow");
        }
    }

    #[test]
    fn ecmp_spreads_flows_across_cores() {
        let (mut sim, ft) = build_ecmp(4);
        let (src, dst) = (0usize, 13usize);
        let d = ft.host_addr(dst, 0);
        sim.with_agent::<Probe, _>(ft.host(src), |_, ctx| {
            for f in 0..32u64 {
                ctx.send(
                    PortId(0),
                    Packet::new(
                        ft.host_addr(src, 0),
                        d,
                        FlowId(f),
                        Ecn::NotEct,
                        xmp_des::ByteSize::from_bytes(1500),
                        f,
                    ),
                );
            }
        });
        sim.run_until_quiet(xmp_des::SimTime::from_millis(10));
        let cores_used = (0..4)
            .filter(|&c| {
                ft.core_links[c * 4..(c + 1) * 4]
                    .iter()
                    .any(|&l| sim.link(l).dirs[0].stats.delivered > 0
                        || sim.link(l).dirs[1].stats.delivered > 0)
            })
            .count();
        assert!(cores_used >= 3, "32 flows should spread: {cores_used} cores");
    }

    /// Every (src, dst, tag) triple delivers to the right host (k=4).
    /// 250 seeded triples plus the exhaustive tag sweep on each pair.
    #[test]
    fn routing_delivers_seeded() {
        for seed in 0..250u64 {
            let mut rng = xmp_des::SimRng::new(seed);
            let src = rng.index(16);
            let dst = rng.index(16);
            if src == dst {
                continue;
            }
            let tag = rng.index(4);
            send_and_receive(4, src, dst, tag);
        }
    }

    /// ECMP mode also always delivers, for any flow id.
    #[test]
    fn ecmp_delivers_seeded() {
        for seed in 0..250u64 {
            let mut rng = xmp_des::SimRng::new(seed);
            let src = rng.index(16);
            let dst = rng.index(16);
            if src == dst {
                continue;
            }
            let flow = rng.uniform_u64(0, 999);
            let (mut sim, ft) = build_ecmp(4);
            let d = ft.host_addr(dst, 0);
            sim.with_agent::<Probe, _>(ft.host(src), |_, ctx| {
                ctx.send(
                    PortId(0),
                    Packet::new(
                        ft.host_addr(src, 0),
                        d,
                        FlowId(flow),
                        Ecn::NotEct,
                        xmp_des::ByteSize::from_bytes(1500),
                        9,
                    ),
                );
            });
            sim.run_until_quiet(xmp_des::SimTime::from_millis(10));
            assert_eq!(
                sim.with_agent::<Probe, _>(ft.host(dst), |p, _| p.got.len()),
                1,
                "seed {seed}: flow {flow} from {src} to {dst} not delivered"
            );
        }
    }
}
