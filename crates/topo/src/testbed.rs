//! The paper's physical testbed, as logical topologies (Fig. 3).
//!
//! The real testbed was a set of CentOS hosts behind FreeBSD/DummyNet
//! bridges that shaped 300 Mbps bottlenecks, marked packets at K = 15 with
//! a 100-packet queue, and gave an average RTT of ≈1.8 ms (BDP ≈ 45
//! packets). A DummyNet box is a rate limiter + marker, which is exactly a
//! bottleneck [`link`](xmp_netsim::link::Link) with an
//! [`EcnThreshold`](xmp_netsim::queue::EcnThreshold) queue, so the logical
//! topologies reproduce the testbed's behaviour directly.
//!
//! * [`ShiftTestbed`] — Fig. 3a: Flow 1 (via DN1), Flow 3 (via DN2), Flow 2
//!   with one subflow through each, plus background-flow host pairs on both
//!   bottlenecks. Drives the Fig. 4 traffic-shifting experiment.
//! * [`FairnessTestbed`] — Fig. 3b: four flows with 3/2/1/1 subflows share
//!   one bottleneck. Drives the Fig. 6 fairness experiment.

use crate::dumbbell::Dumbbell;
use xmp_des::{Bandwidth, SimDuration};
use xmp_netsim::network::Payload;
use xmp_netsim::routing::{AddrPattern, StaticRouter};
use xmp_netsim::{Addr, Agent, LinkId, LinkParams, NodeId, PortId, QdiscConfig, Sim};

/// One end-to-end path a subflow can bind to: the local port it leaves by
/// and the (src, dst) addresses that pin its route.
#[derive(Clone, Copy, Debug)]
pub struct Path {
    /// Local port on the source host.
    pub port: PortId,
    /// Source address for this path.
    pub src: Addr,
    /// Destination address for this path.
    pub dst: Addr,
}

/// Shared parameters of the testbed topologies.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// Bottleneck bandwidth (paper: 300 Mbps).
    pub bandwidth: Bandwidth,
    /// No-load round-trip time (paper: ≈1.8 ms).
    pub rtt: SimDuration,
    /// Marking threshold K (paper: 15).
    pub k: usize,
    /// Bottleneck queue capacity (paper: 100 packets).
    pub queue_cap: usize,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            bandwidth: Bandwidth::from_mbps(300),
            rtt: SimDuration::from_micros(1800),
            k: 15,
            queue_cap: 100,
        }
    }
}

impl TestbedConfig {
    fn bottleneck_queue(&self) -> QdiscConfig {
        QdiscConfig::EcnThreshold {
            cap: self.queue_cap,
            k: self.k,
        }
    }
}

/// Fig. 3a — the traffic-shifting testbed.
#[derive(Debug)]
pub struct ShiftTestbed {
    /// Sources S1..S3 (S2 is the two-subflow MPTCP sender).
    pub s: [NodeId; 3],
    /// Destinations D1..D3.
    pub d: [NodeId; 3],
    /// Background sources on DN1 and DN2.
    pub bg_src: [NodeId; 2],
    /// Background destinations.
    pub bg_dst: [NodeId; 2],
    /// The bottlenecks DN1, DN2 (direction 0 = left→right).
    pub dn: [LinkId; 2],
}

impl ShiftTestbed {
    /// Build the topology. `host_factory(i)` is called once per host
    /// (10 hosts, in the order S1,D1,S3,D3,S2,D2,B1s,B1d,B2s,B2d).
    pub fn build<P: Payload, A: Agent<P>>(
        sim: &mut Sim<P, A>,
        cfg: &TestbedConfig,
        mut host_factory: impl FnMut(usize) -> A,
    ) -> ShiftTestbed {
        let access = LinkParams::new(
            Bandwidth::from_gbps(1),
            cfg.rtt / 8,
            QdiscConfig::DropTail { cap: 10_000 },
        );
        let bneck = LinkParams::new(cfg.bandwidth, cfg.rtt / 4, cfg.bottleneck_queue());

        // Switch pairs for the two DummyNet bottlenecks.
        let swl = [
            sim.add_switch("SwL1", Box::new(StaticRouter::new())),
            sim.add_switch("SwL2", Box::new(StaticRouter::new())),
        ];
        let swr = [
            sim.add_switch("SwR1", Box::new(StaticRouter::new())),
            sim.add_switch("SwR2", Box::new(StaticRouter::new())),
        ];
        let dn = [
            sim.connect(swl[0], swr[0], &bneck, "DN1"),
            sim.connect(swl[1], swr[1], &bneck, "DN2"),
        ];

        let mut idx = 0usize;
        let mut mk = |sim: &mut Sim<P, A>, name: &str| {
            let n = sim.add_host(name, host_factory(idx));
            idx += 1;
            n
        };

        let s1 = mk(sim, "S1");
        let d1 = mk(sim, "D1");
        let s3 = mk(sim, "S3");
        let d3 = mk(sim, "D3");
        let s2 = mk(sim, "S2");
        let d2 = mk(sim, "D2");
        let b1s = mk(sim, "B1s");
        let b1d = mk(sim, "B1d");
        let b2s = mk(sim, "B2s");
        let b2d = mk(sim, "B2d");

        // Routing tables: side 1 = left of a DN, side 2 = right; the
        // bottleneck is port 0 on each switch, so the far side's subnet
        // routes there. Addressing: (10, dn+1, side, host-slot).
        let mut lrout = [StaticRouter::new(), StaticRouter::new()];
        let mut rrout = [StaticRouter::new(), StaticRouter::new()];
        for i in 0..2 {
            let far_right = AddrPattern::subnet3(Addr::new(10, (i + 1) as u8, 2, 0));
            let far_left = AddrPattern::subnet3(Addr::new(10, (i + 1) as u8, 1, 0));
            lrout[i] = std::mem::take(&mut lrout[i]).add(far_right, PortId(0));
            rrout[i] = std::mem::take(&mut rrout[i]).add(far_left, PortId(0));
        }
        // attach(host, dn index, side, slot): wire an access link and add
        // the switch-side host route.
        let attach = |sim: &mut Sim<P, A>,
                          lrout: &mut [StaticRouter; 2],
                          rrout: &mut [StaticRouter; 2],
                          host: NodeId,
                          dni: usize,
                          side: u8,
                          slot: u8| {
            let addr = Addr::new(10, (dni + 1) as u8, side, slot);
            let sw = if side == 1 { swl[dni] } else { swr[dni] };
            sim.connect(host, sw, &access, format!("acc-{addr}"));
            let port = PortId((sim.node(sw).port_count() - 1) as u16);
            let table = if side == 1 {
                &mut lrout[dni]
            } else {
                &mut rrout[dni]
            };
            *table = std::mem::take(table).to(addr, port);
            sim.bind_addr(addr, host);
        };

        attach(sim, &mut lrout, &mut rrout, s1, 0, 1, 1);
        attach(sim, &mut lrout, &mut rrout, d1, 0, 2, 1);
        attach(sim, &mut lrout, &mut rrout, s3, 1, 1, 3);
        attach(sim, &mut lrout, &mut rrout, d3, 1, 2, 3);
        attach(sim, &mut lrout, &mut rrout, s2, 0, 1, 2); // S2 port 0 → DN1
        attach(sim, &mut lrout, &mut rrout, s2, 1, 1, 2); // S2 port 1 → DN2
        attach(sim, &mut lrout, &mut rrout, d2, 0, 2, 2);
        attach(sim, &mut lrout, &mut rrout, d2, 1, 2, 2);
        attach(sim, &mut lrout, &mut rrout, b1s, 0, 1, 9);
        attach(sim, &mut lrout, &mut rrout, b1d, 0, 2, 9);
        attach(sim, &mut lrout, &mut rrout, b2s, 1, 1, 9);
        attach(sim, &mut lrout, &mut rrout, b2d, 1, 2, 9);

        let [l0, l1] = lrout;
        let [r0, r1] = rrout;
        sim.set_router(swl[0], Box::new(l0));
        sim.set_router(swl[1], Box::new(l1));
        sim.set_router(swr[0], Box::new(r0));
        sim.set_router(swr[1], Box::new(r1));

        ShiftTestbed {
            s: [s1, s2, s3],
            d: [d1, d2, d3],
            bg_src: [b1s, b2s],
            bg_dst: [b1d, b2d],
            dn,
        }
    }

    /// Flow 1's single path (via DN1).
    pub fn flow1_path(&self) -> Path {
        Path {
            port: PortId(0),
            src: Addr::new(10, 1, 1, 1),
            dst: Addr::new(10, 1, 2, 1),
        }
    }

    /// Flow 2's two paths: subflow 1 via DN1, subflow 2 via DN2.
    pub fn flow2_paths(&self) -> [Path; 2] {
        [
            Path {
                port: PortId(0),
                src: Addr::new(10, 1, 1, 2),
                dst: Addr::new(10, 1, 2, 2),
            },
            Path {
                port: PortId(1),
                src: Addr::new(10, 2, 1, 2),
                dst: Addr::new(10, 2, 2, 2),
            },
        ]
    }

    /// Flow 3's single path (via DN2).
    pub fn flow3_path(&self) -> Path {
        Path {
            port: PortId(0),
            src: Addr::new(10, 2, 1, 3),
            dst: Addr::new(10, 2, 2, 3),
        }
    }

    /// Background path over DN `i` (0 or 1).
    pub fn bg_path(&self, i: usize) -> Path {
        Path {
            port: PortId(0),
            src: Addr::new(10, (i + 1) as u8, 1, 9),
            dst: Addr::new(10, (i + 1) as u8, 2, 9),
        }
    }
}

/// Fig. 3b — four flows share one bottleneck (subflow counts 3/2/1/1 in
/// the paper's experiment). Structurally a 4-pair dumbbell with the
/// testbed's bottleneck parameters.
#[derive(Debug)]
pub struct FairnessTestbed {
    /// The underlying dumbbell.
    pub net: Dumbbell,
}

impl FairnessTestbed {
    /// Build with the paper's testbed parameters.
    pub fn build<P: Payload, A: Agent<P>>(
        sim: &mut Sim<P, A>,
        cfg: &TestbedConfig,
        host_factory: impl FnMut(usize) -> A,
    ) -> FairnessTestbed {
        let net = Dumbbell::build(
            sim,
            4,
            cfg.bandwidth,
            cfg.rtt,
            cfg.bottleneck_queue(),
            host_factory,
        );
        FairnessTestbed { net }
    }

    /// Flow `i`'s path (all subflows of a flow share it, as on the real
    /// single-switch testbed).
    pub fn flow_path(&self, i: usize) -> Path {
        Path {
            port: PortId(0),
            src: Dumbbell::src_addr(i),
            dst: Dumbbell::dst_addr(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use xmp_des::{ByteSize, SimTime};
    use xmp_netsim::{Ctx, Ecn, FlowId, Packet};

    #[derive(Default)]
    struct Probe {
        got: Vec<Addr>,
    }
    impl Agent<u32> for Probe {
        fn on_packet(&mut self, p: Packet<u32>, _port: PortId, _c: &mut Ctx<'_, u32>) {
            self.got.push(p.dst);
        }
        fn on_timer(&mut self, _t: u64, _c: &mut Ctx<'_, u32>) {}
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn send(sim: &mut Sim<u32>, from: NodeId, path: Path) {
        sim.with_agent::<Probe, _>(from, |_, ctx| {
            ctx.send(
                path.port,
                Packet::new(
                    path.src,
                    path.dst,
                    FlowId(1),
                    Ecn::NotEct,
                    ByteSize::from_bytes(1500),
                    0,
                ),
            );
        });
    }

    #[test]
    fn all_paths_deliver_and_cross_the_right_bottleneck() {
        let mut sim: Sim<u32> = Sim::new(1);
        let tb = ShiftTestbed::build(&mut sim, &TestbedConfig::default(), |_| {
            Box::<Probe>::default()
        });
        send(&mut sim, tb.s[0], tb.flow1_path());
        let [p2a, p2b] = tb.flow2_paths();
        send(&mut sim, tb.s[1], p2a);
        send(&mut sim, tb.s[1], p2b);
        send(&mut sim, tb.s[2], tb.flow3_path());
        send(&mut sim, tb.bg_src[0], tb.bg_path(0));
        send(&mut sim, tb.bg_src[1], tb.bg_path(1));
        sim.run_until_quiet(SimTime::from_millis(50));
        assert_eq!(sim.with_agent::<Probe, _>(tb.d[0], |p, _| p.got.len()), 1);
        assert_eq!(
            sim.with_agent::<Probe, _>(tb.d[1], |p, _| p.got.len()),
            2,
            "both subflows of Flow 2 arrive at D2"
        );
        assert_eq!(sim.with_agent::<Probe, _>(tb.d[2], |p, _| p.got.len()), 1);
        // DN1 carried flow1 + flow2-subflow1 + bg1; DN2 the other three.
        assert_eq!(sim.link(tb.dn[0]).dir(0).stats.delivered, 3);
        assert_eq!(sim.link(tb.dn[1]).dir(0).stats.delivered, 3);
    }

    #[test]
    fn reverse_paths_work() {
        // D2 can answer out of both its ports back to S2.
        let mut sim: Sim<u32> = Sim::new(1);
        let tb = ShiftTestbed::build(&mut sim, &TestbedConfig::default(), |_| {
            Box::<Probe>::default()
        });
        let [p2a, p2b] = tb.flow2_paths();
        for (port, path) in [(PortId(0), p2a), (PortId(1), p2b)] {
            sim.with_agent::<Probe, _>(tb.d[1], |_, ctx| {
                ctx.send(
                    port,
                    Packet::new(
                        path.dst,
                        path.src,
                        FlowId(2),
                        Ecn::NotEct,
                        ByteSize::from_bytes(40),
                        0,
                    ),
                );
            });
        }
        sim.run_until_quiet(SimTime::from_millis(50));
        assert_eq!(sim.with_agent::<Probe, _>(tb.s[1], |p, _| p.got.len()), 2);
    }

    #[test]
    fn rtt_is_about_1_8ms() {
        let mut sim: Sim<u32> = Sim::new(1);
        let tb = ShiftTestbed::build(&mut sim, &TestbedConfig::default(), |_| {
            Box::<Probe>::default()
        });
        send(&mut sim, tb.s[0], tb.flow1_path());
        sim.run_until_quiet(SimTime::from_millis(50));
        let one_way_us = sim.now().as_micros();
        assert!((900..1000).contains(&one_way_us), "one-way {one_way_us}us");
    }

    #[test]
    fn fairness_testbed_is_a_marked_dumbbell() {
        let mut sim: Sim<u32> = Sim::new(1);
        let tb = FairnessTestbed::build(&mut sim, &TestbedConfig::default(), |_| {
            Box::<Probe>::default()
        });
        for i in 0..4 {
            let path = tb.flow_path(i);
            send(&mut sim, tb.net.sources[i], path);
        }
        sim.run_until_quiet(SimTime::from_millis(50));
        assert_eq!(sim.link(tb.net.bottleneck).dir(0).stats.delivered, 4);
    }
}
