//! # xmp-topo — the network topologies of the XMP paper
//!
//! * [`fat_tree`] — the k-ary fat tree of Al-Fares et al. with the paper's
//!   deterministic **Two-Level Routing Lookup** and per-host path-alias
//!   addresses (Section 5.2.1: k = 8, 80 switches, 128 hosts, 1 Gbps links,
//!   per-layer one-way delays 20/30/40 µs),
//! * [`torus`] — the five-bottleneck ring of Fig. 5 used for the
//!   rate-compensation experiment (Fig. 7),
//! * [`testbed`] — the two logical testbed topologies of Fig. 3 (traffic
//!   shifting and fairness; 300 Mbps DummyNet bottlenecks, RTT ≈ 1.8 ms,
//!   K = 15, queue 100),
//! * [`dumbbell`] — N pairs across one bottleneck (Fig. 1 and the
//!   coexistence microbenchmarks).
//!
//! All builders are generic over the packet payload so they depend only on
//! `xmp-netsim`; hosts are created through a caller-supplied agent factory.

pub mod dumbbell;
pub mod fat_tree;
pub mod testbed;
pub mod torus;

pub use dumbbell::Dumbbell;
pub use fat_tree::{FatTree, FatTreeConfig, FlowCategory, LinkLayer, RoutingMode};
pub use testbed::{FairnessTestbed, ShiftTestbed};
pub use torus::Torus;
