//! Deterministic random number generation.
//!
//! All randomness in a simulation must flow from an explicit seed so a run
//! can be reproduced exactly. [`SimRng`] wraps an **in-tree, portable**
//! xoshiro256** generator and adds the distributions the workloads need
//! (uniform ranges, Pareto flow sizes, permutations).
//!
//! The generator is implemented here (no external crates) so that the
//! workspace builds offline and the byte-for-byte output stream is pinned
//! by this repository alone — not by a dependency's minor version. The
//! algorithm is xoshiro256** 1.0 (Blackman & Vigna, 2018, public domain
//! reference implementation), seeded by expanding a 64-bit seed through
//! SplitMix64 (Steele, Lea & Flood 2014) exactly as the reference code
//! recommends.

/// SplitMix64 step: advances `state` by the golden-gamma and returns the
/// next mixed output. Constants are the reference ones
/// (`0x9E3779B97F4A7C15` golden gamma, Stafford mix13 multipliers).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded PRNG with simulation-oriented helpers.
///
/// The output stream for a given seed is a stable, documented contract of
/// this crate: xoshiro256** with SplitMix64 seed expansion. Runs are
/// bit-reproducible across platforms and toolchains, which is the property
/// the experiments need.
#[derive(Debug, Clone)]
pub struct SimRng {
    /// xoshiro256** state; never all-zero (SplitMix64 expansion guarantees
    /// this with probability 1 − 2⁻²⁵⁶, and we re-seed defensively if not).
    s: [u64; 4],
    seed: u64,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        if s == [0, 0, 0, 0] {
            // xoshiro's one forbidden state; unreachable in practice.
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        SimRng { s, seed }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child generator; `salt` distinguishes siblings.
    ///
    /// Used to give each flow / pattern its own stream so adding one consumer
    /// does not perturb the draws seen by another.
    pub fn derive(&self, salt: u64) -> SimRng {
        // SplitMix64-style mixing of (seed, salt).
        let mut z = self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Next raw 64-bit output (xoshiro256** step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform integer in `[0, n)` for `n > 0` (Lemire's
    /// multiply-shift with rejection).
    #[inline]
    fn bounded(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            // Rejection zone: 2^64 mod n.
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64: empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.bounded(span + 1)
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty domain");
        self.bounded(n as u64) as usize
    }

    /// Uniform float in `[0, 1)` (53 bits of precision).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]`: never zero, so it is safe under `ln` and
    /// as a Pareto inversion denominator.
    fn unit_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to \[0,1\]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Bounded Pareto sample with shape `alpha`, scale chosen so the
    /// *unbounded* mean equals `mean`, truncated to `[min, max]`.
    ///
    /// The paper's Random pattern uses Pareto(shape 1.5, mean 192 MB,
    /// upper bound 768 MB) flow sizes.
    pub fn pareto(&mut self, alpha: f64, mean: f64, min: f64, max: f64) -> f64 {
        assert!(alpha > 1.0, "Pareto mean requires alpha > 1");
        // For Pareto(xm, alpha): mean = alpha*xm/(alpha-1) => xm = mean*(alpha-1)/alpha.
        let xm = mean * (alpha - 1.0) / alpha;
        let u = self.unit_f64_open();
        let x = xm / u.powf(1.0 / alpha);
        x.clamp(min, max)
    }

    /// Exponential sample with the given mean (for Poisson arrivals).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u = self.unit_f64_open();
        -mean * u.ln()
    }

    /// A uniformly random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Choose `k` distinct indices from `0..n` (k <= n), in random order.
    pub fn choose_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} distinct from {n}");
        // Partial Fisher-Yates.
        let mut v: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            v.swap(i, j);
        }
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256** from the reference implementation
        // with state seeded as SplitMix64(0), SplitMix64(1), ... — i.e. the
        // stream of `SimRng::new(0)`. Computed once from the public-domain
        // C reference; pins the stream contract forever.
        let mut r = SimRng::new(0);
        let expect: [u64; 4] = {
            // Recompute from first principles so the test documents the
            // construction: SplitMix64 expansion, then xoshiro steps.
            let mut sm = 0u64;
            let mut s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            let mut out = [0u64; 4];
            for o in &mut out {
                *o = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
                let t = s[1] << 17;
                s[2] ^= s[0];
                s[3] ^= s[1];
                s[1] ^= s[2];
                s[0] ^= s[3];
                s[2] ^= t;
                s[3] = s[3].rotate_left(45);
            }
            out
        };
        for e in expect {
            assert_eq!(r.next_u64(), e);
        }
        // And the very first SplitMix64 outputs match the published test
        // vector for seed 0 (Vigna's splitmix64.c).
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut sm), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_is_deterministic_and_salted() {
        let root = SimRng::new(7);
        let mut c1 = root.derive(1);
        let mut c1b = root.derive(1);
        let mut c2 = root.derive(2);
        assert_eq!(c1.uniform_u64(0, 1 << 60), c1b.uniform_u64(0, 1 << 60));
        // Practically guaranteed to differ:
        assert_ne!(
            (0..8).map(|_| c1.unit_f64()).collect::<Vec<_>>(),
            (0..8).map(|_| c2.unit_f64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_covers_range_inclusively() {
        let mut r = SimRng::new(11);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..2000 {
            let x = r.uniform_u64(3, 10);
            assert!((3..=10).contains(&x));
            saw_lo |= x == 3;
            saw_hi |= x == 10;
        }
        assert!(saw_lo && saw_hi, "inclusive bounds never drawn");
        // Degenerate and full ranges.
        assert_eq!(r.uniform_u64(5, 5), 5);
        let _ = r.uniform_u64(0, u64::MAX);
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut r = SimRng::new(12);
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn pareto_respects_bounds_and_rough_mean() {
        let mut r = SimRng::new(9);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.pareto(1.5, 192.0, 64.0, 768.0);
            assert!((64.0..=768.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        // Truncation pulls the mean below 192; it must land in a sane band.
        assert!(mean > 90.0 && mean < 220.0, "mean={mean}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = SimRng::new(3);
        let p = r.permutation(128);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..128).collect::<Vec<_>>());
    }

    #[test]
    fn choose_distinct_no_duplicates() {
        let mut r = SimRng::new(4);
        for _ in 0..100 {
            let v = r.choose_distinct(20, 9);
            let mut s = v.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 9);
            assert!(v.iter().all(|&x| x < 20));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn exponential_positive_and_mean_close() {
        let mut r = SimRng::new(6);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.exponential(10.0);
            assert!(x > 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean={mean}");
    }
}
