//! Deterministic random number generation.
//!
//! All randomness in a simulation must flow from an explicit seed so a run
//! can be reproduced exactly. [`SimRng`] wraps a fixed, portable PRNG and
//! adds the distributions the workloads need (uniform ranges, Pareto flow
//! sizes, permutations).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A seeded PRNG with simulation-oriented helpers.
///
/// `SmallRng` is not guaranteed stable across `rand` major versions; within a
/// locked dependency tree (Cargo.lock) runs are bit-reproducible, which is
/// the property the experiments need.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child generator; `salt` distinguishes siblings.
    ///
    /// Used to give each flow / pattern its own stream so adding one consumer
    /// does not perturb the draws seen by another.
    pub fn derive(&self, salt: u64) -> SimRng {
        // SplitMix64-style mixing of (seed, salt).
        let mut z = self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64: empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty domain");
        self.inner.gen_range(0..n)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to \[0,1\]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Bounded Pareto sample with shape `alpha`, scale chosen so the
    /// *unbounded* mean equals `mean`, truncated to `[min, max]`.
    ///
    /// The paper's Random pattern uses Pareto(shape 1.5, mean 192 MB,
    /// upper bound 768 MB) flow sizes.
    pub fn pareto(&mut self, alpha: f64, mean: f64, min: f64, max: f64) -> f64 {
        assert!(alpha > 1.0, "Pareto mean requires alpha > 1");
        // For Pareto(xm, alpha): mean = alpha*xm/(alpha-1) => xm = mean*(alpha-1)/alpha.
        let xm = mean * (alpha - 1.0) / alpha;
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let x = xm / u.powf(1.0 / alpha);
        x.clamp(min, max)
    }

    /// Exponential sample with the given mean (for Poisson arrivals).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// A uniformly random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        v.shuffle(&mut self.inner);
        v
    }

    /// Shuffle a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        slice.shuffle(&mut self.inner);
    }

    /// Choose `k` distinct indices from `0..n` (k <= n), in random order.
    pub fn choose_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} distinct from {n}");
        // Partial Fisher-Yates.
        let mut v: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.inner.gen_range(i..n);
            v.swap(i, j);
        }
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_is_deterministic_and_salted() {
        let root = SimRng::new(7);
        let mut c1 = root.derive(1);
        let mut c1b = root.derive(1);
        let mut c2 = root.derive(2);
        assert_eq!(c1.uniform_u64(0, 1 << 60), c1b.uniform_u64(0, 1 << 60));
        // Practically guaranteed to differ:
        assert_ne!(
            (0..8).map(|_| c1.unit_f64()).collect::<Vec<_>>(),
            (0..8).map(|_| c2.unit_f64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pareto_respects_bounds_and_rough_mean() {
        let mut r = SimRng::new(9);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.pareto(1.5, 192.0, 64.0, 768.0);
            assert!((64.0..=768.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        // Truncation pulls the mean below 192; it must land in a sane band.
        assert!(mean > 90.0 && mean < 220.0, "mean={mean}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = SimRng::new(3);
        let p = r.permutation(128);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..128).collect::<Vec<_>>());
    }

    #[test]
    fn choose_distinct_no_duplicates() {
        let mut r = SimRng::new(4);
        for _ in 0..100 {
            let v = r.choose_distinct(20, 9);
            let mut s = v.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 9);
            assert!(v.iter().all(|&x| x < 20));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn exponential_positive_and_mean_close() {
        let mut r = SimRng::new(6);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.exponential(10.0);
            assert!(x > 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean={mean}");
    }
}
