//! Deterministic event priority queue.
//!
//! Events are ordered by `(timestamp, tie key, sequence number)`. The tie
//! key is caller-supplied ([`EventQueue::push_keyed`]; plain `push` uses 0)
//! and ranks events that fire at the same instant by *what they are* rather
//! than by when they happened to be scheduled; the sequence number, assigned
//! at insertion, breaks the remaining ties in scheduling order. Ordering
//! same-instant events by identity is what lets two pipelines that schedule
//! the same event at different moments (the eager and lazy link pipelines
//! in `xmp-netsim`) process it at the same rank — and is what makes
//! whole-simulation runs bit-reproducible.
//!
//! # Implementation: a sliding timing wheel with an overflow heap
//!
//! [`EventQueue`] is a calendar-queue / timing-wheel hybrid tuned for
//! packet-level simulation, where the overwhelming majority of events fire
//! within a few link serialization times of "now" while a minority (RTO
//! timers) sit hundreds of milliseconds out:
//!
//! * **Near future** — a wheel of `WHEEL_SLOTS` buckets, each covering
//!   `BUCKET_NS` nanoseconds. A bucket is an unsorted intrusive list of
//!   nodes in a shared slab (see [`EventQueue`]); push is O(1) and
//!   allocation-free once the slab reaches its high-water size. The wheel
//!   is a *sliding window* over absolute bucket indices
//!   `[cursor, cursor + WHEEL_SLOTS)`; slot `abs % WHEEL_SLOTS` is unique
//!   within the window.
//! * **Current bucket** — when the cursor reaches a bucket its events are
//!   sorted once by `(time, seq)` and loaded into a small binary heap, from
//!   which pops (and same-bucket re-schedules) proceed in exact order.
//! * **Far future** — events at or beyond the window horizon go to an
//!   overflow min-heap and migrate into the wheel as the cursor advances.
//!
//! Ordering proof sketch: equal timestamps always land in the same absolute
//! bucket, so ties are resolved inside one heap by `seq`; bucket `b` only
//! drains after every bucket `< b` is empty, and overflow events are only
//! eligible once their bucket enters the window — strictly after everything
//! currently in the wheel ahead of them. Hence pops are globally sorted by
//! `(time, seq)`, exactly like the previous `BinaryHeap` implementation
//! (kept below as [`BinaryHeapQueue`] and used as the bench baseline).
//!
//! An occupancy bitmap (one bit per slot, plus a word-level summary) lets
//! the cursor jump over empty buckets in O(words) rather than O(slots).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Nanoseconds covered by one wheel bucket (2^6 = 64 ns — a small fraction
/// of one 1500 B serialization time at 1 Gbps, so buckets stay shallow even
/// with tens of thousands of packet events pending).
const BUCKET_SHIFT: u32 = 6;
/// Number of wheel slots (2^16). Window horizon = 2^22 ns ≈ 4.2 ms, which
/// comfortably holds delayed-ACK and flow-gap timers; only long timers
/// (RTO ≈ 200 ms) overflow past it.
const WHEEL_SLOTS: usize = 1 << 16;
const SLOT_MASK: u64 = (WHEEL_SLOTS as u64) - 1;
/// Occupancy bitmap words.
const BITMAP_WORDS: usize = WHEEL_SLOTS / 64;

/// An event plus its scheduling metadata, as stored in the queue.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Caller-supplied same-instant rank (0 for plain `push`).
    pub key: u64,
    /// Monotone insertion counter; breaks the remaining ties.
    pub seq: u64,
    /// The user payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, at equal
        // times, the lowest-keyed then first-inserted) event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[inline]
fn abs_bucket(at: SimTime) -> u64 {
    at.as_nanos() >> BUCKET_SHIFT
}

/// Sentinel index terminating a slot's node list / the freelist.
const NIL: u32 = u32::MAX;

/// One slab entry: an event linked into a wheel slot's LIFO list, or a
/// freelist entry (`ev == None`) awaiting reuse.
#[derive(Debug)]
struct Node<E> {
    ev: Option<ScheduledEvent<E>>,
    next: u32,
}

/// A deterministic min-priority queue of timestamped events
/// (timing-wheel implementation; see the module docs).
///
/// Wheel storage is a **slab with an intrusive freelist**: each slot holds
/// the head index of a singly linked list of nodes in one shared `Vec`.
/// Hot buckets drift across slots as simulated time advances (a cluster of
/// synchronized serialization completions lands 64 ns later every round),
/// so per-slot growable buffers re-grow forever; the slab instead quiesces
/// at the *global* high-water event population, after which scheduling
/// never touches the allocator (the steady-state guarantee `bench_pr5`
/// asserts).
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Sorted heap over the cursor's bucket: the globally earliest events.
    current: BinaryHeap<ScheduledEvent<E>>,
    /// Slab of wheel nodes; freelist threads through `ev == None` entries.
    nodes: Vec<Node<E>>,
    /// Head of the freelist (`NIL` when the slab is full).
    free_head: u32,
    /// Per-slot list head; slot = absolute bucket % WHEEL_SLOTS.
    slots: Box<[u32]>,
    /// One bit per non-empty wheel slot.
    bitmap: [u64; BITMAP_WORDS],
    /// One bit per non-zero bitmap word (jump table for sparse wheels).
    summary: [u64; BITMAP_WORDS.div_ceil(64)],
    /// Events at or beyond `cursor + WHEEL_SLOTS` buckets.
    overflow: BinaryHeap<ScheduledEvent<E>>,
    /// Absolute bucket index the `current` heap corresponds to.
    cursor: u64,
    len: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            current: BinaryHeap::new(),
            nodes: Vec::new(),
            free_head: NIL,
            slots: vec![NIL; WHEEL_SLOTS].into_boxed_slice(),
            bitmap: [0; BITMAP_WORDS],
            summary: [0; BITMAP_WORDS.div_ceil(64)],
            overflow: BinaryHeap::new(),
            cursor: 0,
            len: 0,
            next_seq: 0,
        }
    }

    #[inline]
    fn mark_slot(&mut self, slot: usize) {
        self.bitmap[slot / 64] |= 1 << (slot % 64);
        self.summary[slot / 64 / 64] |= 1 << ((slot / 64) % 64);
    }

    #[inline]
    fn clear_slot(&mut self, slot: usize) {
        self.bitmap[slot / 64] &= !(1 << (slot % 64));
        if self.bitmap[slot / 64] == 0 {
            self.summary[slot / 64 / 64] &= !(1 << ((slot / 64) % 64));
        }
    }

    /// Place an event whose bucket lies inside the window `(cursor, cursor +
    /// WHEEL_SLOTS)` into its wheel slot: pull a node off the freelist (or
    /// extend the slab while still below high-water) and link it in at the
    /// slot's head.
    #[inline]
    fn place_in_wheel(&mut self, ev: ScheduledEvent<E>) {
        let slot = (abs_bucket(ev.at) & SLOT_MASK) as usize;
        let head = self.slots[slot];
        let idx = if self.free_head != NIL {
            let i = self.free_head;
            let node = &mut self.nodes[i as usize];
            debug_assert!(node.ev.is_none(), "freelist node still occupied");
            self.free_head = node.next;
            *node = Node { ev: Some(ev), next: head };
            i
        } else {
            let i = u32::try_from(self.nodes.len()).expect("wheel slab exceeds u32 indices");
            assert!(i != NIL, "wheel slab exceeds u32 indices");
            self.nodes.push(Node { ev: Some(ev), next: head });
            i
        };
        self.slots[slot] = idx;
        self.mark_slot(slot);
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Events at or before the cursor's bucket (the bucket currently being
    /// drained) go straight into the sorted `current` heap, so zero-delay
    /// cascades and — for direct users without an [`Engine`](crate::Engine)
    /// clock — even past-dated pushes still pop in `(time, seq)` order
    /// relative to everything pending.
    pub fn push(&mut self, at: SimTime, event: E) {
        self.push_keyed(at, 0, event);
    }

    /// [`EventQueue::push`] with an explicit same-instant tie key: events at
    /// the same timestamp pop in ascending `key` order (then insertion
    /// order), regardless of when they were scheduled.
    pub fn push_keyed(&mut self, at: SimTime, key: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let ev = ScheduledEvent { at, key, seq, event };
        let b = abs_bucket(at);
        if b <= self.cursor {
            self.current.push(ev);
        } else if b < self.cursor + WHEEL_SLOTS as u64 {
            self.place_in_wheel(ev);
        } else {
            self.overflow.push(ev);
        }
    }

    /// Smallest absolute bucket ahead of the cursor with a pending wheel
    /// event, if any (bitmap scan; O(words)).
    fn next_wheel_bucket(&self) -> Option<u64> {
        let start = (self.cursor & SLOT_MASK) as usize;
        // Slots run circularly from `start` (exclusive — cursor's own slot
        // was drained into `current`) for WHEEL_SLOTS-1 positions; but a
        // fresh queue may also have events in the cursor slot itself, so
        // include it.
        let (start_word, start_bit) = (start / 64, start % 64);
        // First, the remainder of the start word.
        let w = self.bitmap[start_word] >> start_bit;
        if w != 0 {
            let slot = start + w.trailing_zeros() as usize;
            return Some(self.cursor + (slot - start) as u64);
        }
        // Then whole words, circularly, via the summary.
        for i in 1..=BITMAP_WORDS {
            let word_idx = (start_word + i) % BITMAP_WORDS;
            if self.summary[word_idx / 64] & (1 << (word_idx % 64)) == 0 {
                continue;
            }
            let mut w = self.bitmap[word_idx];
            if word_idx == start_word {
                // Wrapped all the way: only bits before start_bit remain.
                w &= (1 << start_bit) - 1;
                if w == 0 {
                    break;
                }
            }
            if w != 0 {
                let slot = word_idx * 64 + w.trailing_zeros() as usize;
                let dist = (slot + WHEEL_SLOTS - start) % WHEEL_SLOTS;
                // dist == 0 handled by the start-word scan above.
                let dist = if dist == 0 { WHEEL_SLOTS } else { dist };
                return Some(self.cursor + dist as u64);
            }
        }
        None
    }

    /// Advance the cursor to the bucket holding the next pending event and
    /// load that bucket into `current`. Returns false if nothing is pending.
    fn refill_current(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        let wheel_next = self.next_wheel_bucket();
        let overflow_next = self.overflow.peek().map(|e| abs_bucket(e.at));
        let target = match (wheel_next, overflow_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        };
        let Some(target) = target else { return false };
        self.cursor = target;
        // Migrate overflow events that now fit in the window. The overflow
        // heap yields them in (time, seq) order; anything landing in the
        // cursor bucket will be sorted with the wheel slot below.
        let horizon = self.cursor + WHEEL_SLOTS as u64;
        while self
            .overflow
            .peek()
            .is_some_and(|e| abs_bucket(e.at) < horizon)
        {
            let ev = self.overflow.pop().expect("peeked");
            self.place_in_wheel(ev);
        }
        // Load the cursor bucket: unlink its node list straight into the
        // recycled backing vec of the (empty) `current` heap, returning the
        // nodes to the freelist, then sort once and heapify in place
        // (`BinaryHeap::from` is O(n) and reuses the vec's buffer). One
        // move per event, no intermediate buffer; the heap's capacity and
        // the slab both quiesce at their high-water marks — a warmed-up
        // steady state never touches the allocator.
        let slot = (self.cursor & SLOT_MASK) as usize;
        self.clear_slot(slot);
        let mut v = std::mem::take(&mut self.current).into_vec();
        debug_assert!(v.is_empty());
        let Self { nodes, slots, free_head, .. } = self;
        let mut i = std::mem::replace(&mut slots[slot], NIL);
        debug_assert!(i != NIL, "advanced to an empty bucket");
        while i != NIL {
            let node = &mut nodes[i as usize];
            v.push(node.ev.take().expect("slot list node occupied"));
            let next = node.next;
            node.next = *free_head;
            *free_head = i;
            i = next;
        }
        v.sort_unstable_by(|a, b| {
            a.at.cmp(&b.at)
                .then_with(|| a.key.cmp(&b.key))
                .then_with(|| a.seq.cmp(&b.seq))
        });
        self.current = BinaryHeap::from(v);
        true
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.current.is_empty() && !self.refill_current() {
            return None;
        }
        let ev = self.current.pop();
        debug_assert!(ev.is_some());
        self.len -= 1;
        ev
    }

    /// Remove and return the earliest event **iff** it fires at or before
    /// `deadline` — the run loop's single per-event queue access.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<ScheduledEvent<E>> {
        if self.current.is_empty() {
            // Bound-check before committing the cursor: advancing the wheel
            // toward an event beyond the deadline would be premature — the
            // caller may schedule earlier events before its next pop.
            if self.peek_time().is_none_or(|t| t > deadline) {
                return None;
            }
            let refilled = self.refill_current();
            debug_assert!(refilled, "peek saw an event but refill found none");
        }
        if self.current.peek().is_some_and(|e| e.at <= deadline) {
            self.len -= 1;
            self.current.pop()
        } else {
            None
        }
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.current.peek() {
            return Some(e.at);
        }
        if let Some(b) = self.next_wheel_bucket() {
            let slot = (b & SLOT_MASK) as usize;
            // The earliest bucket's minimum is the global minimum: overflow
            // events live at least a full window later.
            let mut i = self.slots[slot];
            let mut best: Option<SimTime> = None;
            while i != NIL {
                let node = &self.nodes[i as usize];
                let at = node.ev.as_ref().expect("slot list node occupied").at;
                best = Some(best.map_or(at, |b| b.min(at)));
                i = node.next;
            }
            return best;
        }
        self.overflow.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (the insertion counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

/// The previous single-`BinaryHeap` scheduler, kept verbatim as the
/// measurement baseline for the timing wheel (see `crates/bench`) and as a
/// differential-testing oracle: both implementations must produce the same
/// pop sequence for any push sequence.
#[derive(Debug)]
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        self.push_keyed(at, 0, event);
    }

    /// [`BinaryHeapQueue::push`] with an explicit same-instant tie key.
    pub fn push_keyed(&mut self, at: SimTime, key: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, key, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn keys_rank_same_instant_events_regardless_of_push_order() {
        // Two events at the same instant pop in key order even though the
        // higher-keyed one was scheduled first — and the wheel agrees with
        // the heap baseline.
        let mut q = EventQueue::new();
        let mut h = BinaryHeapQueue::new();
        for (at, key, ev) in [(t(5), 9u64, "late"), (t(5), 1, "early"), (t(4), 7, "first")] {
            q.push_keyed(at, key, ev);
            h.push_keyed(at, key, ev);
        }
        for want in ["first", "early", "late"] {
            assert_eq!(q.pop().unwrap().event, want);
            assert_eq!(h.pop().unwrap().event, want);
        }
        // Equal keys at the same instant fall back to insertion order.
        q.push_keyed(t(9), 3, "a");
        q.push_keyed(t(9), 3, "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(7), ());
        q.push(t(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(3)));
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn pop_at_or_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop_at_or_before(t(5)), None);
        assert_eq!(q.pop_at_or_before(t(10)).unwrap().event, "a");
        assert_eq!(q.pop_at_or_before(t(15)), None);
        assert_eq!(q.pop_at_or_before(t(25)).unwrap().event, "b");
        assert_eq!(q.pop_at_or_before(SimTime::MAX), None);
    }

    #[test]
    fn far_timers_cross_the_overflow_horizon() {
        // An RTO-style timer far beyond the wheel window, plus near events.
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(200), "rto");
        q.push(t(1), "now");
        q.push(SimTime::from_millis(199), "near-rto");
        assert_eq!(q.pop().unwrap().event, "now");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(199)));
        assert_eq!(q.pop().unwrap().event, "near-rto");
        assert_eq!(q.pop().unwrap().event, "rto");
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_ties_keep_insertion_order_after_migration() {
        // Event A goes to overflow; after the cursor advances, B is pushed
        // at the *same* timestamp into the wheel. A must still pop first.
        let far = SimTime::from_millis(500);
        let mut q = EventQueue::new();
        q.push(far, "a"); // seq 0, overflow
        q.push(t(1), "tick"); // seq 1
        assert_eq!(q.pop().unwrap().event, "tick");
        // Drag the cursor close enough that `far` is inside the window.
        q.push(SimTime::from_millis(490), "drag");
        assert_eq!(q.pop().unwrap().event, "drag");
        q.push(far, "b"); // seq 3, lands in the wheel
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
    }

    #[test]
    fn interleaved_push_pop_in_same_bucket() {
        // Re-scheduling into the bucket currently being drained preserves
        // (time, seq) order — the common zero-delay cascade case.
        let mut q = EventQueue::new();
        q.push(t(1), 0u32);
        let e = q.pop().unwrap();
        assert_eq!(e.event, 0);
        q.push(e.at, 1); // same instant, later seq
        q.push(e.at + SimDuration::from_nanos(100), 2); // same bucket
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
    }

    /// Differential test: the wheel and the heap baseline produce identical
    /// pop sequences over randomized workloads with a dumbbell-like time
    /// profile (near events + far timers + ties). 200+ seeded cases.
    #[test]
    fn wheel_matches_heap_oracle() {
        for seed in 0..250u64 {
            let mut rng = SimRng::new(0xC0FFEE ^ seed);
            let mut wheel = EventQueue::new();
            let mut heap = BinaryHeapQueue::new();
            let mut now_ns = 0u64;
            let mut next_id = 0u64;
            for _ in 0..rng.index(400) + 10 {
                match rng.index(10) {
                    // 60%: push a near event (serialization-scale delay).
                    0..=5 => {
                        let at = SimTime::from_nanos(now_ns + rng.uniform_u64(0, 40_000));
                        wheel.push(at, next_id);
                        heap.push(at, next_id);
                        next_id += 1;
                    }
                    // 20%: push a far timer (RTO-scale delay).
                    6..=7 => {
                        let at = SimTime::from_nanos(
                            now_ns + rng.uniform_u64(10_000_000, 300_000_000),
                        );
                        wheel.push(at, next_id);
                        heap.push(at, next_id);
                        next_id += 1;
                    }
                    // 20%: pop and compare.
                    _ => {
                        let a = wheel.pop();
                        let b = heap.pop();
                        match (a, b) {
                            (None, None) => {}
                            (Some(x), Some(y)) => {
                                assert_eq!(
                                    (x.at, x.seq, x.event),
                                    (y.at, y.seq, y.event),
                                    "diverged (seed {seed})"
                                );
                                now_ns = x.at.as_nanos();
                            }
                            (a, b) => panic!("one queue empty: {a:?} vs {b:?} (seed {seed})"),
                        }
                    }
                }
                assert_eq!(wheel.len(), heap.len(), "len diverged (seed {seed})");
                assert_eq!(
                    wheel.peek_time(),
                    heap.peek_time(),
                    "peek diverged (seed {seed})"
                );
            }
            // Drain both fully.
            loop {
                match (wheel.pop(), heap.pop()) {
                    (None, None) => break,
                    (Some(x), Some(y)) => {
                        assert_eq!((x.at, x.seq), (y.at, y.seq), "drain diverged (seed {seed})")
                    }
                    (a, b) => panic!("drain length mismatch: {a:?} vs {b:?} (seed {seed})"),
                }
            }
        }
    }

    /// For any multiset of timestamps, pops are globally sorted by
    /// (time, insertion order). Seeded-loop rewrite of the old proptest.
    #[test]
    fn pop_order_is_sorted_seeded() {
        for seed in 0..250u64 {
            let mut rng = SimRng::new(seed);
            let n = rng.index(200);
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(t(rng.uniform_u64(0, 999)), i);
            }
            let mut last: Option<(SimTime, u64)> = None;
            while let Some(ev) = q.pop() {
                if let Some((lt, ls)) = last {
                    assert!((lt, ls) < (ev.at, ev.seq), "unsorted pop (seed {seed})");
                    assert!(lt <= ev.at, "time went backwards (seed {seed})");
                }
                last = Some((ev.at, ev.seq));
            }
        }
    }

    /// Every pushed event is popped exactly once. Seeded-loop rewrite of
    /// the old proptest.
    #[test]
    fn conservation_seeded() {
        for seed in 0..250u64 {
            let mut rng = SimRng::new(0xBEEF ^ seed);
            let n = rng.index(100);
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(t(rng.uniform_u64(0, 49)), i);
            }
            let mut seen = vec![false; n];
            while let Some(ev) = q.pop() {
                assert!(!seen[ev.event], "double pop (seed {seed})");
                seen[ev.event] = true;
            }
            assert!(seen.iter().all(|&s| s), "lost event (seed {seed})");
        }
    }
}
