//! Deterministic event priority queue.
//!
//! Events are ordered by `(timestamp, sequence number)` where the sequence
//! number is assigned at insertion. Two events scheduled for the same instant
//! therefore fire in the order they were scheduled, independent of heap
//! internals — this is what makes whole-simulation runs bit-reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event plus its scheduling metadata, as stored in the queue.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone insertion counter; breaks timestamp ties deterministically.
    pub seq: u64,
    /// The user payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, at equal
        // times, the first-inserted) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (the insertion counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(7), ());
        q.push(t(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(3)));
        assert_eq!(q.scheduled_total(), 2);
    }

    proptest! {
        /// For any multiset of timestamps, pops are globally sorted by
        /// (time, insertion order).
        #[test]
        fn prop_pop_order_is_sorted(times in proptest::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &us) in times.iter().enumerate() {
                q.push(t(us), i);
            }
            let mut last: Option<(SimTime, u64)> = None;
            while let Some(ev) = q.pop() {
                if let Some((lt, ls)) = last {
                    prop_assert!((lt, ls) < (ev.at, ev.seq));
                    prop_assert!(lt <= ev.at);
                }
                // Ties must preserve insertion order.
                last = Some((ev.at, ev.seq));
            }
        }

        /// Every pushed event is popped exactly once.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..50, 0..100)) {
            let mut q = EventQueue::new();
            for (i, &us) in times.iter().enumerate() {
                q.push(t(us), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some(ev) = q.pop() {
                prop_assert!(!seen[ev.event]);
                seen[ev.event] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
