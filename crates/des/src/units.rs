//! Strongly-typed quantities: bandwidth and data size.
//!
//! Keeping bits vs bytes and Mbps vs Gbps in the type system removes a whole
//! class of off-by-8 errors from link and congestion-window arithmetic.

use crate::time::SimDuration;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Link or flow bandwidth, stored as bits per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero bandwidth (a disabled link).
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// From bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// From kilobits per second (10^3 factor — networking convention).
    pub const fn from_kbps(kbps: u64) -> Self {
        Bandwidth(kbps * 1_000)
    }

    /// From megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }

    /// From gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// From fractional gigabits per second (e.g. the paper's 0.8 Gbps torus link).
    pub fn from_gbps_f64(gbps: f64) -> Self {
        debug_assert!(gbps >= 0.0);
        Bandwidth((gbps * 1e9).round() as u64)
    }

    /// Bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Megabits per second as a float.
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Gigabits per second as a float.
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to serialize `size` onto a link of this bandwidth.
    ///
    /// # Panics
    /// Panics if the bandwidth is zero.
    pub fn transmission_time(self, size: ByteSize) -> SimDuration {
        assert!(self.0 > 0, "transmission over a zero-bandwidth link");
        let bits = size.as_bytes() as u128 * 8;
        // ns = bits / (bits/s) * 1e9, computed in u128 to avoid overflow.
        let ns = bits * 1_000_000_000 / self.0 as u128;
        SimDuration::from_nanos(ns as u64)
    }

    /// How many bytes this bandwidth carries in `d` (truncating).
    pub fn bytes_in(self, d: SimDuration) -> ByteSize {
        let bits = self.0 as u128 * d.as_nanos() as u128 / 1_000_000_000;
        ByteSize::from_bytes((bits / 8) as u64)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 && self.0.is_multiple_of(100_000_000) {
            write!(f, "{}Gbps", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}Mbps", self.0 / 1_000_000)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A count of bytes (payload sizes, queue depths in bytes, transfer volumes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// From raw bytes.
    pub const fn from_bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// From kilobytes (2^10).
    pub const fn from_kib(k: u64) -> Self {
        ByteSize(k * 1024)
    }

    /// From megabytes (2^20).
    pub const fn from_mib(m: u64) -> Self {
        ByteSize(m * 1024 * 1024)
    }

    /// From gigabytes (2^30).
    pub const fn from_gib(g: u64) -> Self {
        ByteSize(g * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Megabytes (2^20) as float.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1 << 30 && self.0.is_multiple_of(1 << 30) {
            write!(f, "{}GiB", self.0 >> 30)
        } else if self.0 >= 1 << 20 && self.0.is_multiple_of(1 << 20) {
            write!(f, "{}MiB", self.0 >> 20)
        } else if self.0 >= 1 << 10 && self.0.is_multiple_of(1 << 10) {
            write!(f, "{}KiB", self.0 >> 10)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_packet_serialization_is_12us() {
        // The paper: "one buffered packet will increase RTT by 12 us" at 1 Gbps.
        let d = Bandwidth::from_gbps(1).transmission_time(ByteSize::from_bytes(1500));
        assert_eq!(d.as_micros(), 12);
    }

    #[test]
    fn bdp_examples_from_the_paper() {
        // 1 Gbps x 225 us / (8 x 1500) ~= 19 packets (paper Section 2.1).
        let bytes = Bandwidth::from_gbps(1).bytes_in(SimDuration::from_micros(225));
        let pkts = bytes.as_bytes() / 1500;
        assert_eq!(pkts, 18); // 18.75 truncated; paper rounds to ~19
        // 1 Gbps x 400 us -> ~33 packets (Section 2.1 / 3).
        let bytes = Bandwidth::from_gbps(1).bytes_in(SimDuration::from_micros(400));
        assert_eq!(bytes.as_bytes() / 1500, 33);
    }

    #[test]
    fn transmission_time_large_values_no_overflow() {
        let d = Bandwidth::from_kbps(1).transmission_time(ByteSize::from_gib(1));
        // 2^30 bytes * 8 bits / 1000 bps = 8.59e6 s
        assert!(d.as_secs_f64() > 8.5e6 && d.as_secs_f64() < 8.7e6);
    }

    #[test]
    fn fractional_gbps() {
        assert_eq!(Bandwidth::from_gbps_f64(0.8).as_bps(), 800_000_000);
        assert_eq!(format!("{}", Bandwidth::from_gbps_f64(1.2)), "1.2Gbps");
        assert_eq!(format!("{}", Bandwidth::from_mbps(300)), "300Mbps");
    }

    #[test]
    fn bytesize_formatting_and_math() {
        assert_eq!(format!("{}", ByteSize::from_mib(64)), "64MiB");
        assert_eq!(format!("{}", ByteSize::from_kib(64)), "64KiB");
        assert_eq!(format!("{}", ByteSize::from_bytes(1500)), "1500B");
        let a = ByteSize::from_kib(2) + ByteSize::from_kib(3);
        assert_eq!(a.as_bytes(), 5 * 1024);
        assert_eq!(ByteSize::from_kib(1).saturating_sub(ByteSize::from_kib(2)), ByteSize::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn zero_bandwidth_tx_panics() {
        Bandwidth::ZERO.transmission_time(ByteSize::from_bytes(1));
    }
}
