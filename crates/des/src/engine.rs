//! The simulation run loop.
//!
//! [`Engine`] owns the event queue and the simulation clock. Higher layers
//! drive it either by popping events themselves (`pop`) or by calling
//! [`Engine::run_until`] with a handler closure.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// Discrete-event engine: a clock plus a deterministic event queue.
///
/// `E` is the domain event type (the network layer defines its own).
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    scheduled: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine at `t = 0` with no pending events.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            scheduled: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handled so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events ever scheduled (a profiling counter; always ≥
    /// [`Engine::processed`], the difference being cancelled-stale or
    /// still-pending events).
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a logic error in a discrete-event simulation.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.schedule_keyed(at, 0, event);
    }

    /// [`Engine::schedule`] with an explicit same-instant tie key: events
    /// firing at the same instant are handled in ascending `key` order
    /// (then scheduling order), independent of *when* each was scheduled.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, event: E) {
        assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        self.scheduled += 1;
        self.queue.push_keyed(at, key, event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.queue.pop()?;
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.processed += 1;
        Some((ev.at, ev.event))
    }

    /// Pop the earliest event **iff** it fires at or before `deadline`,
    /// advancing the clock to its timestamp. One queue access per event —
    /// the hot-path replacement for a `peek_time` + `pop` pair.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let ev = self.queue.pop_at_or_before(deadline)?;
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.processed += 1;
        Some((ev.at, ev.event))
    }

    /// Timestamp of the next pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Fold another engine's lifetime counters into this one's. Used when a
    /// partitioned run reassembles per-shard engines into a single engine:
    /// the merged `processed`/`scheduled` totals then reflect the work done
    /// across every shard, not just events handled after the merge.
    pub fn absorb_counters(&mut self, processed: u64, scheduled: u64) {
        self.processed += processed;
        self.scheduled += scheduled;
    }

    /// Move the clock forward to `t` without processing events.
    ///
    /// # Panics
    /// Panics if an event earlier than `t` is still pending — skipping
    /// events would corrupt the simulation.
    pub fn advance_to(&mut self, t: SimTime) {
        if let Some(next) = self.queue.peek_time() {
            assert!(next >= t, "advance_to({t:?}) would skip an event at {next:?}");
        }
        self.now = self.now.max(t);
    }

    /// Run the handler over events until the queue drains or the next event
    /// is strictly after `deadline`. The clock never advances past the last
    /// handled event. Returns the number of events handled.
    pub fn run_until(&mut self, deadline: SimTime, mut handler: impl FnMut(&mut Self, E)) -> u64 {
        let start = self.processed;
        while let Some((_, ev)) = self.pop_at_or_before(deadline) {
            handler(self, ev);
        }
        self.processed - start
    }

    /// [`Engine::run_until`] with an event budget: processes at most
    /// `budget` events, and **panics** if the budget is exhausted while
    /// events at or before `deadline` are still pending. A runaway
    /// self-rescheduling loop (an agent arming a zero-delay timer from its
    /// own expiry, say) thus fails loudly with a diagnosable message
    /// instead of hanging the run forever.
    pub fn run_until_budgeted(
        &mut self,
        deadline: SimTime,
        budget: u64,
        mut handler: impl FnMut(&mut Self, E),
    ) -> u64 {
        let start = self.processed;
        while let Some((_, ev)) = self.pop_at_or_before(deadline) {
            handler(self, ev);
            if self.processed - start >= budget {
                if let Some(t) = self.queue.peek_time() {
                    assert!(
                        t > deadline,
                        "event budget of {budget} exhausted at {:?} with events \
                         still pending at {t:?} (deadline {deadline:?}) — \
                         runaway self-rescheduling loop?",
                        self.now
                    );
                }
                break;
            }
        }
        self.processed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn clock_follows_events() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimTime::from_micros(10), 1);
        e.schedule(SimTime::from_micros(5), 0);
        assert_eq!(e.now(), SimTime::ZERO);
        let (t0, v0) = e.pop().unwrap();
        assert_eq!((t0.as_micros(), v0), (5, 0));
        assert_eq!(e.now().as_micros(), 5);
        let (t1, v1) = e.pop().unwrap();
        assert_eq!((t1.as_micros(), v1), (10, 1));
        assert_eq!(e.processed(), 2);
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e: Engine<()> = Engine::new();
        e.schedule(SimTime::from_micros(10), ());
        e.pop();
        e.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    fn run_until_respects_deadline_and_allows_rescheduling() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimTime::from_micros(1), 0);
        // A self-rescheduling "tick" every microsecond.
        let handled = e.run_until(SimTime::from_micros(10), |eng, n| {
            if n < 100 {
                let next = eng.now() + SimDuration::from_micros(1);
                eng.schedule(next, n + 1);
            }
        });
        assert_eq!(handled, 10); // ticks at t=1..=10 us
        assert_eq!(e.now().as_micros(), 10);
        assert_eq!(e.pending(), 1); // the t=11us tick stayed queued
    }

    #[test]
    fn pop_at_or_before_gates_on_deadline() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimTime::from_micros(10), 1);
        assert_eq!(e.pop_at_or_before(SimTime::from_micros(5)), None);
        assert_eq!(e.now(), SimTime::ZERO); // clock untouched on refusal
        assert_eq!(
            e.pop_at_or_before(SimTime::from_micros(10)),
            Some((SimTime::from_micros(10), 1))
        );
        assert_eq!(e.now().as_micros(), 10);
    }

    #[test]
    fn budgeted_run_completes_within_budget() {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..5 {
            e.schedule(SimTime::from_micros(i), i as u32);
        }
        let n = e.run_until_budgeted(SimTime::from_secs(1), 100, |_, _| {});
        assert_eq!(n, 5);
    }

    #[test]
    #[should_panic(expected = "runaway self-rescheduling loop")]
    fn budgeted_run_fails_loudly_on_runaway() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimTime::ZERO, 0);
        // A pathological agent: re-arms itself at the same instant forever.
        e.run_until_budgeted(SimTime::from_secs(1), 1_000, |eng, n| {
            eng.schedule(eng.now(), n + 1);
        });
    }

    #[test]
    fn run_until_drains_empty_queue() {
        let mut e: Engine<()> = Engine::new();
        assert_eq!(e.run_until(SimTime::from_secs(1), |_, _| {}), 0);
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let mut e: Engine<()> = Engine::new();
        e.advance_to(SimTime::from_millis(5));
        assert_eq!(e.now(), SimTime::from_millis(5));
        // Backwards is a no-op, not an error.
        e.advance_to(SimTime::from_millis(1));
        assert_eq!(e.now(), SimTime::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "would skip an event")]
    fn advance_to_cannot_skip_events() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimTime::from_millis(2), 1);
        e.advance_to(SimTime::from_millis(3));
    }

    #[test]
    fn advance_to_exact_event_time_is_allowed() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimTime::from_millis(2), 1);
        e.advance_to(SimTime::from_millis(2));
        assert_eq!(e.now(), SimTime::from_millis(2));
        assert_eq!(e.pop().unwrap().0, SimTime::from_millis(2));
    }
}
