//! Simulated time.
//!
//! Time is measured in integer **nanoseconds** from the start of the
//! simulation. Data-center RTTs are hundreds of microseconds and packet
//! serialization times at 1 Gbps are ~12 µs per 1500 B packet, so nanosecond
//! resolution leaves no rounding artifacts while `u64` still covers ~584
//! simulated years.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far" timer.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative simulation time");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "duration_since: earlier > self");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiply by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// `self` clamped to `[lo, hi]`.
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration(self.0.clamp(lo.0, hi.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns == 0 {
        "0s".into()
    } else if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{}ns", ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimTime::from_secs_f64(1.25).as_millis(), 1250);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
        assert_eq!((t - SimTime::from_micros(3)).as_micros(), 12);
        let mut d = SimDuration::from_micros(2);
        d += SimDuration::from_micros(3);
        assert_eq!(d.as_micros(), 5);
        d -= SimDuration::from_micros(1);
        assert_eq!(d.as_micros(), 4);
        assert_eq!((d * 3).as_micros(), 12);
        assert_eq!((d / 2).as_micros(), 2);
    }

    #[test]
    fn duration_since_and_clamp() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(2);
        assert_eq!(a.duration_since(b).as_millis(), 3);
        let d = SimDuration::from_millis(10);
        assert_eq!(
            d.clamp(SimDuration::from_millis(20), SimDuration::from_millis(30))
                .as_millis(),
            20
        );
        assert_eq!(
            d.clamp(SimDuration::from_millis(1), SimDuration::from_millis(5))
                .as_millis(),
            5
        );
    }

    #[test]
    fn display_picks_the_coarsest_exact_unit() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2s");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2ms");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2us");
        assert_eq!(SimDuration::from_nanos(2).to_string(), "2ns");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
    }

    #[test]
    fn secs_f64_round_trips_closely() {
        let d = SimDuration::from_secs_f64(0.000_225); // 225 us RTT
        assert_eq!(d.as_micros(), 225);
        assert!((d.as_secs_f64() - 0.000_225).abs() < 1e-12);
    }
}
