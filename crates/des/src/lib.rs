//! # xmp-des — deterministic discrete-event simulation kernel
//!
//! This crate is the bottom layer of the XMP reproduction stack. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`EventQueue`] — a priority queue with **deterministic** ordering
//!   (ties at equal timestamps are broken by insertion order, never by
//!   allocation or hash state),
//! * [`Engine`] — a minimal run loop over a user-supplied event type,
//! * [`units`] — strongly-typed bandwidth and data-size quantities,
//! * [`SimRng`] — an explicitly seeded RNG so every simulation is
//!   reproducible from its seed alone.
//!
//! The design follows the event-driven, allocation-light ethos of
//! embedded-style network stacks: no async runtime, no global state, and no
//! hidden sources of nondeterminism. Everything above (links, switches,
//! transports, congestion control) is expressed as handlers invoked by the
//! engine in timestamp order.
//!
//! ```
//! use xmp_des::{Engine, SimDuration, SimTime};
//!
//! // A toy simulation: two ping-pong events.
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::ZERO + SimDuration::from_micros(5), Ev::Ping);
//! engine.schedule(SimTime::ZERO + SimDuration::from_micros(9), Ev::Pong);
//!
//! let mut seen = Vec::new();
//! while let Some((t, ev)) = engine.pop() {
//!     seen.push((t.as_nanos(), ev));
//! }
//! assert_eq!(seen.len(), 2);
//! assert_eq!(seen[0].0, 5_000);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod queue;
pub mod rng;
pub mod time;
pub mod units;

pub use engine::Engine;
pub use queue::{BinaryHeapQueue, EventQueue, ScheduledEvent};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, ByteSize};
