//! The host protocol stack: a [`netsim` agent](xmp_netsim::Agent) that
//! multiplexes any number of sending and receiving connections on one host,
//! translating the pure sender/receiver state machines into packets and
//! timers.
//!
//! Drivers open connections with [`HostStack::open`] (via
//! [`Sim::with_agent`](xmp_netsim::Sim::with_agent)); when a sending
//! connection's last byte is acknowledged, the stack raises the connection
//! key as a simulation **signal** so workloads can react immediately
//! (goodput accounting, starting follow-up flows, job bookkeeping).

use crate::cc::CongestionControl;
use crate::config::StackConfig;
use crate::receiver::{MpReceiver, ReplyPath, RxAction};
use crate::segment::{ConnKey, EchoMode, SegKind, Segment};
use crate::sender::{ConnStats, MpSender, SubflowSpec, TxAction};
use std::any::Any;
use std::collections::HashMap;
use xmp_des::ByteSize;
use xmp_netsim::{Agent, Ctx, Ecn, FlowId, Packet, PortId};

const KIND_RTO: u64 = 0;
const KIND_DELACK: u64 = 1;

fn token(conn: ConnKey, subflow: u8, kind: u64) -> u64 {
    debug_assert!(conn < 1 << 59, "connection key too large for timer encoding");
    (conn << 4) | (u64::from(subflow) << 1) | kind
}

fn untoken(token: u64) -> (ConnKey, u8, u64) {
    (token >> 4, ((token >> 1) & 0x7) as u8, token & 1)
}

enum ConnState<C: CongestionControl> {
    Tx(MpSender<C>),
    Rx(MpReceiver),
}

/// Per-host transport stack.
///
/// Generic over the congestion controller `C` (see [`MpSender`]); the
/// default keeps heterogeneous boxed controllers working, while fixing `C`
/// to a closed enum devirtualizes the per-ACK hot path.
pub struct HostStack<C: CongestionControl = Box<dyn CongestionControl>> {
    cfg: StackConfig,
    conns: HashMap<ConnKey, ConnState<C>>,
    /// Scratch buffer for sender actions, reused across events so the
    /// steady state never allocates (the stack-level analogue of the sim's
    /// emit-buffer pool). Always drained back to empty before it is
    /// returned here.
    tx_scratch: Vec<TxAction>,
    /// Scratch buffer for receiver actions; same reuse discipline.
    rx_scratch: Vec<RxAction>,
}

impl<C: CongestionControl> HostStack<C> {
    /// A stack with the given configuration.
    pub fn new(cfg: StackConfig) -> Self {
        HostStack {
            cfg,
            conns: HashMap::new(),
            tx_scratch: Vec::new(),
            rx_scratch: Vec::new(),
        }
    }

    /// The stack configuration.
    pub fn config(&self) -> &StackConfig {
        &self.cfg
    }

    /// Open a sending connection of `total` bytes (`u64::MAX` = unbounded)
    /// across `subflows`, controlled by `cc`. Emits the SYNs immediately.
    pub fn open(
        &mut self,
        ctx: &mut Ctx<'_, Segment>,
        conn: ConnKey,
        subflows: Vec<SubflowSpec>,
        total: u64,
        cc: C,
    ) {
        assert!(
            !self.conns.contains_key(&conn),
            "connection {conn} already exists on this host"
        );
        let mut sender = MpSender::new(conn, subflows, total, cc, &self.cfg, ctx.now());
        let mut out = self.take_tx_scratch();
        sender.open(ctx.now(), &mut out);
        self.conns.insert(conn, ConnState::Tx(sender));
        self.apply_tx(ctx, conn, &mut out);
        self.tx_scratch = out;
    }

    /// Join an extra subflow on a running sending connection.
    pub fn add_subflow(
        &mut self,
        ctx: &mut Ctx<'_, Segment>,
        conn: ConnKey,
        spec: crate::sender::SubflowSpec,
    ) {
        let cfg = self.cfg.clone();
        let mut out = self.take_tx_scratch();
        let Some(ConnState::Tx(s)) = self.conns.get_mut(&conn) else {
            panic!("add_subflow on unknown sending connection {conn}");
        };
        s.add_subflow(spec, &cfg, ctx.now(), &mut out);
        self.apply_tx(ctx, conn, &mut out);
        self.tx_scratch = out;
    }

    /// Drop a connection (used to stop unbounded background flows). Timers
    /// are implicitly stale-cancelled; in-flight packets are ignored on
    /// arrival.
    pub fn close(&mut self, ctx: &mut Ctx<'_, Segment>, conn: ConnKey) {
        if let Some(ConnState::Tx(s)) = self.conns.get(&conn) {
            for r in 0..s.subflow_count() {
                ctx.cancel_timer(token(conn, r as u8, KIND_RTO));
            }
        }
        self.conns.remove(&conn);
    }

    /// Sending-connection accessor (stats, per-subflow windows/rates).
    pub fn sender(&self, conn: ConnKey) -> Option<&MpSender<C>> {
        match self.conns.get(&conn) {
            Some(ConnState::Tx(s)) => Some(s),
            _ => None,
        }
    }

    /// Stats shortcut for a sending connection.
    pub fn conn_stats(&self, conn: ConnKey) -> Option<&ConnStats> {
        self.sender(conn).map(|s| s.stats())
    }

    /// Receiving-connection accessor.
    pub fn receiver(&self, conn: ConnKey) -> Option<&MpReceiver> {
        match self.conns.get(&conn) {
            Some(ConnState::Rx(r)) => Some(r),
            _ => None,
        }
    }

    /// Number of live connections (both directions).
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Take the sender-action scratch buffer (empty; a fresh `Vec` only on
    /// first use or re-entrant access).
    fn take_tx_scratch(&mut self) -> Vec<TxAction> {
        let out = std::mem::take(&mut self.tx_scratch);
        debug_assert!(out.is_empty(), "tx scratch not drained between events");
        out
    }

    /// Take the receiver-action scratch buffer.
    fn take_rx_scratch(&mut self) -> Vec<RxAction> {
        let out = std::mem::take(&mut self.rx_scratch);
        debug_assert!(out.is_empty(), "rx scratch not drained between events");
        out
    }

    fn apply_tx(&mut self, ctx: &mut Ctx<'_, Segment>, conn: ConnKey, actions: &mut Vec<TxAction>) {
        // Look up addressing once per action from the sender's spec.
        for act in actions.drain(..) {
            match act {
                TxAction::Emit(r, seg) => {
                    let Some(ConnState::Tx(s)) = self.conns.get(&conn) else {
                        continue;
                    };
                    let spec = *s.spec(r as usize);
                    let ecn = if s.cc().echo_mode() != EchoMode::None
                        && seg.kind == SegKind::Data
                    {
                        Ecn::Ect
                    } else {
                        Ecn::NotEct
                    };
                    let size = seg.wire_size();
                    let flow = FlowId((conn << 3) | u64::from(r));
                    ctx.send(
                        spec.local_port,
                        Packet::new(spec.src, spec.dst, flow, ecn, size, seg),
                    );
                }
                TxAction::ArmRto(r, at) => ctx.set_timer(token(conn, r, KIND_RTO), at),
                TxAction::CancelRto(r) => ctx.cancel_timer(token(conn, r, KIND_RTO)),
                TxAction::Completed => ctx.signal(conn),
            }
        }
    }

    fn apply_rx(&mut self, ctx: &mut Ctx<'_, Segment>, conn: ConnKey, actions: &mut Vec<RxAction>) {
        for act in actions.drain(..) {
            match act {
                RxAction::Emit(r, seg, reply) => {
                    let size = seg.wire_size();
                    // Reverse direction gets a distinct flow id for ECMP.
                    let flow = FlowId(((conn << 3) | u64::from(r)) ^ (1 << 62));
                    ctx.send(
                        reply.port,
                        Packet::new(reply.src, reply.dst, flow, Ecn::NotEct, size, seg),
                    );
                }
                RxAction::ArmDelack(r, at) => ctx.set_timer(token(conn, r, KIND_DELACK), at),
                RxAction::CancelDelack(r) => ctx.cancel_timer(token(conn, r, KIND_DELACK)),
            }
        }
    }
}

impl<C: CongestionControl + 'static> Agent<Segment> for HostStack<C> {
    fn on_packet(&mut self, pkt: Packet<Segment>, port: PortId, ctx: &mut Ctx<'_, Segment>) {
        let seg = pkt.payload; // Segment is Copy: no clone
        let conn = seg.conn;
        match seg.kind {
            SegKind::Syn => {
                let mut out = self.take_rx_scratch();
                let rx = match self.conns.entry(conn).or_insert_with(|| {
                    ConnState::Rx(MpReceiver::new(conn, seg.echo_mode, self.cfg.delack_timeout))
                }) {
                    ConnState::Rx(r) => r,
                    ConnState::Tx(_) => {
                        // Key collision with a local sender: ignore.
                        self.rx_scratch = out;
                        return;
                    }
                };
                let reply = ReplyPath {
                    port,
                    src: pkt.dst,
                    dst: pkt.src,
                };
                rx.on_syn(&seg, reply, ctx.now(), &mut out);
                self.apply_rx(ctx, conn, &mut out);
                self.rx_scratch = out;
            }
            SegKind::Data => {
                let ce = pkt.ecn == Ecn::Ce;
                let mut out = self.take_rx_scratch();
                if let Some(ConnState::Rx(rx)) = self.conns.get_mut(&conn) {
                    rx.on_data(&seg, ce, ctx.now(), &mut out);
                    self.apply_rx(ctx, conn, &mut out);
                }
                self.rx_scratch = out;
            }
            SegKind::SynAck | SegKind::Ack => {
                let mut out = self.take_tx_scratch();
                if let Some(ConnState::Tx(tx)) = self.conns.get_mut(&conn) {
                    tx.on_segment(&seg, ctx.now(), &mut out);
                    self.apply_tx(ctx, conn, &mut out);
                }
                self.tx_scratch = out;
            }
        }
    }

    fn on_timer(&mut self, tok: u64, ctx: &mut Ctx<'_, Segment>) {
        let (conn, subflow, kind) = untoken(tok);
        match kind {
            KIND_RTO => {
                let mut out = self.take_tx_scratch();
                // A timer for a closed connection is stale: nothing to do.
                if let Some(ConnState::Tx(tx)) = self.conns.get_mut(&conn) {
                    tx.on_rto(subflow as usize, ctx.now(), &mut out);
                    self.apply_tx(ctx, conn, &mut out);
                }
                self.tx_scratch = out;
            }
            KIND_DELACK => {
                let mut out = self.take_rx_scratch();
                if let Some(ConnState::Rx(rx)) = self.conns.get_mut(&conn) {
                    rx.on_delack(subflow as usize, &mut out);
                    self.apply_rx(ctx, conn, &mut out);
                }
                self.rx_scratch = out;
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Convenience: wire size of a full data packet under `cfg`.
pub fn full_packet_size(cfg: &StackConfig) -> ByteSize {
    ByteSize::from_bytes(u64::from(cfg.mss) + u64::from(crate::segment::HEADER_BYTES))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_round_trip() {
        for conn in [0u64, 1, 77, 1 << 40] {
            for sub in 0..8u8 {
                for kind in [KIND_RTO, KIND_DELACK] {
                    assert_eq!(untoken(token(conn, sub, kind)), (conn, sub, kind));
                }
            }
        }
    }

    #[test]
    fn full_packet_is_1500() {
        assert_eq!(
            full_packet_size(&StackConfig::default()).as_bytes(),
            1500
        );
    }
}
