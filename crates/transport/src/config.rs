//! Transport stack configuration.

use xmp_des::SimDuration;

/// Knobs of the host TCP/MPTCP stack.
///
/// Defaults follow the paper's environment: Linux-era `RTOmin = 200 ms`
/// (the paper repeatedly attributes LIA's poor flow-completion behaviour to
/// exactly this constant), initial window of 10 segments (Linux 3.x),
/// MSS 1460 (1500-byte wire packets).
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Minimum retransmission timeout.
    pub rto_min: SimDuration,
    /// Maximum retransmission timeout.
    pub rto_max: SimDuration,
    /// RTO before any RTT sample exists.
    pub rto_initial: SimDuration,
    /// Initial congestion window (packets).
    pub initial_cwnd: f64,
    /// Delayed-ACK timeout (acks are also forced every 2nd segment, on
    /// out-of-order arrivals, PSH, and DCTCP CE-state changes).
    pub delack_timeout: SimDuration,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            mss: 1460,
            rto_min: SimDuration::from_millis(200),
            rto_max: SimDuration::from_secs(60),
            rto_initial: SimDuration::from_millis(200),
            initial_cwnd: 10.0,
            delack_timeout: SimDuration::from_millis(40),
        }
    }
}

impl StackConfig {
    /// Override `RTOmin` (e.g. for the fine-grained-RTO ablation suggested
    /// by Vasudevan et al., discussed in the paper's related work).
    pub fn with_rto_min(mut self, d: SimDuration) -> Self {
        self.rto_min = d;
        self.rto_initial = self.rto_initial.max(d);
        self
    }

    /// Override the initial congestion window.
    pub fn with_initial_cwnd(mut self, iw: f64) -> Self {
        assert!(iw >= 1.0);
        self.initial_cwnd = iw;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_environment() {
        let c = StackConfig::default();
        assert_eq!(c.mss, 1460);
        assert_eq!(c.rto_min, SimDuration::from_millis(200));
        assert_eq!(c.initial_cwnd, 10.0);
    }

    #[test]
    fn builders() {
        let c = StackConfig::default()
            .with_rto_min(SimDuration::from_millis(10))
            .with_initial_cwnd(2.0);
        assert_eq!(c.rto_min, SimDuration::from_millis(10));
        assert_eq!(c.initial_cwnd, 2.0);
    }
}
