//! # xmp-transport — TCP, DCTCP and MPTCP on the simulator
//!
//! This crate is the transport substrate of the XMP reproduction:
//!
//! * [`segment`] — the modelled TCP/MPTCP header, including the paper's
//!   2-bit CE-count echo encoding,
//! * [`rtt`] — SRTT/RTTVAR estimation and RTO with `RTOmin = 200 ms`
//!   (the constant the paper blames for LIA's completion-time tail),
//! * [`sender`] / [`receiver`] — pure per-subflow TCP state machines
//!   (handshake, reassembly, delayed ACKs, NewReno fast retransmit/recovery,
//!   RTO) shared by every congestion-control scheme,
//! * [`cc`] — the multipath-aware [`cc::CongestionControl`] trait and the
//!   baselines: [`cc::Reno`] ("TCP"), [`cc::Dctcp`], [`cc::Lia`] (MPTCP's
//!   Linked Increases). XMP itself lives in the `xmp-core` crate and plugs
//!   into the same trait,
//! * [`stack`] — the per-host agent multiplexing connections onto the
//!   network.
//!
//! Single-path TCP is simply an MPTCP connection with one subflow, so every
//! scheme shares identical loss-recovery machinery — differences between
//! schemes in the experiments are differences in congestion control only,
//! as in the paper.

pub mod cc;
pub mod config;
pub mod receiver;
pub mod rtt;
pub mod segment;
pub mod sender;
pub mod stack;

pub use cc::{AckInfo, CcSnapshot, CongestionControl, Dctcp, Lia, Olia, Reno, SubflowCc, MIN_CWND};
pub use config::StackConfig;
pub use receiver::{MpReceiver, ReplyPath, RxAction};
pub use rtt::RttEstimator;
pub use segment::{ConnKey, EchoMode, SegKind, Segment, DEFAULT_MSS, HEADER_BYTES};
pub use sender::{ConnStats, MpSender, SubflowSpec, TxAction};
pub use stack::HostStack;
