//! The multipath receiver: per-subflow reassembly, delayed ACKs and the
//! three ECN feedback modes.
//!
//! The XMP-specific part is **CE counting** ([`EchoMode::CeCount`]): every
//! received CE mark is eventually echoed, up to 3 per ACK (the 2-bit
//! ECE+CWR encoding of the paper's BOS rule 2); marks that do not fit stay
//! pending. DCTCP mode reports per-ACK marked/covered counts and forces an
//! immediate ACK whenever the CE state flips, mirroring the DCTCP receiver
//! state machine.

use crate::segment::{ConnKey, EchoMode, SegKind, Segment};
use std::collections::BTreeMap;
use xmp_des::{SimDuration, SimTime};
use xmp_netsim::{Addr, PortId};

/// Where ACKs for a subflow are sent.
#[derive(Clone, Copy, Debug)]
pub struct ReplyPath {
    /// Local port the data arrived on (and the ACK leaves from).
    pub port: PortId,
    /// Source address for ACKs (the address the data was sent to).
    pub src: Addr,
    /// Destination address for ACKs (the data's source).
    pub dst: Addr,
}

/// Receiver outputs, translated by the host stack.
#[derive(Debug)]
pub enum RxAction {
    /// Send an ACK-type segment on a subflow's reply path.
    Emit(u8, Segment, ReplyPath),
    /// Arm the delayed-ACK timer for a subflow.
    ArmDelack(u8, SimTime),
    /// Cancel the delayed-ACK timer for a subflow.
    CancelDelack(u8),
}

#[derive(Debug)]
struct SubflowRx {
    reply: ReplyPath,
    rcv_nxt: u64,
    /// Out-of-order segments: start → end byte.
    ooo: BTreeMap<u64, u64>,
    /// CE marks not yet echoed (CeCount mode).
    pending_ce: u32,
    /// Data segments received since the last ACK.
    since_pkts: u8,
    /// Marked data segments received since the last ACK (DCTCP mode).
    since_marked: u8,
    /// TSval of the earliest segment since the last ACK (RFC 7323 echo).
    ts_to_echo: u64,
    /// Last data segment's CE state (DCTCP immediate-ACK rule).
    last_was_ce: bool,
    delack_armed: bool,
}

impl SubflowRx {
    fn new(reply: ReplyPath) -> Self {
        SubflowRx {
            reply,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            pending_ce: 0,
            since_pkts: 0,
            since_marked: 0,
            ts_to_echo: 0,
            last_was_ce: false,
            delack_armed: false,
        }
    }
}

/// A receiving MPTCP connection.
pub struct MpReceiver {
    conn: ConnKey,
    mode: EchoMode,
    delack: SimDuration,
    subs: Vec<Option<SubflowRx>>,
}

impl MpReceiver {
    /// New receiver; subflow state is created lazily from SYNs.
    pub fn new(conn: ConnKey, mode: EchoMode, delack: SimDuration) -> Self {
        MpReceiver {
            conn,
            mode,
            delack,
            subs: Vec::new(),
        }
    }

    /// Connection key.
    pub fn conn(&self) -> ConnKey {
        self.conn
    }

    /// Echo mode this receiver operates in.
    pub fn mode(&self) -> EchoMode {
        self.mode
    }

    /// Total in-order bytes delivered across subflows.
    pub fn delivered(&self) -> u64 {
        self.subs
            .iter()
            .flatten()
            .map(|s| s.rcv_nxt)
            .sum()
    }

    fn sub_mut(&mut self, r: usize) -> Option<&mut SubflowRx> {
        self.subs.get_mut(r).and_then(|s| s.as_mut())
    }

    /// Handle a SYN: (re)create subflow state and answer with SYN-ACK.
    pub fn on_syn(&mut self, seg: &Segment, reply: ReplyPath, now: SimTime, out: &mut Vec<RxAction>) {
        debug_assert_eq!(seg.kind, SegKind::Syn);
        let r = seg.subflow as usize;
        if self.subs.len() <= r {
            self.subs.resize_with(r + 1, || None);
        }
        if self.subs[r].is_none() {
            self.subs[r] = Some(SubflowRx::new(reply));
        }
        out.push(RxAction::Emit(
            seg.subflow,
            Segment::syn_ack(seg, now.as_nanos()),
            reply,
        ));
    }

    /// Handle a data segment (`ce` = arrived with Congestion Experienced).
    pub fn on_data(&mut self, seg: &Segment, ce: bool, now: SimTime, out: &mut Vec<RxAction>) {
        debug_assert_eq!(seg.kind, SegKind::Data);
        let mode = self.mode;
        let delack = self.delack;
        let conn = self.conn;
        let r = seg.subflow as usize;
        let Some(sub) = self.sub_mut(r) else {
            return; // data before SYN: drop (sender will retransmit)
        };

        // ECN bookkeeping.
        let ce_flip = ce != sub.last_was_ce;
        sub.last_was_ce = ce;
        if ce {
            sub.pending_ce += 1;
            sub.since_marked = sub.since_marked.saturating_add(1);
        }
        sub.since_pkts = sub.since_pkts.saturating_add(1);
        if sub.ts_to_echo == 0 {
            sub.ts_to_echo = seg.tsval;
        }

        // Reassembly.
        let end = seg.seq + u64::from(seg.len);
        let in_order = seg.seq <= sub.rcv_nxt;
        let duplicate = end <= sub.rcv_nxt;
        let had_ooo = !sub.ooo.is_empty();
        if in_order {
            sub.rcv_nxt = sub.rcv_nxt.max(end);
            // Drain contiguous out-of-order blocks.
            while let Some((&start, &blk_end)) = sub.ooo.first_key_value() {
                if start > sub.rcv_nxt {
                    break;
                }
                sub.rcv_nxt = sub.rcv_nxt.max(blk_end);
                sub.ooo.remove(&start);
            }
        } else {
            sub.ooo.insert(seg.seq, end);
        }

        // ACK policy: immediate on gaps/duplicates (fast-retransmit dupacks),
        // gap fills (RFC 5681), PSH, every 2nd segment, and DCTCP CE-state
        // flips.
        let immediate = !in_order
            || duplicate
            || had_ooo
            || seg.push
            || sub.since_pkts >= 2
            || (mode == EchoMode::Dctcp && ce_flip);
        if immediate {
            Self::emit_ack(conn, mode, r, sub, out);
        } else if !sub.delack_armed {
            sub.delack_armed = true;
            out.push(RxAction::ArmDelack(r as u8, now + delack));
        }
    }

    /// Delayed-ACK timer fired for subflow `r`.
    pub fn on_delack(&mut self, r: usize, out: &mut Vec<RxAction>) {
        let mode = self.mode;
        let conn = self.conn;
        let Some(sub) = self.sub_mut(r) else { return };
        if sub.delack_armed {
            Self::emit_ack(conn, mode, r, sub, out);
        }
    }

    fn emit_ack(conn: ConnKey, mode: EchoMode, r: usize, sub: &mut SubflowRx, out: &mut Vec<RxAction>) {
        let ce_echo = match mode {
            EchoMode::None => 0,
            EchoMode::CeCount => {
                let e = sub.pending_ce.min(3) as u8;
                sub.pending_ce -= u32::from(e);
                e
            }
            EchoMode::Dctcp => sub.since_marked.min(3),
        };
        let ack = Segment::ack(
            conn,
            r as u8,
            sub.rcv_nxt,
            ce_echo,
            sub.since_pkts,
            sub.ts_to_echo,
        );
        sub.since_pkts = 0;
        sub.since_marked = 0;
        sub.ts_to_echo = 0;
        if sub.delack_armed {
            sub.delack_armed = false;
            out.push(RxAction::CancelDelack(r as u8));
        }
        out.push(RxAction::Emit(r as u8, ack, sub.reply));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply() -> ReplyPath {
        ReplyPath {
            port: PortId(0),
            src: Addr::new(10, 0, 0, 2),
            dst: Addr::new(10, 0, 0, 1),
        }
    }

    fn rx(mode: EchoMode) -> MpReceiver {
        let mut r = MpReceiver::new(1, mode, SimDuration::from_millis(40));
        let mut out = Vec::new();
        r.on_syn(
            &Segment::syn(1, 0, 7, mode),
            reply(),
            SimTime::ZERO,
            &mut out,
        );
        r
    }

    fn data(seq: u64, len: u32, push: bool) -> Segment {
        Segment::data(1, 0, seq, len, 1000, push)
    }

    fn acks(out: &[RxAction]) -> Vec<&Segment> {
        out.iter()
            .filter_map(|a| match a {
                RxAction::Emit(_, s, _) if s.kind == SegKind::Ack => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn syn_gets_syn_ack_with_echo() {
        let mut r = MpReceiver::new(1, EchoMode::CeCount, SimDuration::from_millis(40));
        let mut out = Vec::new();
        r.on_syn(
            &Segment::syn(1, 0, 7, EchoMode::CeCount),
            reply(),
            SimTime::from_micros(3),
            &mut out,
        );
        match &out[0] {
            RxAction::Emit(0, s, _) => {
                assert_eq!(s.kind, SegKind::SynAck);
                assert_eq!(s.tsecr, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn every_second_segment_acked() {
        let mut r = rx(EchoMode::None);
        let mut out = Vec::new();
        r.on_data(&data(0, 1460, false), false, SimTime::ZERO, &mut out);
        assert!(acks(&out).is_empty(), "first segment: delayed");
        assert!(matches!(out[0], RxAction::ArmDelack(0, _)));
        r.on_data(&data(1460, 1460, false), false, SimTime::ZERO, &mut out);
        let a = acks(&out);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].ack, 2920);
        assert_eq!(a[0].covered, 2);
        assert_eq!(a[0].tsecr, 1000, "echoes the first unacked segment's TSval");
    }

    #[test]
    fn push_forces_immediate_ack() {
        let mut r = rx(EchoMode::None);
        let mut out = Vec::new();
        r.on_data(&data(0, 100, true), false, SimTime::ZERO, &mut out);
        assert_eq!(acks(&out)[0].ack, 100);
    }

    #[test]
    fn delack_timer_flushes() {
        let mut r = rx(EchoMode::None);
        let mut out = Vec::new();
        r.on_data(&data(0, 1460, false), false, SimTime::ZERO, &mut out);
        assert!(acks(&out).is_empty());
        r.on_delack(0, &mut out);
        let a = acks(&out);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].ack, 1460);
        // A second timer fire without new data does nothing.
        let n = out.len();
        r.on_delack(0, &mut out);
        assert_eq!(out.len(), n);
    }

    #[test]
    fn out_of_order_dupacks_then_cumulative_jump() {
        let mut r = rx(EchoMode::None);
        let mut out = Vec::new();
        // Segment 0 lost; 1,2,3 arrive out of order.
        for seq in [1460u64, 2920, 4380] {
            r.on_data(&data(seq, 1460, false), false, SimTime::ZERO, &mut out);
        }
        let a = acks(&out);
        assert_eq!(a.len(), 3, "each gap arrival acks immediately");
        assert!(a.iter().all(|s| s.ack == 0), "duplicate acks at the hole");
        // The retransmission fills the hole: cumulative ack jumps.
        out.clear();
        r.on_data(&data(0, 1460, false), false, SimTime::ZERO, &mut out);
        assert_eq!(acks(&out)[0].ack, 4 * 1460);
        assert_eq!(r.delivered(), 4 * 1460);
    }

    #[test]
    fn ce_count_mode_echoes_exact_count_capped_at_3() {
        let mut r = rx(EchoMode::CeCount);
        let mut out = Vec::new();
        // 5 marked in-order segments; acks every 2nd.
        for i in 0..5u64 {
            r.on_data(&data(i * 1460, 1460, false), true, SimTime::ZERO, &mut out);
        }
        let a = acks(&out);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].ce_echo, 2);
        assert_eq!(a[1].ce_echo, 2);
        // One mark still pending; flushes with the delack.
        out.clear();
        r.on_delack(0, &mut out);
        assert_eq!(acks(&out)[0].ce_echo, 1);
    }

    #[test]
    fn ce_count_total_is_conserved() {
        let mut r = rx(EchoMode::CeCount);
        let mut out = Vec::new();
        let mut seq = 0u64;
        let mut marked = 0u32;
        for i in 0..50u64 {
            let ce = i % 3 == 0;
            marked += u32::from(ce);
            r.on_data(&data(seq, 1460, i == 49), ce, SimTime::ZERO, &mut out);
            seq += 1460;
        }
        r.on_delack(0, &mut out);
        let echoed: u32 = acks(&out).iter().map(|s| u32::from(s.ce_echo)).sum();
        assert_eq!(echoed, marked, "every CE mark is echoed exactly once");
    }

    #[test]
    fn dctcp_state_flip_forces_immediate_ack() {
        let mut r = rx(EchoMode::Dctcp);
        let mut out = Vec::new();
        r.on_data(&data(0, 1460, false), true, SimTime::ZERO, &mut out);
        // First segment flips CE state false->true: immediate ack.
        let a = acks(&out);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].ce_echo, 1);
        assert_eq!(a[0].covered, 1);
        out.clear();
        r.on_data(&data(1460, 1460, false), true, SimTime::ZERO, &mut out);
        assert!(acks(&out).is_empty(), "no flip: delayed");
        r.on_data(&data(2920, 1460, false), false, SimTime::ZERO, &mut out);
        let a = acks(&out);
        assert_eq!(a.len(), 1, "flip true->false: immediate");
        assert_eq!(a[0].ce_echo, 1);
        assert_eq!(a[0].covered, 2);
    }

    #[test]
    fn data_before_syn_is_dropped() {
        let mut r = MpReceiver::new(1, EchoMode::None, SimDuration::from_millis(40));
        let mut out = Vec::new();
        r.on_data(&data(0, 1460, false), false, SimTime::ZERO, &mut out);
        assert!(out.is_empty());
        assert_eq!(r.delivered(), 0);
    }

    #[test]
    fn overlapping_retransmission_advances_cleanly() {
        // A go-back-N resend overlaps data the receiver already holds
        // out-of-order; rcv_nxt must never regress or double-count.
        let mut r = rx(EchoMode::None);
        let mut out = Vec::new();
        r.on_data(&data(0, 1460, false), false, SimTime::ZERO, &mut out);
        // 2 lost; 3..5 arrive out of order.
        for seq in [2920u64, 4380] {
            r.on_data(&data(seq, 1460, false), false, SimTime::ZERO, &mut out);
        }
        assert_eq!(r.delivered(), 1460);
        // Retransmission covers [1460, 2920) — overlaps the stored blocks'
        // left edge exactly; everything drains.
        out.clear();
        r.on_data(&data(1460, 1460, false), false, SimTime::ZERO, &mut out);
        assert_eq!(r.delivered(), 4 * 1460);
        assert_eq!(acks(&out)[0].ack, 4 * 1460);
        // A stale full-overlap resend afterwards changes nothing.
        r.on_data(&data(1460, 1460, false), false, SimTime::ZERO, &mut out);
        assert_eq!(r.delivered(), 4 * 1460);
    }

    #[test]
    fn interleaved_gaps_drain_in_order() {
        let mut r = rx(EchoMode::None);
        let mut out = Vec::new();
        // Arrival order: 4, 2, 0, 3, 1 (x1460).
        for seq in [4u64, 2, 0, 3, 1] {
            r.on_data(&data(seq * 1460, 1460, false), false, SimTime::ZERO, &mut out);
        }
        assert_eq!(r.delivered(), 5 * 1460);
        let last_ack = acks(&out).last().unwrap().ack;
        assert_eq!(last_ack, 5 * 1460);
    }

    #[test]
    fn delivered_sums_across_subflows() {
        let mut r = MpReceiver::new(1, EchoMode::None, SimDuration::from_millis(40));
        let mut out = Vec::new();
        for sf in 0..3u8 {
            r.on_syn(
                &Segment::syn(1, sf, 7, EchoMode::None),
                reply(),
                SimTime::ZERO,
                &mut out,
            );
            let mut d = Segment::data(1, sf, 0, 1000 * (u32::from(sf) + 1), 5, true);
            d.subflow = sf;
            r.on_data(&d, false, SimTime::ZERO, &mut out);
        }
        assert_eq!(r.delivered(), 1000 + 2000 + 3000);
    }

    #[test]
    fn duplicate_data_is_acked_immediately() {
        let mut r = rx(EchoMode::None);
        let mut out = Vec::new();
        r.on_data(&data(0, 1460, false), false, SimTime::ZERO, &mut out);
        r.on_data(&data(1460, 1460, false), false, SimTime::ZERO, &mut out);
        out.clear();
        // Spurious retransmission of the first segment.
        r.on_data(&data(0, 1460, false), false, SimTime::ZERO, &mut out);
        let a = acks(&out);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].ack, 2920);
    }
}
