//! Transport segments — the payload type carried by simulator packets.
//!
//! A segment models the TCP(+MPTCP) header fields the algorithms actually
//! read: sequence/ack numbers, the handshake kinds, a timestamp option for
//! RTT measurement, and the ECN feedback fields. The XMP paper re-purposes
//! the ECE+CWR header bits as a 2-bit **count** of received CE marks
//! (0–3 per ACK); `ce_echo` carries that count. DCTCP-mode receivers use the
//! same field to report the exact number of marked segments covered by the
//! ACK (the idealized equivalent of DCTCP's one-bit state machine), together
//! with `covered` (total data segments covered).

use xmp_des::ByteSize;

/// Global connection identifier, assigned by the workload layer.
pub type ConnKey = u64;

/// TCP/IP header bytes modelled on every packet.
pub const HEADER_BYTES: u32 = 40;
/// Default maximum segment size (1500-byte wire packets).
pub const DEFAULT_MSS: u32 = 1460;

/// How the receiver feeds congestion marks back to the sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EchoMode {
    /// No ECN (plain TCP); data packets are sent Not-ECT.
    #[default]
    None,
    /// XMP: echo the exact number of CE marks, up to 3 per ACK, using the
    /// 2-bit ECE+CWR encoding (paper BOS rule 2). Unreported marks stay
    /// pending for the next ACK.
    CeCount,
    /// DCTCP: report how many of the segments covered by this ACK were
    /// marked (with `covered` as the denominator for the α estimate).
    Dctcp,
}

/// Segment kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegKind {
    /// Subflow handshake request.
    Syn,
    /// Handshake response (also acknowledges the SYN).
    SynAck,
    /// Data segment (`seq`, `len` meaningful).
    Data,
    /// Pure acknowledgement (`ack` meaningful).
    Ack,
}

/// A transport segment. All fields are plain scalars, so segments are
/// `Copy` — the host stack and test probes pass them by value instead of
/// cloning heap state.
#[derive(Clone, Copy, Debug)]
pub struct Segment {
    /// Connection the segment belongs to.
    pub conn: ConnKey,
    /// Subflow index within the connection.
    pub subflow: u8,
    /// Kind.
    pub kind: SegKind,
    /// First payload byte (Data).
    pub seq: u64,
    /// Payload length in bytes (Data).
    pub len: u32,
    /// Cumulative acknowledgement (Ack / SynAck).
    pub ack: u64,
    /// Echoed CE count (see [`EchoMode`]).
    pub ce_echo: u8,
    /// Data segments covered by this ACK (DCTCP α denominator).
    pub covered: u8,
    /// Sender timestamp (ns) — the TSval option.
    pub tsval: u64,
    /// Echoed peer timestamp (ns) — the TSecr option; 0 when absent.
    pub tsecr: u64,
    /// PSH: end of application data; receivers acknowledge immediately.
    pub push: bool,
    /// Echo mode advertised on SYN (receiver configures itself from it).
    pub echo_mode: EchoMode,
}

impl Segment {
    /// On-wire size of this segment (header + payload).
    pub fn wire_size(&self) -> ByteSize {
        ByteSize::from_bytes(u64::from(HEADER_BYTES) + u64::from(self.len))
    }

    /// A SYN for `conn`/`subflow`, advertising the echo mode.
    pub fn syn(conn: ConnKey, subflow: u8, tsval: u64, echo_mode: EchoMode) -> Self {
        Segment {
            conn,
            subflow,
            kind: SegKind::Syn,
            seq: 0,
            len: 0,
            ack: 0,
            ce_echo: 0,
            covered: 0,
            tsval,
            tsecr: 0,
            push: false,
            echo_mode,
        }
    }

    /// The SYN-ACK answering `syn`.
    pub fn syn_ack(syn: &Segment, tsval: u64) -> Self {
        debug_assert_eq!(syn.kind, SegKind::Syn);
        Segment {
            conn: syn.conn,
            subflow: syn.subflow,
            kind: SegKind::SynAck,
            seq: 0,
            len: 0,
            ack: 0,
            ce_echo: 0,
            covered: 0,
            tsval,
            tsecr: syn.tsval,
            push: false,
            echo_mode: syn.echo_mode,
        }
    }

    /// A data segment.
    #[allow(clippy::too_many_arguments)]
    pub fn data(conn: ConnKey, subflow: u8, seq: u64, len: u32, tsval: u64, push: bool) -> Self {
        debug_assert!(len > 0, "empty data segment");
        Segment {
            conn,
            subflow,
            kind: SegKind::Data,
            seq,
            len,
            ack: 0,
            ce_echo: 0,
            covered: 0,
            tsval,
            tsecr: 0,
            push,
            echo_mode: EchoMode::None,
        }
    }

    /// A pure ACK.
    pub fn ack(conn: ConnKey, subflow: u8, ack: u64, ce_echo: u8, covered: u8, tsecr: u64) -> Self {
        assert!(ce_echo <= 3, "2-bit CE encoding holds at most 3");
        Segment {
            conn,
            subflow,
            kind: SegKind::Ack,
            seq: 0,
            len: 0,
            ack,
            ce_echo,
            covered,
            tsval: 0,
            tsecr,
            push: false,
            echo_mode: EchoMode::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let d = Segment::data(1, 0, 0, DEFAULT_MSS, 0, false);
        assert_eq!(d.wire_size().as_bytes(), 1500);
        let a = Segment::ack(1, 0, 1460, 0, 1, 0);
        assert_eq!(a.wire_size().as_bytes(), 40);
    }

    #[test]
    fn syn_ack_echoes_timestamp_and_mode() {
        let syn = Segment::syn(9, 2, 12345, EchoMode::CeCount);
        let sa = Segment::syn_ack(&syn, 777);
        assert_eq!(sa.tsecr, 12345);
        assert_eq!(sa.conn, 9);
        assert_eq!(sa.subflow, 2);
        assert_eq!(sa.echo_mode, EchoMode::CeCount);
    }

    #[test]
    #[should_panic(expected = "2-bit CE encoding")]
    fn ce_echo_bounded() {
        Segment::ack(1, 0, 0, 4, 0, 0);
    }
}
