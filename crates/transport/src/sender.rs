//! The multipath sender: per-subflow TCP send machinery (handshake, loss
//! detection, NewReno fast retransmit/recovery, RTO with go-back-N resend)
//! with a pluggable, multipath-aware congestion controller.
//!
//! The sender is a pure state machine: inputs are segments, timeouts and
//! `open`; outputs are [`TxAction`]s the host stack translates into packets
//! and timers. This keeps every congestion-control path unit-testable
//! without a simulated network.

use crate::cc::{AckInfo, CongestionControl, SubflowCc};
use crate::config::StackConfig;
use crate::rtt::RttEstimator;
use crate::segment::{ConnKey, SegKind, Segment};
use xmp_des::{SimDuration, SimTime};
use xmp_netsim::{Addr, PortId};

/// Where a subflow's packets enter and leave the network.
#[derive(Clone, Copy, Debug)]
pub struct SubflowSpec {
    /// Local NIC port the subflow transmits on.
    pub local_port: PortId,
    /// Source address stamped on packets.
    pub src: Addr,
    /// Destination address (selects the path under deterministic routing).
    pub dst: Addr,
}

/// Sender outputs, translated by the host stack.
#[derive(Debug)]
pub enum TxAction {
    /// Transmit a segment on the given subflow.
    Emit(u8, Segment),
    /// (Re)arm the subflow's retransmission timer.
    ArmRto(u8, SimTime),
    /// Disarm the subflow's retransmission timer.
    CancelRto(u8),
    /// All application bytes are acknowledged.
    Completed,
}

/// Encode the current time as a TSval (0 is reserved for "absent").
fn tsnow(now: SimTime) -> u64 {
    now.as_nanos() + 1
}

/// Lifetime statistics of a sending connection.
#[derive(Debug, Clone)]
pub struct ConnStats {
    /// When `open` was called.
    pub start: SimTime,
    /// When the last byte was acknowledged.
    pub completed: Option<SimTime>,
    /// Cumulative acknowledged bytes (across subflows).
    pub bytes_acked: u64,
    /// Fast retransmissions triggered.
    pub fast_retransmits: u64,
    /// Retransmission timeouts fired.
    pub rtos: u64,
    /// Sum of RTT samples (ns) — for mean RTT.
    pub rtt_sum_ns: u64,
    /// Number of RTT samples.
    pub rtt_count: u64,
    /// Largest RTT sample observed.
    pub rtt_max: SimDuration,
}

impl ConnStats {
    fn new(start: SimTime) -> Self {
        ConnStats {
            start,
            completed: None,
            bytes_acked: 0,
            fast_retransmits: 0,
            rtos: 0,
            rtt_sum_ns: 0,
            rtt_count: 0,
            rtt_max: SimDuration::ZERO,
        }
    }

    /// Average data rate over the connection's lifetime, bits per second.
    /// For completed flows this is the paper's "goodput".
    pub fn goodput_bps(&self, now: SimTime) -> f64 {
        let end = self.completed.unwrap_or(now);
        let dur = end.duration_since(self.start).as_secs_f64();
        if dur <= 0.0 {
            0.0
        } else {
            self.bytes_acked as f64 * 8.0 / dur
        }
    }

    /// Mean RTT sample, if any were taken.
    pub fn mean_rtt(&self) -> Option<SimDuration> {
        self.rtt_sum_ns
            .checked_div(self.rtt_count)
            .map(SimDuration::from_nanos)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxPhase {
    SynSent,
    Established,
}

#[derive(Debug)]
struct SubflowTx {
    spec: SubflowSpec,
    phase: TxPhase,
    rtt: RttEstimator,
    dup_acks: u32,
    /// Fast-recovery exit point.
    recover: u64,
    /// Bytes of the connection stream allocated to this subflow
    /// (`snd_nxt <= sub_allocated`; they differ only after an RTO rollback).
    sub_allocated: u64,
    /// Whether the subflow's last emitted byte carried PSH.
    tail_pushed: bool,
    /// Whether the end-of-data tail probe was already sent.
    tail_probed: bool,
}

/// A sending MPTCP connection (single-path TCP is the 1-subflow case).
///
/// Generic over the congestion controller `C` so a closed enum of in-tree
/// algorithms (`xmp-core`'s `CcKind`) dispatches statically on the per-ACK
/// hot path; the default, `Box<dyn CongestionControl>`, keeps external
/// controllers and existing call sites working through one virtual call.
pub struct MpSender<C: CongestionControl = Box<dyn CongestionControl>> {
    conn: ConnKey,
    total: u64,
    allocated: u64,
    acked_total: u64,
    mss: u32,
    initial_cwnd: f64,
    cc: C,
    view: Vec<SubflowCc>,
    subs: Vec<SubflowTx>,
    completed: bool,
    stats: ConnStats,
}

impl<C: CongestionControl> MpSender<C> {
    /// Create a sender for `total` bytes (`u64::MAX` = run forever) over
    /// the given subflows.
    pub fn new(
        conn: ConnKey,
        subflows: Vec<SubflowSpec>,
        total: u64,
        mut cc: C,
        cfg: &StackConfig,
        now: SimTime,
    ) -> Self {
        assert!(!subflows.is_empty(), "connection needs at least one subflow");
        assert!(subflows.len() <= 8, "at most 8 subflows supported");
        assert!(total > 0, "empty transfer");
        cc.init(subflows.len());
        let n = subflows.len();
        MpSender {
            conn,
            total,
            allocated: 0,
            acked_total: 0,
            mss: cfg.mss,
            initial_cwnd: cfg.initial_cwnd,
            cc,
            view: (0..n).map(|_| SubflowCc::new(cfg.initial_cwnd)).collect(),
            subs: subflows
                .into_iter()
                .map(|spec| SubflowTx {
                    spec,
                    phase: TxPhase::SynSent,
                    rtt: RttEstimator::new(cfg.rto_min, cfg.rto_max, cfg.rto_initial),
                    dup_acks: 0,
                    recover: 0,
                    sub_allocated: 0,
                    tail_pushed: false,
                    tail_probed: false,
                })
                .collect(),
            completed: false,
            stats: ConnStats::new(now),
        }
    }

    /// Connection key.
    pub fn conn(&self) -> ConnKey {
        self.conn
    }

    /// Whether all bytes are acknowledged.
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// Statistics.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    /// Congestion-control view (cwnd/srtt per subflow) — read-only.
    pub fn view(&self) -> &[SubflowCc] {
        &self.view
    }

    /// Number of subflows.
    pub fn subflow_count(&self) -> usize {
        self.subs.len()
    }

    /// Subflow spec (for the stack's packet addressing).
    pub fn spec(&self, r: usize) -> &SubflowSpec {
        &self.subs[r].spec
    }

    /// The congestion controller (e.g. to query its name).
    pub fn cc(&self) -> &C {
        &self.cc
    }

    /// Cumulative acknowledged bytes on subflow `r` (drives the paper's
    /// per-subflow rate plots, Figs. 4 and 7).
    pub fn subflow_acked(&self, r: usize) -> u64 {
        self.view[r].snd_una
    }

    /// Join a new subflow at runtime (MPTCP's ADD_ADDR/JOIN): sends its
    /// SYN immediately. Returns the new subflow index.
    pub fn add_subflow(
        &mut self,
        spec: SubflowSpec,
        cfg: &StackConfig,
        now: SimTime,
        out: &mut Vec<TxAction>,
    ) -> usize {
        assert!(self.subs.len() < 8, "at most 8 subflows supported");
        assert!(!self.completed, "cannot join a completed connection");
        let r = self.subs.len();
        self.view.push(SubflowCc::new(cfg.initial_cwnd));
        self.subs.push(SubflowTx {
            spec,
            phase: TxPhase::SynSent,
            rtt: RttEstimator::new(cfg.rto_min, cfg.rto_max, cfg.rto_initial),
            dup_acks: 0,
            recover: 0,
            sub_allocated: 0,
            tail_pushed: false,
            tail_probed: false,
        });
        self.cc.on_subflow_added();
        out.push(TxAction::Emit(
            r as u8,
            Segment::syn(self.conn, r as u8, tsnow(now), self.cc.echo_mode()),
        ));
        out.push(TxAction::ArmRto(r as u8, now + self.subs[r].rtt.rto()));
        r
    }

    /// Start the connection: send SYNs, arm timers.
    pub fn open(&mut self, now: SimTime, out: &mut Vec<TxAction>) {
        for r in 0..self.subs.len() {
            out.push(TxAction::Emit(
                r as u8,
                Segment::syn(self.conn, r as u8, tsnow(now), self.cc.echo_mode()),
            ));
            out.push(TxAction::ArmRto(r as u8, now + self.subs[r].rtt.rto()));
        }
    }

    /// Process an incoming segment addressed to this sender.
    pub fn on_segment(&mut self, seg: &Segment, now: SimTime, out: &mut Vec<TxAction>) {
        if self.completed {
            return;
        }
        let r = seg.subflow as usize;
        if r >= self.subs.len() {
            return;
        }
        match seg.kind {
            SegKind::SynAck => self.on_syn_ack(r, seg, now, out),
            SegKind::Ack => self.on_ack(r, seg, now, out),
            SegKind::Syn | SegKind::Data => {} // not for a sender
        }
    }

    fn sample_rtt(&mut self, r: usize, tsecr: u64, now: SimTime) -> Option<SimDuration> {
        // TSvals are encoded as `nanos + 1` (see `tsnow`) so 0 means absent.
        if tsecr == 0 {
            return None;
        }
        let sent_ns = tsecr - 1;
        if now.as_nanos() < sent_ns {
            return None;
        }
        let sample = SimDuration::from_nanos(now.as_nanos() - sent_ns);
        self.subs[r].rtt.sample(sample);
        self.view[r].srtt = self.subs[r].rtt.srtt();
        self.stats.rtt_sum_ns += sample.as_nanos();
        self.stats.rtt_count += 1;
        self.stats.rtt_max = self.stats.rtt_max.max(sample);
        Some(sample)
    }

    fn on_syn_ack(&mut self, r: usize, seg: &Segment, now: SimTime, out: &mut Vec<TxAction>) {
        if self.subs[r].phase != TxPhase::SynSent {
            return; // duplicate SYN-ACK
        }
        self.subs[r].phase = TxPhase::Established;
        self.sample_rtt(r, seg.tsecr, now);
        self.pump(r, now, out);
        self.fix_rto(r, now, out);
    }

    fn on_ack(&mut self, r: usize, seg: &Segment, now: SimTime, out: &mut Vec<TxAction>) {
        if self.subs[r].phase != TxPhase::Established {
            return;
        }
        let rtt_sample = self.sample_rtt(r, seg.tsecr, now);
        let prev_una = self.view[r].snd_una;
        let newly = seg.ack.saturating_sub(prev_una);
        let info = AckInfo {
            ack_seq: seg.ack,
            newly_acked: newly,
            ce_count: seg.ce_echo,
            covered: seg.covered,
            rtt_sample,
            now,
            mss: self.mss,
        };

        if newly > 0 {
            self.view[r].snd_una = seg.ack;
            // A late ACK for data sent before an RTO rollback can exceed
            // the rolled-back snd_nxt; fast-forward past the acked bytes.
            if self.view[r].snd_nxt < seg.ack {
                debug_assert!(seg.ack <= self.subs[r].sub_allocated);
                self.view[r].snd_nxt = seg.ack;
            }
            self.acked_total += newly;
            self.stats.bytes_acked = self.acked_total;
            if self.view[r].in_recovery {
                if seg.ack >= self.subs[r].recover {
                    // Full acknowledgement: leave recovery.
                    self.view[r].in_recovery = false;
                    self.view[r].cwnd = self.view[r].ssthresh.max(1.0);
                    self.subs[r].dup_acks = 0;
                } else {
                    // Partial ack: the next hole is lost too (NewReno).
                    // The dupack pipe discount restarts from this hole.
                    self.subs[r].dup_acks = 0;
                    self.retransmit_head(r, now, out);
                }
            } else {
                self.subs[r].dup_acks = 0;
                self.cc.on_ack(r, &info, &mut self.view);
            }
            if self.acked_total >= self.total {
                self.complete(now, out);
                return;
            }
        } else {
            let outstanding = self.view[r].snd_nxt > self.view[r].snd_una;
            if self.view[r].in_recovery {
                // Each further duplicate means one more packet left the
                // network; the pipe discount in `pump` lets one out.
                // (Conservative replacement for NewReno window inflation —
                // the counter stays meaningful through long recoveries.)
                self.subs[r].dup_acks += 1;
            } else if outstanding && seg.ack == self.view[r].snd_una {
                self.subs[r].dup_acks += 1;
                // CE echoes ride duplicate ACKs too; the controller sees them.
                self.cc.on_ack(r, &info, &mut self.view);
                if self.subs[r].dup_acks == 3 {
                    let ss = self.cc.ssthresh_on_loss(r, &self.view);
                    self.view[r].ssthresh = ss;
                    self.view[r].cwnd = ss;
                    self.view[r].in_recovery = true;
                    self.subs[r].recover = self.view[r].snd_nxt;
                    self.stats.fast_retransmits += 1;
                    self.retransmit_head(r, now, out);
                }
            }
        }

        self.pump(r, now, out);
        self.fix_rto(r, now, out);
    }

    /// Retransmission timeout on subflow `r`.
    pub fn on_rto(&mut self, r: usize, now: SimTime, out: &mut Vec<TxAction>) {
        if self.completed || r >= self.subs.len() {
            return;
        }
        match self.subs[r].phase {
            TxPhase::SynSent => {
                self.subs[r].rtt.backoff();
                self.stats.rtos += 1;
                out.push(TxAction::Emit(
                    r as u8,
                    Segment::syn(self.conn, r as u8, tsnow(now), self.cc.echo_mode()),
                ));
                out.push(TxAction::ArmRto(r as u8, now + self.subs[r].rtt.rto()));
            }
            TxPhase::Established => {
                let v = &mut self.view[r];
                if v.snd_nxt <= v.snd_una {
                    return; // nothing outstanding; stale timer
                }
                let pipe = (v.snd_nxt - v.snd_una) as f64 / self.mss as f64;
                v.ssthresh = (pipe / 2.0).max(2.0);
                v.cwnd = 1.0;
                v.in_recovery = false;
                // Go back N: resend everything outstanding as the window
                // reopens (receiver-side duplicates are acked immediately).
                v.snd_nxt = v.snd_una;
                self.subs[r].dup_acks = 0;
                self.subs[r].rtt.backoff();
                self.stats.rtos += 1;
                self.cc.on_rto(r, &mut self.view);
                self.pump(r, now, out);
                self.fix_rto(r, now, out);
            }
        }
    }

    /// Send as much as the window allows on subflow `r`.
    fn pump(&mut self, r: usize, now: SimTime, out: &mut Vec<TxAction>) {
        if self.subs[r].phase != TxPhase::Established || self.completed {
            return;
        }
        loop {
            let v = &self.view[r];
            // Outstanding bytes, discounted by one packet per duplicate
            // ACK (each signals a segment that left the network).
            let pipe = ((v.snd_nxt - v.snd_una) as f64 / self.mss as f64
                - f64::from(self.subs[r].dup_acks))
            .max(0.0);
            if pipe + 1.0 > v.cwnd + 1e-9 {
                break;
            }
            let snd_nxt = v.snd_nxt;
            let len = if snd_nxt < self.subs[r].sub_allocated {
                // Resending previously allocated bytes (post-RTO).
                (self.subs[r].sub_allocated - snd_nxt).min(u64::from(self.mss))
            } else if self.allocated < self.total {
                // Allocate fresh connection bytes to this subflow.
                let chunk = (self.total - self.allocated).min(u64::from(self.mss));
                self.allocated += chunk;
                self.subs[r].sub_allocated += chunk;
                chunk
            } else {
                break; // nothing left for this subflow
            };
            // PSH when this is the subflow's last pending byte and the
            // connection has nothing further to hand it: the receiver must
            // ACK immediately or the subflow idles a full delayed-ACK
            // timeout on every odd-length tail.
            let push = self.total != u64::MAX
                && self.allocated == self.total
                && snd_nxt + len == self.subs[r].sub_allocated;
            out.push(TxAction::Emit(
                r as u8,
                Segment::data(self.conn, r as u8, snd_nxt, len as u32, tsnow(now), push),
            ));
            self.subs[r].tail_pushed = push;
            self.view[r].snd_nxt += len;
        }
        // End-of-data tail probe: a slow subflow whose last segment was
        // emitted while the connection still had data (so without PSH) can
        // otherwise strand that segment behind the receiver's delayed-ACK
        // timer — real stacks resolve this with the FIN. Retransmit the
        // tail once with PSH; duplicates are acknowledged immediately.
        let v = &self.view[r];
        if self.total != u64::MAX
            && self.allocated == self.total
            && v.snd_nxt == self.subs[r].sub_allocated
            && v.snd_nxt > v.snd_una
            && !self.subs[r].tail_pushed
            && !self.subs[r].tail_probed
        {
            self.subs[r].tail_probed = true;
            let seq = v.snd_nxt - u64::from(self.mss).min(v.snd_nxt - v.snd_una);
            let len = (v.snd_nxt - seq) as u32;
            out.push(TxAction::Emit(
                r as u8,
                Segment::data(self.conn, r as u8, seq, len, tsnow(now), true),
            ));
        }
    }

    /// Retransmit the first unacknowledged segment on `r`.
    fn retransmit_head(&mut self, r: usize, now: SimTime, out: &mut Vec<TxAction>) {
        let v = &self.view[r];
        let len = (self.subs[r].sub_allocated - v.snd_una).min(u64::from(self.mss));
        if len == 0 {
            return;
        }
        let push = self.total != u64::MAX
            && self.allocated == self.total
            && v.snd_una + len == self.subs[r].sub_allocated;
        out.push(TxAction::Emit(
            r as u8,
            Segment::data(self.conn, r as u8, v.snd_una, len as u32, tsnow(now), push),
        ));
    }

    fn fix_rto(&mut self, r: usize, now: SimTime, out: &mut Vec<TxAction>) {
        let v = &self.view[r];
        let outstanding = v.snd_nxt > v.snd_una || self.subs[r].phase == TxPhase::SynSent;
        if outstanding {
            out.push(TxAction::ArmRto(r as u8, now + self.subs[r].rtt.rto()));
        } else {
            out.push(TxAction::CancelRto(r as u8));
        }
    }

    fn complete(&mut self, now: SimTime, out: &mut Vec<TxAction>) {
        self.completed = true;
        self.stats.completed = Some(now);
        for r in 0..self.subs.len() {
            out.push(TxAction::CancelRto(r as u8));
        }
        out.push(TxAction::Completed);
    }

    /// Expose the controller mutably (the driver uses this for scheme-
    /// specific inspection in tests).
    pub fn cc_mut(&mut self) -> &mut C {
        &mut self.cc
    }

    /// The initial congestion window this sender was configured with.
    pub fn initial_cwnd(&self) -> f64 {
        self.initial_cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::Reno;
    use crate::segment::EchoMode;

    fn spec() -> SubflowSpec {
        SubflowSpec {
            local_port: PortId(0),
            src: Addr::new(10, 0, 0, 1),
            dst: Addr::new(10, 0, 0, 2),
        }
    }

    fn sender(total: u64) -> MpSender {
        MpSender::new(
            1,
            vec![spec()],
            total,
            Box::new(Reno::new()),
            &StackConfig::default(),
            SimTime::ZERO,
        )
    }

    fn emitted(out: &[TxAction]) -> Vec<&Segment> {
        out.iter()
            .filter_map(|a| match a {
                TxAction::Emit(_, s) => Some(s),
                _ => None,
            })
            .collect()
    }

    fn ack(ackno: u64, tsecr: u64) -> Segment {
        Segment::ack(1, 0, ackno, 0, 1, tsecr)
    }

    #[test]
    fn handshake_then_initial_window_burst() {
        let mut s = sender(1_000_000);
        let mut out = Vec::new();
        s.open(SimTime::ZERO, &mut out);
        let syns = emitted(&out);
        assert_eq!(syns.len(), 1);
        assert_eq!(syns[0].kind, SegKind::Syn);
        assert_eq!(syns[0].echo_mode, EchoMode::None);

        let mut out = Vec::new();
        let sa = Segment::syn_ack(syns[0], 5);
        s.on_segment(&sa, SimTime::from_micros(100), &mut out);
        let data = emitted(&out);
        // IW = 10 full segments.
        assert_eq!(data.len(), 10);
        assert!(data.iter().all(|d| d.kind == SegKind::Data && d.len == 1460));
        assert_eq!(data[0].seq, 0);
        assert_eq!(data[9].seq, 9 * 1460);
        // SYN RTT got sampled.
        assert_eq!(s.stats().rtt_count, 1);
    }

    #[test]
    fn acks_advance_and_slow_start_doubles() {
        let mut s = sender(10_000_000);
        let mut out = Vec::new();
        s.open(SimTime::ZERO, &mut out);
        let syn_ts = emitted(&out)[0].tsval;
        let mut out = Vec::new();
        s.on_segment(
            &Segment::syn_ack(&Segment::syn(1, 0, syn_ts, EchoMode::None), 0),
            SimTime::from_micros(100),
            &mut out,
        );
        // Ack 2 segments: cwnd 10 -> 12, window slides by 2.
        let mut out = Vec::new();
        s.on_segment(&ack(2 * 1460, 0), SimTime::from_micros(200), &mut out);
        let data = emitted(&out);
        assert_eq!(data.len(), 4, "2 slid + 2 grown");
        assert!((s.view()[0].cwnd - 12.0).abs() < 1e-9);
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut s = sender(10_000_000);
        let mut out = Vec::new();
        s.open(SimTime::ZERO, &mut out);
        let mut out = Vec::new();
        s.on_segment(
            &Segment::syn_ack(&Segment::syn(1, 0, 0, EchoMode::None), 0),
            SimTime::from_micros(100),
            &mut out,
        );
        // Move out of slow start for a clean check.
        s.view[0].ssthresh = 8.0;
        let mut out = Vec::new();
        for _ in 0..3 {
            s.on_segment(&ack(0, 0), SimTime::from_micros(300), &mut out);
        }
        let segs = emitted(&out);
        // The dupack pipe discount yields RFC 3042 limited transmit: the
        // first two dupacks each release one *new* segment, the third
        // triggers the fast retransmit of the hole.
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].seq, 10 * 1460);
        assert_eq!(segs[1].seq, 11 * 1460);
        assert_eq!(segs[2].seq, 0, "fast retransmit of the hole");
        assert!(s.view()[0].in_recovery);
        assert_eq!(s.stats().fast_retransmits, 1);
        // cwnd collapses to ssthresh = cwnd/2 = 5; the dupack pipe
        // discount (not window inflation) governs what may still be sent.
        assert!((s.view()[0].cwnd - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rto_collapses_window_and_goes_back_n() {
        let mut s = sender(10_000_000);
        let mut out = Vec::new();
        s.open(SimTime::ZERO, &mut out);
        let mut out = Vec::new();
        s.on_segment(
            &Segment::syn_ack(&Segment::syn(1, 0, 0, EchoMode::None), 0),
            SimTime::from_micros(100),
            &mut out,
        );
        assert_eq!(s.view()[0].snd_nxt, 10 * 1460);
        let mut out = Vec::new();
        s.on_rto(0, SimTime::from_millis(300), &mut out);
        assert!((s.view()[0].cwnd - 1.0).abs() < 1e-9);
        assert!((s.view()[0].ssthresh - 5.0).abs() < 1e-9);
        let rtx = emitted(&out);
        assert_eq!(rtx.len(), 1);
        assert_eq!(rtx[0].seq, 0);
        assert_eq!(s.stats().rtos, 1);
        // Further acks re-grow and resend the already-allocated bytes before
        // touching fresh data.
        let mut out = Vec::new();
        s.on_segment(&ack(1460, 0), SimTime::from_millis(301), &mut out);
        let segs = emitted(&out);
        assert_eq!(segs[0].seq, 1460, "resend continues where ack left off");
    }

    /// A late ACK for data sent *before* an RTO rollback acknowledges bytes
    /// beyond the rolled-back `snd_nxt` (`snd_nxt < ack <= sub_allocated`).
    /// The sender must fast-forward `snd_nxt` past the acked bytes instead
    /// of resending them — the go-back-N resend resumes at the hole.
    #[test]
    fn late_ack_after_rto_rollback_fast_forwards_snd_nxt() {
        let mut s = sender(10_000_000);
        let mut out = Vec::new();
        s.open(SimTime::ZERO, &mut out);
        let mut out = Vec::new();
        s.on_segment(
            &Segment::syn_ack(&Segment::syn(1, 0, 0, EchoMode::None), 0),
            SimTime::from_micros(100),
            &mut out,
        );
        // IW burst: 10 segments allocated to the subflow.
        assert_eq!(s.view()[0].snd_nxt, 10 * 1460);
        // RTO: go-back-N rolls snd_nxt back to snd_una and resends the head
        // at cwnd = 1.
        let mut out = Vec::new();
        s.on_rto(0, SimTime::from_millis(300), &mut out);
        assert_eq!(s.view()[0].snd_nxt, 1460, "head resent at cwnd = 1");
        // The late ACK covers 5 pre-rollback segments.
        let mut out = Vec::new();
        s.on_segment(&ack(5 * 1460, 0), SimTime::from_millis(301), &mut out);
        assert_eq!(s.view()[0].snd_una, 5 * 1460);
        assert!(
            s.view()[0].snd_nxt >= 5 * 1460,
            "snd_nxt fast-forwarded past the acked bytes"
        );
        let segs = emitted(&out);
        assert!(!segs.is_empty());
        assert_eq!(
            segs[0].seq,
            5 * 1460,
            "resend resumes at the first unacked byte, not at the rollback"
        );
        assert_eq!(s.stats().bytes_acked, 5 * 1460);
    }

    #[test]
    fn completes_and_signals_exactly_once() {
        let total = 3000u64; // 2 full segments + 80 bytes
        let mut s = sender(total);
        let mut out = Vec::new();
        s.open(SimTime::ZERO, &mut out);
        let mut out = Vec::new();
        s.on_segment(
            &Segment::syn_ack(&Segment::syn(1, 0, 0, EchoMode::None), 0),
            SimTime::from_micros(100),
            &mut out,
        );
        let data = emitted(&out);
        assert_eq!(data.len(), 3);
        assert_eq!(data[2].len, 3000 - 2 * 1460);
        assert!(data[2].push, "final segment carries PSH");
        assert!(!data[0].push);
        let mut out = Vec::new();
        s.on_segment(&ack(total, 0), SimTime::from_micros(400), &mut out);
        assert!(s.is_completed());
        assert!(matches!(out.last(), Some(TxAction::Completed)));
        assert_eq!(s.stats().completed, Some(SimTime::from_micros(400)));
        assert_eq!(s.stats().bytes_acked, total);
        // Goodput: 3000 B in 400 us.
        let g = s.stats().goodput_bps(SimTime::from_micros(400));
        assert!((g - 3000.0 * 8.0 / 400e-6).abs() / g < 1e-9);
    }

    #[test]
    fn multipath_allocation_splits_across_subflows() {
        let mut s = MpSender::new(
            1,
            vec![spec(), spec()],
            1_000_000,
            Box::new(Reno::new()),
            &StackConfig::default(),
            SimTime::ZERO,
        );
        let mut out = Vec::new();
        s.open(SimTime::ZERO, &mut out);
        assert_eq!(emitted(&out).len(), 2, "one SYN per subflow");
        let mut out = Vec::new();
        s.on_segment(
            &Segment::syn_ack(&Segment::syn(1, 0, 0, EchoMode::None), 0),
            SimTime::from_micros(100),
            &mut out,
        );
        s.on_segment(
            &Segment::syn_ack(&Segment::syn(1, 1, 0, EchoMode::None), 0),
            SimTime::from_micros(120),
            &mut out,
        );
        let data = emitted(&out);
        assert_eq!(data.len(), 20, "IW on each subflow");
        // Each subflow starts its own sequence space at 0.
        assert_eq!(data.iter().filter(|d| d.subflow == 0).count(), 10);
        assert_eq!(data.iter().filter(|d| d.seq == 0).count(), 2);
    }

    #[test]
    fn syn_timeout_retries_with_backoff() {
        let mut s = sender(1000);
        let mut out = Vec::new();
        s.open(SimTime::ZERO, &mut out);
        let mut out = Vec::new();
        s.on_rto(0, SimTime::from_millis(200), &mut out);
        let seg = emitted(&out);
        assert_eq!(seg[0].kind, SegKind::Syn);
        // Backoff doubled the next RTO.
        match out.last().unwrap() {
            TxAction::ArmRto(_, at) => {
                assert_eq!(*at, SimTime::from_millis(200 + 400));
            }
            other => panic!("expected ArmRto, got {other:?}"),
        }
    }

    #[test]
    fn dupacks_without_outstanding_data_ignored() {
        let mut s = sender(1460);
        let mut out = Vec::new();
        s.open(SimTime::ZERO, &mut out);
        let mut out = Vec::new();
        s.on_segment(
            &Segment::syn_ack(&Segment::syn(1, 0, 0, EchoMode::None), 0),
            SimTime::from_micros(100),
            &mut out,
        );
        let mut out = Vec::new();
        s.on_segment(&ack(1460, 0), SimTime::from_micros(200), &mut out);
        assert!(s.is_completed());
        // Late duplicate does nothing.
        let mut out = Vec::new();
        s.on_segment(&ack(1460, 0), SimTime::from_micros(300), &mut out);
        assert!(out.is_empty());
    }
}
