//! TCP NewReno congestion control (the paper's "TCP" baseline, and the base
//! behaviour LIA builds on). Not ECN-capable: queues drop its packets.

use super::{reno_growth, AckInfo, CongestionControl, SubflowCc, MIN_CWND};
use crate::segment::EchoMode;

/// Classic NewReno: slow start, AIMD, half-window loss response.
#[derive(Debug, Default)]
pub struct Reno;

impl Reno {
    /// A NewReno controller.
    pub fn new() -> Self {
        Reno
    }
}

impl CongestionControl for Reno {
    fn echo_mode(&self) -> EchoMode {
        EchoMode::None
    }

    fn on_ack(&mut self, r: usize, info: &AckInfo, view: &mut [SubflowCc]) {
        reno_growth(&mut view[r], info);
    }

    fn ssthresh_on_loss(&mut self, r: usize, view: &[SubflowCc]) -> f64 {
        (view[r].cwnd / 2.0).max(MIN_CWND)
    }

    fn name(&self) -> &'static str {
        "TCP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::test_ack;

    #[test]
    fn loss_halves() {
        let mut cc = Reno::new();
        let view = vec![SubflowCc {
            cwnd: 20.0,
            ..SubflowCc::new(20.0)
        }];
        assert!((cc.ssthresh_on_loss(0, &view) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn loss_floor_is_two() {
        let mut cc = Reno::new();
        let view = vec![SubflowCc::new(2.0)];
        assert!((cc.ssthresh_on_loss(0, &view) - MIN_CWND).abs() < 1e-9);
    }

    #[test]
    fn not_ecn_capable() {
        assert_eq!(Reno::new().echo_mode(), EchoMode::None);
    }

    #[test]
    fn growth_ignores_pure_dupacks() {
        let mut cc = Reno::new();
        let mut view = vec![SubflowCc::new(10.0)];
        cc.on_ack(0, &test_ack(0, 0, 0), &mut view);
        assert!((view[0].cwnd - 10.0).abs() < 1e-12);
    }
}
