//! OLIA — the Opportunistic Linked Increases Algorithm (Khalili et al.,
//! CoNEXT 2012, "MPTCP is not Pareto-Optimal").
//!
//! The XMP paper's Section 7 notes that TraSh, like LIA, may inherit LIA's
//! non-Pareto-optimality and points to Khalili et al.'s fix as future
//! work; OLIA is included here as that extension baseline.
//!
//! Congestion-avoidance increase on subflow r per acked MSS:
//!
//! ```text
//!          w_r / rtt_r²            α_r
//!   ───────────────────────── + ───────
//!    ( Σ_p w_p / rtt_p )²         w_r
//! ```
//!
//! where the α adjustment moves window from the paths with the largest
//! windows (`M`) to the currently best paths (`B`, by the
//! `l_r²/rtt_r` criterion with `l_r` = bytes acked since the last loss):
//! `α_r = 1/(n·|B∖M|)` for r ∈ B∖M, `−1/(n·|M|)` for r ∈ M when B∖M is
//! non-empty, and 0 otherwise. Loss response is TCP halving.

use super::{AckInfo, CongestionControl, SubflowCc, MIN_CWND};
use crate::segment::EchoMode;

/// Per-subflow OLIA bookkeeping.
#[derive(Debug, Clone, Default)]
struct PerSubflow {
    /// Bytes acknowledged since the last loss on this subflow (`l_r`).
    since_loss: u64,
}

/// The OLIA coupled controller.
#[derive(Debug, Default)]
pub struct Olia {
    subs: Vec<PerSubflow>,
}

impl Olia {
    /// An OLIA controller.
    pub fn new() -> Self {
        Olia { subs: Vec::new() }
    }

    /// Bytes acked since the last loss on subflow `r` (test hook).
    pub fn since_loss(&self, r: usize) -> u64 {
        self.subs.get(r).map_or(0, |s| s.since_loss)
    }

    /// The α adjustment vector for the current state.
    fn alphas(&self, view: &[SubflowCc]) -> Vec<f64> {
        let n = view.len();
        let mut alphas = vec![0.0; n];
        if n < 2 {
            return alphas;
        }
        // M: paths with the (approximately) largest window.
        let wmax = view.iter().map(|s| s.cwnd).fold(f64::MIN, f64::max);
        let in_m: Vec<bool> = view.iter().map(|s| s.cwnd >= wmax - 1e-9).collect();
        // B: best paths by l² / rtt.
        let quality = |r: usize| {
            let l = self.subs[r].since_loss as f64;
            let rtt = view[r].srtt.map_or(1.0, |d| d.as_secs_f64().max(1e-9));
            l * l / rtt
        };
        let qbest = (0..n).map(quality).fold(f64::MIN, f64::max);
        let in_b: Vec<bool> = (0..n).map(|r| quality(r) >= qbest * (1.0 - 1e-9)).collect();
        // B \ M.
        let bm: Vec<usize> = (0..n).filter(|&r| in_b[r] && !in_m[r]).collect();
        if bm.is_empty() {
            return alphas; // collected best paths already have max windows
        }
        let m_count = in_m.iter().filter(|&&x| x).count();
        for r in 0..n {
            if bm.contains(&r) {
                alphas[r] = 1.0 / (n as f64 * bm.len() as f64);
            } else if in_m[r] {
                alphas[r] = -1.0 / (n as f64 * m_count as f64);
            }
        }
        alphas
    }
}

impl CongestionControl for Olia {
    fn init(&mut self, n: usize) {
        self.subs = vec![PerSubflow::default(); n];
    }

    fn on_subflow_added(&mut self) {
        self.subs.push(PerSubflow::default());
    }

    fn echo_mode(&self) -> EchoMode {
        EchoMode::None
    }

    fn on_ack(&mut self, r: usize, info: &AckInfo, view: &mut [SubflowCc]) {
        if info.newly_acked == 0 {
            return;
        }
        self.subs[r].since_loss += info.newly_acked;
        let acked_pkts = info.newly_acked as f64 / info.mss as f64;
        if view[r].in_slow_start() {
            view[r].cwnd += acked_pkts;
            return;
        }
        let denom: f64 = view
            .iter()
            .filter_map(|s| {
                s.srtt
                    .map(|rtt| s.cwnd / rtt.as_secs_f64().max(1e-9))
            })
            .sum();
        if denom <= 0.0 {
            view[r].cwnd += acked_pkts / view[r].cwnd;
            return;
        }
        let rtt_r = view[r].srtt.map_or(1.0, |d| d.as_secs_f64().max(1e-9));
        let coupled = (view[r].cwnd / (rtt_r * rtt_r)) / (denom * denom);
        let alpha = self.alphas(view)[r];
        let inc = (coupled + alpha / view[r].cwnd).max(0.0);
        // Cap at the standalone-TCP rate, like LIA.
        view[r].cwnd += acked_pkts * inc.min(1.0 / view[r].cwnd);
    }

    fn ssthresh_on_loss(&mut self, r: usize, view: &[SubflowCc]) -> f64 {
        self.subs[r].since_loss = 0;
        (view[r].cwnd / 2.0).max(MIN_CWND)
    }

    fn on_rto(&mut self, r: usize, _view: &mut [SubflowCc]) {
        self.subs[r].since_loss = 0;
    }

    fn name(&self) -> &'static str {
        "OLIA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::test_ack;
    use xmp_des::SimDuration;

    fn sub(cwnd: f64, rtt_us: u64) -> SubflowCc {
        let mut s = SubflowCc::new(cwnd);
        s.ssthresh = 1.0;
        s.srtt = Some(SimDuration::from_micros(rtt_us));
        s
    }

    #[test]
    fn single_path_degenerates_to_reno_rate() {
        let mut cc = Olia::new();
        cc.init(1);
        let mut v = vec![sub(10.0, 200)];
        let before = v[0].cwnd;
        cc.on_ack(0, &test_ack(1460, 0, 1), &mut v);
        // coupled = (w/rtt^2)/(w/rtt)^2 = 1/w; alpha = 0.
        assert!((v[0].cwnd - before - 0.1).abs() < 1e-9);
    }

    #[test]
    fn loss_resets_quality_and_halves() {
        let mut cc = Olia::new();
        cc.init(2);
        let mut v = vec![sub(10.0, 200), sub(10.0, 200)];
        cc.on_ack(0, &test_ack(14_600, 0, 1), &mut v);
        assert_eq!(cc.since_loss(0), 14_600);
        let ss = cc.ssthresh_on_loss(0, &v);
        assert!((ss - v[0].cwnd / 2.0).abs() < 1e-9);
        assert_eq!(cc.since_loss(0), 0);
    }

    #[test]
    fn alpha_moves_window_towards_best_underused_path() {
        let mut cc = Olia::new();
        cc.init(2);
        // Path 1 has the big window (M = {1}); path 0 is loss-free and
        // best (B = {0}) — alpha must favour 0 and penalize 1.
        cc.subs[0].since_loss = 1_000_000;
        cc.subs[1].since_loss = 10_000;
        let v = vec![sub(4.0, 200), sub(30.0, 200)];
        let alphas = cc.alphas(&v);
        assert!(alphas[0] > 0.0, "{alphas:?}");
        assert!(alphas[1] < 0.0, "{alphas:?}");
        assert!((alphas[0] + alphas[1]).abs() < 1e-12, "alphas sum to 0");
    }

    #[test]
    fn alpha_zero_when_best_paths_have_max_windows() {
        let mut cc = Olia::new();
        cc.init(2);
        cc.subs[0].since_loss = 1_000_000;
        cc.subs[1].since_loss = 10;
        // Path 0 is best AND has the max window: no transfer needed.
        let v = vec![sub(30.0, 200), sub(4.0, 200)];
        assert_eq!(cc.alphas(&v), vec![0.0, 0.0]);
    }

    #[test]
    fn increase_never_exceeds_reno() {
        let mut cc = Olia::new();
        cc.init(2);
        cc.subs[0].since_loss = 1_000_000;
        let mut v = vec![sub(2.0, 100), sub(50.0, 5_000)];
        let before = v[0].cwnd;
        cc.on_ack(0, &test_ack(1460, 0, 1), &mut v);
        assert!(v[0].cwnd - before <= 1.0 / before + 1e-9);
    }

    #[test]
    fn not_ecn_capable() {
        assert_eq!(Olia::new().echo_mode(), EchoMode::None);
    }
}
