//! DCTCP (Alizadeh et al., SIGCOMM 2010) — the paper's strongest
//! single-path baseline.
//!
//! The sender keeps a per-window estimate α of the fraction of marked
//! packets (EWMA with gain `g`) and, once per window of data in which marks
//! were seen, cuts `cwnd ← cwnd·(1 − α/2)`. Growth outside marked windows is
//! standard slow start / congestion avoidance. Our receivers report the
//! exact marked/covered counts per ACK, the idealized form of DCTCP's
//! one-bit state machine (the paper notes DCTCP must *infer* these counts —
//! XMP's 2-bit encoding makes them exact; giving DCTCP exact counts is
//! strictly charitable to the baseline).

use super::{reno_growth, AckInfo, CongestionControl, SubflowCc, MIN_CWND};
use crate::segment::EchoMode;

/// Default EWMA gain `g = 1/16` from the DCTCP paper.
pub const DEFAULT_G: f64 = 1.0 / 16.0;

#[derive(Debug, Clone)]
struct PerSubflow {
    alpha: f64,
    /// Marked segments observed in the current window.
    marked: u64,
    /// Total segments covered in the current window.
    total: u64,
    /// Sequence number ending the current observation window.
    window_end: u64,
    /// Sequence number until which further cuts are suppressed (CWR window).
    cwr_end: u64,
    /// Whether a cut is pending for this window.
    saw_mark: bool,
}

impl PerSubflow {
    fn new() -> Self {
        PerSubflow {
            alpha: 1.0, // conservative initial estimate, as in Linux dctcp
            marked: 0,
            total: 0,
            window_end: 0,
            cwr_end: 0,
            saw_mark: false,
        }
    }
}

/// DCTCP congestion control.
#[derive(Debug)]
pub struct Dctcp {
    g: f64,
    subs: Vec<PerSubflow>,
}

impl Dctcp {
    /// DCTCP with the standard gain `g = 1/16`.
    pub fn new() -> Self {
        Self::with_gain(DEFAULT_G)
    }

    /// DCTCP with an explicit EWMA gain.
    pub fn with_gain(g: f64) -> Self {
        assert!((0.0..=1.0).contains(&g) && g > 0.0, "gain must be in (0,1]");
        Dctcp {
            g,
            subs: vec![PerSubflow::new()],
        }
    }

    /// Current α estimate for subflow `r` (test/analysis hook).
    pub fn alpha(&self, r: usize) -> f64 {
        self.subs[r].alpha
    }
}

impl Default for Dctcp {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Dctcp {
    fn init(&mut self, n: usize) {
        self.subs = (0..n).map(|_| PerSubflow::new()).collect();
    }

    fn on_subflow_added(&mut self) {
        self.subs.push(PerSubflow::new());
    }

    fn echo_mode(&self) -> EchoMode {
        EchoMode::Dctcp
    }

    fn on_ack(&mut self, r: usize, info: &AckInfo, view: &mut [SubflowCc]) {
        let s = &mut self.subs[r];
        let sub = &mut view[r];

        // Account the fraction estimate inputs.
        s.total += u64::from(info.covered.max(info.ce_count));
        s.marked += u64::from(info.ce_count);

        // Immediate reaction to marks: one cut per window (CWR suppression),
        // exactly like the reference implementation.
        if info.ce_count > 0 {
            s.saw_mark = true;
            if info.ack_seq >= s.cwr_end {
                if sub.in_slow_start() {
                    // First mark ends slow start.
                    sub.ssthresh = (sub.cwnd - 1.0).max(MIN_CWND);
                }
                sub.cwnd = (sub.cwnd * (1.0 - s.alpha / 2.0)).max(MIN_CWND);
                sub.ssthresh = sub.cwnd.max(MIN_CWND);
                s.cwr_end = sub.snd_nxt;
            }
        } else {
            reno_growth(sub, info);
        }

        // End of observation window: fold the fraction into alpha.
        if info.ack_seq >= s.window_end {
            let f = if s.total > 0 {
                (s.marked as f64 / s.total as f64).min(1.0)
            } else {
                0.0
            };
            s.alpha = (1.0 - self.g) * s.alpha + self.g * f;
            s.marked = 0;
            s.total = 0;
            s.window_end = sub.snd_nxt;
            s.saw_mark = false;
        }
    }

    fn ssthresh_on_loss(&mut self, r: usize, view: &[SubflowCc]) -> f64 {
        // Packet loss falls back to the TCP halving response.
        (view[r].cwnd / 2.0).max(MIN_CWND)
    }

    fn on_rto(&mut self, r: usize, _view: &mut [SubflowCc]) {
        let s = &mut self.subs[r];
        s.marked = 0;
        s.total = 0;
        s.saw_mark = false;
        s.cwr_end = 0;
    }

    fn name(&self) -> &'static str {
        "DCTCP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::test_ack;

    fn view(cwnd: f64, ssthresh: f64, snd_nxt: u64) -> Vec<SubflowCc> {
        let mut s = SubflowCc::new(cwnd);
        s.ssthresh = ssthresh;
        s.snd_nxt = snd_nxt;
        vec![s]
    }

    #[test]
    fn alpha_converges_to_mark_fraction() {
        let mut cc = Dctcp::new();
        cc.init(1);
        let mut v = view(10.0, 1.0, 0);
        // Repeated windows where half the packets are marked.
        for w in 0..400u64 {
            v[0].snd_nxt = (w + 1) * 14600;
            let mut info = test_ack(1460, if w % 2 == 0 { 1 } else { 0 }, 2);
            info.ack_seq = w * 14600 + 14600;
            cc.on_ack(0, &info, &mut v);
        }
        // One of every four covered packets is marked.
        let a = cc.alpha(0);
        assert!((0.15..0.35).contains(&a), "alpha={a}");
    }

    #[test]
    fn clean_windows_drive_alpha_to_zero() {
        let mut cc = Dctcp::new();
        cc.init(1);
        let mut v = view(10.0, 1.0, 0);
        for w in 0..200u64 {
            v[0].snd_nxt = (w + 1) * 14600;
            let mut info = test_ack(1460, 0, 2);
            info.ack_seq = w * 14600 + 14600;
            cc.on_ack(0, &info, &mut v);
        }
        assert!(cc.alpha(0) < 0.01);
    }

    #[test]
    fn cut_is_proportional_to_alpha_and_once_per_window() {
        let mut cc = Dctcp::new();
        cc.init(1);
        cc.subs[0].alpha = 0.5;
        cc.subs[0].window_end = u64::MAX; // freeze alpha for the test
        let mut v = view(20.0, 1.0, 29200);
        let mut info = test_ack(1460, 1, 1);
        info.ack_seq = 1460;
        cc.on_ack(0, &info, &mut v);
        // cwnd * (1 - 0.5/2) = 15
        assert!((v[0].cwnd - 15.0).abs() < 1e-9, "cwnd={}", v[0].cwnd);
        // A second marked ACK inside the CWR window must not cut again.
        let mut info2 = test_ack(1460, 1, 1);
        info2.ack_seq = 2920;
        cc.on_ack(0, &info2, &mut v);
        assert!((v[0].cwnd - 15.0).abs() < 1e-9);
        // …but one past it does.
        let mut info3 = test_ack(1460, 1, 1);
        info3.ack_seq = 29200;
        v[0].snd_nxt = 60000;
        cc.on_ack(0, &info3, &mut v);
        assert!(v[0].cwnd < 15.0);
    }

    #[test]
    fn first_mark_exits_slow_start() {
        let mut cc = Dctcp::new();
        cc.init(1);
        let mut v = view(30.0, f64::INFINITY, 43800);
        assert!(v[0].in_slow_start());
        let mut info = test_ack(1460, 1, 1);
        info.ack_seq = 1460;
        cc.on_ack(0, &info, &mut v);
        assert!(!v[0].in_slow_start());
    }

    #[test]
    fn cwnd_never_below_floor() {
        let mut cc = Dctcp::new();
        cc.init(1);
        cc.subs[0].alpha = 1.0;
        let mut v = view(2.0, 1.0, 2920);
        let mut info = test_ack(1460, 1, 1);
        info.ack_seq = 1460;
        cc.on_ack(0, &info, &mut v);
        assert!(v[0].cwnd >= MIN_CWND);
    }
}
