//! LIA — MPTCP's Linked Increases Algorithm (RFC 6356 / Wischik et al.,
//! NSDI 2011). The paper's multipath baseline.
//!
//! Congestion-avoidance increase on subflow r per acked MSS:
//! `min(α / cwnd_total, 1 / cwnd_r)` where
//!
//! ```text
//!        cwnd_total · max_r (cwnd_r / rtt_r²)
//! α  =  ──────────────────────────────────────
//!            ( Σ_r cwnd_r / rtt_r )²
//! ```
//!
//! Loss response is TCP's halving (per subflow). LIA is Reno-based and not
//! ECN-capable, so in an ECN-marking network its packets are only dropped
//! at queue overflow — exactly the paper's setup, which is why LIA fills
//! buffers and suffers 200 ms RTO stalls.

use super::{AckInfo, CongestionControl, SubflowCc, MIN_CWND};
use crate::segment::EchoMode;

/// The LIA coupled controller.
#[derive(Debug, Default)]
pub struct Lia;

impl Lia {
    /// A LIA controller.
    pub fn new() -> Self {
        Lia
    }

    /// Compute the α coupling factor for the current subflow states.
    /// Subflows without an RTT estimate yet are skipped; if none have one,
    /// α falls back to 1 (uncoupled).
    pub fn alpha(view: &[SubflowCc]) -> f64 {
        let mut cwnd_total = 0.0;
        let mut best = 0.0_f64;
        let mut denom = 0.0;
        for s in view {
            cwnd_total += s.cwnd;
            if let Some(rtt) = s.srtt {
                let rtt = rtt.as_secs_f64().max(1e-9);
                best = best.max(s.cwnd / (rtt * rtt));
                denom += s.cwnd / rtt;
            }
        }
        if denom <= 0.0 {
            return 1.0;
        }
        (cwnd_total * best / (denom * denom)).max(f64::MIN_POSITIVE)
    }
}

impl CongestionControl for Lia {
    fn echo_mode(&self) -> EchoMode {
        EchoMode::None
    }

    fn on_ack(&mut self, r: usize, info: &AckInfo, view: &mut [SubflowCc]) {
        if info.newly_acked == 0 {
            return;
        }
        let acked_pkts = info.newly_acked as f64 / info.mss as f64;
        if view[r].in_slow_start() {
            // Slow start is uncoupled (RFC 6356 §3).
            view[r].cwnd += acked_pkts;
            return;
        }
        let alpha = Self::alpha(view);
        let cwnd_total: f64 = view.iter().map(|s| s.cwnd).sum();
        let inc = (alpha / cwnd_total).min(1.0 / view[r].cwnd);
        view[r].cwnd += acked_pkts * inc;
    }

    fn ssthresh_on_loss(&mut self, r: usize, view: &[SubflowCc]) -> f64 {
        (view[r].cwnd / 2.0).max(MIN_CWND)
    }

    fn name(&self) -> &'static str {
        "LIA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::test_ack;
    use xmp_des::SimDuration;

    fn sub(cwnd: f64, rtt_us: u64) -> SubflowCc {
        let mut s = SubflowCc::new(cwnd);
        s.ssthresh = 1.0; // force congestion avoidance
        s.srtt = Some(SimDuration::from_micros(rtt_us));
        s
    }

    #[test]
    fn single_path_alpha_is_one() {
        // With one subflow LIA must degenerate to Reno: alpha == cwnd_total
        // * (w/rtt^2) / (w/rtt)^2 == 1, so increase == 1/cwnd.
        let v = vec![sub(10.0, 200)];
        assert!((Lia::alpha(&v) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equal_paths_split_the_reno_increase() {
        // Two identical subflows: alpha = 2w * (w/r^2) / (2w/r)^2 = 1/2.
        let v = vec![sub(10.0, 200), sub(10.0, 200)];
        assert!((Lia::alpha(&v) - 0.5).abs() < 1e-9);
        // Increase per acked pkt: min(alpha/total, 1/w) = 0.5/20 = 0.025 —
        // half the rate a lone Reno flow (1/10) would grow per subflow.
        let mut cc = Lia::new();
        let mut v = v;
        let before = v[0].cwnd;
        cc.on_ack(0, &test_ack(1460, 0, 1), &mut v);
        assert!((v[0].cwnd - before - 0.025).abs() < 1e-9);
    }

    #[test]
    fn increase_capped_by_reno() {
        // A tiny subflow next to a huge one must not outgrow standalone Reno.
        let v = vec![sub(2.0, 100), sub(100.0, 10_000)];
        let alpha = Lia::alpha(&v);
        let total = 102.0;
        let inc = (alpha / total).min(1.0 / 2.0);
        assert!(inc <= 0.5 + 1e-12);
    }

    #[test]
    fn alpha_without_rtt_falls_back() {
        let mut s = SubflowCc::new(10.0);
        s.ssthresh = 1.0;
        assert!((Lia::alpha(&[s]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slow_start_is_uncoupled() {
        let mut cc = Lia::new();
        let mut v = vec![SubflowCc::new(4.0), sub(10.0, 200)];
        cc.on_ack(0, &test_ack(1460, 0, 1), &mut v);
        assert!((v[0].cwnd - 5.0).abs() < 1e-9);
    }

    #[test]
    fn not_ecn_capable() {
        assert_eq!(Lia::new().echo_mode(), EchoMode::None);
    }
}
