//! Congestion control interface.
//!
//! The sender machinery (connection establishment, loss detection, fast
//! retransmit/recovery, RTO) is algorithm-independent; the algorithm plugs
//! in through [`CongestionControl`]. The trait is **multipath-aware**: every
//! callback names the subflow it concerns and receives a view of *all*
//! subflows, which is what lets coupled controllers (LIA here, XMP in
//! `xmp-core`) link their subflows' windows. Single-path algorithms simply
//! ignore the rest of the view.
//!
//! Window units are **packets** (MSS multiples), matching the paper.

mod dctcp;
mod lia;
mod olia;
mod reno;

pub use dctcp::Dctcp;
pub use lia::Lia;
pub use olia::Olia;
pub use reno::Reno;

use crate::segment::EchoMode;
use xmp_des::{SimDuration, SimTime};
/// Re-exported from `xmp-netsim` so controllers and the probe serializer
/// share one snapshot type (see [`CongestionControl::probe`]).
pub use xmp_netsim::CcSnapshot;

/// Minimum congestion window (packets) used by all algorithms after a cut.
pub const MIN_CWND: f64 = 2.0;

/// Per-subflow state shared between the sender machinery and the algorithm.
/// The algorithm owns `cwnd`/`ssthresh`; the machinery keeps the rest fresh.
#[derive(Debug, Clone)]
pub struct SubflowCc {
    /// Congestion window in packets. Owned by the CC algorithm.
    pub cwnd: f64,
    /// Slow-start threshold in packets. Owned by the CC algorithm.
    pub ssthresh: f64,
    /// Smoothed RTT of the subflow, if measured.
    pub srtt: Option<SimDuration>,
    /// Highest unacknowledged byte.
    pub snd_una: u64,
    /// Next byte to send.
    pub snd_nxt: u64,
    /// Whether the sender is in fast recovery on this subflow.
    pub in_recovery: bool,
}

impl SubflowCc {
    /// Fresh state with the given initial window.
    pub fn new(initial_cwnd: f64) -> Self {
        SubflowCc {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
            srtt: None,
            snd_una: 0,
            snd_nxt: 0,
            in_recovery: false,
        }
    }

    /// Whether the subflow is in slow start (`cwnd < ssthresh`, the Linux
    /// convention; algorithms that cut set `ssthresh <= cwnd` to land in
    /// congestion avoidance).
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Instantaneous rate estimate `cwnd/srtt` in packets per second.
    pub fn instant_rate(&self) -> Option<f64> {
        self.srtt.map(|s| self.cwnd / s.as_secs_f64())
    }
}

/// Everything an algorithm may want to know about one incoming ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckInfo {
    /// The cumulative acknowledgement number carried by the segment.
    pub ack_seq: u64,
    /// Bytes newly acknowledged by this segment (0 for duplicates).
    pub newly_acked: u64,
    /// CE marks echoed by the receiver in this segment (see
    /// [`EchoMode`]).
    pub ce_count: u8,
    /// Data segments covered by this ACK (DCTCP's α denominator).
    pub covered: u8,
    /// RTT sample taken from this ACK, if any.
    pub rtt_sample: Option<SimDuration>,
    /// Current simulated time.
    pub now: SimTime,
    /// MSS in bytes.
    pub mss: u32,
}

/// A pluggable congestion-control algorithm.
pub trait CongestionControl: Send {
    /// Called once when the connection opens with `n` subflows.
    fn init(&mut self, n: usize) {
        let _ = n;
    }

    /// A subflow was added at runtime (MPTCP join); controllers keeping
    /// per-subflow state must grow it.
    fn on_subflow_added(&mut self) {}

    /// ECN feedback style this algorithm needs from receivers. Also decides
    /// whether data packets are sent ECT.
    fn echo_mode(&self) -> EchoMode;

    /// A new (or duplicate) ACK arrived on subflow `r`, outside fast
    /// recovery. The algorithm applies its window growth — and, for
    /// ECN-driven algorithms, its reaction to `info.ce_count` — by mutating
    /// `view[r].cwnd` / `view[r].ssthresh`.
    fn on_ack(&mut self, r: usize, info: &AckInfo, view: &mut [SubflowCc]);

    /// Packet loss detected on subflow `r` (entering fast retransmit).
    /// Returns the new `ssthresh` (packets); the machinery handles the
    /// recovery bookkeeping.
    fn ssthresh_on_loss(&mut self, r: usize, view: &[SubflowCc]) -> f64;

    /// Retransmission timeout fired on subflow `r` (the machinery has
    /// already set `cwnd = 1`, `ssthresh = max(flight/2, 2)`); algorithms
    /// may reset internal per-round state here.
    fn on_rto(&mut self, r: usize, view: &mut [SubflowCc]) {
        let _ = (r, view);
    }

    /// Human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Diagnostic: the observed per-round congestion probability on
    /// subflow `r`, if the algorithm tracks rounds (XMP/BOS do — it is
    /// the empirical form of the paper's p(t)).
    fn observed_round_p(&self, r: usize) -> Option<f64> {
        let _ = r;
        None
    }

    /// Diagnostic: snapshot of subflow `r`'s round bookkeeping for
    /// time-series probes — the paper's Fig. 2 NORMAL/REDUCED state, the
    /// TraSh gain δ, and the round/reduction counters. `None` (the
    /// default) for algorithms without round state; XMP and BOS implement
    /// it. Pure observation: must not mutate or allocate per call.
    fn probe(&self, r: usize) -> Option<CcSnapshot> {
        let _ = r;
        None
    }
}

/// A boxed controller is a controller: the escape hatch that lets
/// [`MpSender`](crate::MpSender) default to `Box<dyn CongestionControl>`
/// while the hot path runs a concrete controller type (the suite uses
/// `xmp-core`'s closed `CcKind` enum) with static dispatch. Every method —
/// including the defaulted diagnostics — delegates to the inner value so
/// both dispatch paths observe identical behaviour.
impl<C: CongestionControl + ?Sized> CongestionControl for Box<C> {
    fn init(&mut self, n: usize) {
        (**self).init(n);
    }

    fn on_subflow_added(&mut self) {
        (**self).on_subflow_added();
    }

    fn echo_mode(&self) -> EchoMode {
        (**self).echo_mode()
    }

    fn on_ack(&mut self, r: usize, info: &AckInfo, view: &mut [SubflowCc]) {
        (**self).on_ack(r, info, view);
    }

    fn ssthresh_on_loss(&mut self, r: usize, view: &[SubflowCc]) -> f64 {
        (**self).ssthresh_on_loss(r, view)
    }

    fn on_rto(&mut self, r: usize, view: &mut [SubflowCc]) {
        (**self).on_rto(r, view);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn observed_round_p(&self, r: usize) -> Option<f64> {
        (**self).observed_round_p(r)
    }

    fn probe(&self, r: usize) -> Option<CcSnapshot> {
        (**self).probe(r)
    }
}

/// Shared helper: standard slow-start + AIMD congestion-avoidance growth
/// used by the uncoupled algorithms (per acked-MSS granularity).
pub(crate) fn reno_growth(sub: &mut SubflowCc, info: &AckInfo) {
    if info.newly_acked == 0 {
        return;
    }
    let acked_pkts = (info.newly_acked as f64 / info.mss as f64).max(0.0);
    if sub.in_slow_start() {
        sub.cwnd += acked_pkts;
    } else {
        sub.cwnd += acked_pkts / sub.cwnd;
    }
}

#[cfg(test)]
pub(crate) fn test_ack(newly_acked: u64, ce: u8, covered: u8) -> AckInfo {
    AckInfo {
        ack_seq: 0,
        newly_acked,
        ce_count: ce,
        covered,
        rtt_sample: None,
        now: SimTime::ZERO,
        mss: 1460,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_flag_uses_paper_convention() {
        let mut s = SubflowCc::new(10.0);
        assert!(s.in_slow_start()); // ssthresh = inf
        s.ssthresh = 5.0;
        assert!(!s.in_slow_start());
        s.cwnd = 5.0;
        assert!(!s.in_slow_start()); // cwnd == ssthresh is congestion avoidance
        s.cwnd = 4.0;
        assert!(s.in_slow_start());
    }

    #[test]
    fn reno_growth_doubles_then_linear() {
        let mut s = SubflowCc::new(2.0);
        // Slow start: +1 per acked packet.
        reno_growth(&mut s, &test_ack(1460, 0, 1));
        assert!((s.cwnd - 3.0).abs() < 1e-9);
        // Congestion avoidance: +1/cwnd per acked packet.
        s.ssthresh = 2.0;
        let before = s.cwnd;
        reno_growth(&mut s, &test_ack(1460, 0, 1));
        assert!((s.cwnd - (before + 1.0 / before)).abs() < 1e-9);
    }

    #[test]
    fn instant_rate() {
        let mut s = SubflowCc::new(10.0);
        assert!(s.instant_rate().is_none());
        s.srtt = Some(SimDuration::from_micros(100));
        assert!((s.instant_rate().unwrap() - 100_000.0).abs() < 1.0);
    }
}
