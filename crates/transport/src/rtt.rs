//! Round-trip time estimation and retransmission timeouts (RFC 6298),
//! with microsecond granularity as in the paper's Linux implementation
//! (`TCP_CONG_RTT_STAMP`).

use xmp_des::SimDuration;

/// SRTT/RTTVAR estimator plus RTO computation with exponential backoff.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto_min: SimDuration,
    rto_max: SimDuration,
    rto_initial: SimDuration,
    backoff: u32,
}

impl RttEstimator {
    /// New estimator with the given RTO clamps.
    pub fn new(rto_min: SimDuration, rto_max: SimDuration, rto_initial: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto_min,
            rto_max,
            rto_initial,
            backoff: 0,
        }
    }

    /// Smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Incorporate a new RTT sample (RFC 6298 §2).
    pub fn sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R'|
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = self.rttvar * 3 / 4 + err / 4;
                // SRTT = 7/8 SRTT + 1/8 R'
                self.srtt = Some(srtt * 7 / 8 + rtt / 8);
            }
        }
        // A valid sample ends any timeout backoff (the path is alive).
        self.backoff = 0;
    }

    /// Current retransmission timeout, including backoff.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.rto_initial,
            Some(srtt) => {
                // RTO = SRTT + max(G, 4*RTTVAR); G (clock granularity) ~ 1us.
                let var = self.rttvar.saturating_mul(4);
                let var = var.clamp(SimDuration::from_micros(1), SimDuration::MAX);
                srtt + var
            }
        };
        base.clamp(self.rto_min, self.rto_max)
            .saturating_mul(1u64 << self.backoff.min(16))
            .clamp(self.rto_min, self.rto_max)
    }

    /// Double the RTO (called on each timeout).
    pub fn backoff(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// Current backoff exponent.
    pub fn backoff_count(&self) -> u32 {
        self.backoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
            SimDuration::from_millis(200),
        )
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = est();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.rto(), SimDuration::from_millis(200));
        e.sample(SimDuration::from_micros(300));
        assert_eq!(e.srtt(), Some(SimDuration::from_micros(300)));
    }

    #[test]
    fn converges_towards_stable_rtt() {
        let mut e = est();
        for _ in 0..100 {
            e.sample(SimDuration::from_micros(250));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_micros() as i64 - 250).unsigned_abs() <= 2, "srtt={srtt}");
    }

    #[test]
    fn rto_clamped_to_min() {
        // DCN RTTs of a few hundred us never push RTO above RTOmin=200ms.
        let mut e = est();
        for _ in 0..10 {
            e.sample(SimDuration::from_micros(225));
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        e.sample(SimDuration::from_micros(300));
        assert_eq!(e.rto(), SimDuration::from_millis(200));
        e.backoff();
        assert_eq!(e.rto(), SimDuration::from_millis(400));
        e.backoff();
        assert_eq!(e.rto(), SimDuration::from_millis(800));
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60));
        // A fresh sample clears the backoff.
        e.sample(SimDuration::from_micros(300));
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn variance_tracks_jitter() {
        let mut lo = est();
        let mut hi = est();
        for i in 0..50 {
            lo.sample(SimDuration::from_micros(300));
            hi.sample(SimDuration::from_micros(if i % 2 == 0 { 100 } else { 500 }));
        }
        // Same mean, but the jittery path must not have a smaller RTO base.
        let rto_min_off = |e: &RttEstimator| {
            // Strip the clamp by reading srtt + 4*rttvar directly.
            e.srtt().unwrap() + e.rttvar.saturating_mul(4)
        };
        assert!(rto_min_off(&hi) > rto_min_off(&lo));
    }
}
