//! HostStack behaviour over a real simulated link: demultiplexing,
//! connection lifecycle, timer hygiene, and ECN end-to-end semantics.

use std::collections::HashSet;
use xmp_des::{Bandwidth, SimDuration, SimTime};
use xmp_netsim::routing::StaticRouter;
use xmp_netsim::{Addr, LinkParams, NodeId, PortId, QdiscConfig, Sim};
use xmp_transport::{
    Dctcp, HostStack, Lia, Reno, Segment, StackConfig, SubflowSpec,
};
use xmp_core::Xmp;

const A: Addr = Addr::new(10, 0, 0, 1);
const B: Addr = Addr::new(10, 0, 0, 2);

/// Boxed-controller stack (the `HostStack` default) — this file pins the
/// dynamic-dispatch escape hatch end to end.
fn host() -> Box<HostStack> {
    Box::new(HostStack::new(StackConfig::default()))
}

fn pair(queue: QdiscConfig) -> (Sim<Segment>, NodeId, NodeId) {
    let mut sim: Sim<Segment> = Sim::new(1);
    let a = sim.add_host("a", host());
    let b = sim.add_host("b", host());
    let sw = sim.add_switch("sw", Box::new(StaticRouter::new()));
    let params = LinkParams::new(
        Bandwidth::from_mbps(100),
        SimDuration::from_micros(100),
        queue,
    );
    sim.connect(a, sw, &params, "a-sw");
    sim.connect(b, sw, &params, "b-sw");
    sim.set_router(
        sw,
        Box::new(StaticRouter::new().to(A, PortId(0)).to(B, PortId(1))),
    );
    sim.bind_addr(A, a);
    sim.bind_addr(B, b);
    (sim, a, b)
}

fn spec() -> SubflowSpec {
    SubflowSpec {
        local_port: PortId(0),
        src: A,
        dst: B,
    }
}

#[test]
fn many_concurrent_connections_demux_cleanly() {
    let (mut sim, a, b) = pair(QdiscConfig::DropTail { cap: 1000 });
    let sizes: Vec<u64> = (1..=12).map(|i| i * 13_337).collect();
    sim.with_agent::<HostStack, _>(a, |st, ctx| {
        for (i, &size) in sizes.iter().enumerate() {
            st.open(ctx, 100 + i as u64, vec![spec()], size, Box::new(Reno::new()));
        }
    });
    let mut completed: HashSet<u64> = HashSet::new();
    sim.run_until(SimTime::from_secs(30), |_, _, conn| {
        assert!(completed.insert(conn), "duplicate completion for {conn}");
    });
    assert_eq!(completed.len(), sizes.len());
    // Every receiver got exactly its bytes.
    sim.with_agent::<HostStack, _>(b, |st, _| {
        for (i, &size) in sizes.iter().enumerate() {
            assert_eq!(st.receiver(100 + i as u64).unwrap().delivered(), size);
        }
    });
    // Sender-side stats agree.
    sim.with_agent::<HostStack, _>(a, |st, _| {
        for (i, &size) in sizes.iter().enumerate() {
            let stats = st.conn_stats(100 + i as u64).unwrap();
            assert_eq!(stats.bytes_acked, size);
            assert!(stats.completed.is_some());
        }
    });
}

#[test]
fn opposite_direction_connections_coexist() {
    let (mut sim, a, b) = pair(QdiscConfig::DropTail { cap: 1000 });
    sim.with_agent::<HostStack, _>(a, |st, ctx| {
        st.open(ctx, 1, vec![spec()], 50_000, Box::new(Reno::new()));
    });
    sim.with_agent::<HostStack, _>(b, |st, ctx| {
        st.open(
            ctx,
            2,
            vec![SubflowSpec {
                local_port: PortId(0),
                src: B,
                dst: A,
            }],
            70_000,
            Box::new(Dctcp::new()),
        );
    });
    let mut done = Vec::new();
    sim.run_until(SimTime::from_secs(10), |_, _, conn| done.push(conn));
    done.sort_unstable();
    assert_eq!(done, vec![1, 2]);
    sim.with_agent::<HostStack, _>(a, |st, _| {
        assert_eq!(st.receiver(2).unwrap().delivered(), 70_000);
        assert_eq!(st.conn_stats(1).unwrap().bytes_acked, 50_000);
        assert_eq!(st.conn_count(), 2);
    });
}

#[test]
#[should_panic(expected = "already exists")]
fn duplicate_open_panics() {
    let (mut sim, a, _) = pair(QdiscConfig::DropTail { cap: 100 });
    sim.with_agent::<HostStack, _>(a, |st, ctx| {
        st.open(ctx, 1, vec![spec()], 1000, Box::new(Reno::new()));
        st.open(ctx, 1, vec![spec()], 1000, Box::new(Reno::new()));
    });
}

#[test]
fn close_quiesces_the_network() {
    let (mut sim, a, _b) = pair(QdiscConfig::EcnThreshold { cap: 100, k: 10 });
    sim.with_agent::<HostStack, _>(a, |st, ctx| {
        st.open(ctx, 1, vec![spec()], u64::MAX, Box::new(Xmp::new(4)));
    });
    sim.run_until_quiet(SimTime::from_millis(500));
    sim.with_agent::<HostStack, _>(a, |st, ctx| {
        st.close(ctx, 1);
        assert_eq!(st.conn_count(), 0);
    });
    // After in-flight traffic drains and every lazily-cancelled timer has
    // expired (stale RTO entries fire — ignored — up to RTOmin after the
    // close), the event count must go flat.
    sim.run_until_quiet(SimTime::from_millis(750));
    let events_then = sim.events_processed();
    sim.run_until_quiet(SimTime::from_secs(5));
    assert_eq!(
        sim.events_processed(),
        events_then,
        "closed connection kept generating events"
    );
}

#[test]
fn ecn_capable_schemes_mark_ect_and_reno_does_not() {
    for ecn_expected in [true, false] {
        let (mut sim, a, _b) = pair(QdiscConfig::EcnThreshold { cap: 100, k: 0 });
        sim.with_agent::<HostStack, _>(a, |st, ctx| {
            let cc: Box<dyn xmp_transport::CongestionControl> = if ecn_expected {
                Box::new(Xmp::new(4))
            } else {
                Box::new(Lia::new())
            };
            st.open(ctx, 1, vec![spec()], 300_000, cc);
        });
        sim.run_until_quiet(SimTime::from_secs(30));
        // With K = 0 every ECT packet gets marked; count marks on a's
        // uplink (link 0, direction 0).
        let marked = sim
            .links()
            .map(|(_, l)| l.dirs[0].stats.marked + l.dirs[1].stats.marked)
            .sum::<u64>();
        if ecn_expected {
            assert!(marked > 0, "XMP data packets must be ECT (markable)");
        } else {
            assert_eq!(marked, 0, "LIA packets must not be ECT");
        }
    }
}

#[test]
fn stale_timers_after_completion_are_harmless() {
    let (mut sim, a, _b) = pair(QdiscConfig::DropTail { cap: 100 });
    sim.with_agent::<HostStack, _>(a, |st, ctx| {
        st.open(ctx, 1, vec![spec()], 5_000, Box::new(Reno::new()));
    });
    let mut completions = 0;
    sim.run_until(SimTime::from_secs(60), |_, _, _| completions += 1);
    assert_eq!(completions, 1);
    // Nothing pending: the sim is quiet long before the 60 s horizon.
    assert!(sim.now() < SimTime::from_secs(2));
}
