//! The named data-transfer schemes of the paper's evaluation.

use xmp_core::{Bos, CcKind, Xmp};
use xmp_transport::{Dctcp, Lia, Olia, Reno};

/// A congestion-control scheme plus its subflow count, as named in the
/// paper's tables ("XMP-2", "LIA-4", "DCTCP", "TCP").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Plain single-path NewReno, no ECN.
    Tcp,
    /// Single-path DCTCP.
    Dctcp,
    /// Single-path BOS (XMP's window algorithm without multipath).
    Bos {
        /// Window-reduction divisor β.
        beta: u32,
    },
    /// MPTCP with Linked Increases over `subflows` paths.
    Lia {
        /// Number of subflows per flow.
        subflows: usize,
    },
    /// MPTCP with XMP over `subflows` paths.
    Xmp {
        /// Window-reduction divisor β (paper default 4).
        beta: u32,
        /// Number of subflows per flow.
        subflows: usize,
    },
    /// Ablation: XMP with TraSh disabled (independent BOS per subflow).
    XmpUncoupled {
        /// Window-reduction divisor β.
        beta: u32,
        /// Number of subflows per flow.
        subflows: usize,
    },
    /// MPTCP with OLIA (Khalili et al., CoNEXT 2012) — the fix the paper's
    /// future-work section points to.
    Olia {
        /// Number of subflows per flow.
        subflows: usize,
    },
}

impl Scheme {
    /// The paper's default XMP-n (β = 4).
    pub fn xmp(subflows: usize) -> Scheme {
        Scheme::Xmp { beta: 4, subflows }
    }

    /// LIA-n.
    pub fn lia(subflows: usize) -> Scheme {
        Scheme::Lia { subflows }
    }

    /// Subflows a flow of this scheme establishes.
    pub fn subflow_count(&self) -> usize {
        match *self {
            Scheme::Tcp | Scheme::Dctcp | Scheme::Bos { .. } => 1,
            Scheme::Lia { subflows }
            | Scheme::Olia { subflows }
            | Scheme::Xmp { subflows, .. }
            | Scheme::XmpUncoupled { subflows, .. } => subflows,
        }
    }

    /// Instantiate the congestion controller. Every scheme maps to a
    /// [`CcKind`] enum arm, so per-flow controllers live inline in the
    /// sender (no heap box, direct dispatch); wrap the result with
    /// [`CcKind::boxed`] to route it through the dynamic escape hatch.
    pub fn make_cc(&self) -> CcKind {
        match *self {
            Scheme::Tcp => CcKind::Reno(Reno::new()),
            Scheme::Dctcp => CcKind::Dctcp(Dctcp::new()),
            Scheme::Bos { beta } => CcKind::Bos(Bos::new(beta)),
            Scheme::Lia { .. } => CcKind::Lia(Lia::new()),
            Scheme::Olia { .. } => CcKind::Olia(Olia::new()),
            Scheme::Xmp { beta, .. } => CcKind::Xmp(Xmp::new(beta)),
            Scheme::XmpUncoupled { beta, .. } => CcKind::Xmp(Xmp::uncoupled(beta)),
        }
    }

    /// Table label, e.g. `XMP-2`.
    pub fn label(&self) -> String {
        match *self {
            Scheme::Tcp => "TCP".into(),
            Scheme::Dctcp => "DCTCP".into(),
            Scheme::Bos { beta } => format!("BOS(b{beta})"),
            Scheme::Lia { subflows } => format!("LIA-{subflows}"),
            Scheme::Olia { subflows } => format!("OLIA-{subflows}"),
            Scheme::Xmp { beta, subflows } => {
                if beta == 4 {
                    format!("XMP-{subflows}")
                } else {
                    format!("XMP-{subflows}(b{beta})")
                }
            }
            Scheme::XmpUncoupled { beta, subflows } => {
                format!("uXMP-{subflows}(b{beta})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmp_transport::segment::EchoMode;
    use xmp_transport::CongestionControl;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(Scheme::Tcp.label(), "TCP");
        assert_eq!(Scheme::Dctcp.label(), "DCTCP");
        assert_eq!(Scheme::lia(4).label(), "LIA-4");
        assert_eq!(Scheme::xmp(2).label(), "XMP-2");
        assert_eq!(Scheme::Xmp { beta: 6, subflows: 2 }.label(), "XMP-2(b6)");
        assert_eq!(Scheme::Olia { subflows: 2 }.label(), "OLIA-2");
        assert_eq!(
            Scheme::XmpUncoupled { beta: 4, subflows: 3 }.label(),
            "uXMP-3(b4)"
        );
    }

    #[test]
    fn subflow_counts() {
        assert_eq!(Scheme::Tcp.subflow_count(), 1);
        assert_eq!(Scheme::Dctcp.subflow_count(), 1);
        assert_eq!(Scheme::xmp(4).subflow_count(), 4);
        assert_eq!(Scheme::lia(2).subflow_count(), 2);
    }

    #[test]
    fn cc_echo_modes() {
        assert_eq!(Scheme::Tcp.make_cc().echo_mode(), EchoMode::None);
        assert_eq!(Scheme::Dctcp.make_cc().echo_mode(), EchoMode::Dctcp);
        assert_eq!(Scheme::xmp(2).make_cc().echo_mode(), EchoMode::CeCount);
        assert_eq!(Scheme::lia(2).make_cc().echo_mode(), EchoMode::None);
        assert_eq!(Scheme::Bos { beta: 2 }.make_cc().echo_mode(), EchoMode::CeCount);
    }
}
