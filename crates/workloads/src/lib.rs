//! # xmp-workloads — traffic patterns, flow driving and evaluation metrics
//!
//! The layer between the transport stacks and the experiments:
//!
//! * [`scheme`] — the named congestion-control schemes of the paper's
//!   evaluation (`TCP`, `DCTCP`, `LIA-n`, `XMP-n`, `BOS`),
//! * [`driver`] — starts flows at their scheduled times, reacts to
//!   completion signals, and keeps per-flow records (goodput, RTT, locality
//!   class, retransmission counters),
//! * [`patterns`] — the paper's three fat-tree traffic patterns
//!   (Section 5.2.1): **Permutation**, **Random** (Pareto sizes) and
//!   **Incast** (9-host jobs over TCP with Random background flows),
//! * [`metrics`] — CDFs/percentiles, Jain's fairness index, rate sampling
//!   for the time-series figures, link-utilization summaries.

pub mod driver;
pub mod metrics;
pub mod patterns;
pub mod scheme;

pub use driver::{Driver, FlowRecord, FlowSim, FlowSpecBuilder, Host, RateSampler, SubflowSnapshot};
pub use metrics::{jain_index, link_utilization, Cdf};
pub use patterns::{IncastPattern, PatternConfig, PermutationPattern, RandomPattern};
pub use scheme::Scheme;
