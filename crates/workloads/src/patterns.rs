//! The paper's fat-tree traffic patterns (Section 5.2.1).
//!
//! * **Permutation** — every host sends to a random distinct destination;
//!   when all flows of a wave finish, a new permutation starts. Flow sizes
//!   uniform in [64 MB, 512 MB] (scaled by `scale`).
//! * **Random** — every host keeps one outgoing flow to a random host
//!   (each host the destination of ≤ 4 flows); sizes Pareto(1.5) with mean
//!   192 MB capped at 768 MB (scaled).
//! * **Incast** — 8 concurrent Jobs: a client sends 2 KB requests to 8
//!   servers, each answers with a 64 KB response; a Job ends when all
//!   responses arrive, then a new one starts. Small flows always use plain
//!   TCP; every host additionally runs a Random-pattern large flow (source
//!   and sink in different racks) as background traffic.
//!
//! MPTCP flows pick `n` distinct random path tags (distinct core paths);
//! single-path flows pick one random tag — the per-flow path placement
//! ECMP would give, under the deterministic two-level lookup.

use crate::driver::{Driver, FlowSim, FlowSpecBuilder};
use crate::scheme::Scheme;
use std::collections::HashMap;
use xmp_des::{SimRng, SimTime};
use xmp_netsim::PortId;
use xmp_topo::FatTree;
use xmp_transport::{ConnKey, SubflowSpec};

/// Shared pattern parameters.
#[derive(Clone, Debug)]
pub struct PatternConfig {
    /// Scheme used by large flows.
    pub scheme: Scheme,
    /// RNG seed (patterns derive their own streams from it).
    pub seed: u64,
    /// Divide the paper's flow sizes by this factor (EXPERIMENTS.md
    /// records the scale used for each run).
    pub scale: u64,
    /// Stop creating new large flows after this many have been started.
    pub max_flows: usize,
}

impl PatternConfig {
    /// A config with the given scheme and defaults suitable for tests.
    pub fn new(scheme: Scheme, seed: u64, scale: u64, max_flows: usize) -> Self {
        assert!(scale >= 1);
        PatternConfig {
            scheme,
            seed,
            scale,
            max_flows,
        }
    }
}

const MB: u64 = 1 << 20;

/// Build the subflow specs for a fat-tree flow with `n` subflows on
/// distinct random path tags.
pub fn fat_tree_subflows(
    ft: &FatTree,
    src: usize,
    dst: usize,
    n: usize,
    rng: &mut SimRng,
) -> Vec<SubflowSpec> {
    let tags = rng.choose_distinct(ft.tag_count(), n.min(ft.tag_count()));
    tags.into_iter()
        .map(|t| SubflowSpec {
            local_port: PortId(0),
            src: ft.host_addr(src, t),
            dst: ft.host_addr(dst, t),
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn submit_large_flow(
    driver: &mut Driver,
    ft: &FatTree,
    rng: &mut SimRng,
    scheme: Scheme,
    src: usize,
    dst: usize,
    size: u64,
    start: SimTime,
    tag: u64,
) -> ConnKey {
    let subflows = fat_tree_subflows(ft, src, dst, scheme.subflow_count(), rng);
    driver.submit(FlowSpecBuilder {
        src_node: ft.host(src),
        subflows,
        size,
        scheme,
        start,
        category: Some(ft.category(src, dst)),
        tag,
    })
}

/// The Permutation pattern.
pub struct PermutationPattern {
    cfg: PatternConfig,
    rng: SimRng,
    outstanding: usize,
    started: usize,
}

impl PermutationPattern {
    /// New pattern driver.
    pub fn new(cfg: PatternConfig) -> Self {
        let rng = SimRng::new(cfg.seed).derive(0x9e37);
        PermutationPattern {
            cfg,
            rng,
            outstanding: 0,
            started: 0,
        }
    }

    /// Large flows started so far.
    pub fn started(&self) -> usize {
        self.started
    }

    fn flow_size(&mut self) -> u64 {
        let lo = 64 * MB / self.cfg.scale;
        let hi = 512 * MB / self.cfg.scale;
        self.rng.uniform_u64(lo.max(1), hi.max(2))
    }

    /// Launch the first wave at the current simulation time.
    pub fn start<S: FlowSim>(
        &mut self,
        sim: &mut S,
        driver: &mut Driver,
        ft: &FatTree,
    ) {
        self.wave(sim, driver, ft);
    }

    fn wave<S: FlowSim>(&mut self, sim: &mut S, driver: &mut Driver, ft: &FatTree) {
        if self.started >= self.cfg.max_flows {
            return;
        }
        let n = ft.hosts.len();
        let perm = self.rng.permutation(n);
        let now = sim.now();
        for (src, &dst) in perm.iter().enumerate() {
            if dst == src {
                continue; // a host never sends to itself
            }
            if self.started >= self.cfg.max_flows {
                break;
            }
            let size = self.flow_size();
            submit_large_flow(
                driver,
                ft,
                &mut self.rng,
                self.cfg.scheme,
                src,
                dst,
                size,
                now,
                0,
            );
            self.started += 1;
            self.outstanding += 1;
        }
    }

    /// Completion hook: starts the next wave when the current one drains.
    pub fn on_complete<S: FlowSim>(
        &mut self,
        sim: &mut S,
        driver: &mut Driver,
        ft: &FatTree,
        _conn: ConnKey,
    ) {
        self.outstanding = self.outstanding.saturating_sub(1);
        if self.outstanding == 0 {
            self.wave(sim, driver, ft);
        }
    }
}

/// The Random pattern.
pub struct RandomPattern {
    cfg: PatternConfig,
    rng: SimRng,
    incoming: Vec<u32>,
    flows: HashMap<ConnKey, (usize, usize)>,
    started: usize,
    /// Force source and destination into different racks (the paper's
    /// constraint on Incast background flows).
    pub rack_constraint: bool,
    /// Optional per-host scheme override (Table 2's coexistence runs).
    pub host_schemes: Option<Vec<Scheme>>,
}

impl RandomPattern {
    /// New pattern driver.
    pub fn new(cfg: PatternConfig) -> Self {
        let rng = SimRng::new(cfg.seed).derive(0x517c);
        RandomPattern {
            cfg,
            rng,
            incoming: Vec::new(),
            flows: HashMap::new(),
            started: 0,
            rack_constraint: false,
            host_schemes: None,
        }
    }

    /// Large flows started so far.
    pub fn started(&self) -> usize {
        self.started
    }

    fn flow_size(&mut self) -> u64 {
        let s = self.cfg.scale as f64;
        let mb = self
            .rng
            .pareto(1.5, 192.0 / s, 64.0 / s, 768.0 / s);
        ((mb * MB as f64) as u64).max(1)
    }

    fn scheme_for(&self, host: usize) -> Scheme {
        self.host_schemes
            .as_ref()
            .map_or(self.cfg.scheme, |v| v[host])
    }

    fn pick_dst(&mut self, ft: &FatTree, src: usize) -> usize {
        let n = ft.hosts.len();
        for _ in 0..64 {
            let dst = self.rng.index(n);
            if dst == src || self.incoming[dst] >= 4 {
                continue;
            }
            if self.rack_constraint && ft.category(src, dst) == xmp_topo::FlowCategory::InnerRack
            {
                continue;
            }
            return dst;
        }
        // Dense fallback: first admissible destination.
        (0..n)
            .find(|&d| d != src && self.incoming[d] < 4)
            .unwrap_or((src + 1) % n)
    }

    /// Start one flow from every host.
    pub fn start<S: FlowSim>(
        &mut self,
        sim: &mut S,
        driver: &mut Driver,
        ft: &FatTree,
    ) {
        self.incoming.resize(ft.hosts.len(), 0);
        for src in 0..ft.hosts.len() {
            self.launch_from(sim, driver, ft, src);
        }
    }

    fn launch_from<S: FlowSim>(
        &mut self,
        sim: &mut S,
        driver: &mut Driver,
        ft: &FatTree,
        src: usize,
    ) {
        if self.started >= self.cfg.max_flows {
            return;
        }
        let dst = self.pick_dst(ft, src);
        let size = self.flow_size();
        let scheme = self.scheme_for(src);
        let conn = submit_large_flow(
            driver,
            ft,
            &mut self.rng,
            scheme,
            src,
            dst,
            size,
            sim.now(),
            0,
        );
        self.incoming[dst] += 1;
        self.flows.insert(conn, (src, dst));
        self.started += 1;
    }

    /// Completion hook: the source immediately issues a new flow.
    pub fn on_complete<S: FlowSim>(
        &mut self,
        sim: &mut S,
        driver: &mut Driver,
        ft: &FatTree,
        conn: ConnKey,
    ) {
        let Some((src, dst)) = self.flows.remove(&conn) else {
            return; // not one of ours
        };
        self.incoming[dst] = self.incoming[dst].saturating_sub(1);
        self.launch_from(sim, driver, ft, src);
    }
}

/// The Incast pattern: jobs over TCP plus Random background flows.
pub struct IncastPattern {
    /// Background large-flow pattern (rack-constrained).
    pub background: RandomPattern,
    rng: SimRng,
    jobs: Vec<Job>,
    roles: HashMap<ConnKey, (usize, Role)>,
    /// Completed job durations (ms).
    pub job_times_ms: Vec<f64>,
    request_bytes: u64,
    response_bytes: u64,
    fanout: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Request { server: usize },
    Response,
}

#[derive(Debug)]
struct Job {
    client: usize,
    pending: usize,
    start: SimTime,
}

impl IncastPattern {
    /// Paper parameters: 8 jobs × (1 client + 8 servers), 2 KB requests,
    /// 64 KB responses.
    pub fn new(cfg: PatternConfig) -> Self {
        let mut background = RandomPattern::new(cfg.clone());
        background.rack_constraint = true;
        IncastPattern {
            background,
            rng: SimRng::new(cfg.seed).derive(0x1ca5),
            jobs: Vec::new(),
            roles: HashMap::new(),
            job_times_ms: Vec::new(),
            request_bytes: 2 * 1024,
            response_bytes: 64 * 1024,
            fanout: 8,
        }
    }

    /// Start `n_jobs` concurrent jobs plus the background flows.
    pub fn start<S: FlowSim>(
        &mut self,
        sim: &mut S,
        driver: &mut Driver,
        ft: &FatTree,
        n_jobs: usize,
    ) {
        self.background.start(sim, driver, ft);
        for j in 0..n_jobs {
            self.jobs.push(Job {
                client: 0,
                pending: 0,
                start: sim.now(),
            });
            self.start_job(sim, driver, ft, j);
        }
    }

    fn start_job<S: FlowSim>(
        &mut self,
        sim: &mut S,
        driver: &mut Driver,
        ft: &FatTree,
        j: usize,
    ) {
        let picks = self.rng.choose_distinct(ft.hosts.len(), self.fanout + 1);
        let client = picks[0];
        let now = sim.now();
        self.jobs[j] = Job {
            client,
            pending: self.fanout,
            start: now,
        };
        for &server in &picks[1..] {
            // Request: client → server, small TCP flow.
            let conn = submit_small_flow(driver, ft, &mut self.rng, client, server, self.request_bytes, now, j as u64);
            self.roles.insert(conn, (j, Role::Request { server }));
        }
    }

    /// Completion hook for every flow in the run (jobs first, then
    /// background).
    pub fn on_complete<S: FlowSim>(
        &mut self,
        sim: &mut S,
        driver: &mut Driver,
        ft: &FatTree,
        conn: ConnKey,
    ) {
        let Some((j, role)) = self.roles.remove(&conn) else {
            self.background.on_complete(sim, driver, ft, conn);
            return;
        };
        match role {
            Role::Request { server } => {
                // The server answers with the response flow.
                let client = self.jobs[j].client;
                let rc = submit_small_flow(
                    driver,
                    ft,
                    &mut self.rng,
                    server,
                    client,
                    self.response_bytes,
                    sim.now(),
                    j as u64,
                );
                self.roles.insert(rc, (j, Role::Response));
            }
            Role::Response => {
                self.jobs[j].pending -= 1;
                if self.jobs[j].pending == 0 {
                    let dur = sim.now().duration_since(self.jobs[j].start);
                    self.job_times_ms.push(dur.as_nanos() as f64 / 1e6);
                    self.start_job(sim, driver, ft, j);
                }
            }
        }
    }

    /// Completed jobs so far.
    pub fn jobs_completed(&self) -> usize {
        self.job_times_ms.len()
    }
}

#[allow(clippy::too_many_arguments)]
fn submit_small_flow(
    driver: &mut Driver,
    ft: &FatTree,
    rng: &mut SimRng,
    src: usize,
    dst: usize,
    size: u64,
    start: SimTime,
    tag: u64,
) -> ConnKey {
    let subflows = fat_tree_subflows(ft, src, dst, 1, rng);
    driver.submit(FlowSpecBuilder {
        src_node: ft.host(src),
        subflows,
        size,
        scheme: Scheme::Tcp,
        start,
        category: Some(ft.category(src, dst)),
        tag: 1_000_000 + tag, // distinguish job flows in the records
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmp_netsim::QdiscConfig;
    use xmp_topo::FatTreeConfig;
    use crate::driver::Host;
    use xmp_netsim::Sim;
    use xmp_transport::Segment;
    use xmp_transport::{HostStack, StackConfig};

    fn small_ft(seed: u64) -> (Sim<Segment, Host>, FatTree) {
        let mut sim: Sim<Segment, Host> = Sim::new(seed);
        let cfg = FatTreeConfig {
            k: 4,
            ..FatTreeConfig::paper(QdiscConfig::EcnThreshold { cap: 100, k: 10 })
        };
        let ft = FatTree::build(&mut sim, &cfg, |_| HostStack::new(StackConfig::default()));
        (sim, ft)
    }

    #[test]
    fn subflow_tags_are_distinct() {
        let (_, ft) = small_ft(1);
        let mut rng = SimRng::new(5);
        let subs = fat_tree_subflows(&ft, 0, 15, 4, &mut rng);
        assert_eq!(subs.len(), 4);
        let mut dsts: Vec<_> = subs.iter().map(|s| s.dst).collect();
        dsts.sort();
        dsts.dedup();
        assert_eq!(dsts.len(), 4, "distinct alias destinations");
    }

    #[test]
    fn permutation_wave_runs_to_completion_and_restarts() {
        let (mut sim, ft) = small_ft(2);
        let mut driver = Driver::new();
        let cfg = PatternConfig::new(Scheme::xmp(2), 11, 8192, 64);
        let mut pat = PermutationPattern::new(cfg);
        pat.start(&mut sim, &mut driver, &ft);
        let first_wave = pat.started();
        assert!(first_wave >= 12, "wave size {first_wave}");
        driver.run(&mut sim, SimTime::from_secs(3), |sim, d, c| {
            pat.on_complete(sim, d, &ft, c);
        });
        assert!(
            pat.started() > first_wave,
            "a second wave should have started ({} flows)",
            pat.started()
        );
        assert!(driver.completed_count() as usize >= first_wave);
        // Flows carry locality categories.
        assert!(driver.records().all(|r| r.category.is_some()));
    }

    #[test]
    fn random_pattern_keeps_one_flow_per_host() {
        let (mut sim, ft) = small_ft(3);
        let mut driver = Driver::new();
        let cfg = PatternConfig::new(Scheme::Dctcp, 13, 16384, 200);
        let mut pat = RandomPattern::new(cfg);
        pat.start(&mut sim, &mut driver, &ft);
        assert_eq!(pat.started(), 16);
        driver.run(&mut sim, SimTime::from_secs(2), |sim, d, c| {
            pat.on_complete(sim, d, &ft, c);
        });
        // Flows chain: far more started than the initial 16.
        assert!(pat.started() > 32, "started {}", pat.started());
        // Destination constraint held throughout.
        assert!(pat.incoming.iter().all(|&c| c <= 4));
    }

    #[test]
    fn incast_jobs_complete_and_measure_latency() {
        let (mut sim, ft) = small_ft(4);
        let mut driver = Driver::new();
        let cfg = PatternConfig::new(Scheme::xmp(2), 17, 32768, 64);
        let mut pat = IncastPattern::new(cfg);
        pat.start(&mut sim, &mut driver, &ft, 4);
        driver.run(&mut sim, SimTime::from_secs(2), |sim, d, c| {
            pat.on_complete(sim, d, &ft, c);
        });
        assert!(
            pat.jobs_completed() >= 8,
            "only {} jobs completed",
            pat.jobs_completed()
        );
        for &t in &pat.job_times_ms {
            assert!(t > 0.0 && t < 2_000.0, "job time {t}ms");
        }
        // Background flows sit in different racks by construction.
        for r in driver.records() {
            if r.tag < 1_000_000 {
                assert_ne!(r.category, Some(xmp_topo::FlowCategory::InnerRack));
            }
        }
    }
}
