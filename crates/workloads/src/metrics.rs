//! Evaluation metrics: CDFs, percentiles, fairness, link utilization.

use xmp_des::SimTime;
use xmp_netsim::network::Payload;
use xmp_netsim::{Agent, LinkId, Sim};

/// An empirical distribution (the paper's CDF plots and percentile bars).
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from any sample iterator (NaNs are dropped).
    pub fn new(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| {
            a.partial_cmp(b)
                .expect("CDF samples are finite after the NaN filter")
        });
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100), by nearest-rank.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p));
        assert!(!self.is_empty(), "percentile of empty distribution");
        let rank = ((p / 100.0) * (self.sorted.len() as f64 - 1.0)).round() as usize;
        self.sorted[rank.min(self.sorted.len() - 1)]
    }

    /// Median shortcut.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of empty distribution")
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of empty distribution")
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Fraction of samples strictly greater than `x` (the paper's
    /// "> 300 ms" Job column).
    pub fn fraction_above(&self, x: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// `(x, F(x))` points for plotting/printing the CDF at `n` quantiles.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2);
        (0..n)
            .map(|i| {
                let f = i as f64 / (n - 1) as f64;
                (self.percentile(f * 100.0), f)
            })
            .collect()
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`; 1.0 = perfectly fair.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (xs.len() as f64 * sq)
    }
}

/// Utilization of each link over `[0, now]`, counting the busier direction
/// of each link (the paper's Fig. 11 reports per-link utilizations).
pub fn link_utilization<P: Payload, A: Agent<P>>(
    sim: &Sim<P, A>,
    links: impl IntoIterator<Item = LinkId>,
    now: SimTime,
) -> Vec<f64> {
    links
        .into_iter()
        .map(|l| {
            let link = sim.link(l);
            let bps = link.bandwidth.as_bps();
            let u0 = link.dirs[0].stats.utilization(bps, now.as_nanos());
            let u1 = link.dirs[1].stats.utilization(bps, now.as_nanos());
            u0.max(u1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmp_des::SimRng;

    #[test]
    fn percentiles_on_known_data() {
        let c = Cdf::new((1..=100).map(f64::from));
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 100.0);
        assert_eq!(c.median(), 51.0); // nearest-rank: index round(0.5*99) = 50
        assert_eq!(c.percentile(10.0), 11.0);
        assert_eq!(c.percentile(90.0), 90.0);
        assert!((c.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn fraction_above() {
        let c = Cdf::new([100.0, 200.0, 300.0, 400.0]);
        assert!((c.fraction_above(300.0) - 0.25).abs() < 1e-12);
        assert!((c.fraction_above(99.0) - 1.0).abs() < 1e-12);
        assert_eq!(c.fraction_above(400.0), 0.0);
    }

    #[test]
    fn curve_is_monotone() {
        let c = Cdf::new([5.0, 1.0, 3.0, 2.0, 4.0]);
        let pts = c.curve(11);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(pts.first().expect("curve of the 5-sample CDF").0, 1.0);
        assert_eq!(pts.last().expect("curve of the 5-sample CDF").0, 5.0);
    }

    #[test]
    fn nan_is_dropped() {
        let c = Cdf::new([1.0, f64::NAN, 2.0]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn jain_extremes() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One hog, three starved: 1/n.
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_in_unit_interval_seeded() {
        for seed in 0..500u64 {
            let mut rng = SimRng::new(seed);
            let n = 1 + rng.index(19);
            let xs: Vec<f64> = (0..n).map(|_| rng.unit_f64() * 1e9).collect();
            let j = jain_index(&xs);
            assert!(
                (1.0 / xs.len() as f64 - 1e-9..=1.0 + 1e-9).contains(&j),
                "seed {seed}: jain={j} for n={n}"
            );
        }
    }

    #[test]
    fn percentile_monotone_seeded() {
        for seed in 0..500u64 {
            let mut rng = SimRng::new(seed);
            let n = 2 + rng.index(98);
            let mut xs: Vec<f64> = (0..n).map(|_| (rng.unit_f64() - 0.5) * 2e6).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).expect("uniform samples are finite"));
            let c = Cdf::new(xs.iter().copied());
            let mut last = f64::NEG_INFINITY;
            for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
                let v = c.percentile(p);
                assert!(v >= last, "seed {seed}: p{p} regressed ({v} < {last})");
                last = v;
            }
        }
    }
}
