//! The flow driver: schedules flow starts, tracks completions, keeps
//! per-flow records, and exposes the rate-sampling hooks the time-series
//! figures need.

use crate::scheme::Scheme;
use std::collections::{BTreeMap, HashMap};
use xmp_core::CcKind;
use xmp_des::{SimDuration, SimTime};
use xmp_netsim::{Agent, Ctx, NodeId, PartitionedSim, Sim};
use xmp_topo::FlowCategory;
use xmp_transport::{CcSnapshot, CongestionControl, ConnKey, HostStack, Segment, SubflowSpec};

/// The host agent the driver manages: a [`HostStack`] whose congestion
/// controllers are the statically dispatched [`CcKind`] enum. Simulations
/// may store hosts either as plain `Host` values (`Sim<Segment, Host>`,
/// the devirtualized fast path) or behind `Box<dyn Agent<Segment>>` (the
/// historical boxed path); the driver's downcasts work identically in both
/// because boxed agents delegate `as_any_mut` to the inner stack.
pub type Host = HostStack<CcKind>;

/// A simulation the driver can run flows on: the serial [`Sim`] or a
/// [`PartitionedSim`] sharded across worker threads. Every [`Driver`]
/// method is generic over this handle, so the same experiment code drives
/// either backend — the `workers` knob in the experiments crate is just a
/// choice of `FlowSim` implementation.
///
/// Completion callbacks on a partitioned sim fire at window boundaries in
/// serial event order (see the partitioning module docs): harvest-only
/// workloads observe bit-identical records; callbacks that *chain new
/// flows* see them start at the window end rather than mid-window.
pub trait FlowSim {
    /// Current driver-visible time.
    fn now(&self) -> SimTime;
    /// Advance the clock without processing events (panics if events at or
    /// before `t` are pending).
    fn advance_to(&mut self, t: SimTime);
    /// Run driver code against the [`Host`] stack on `node`.
    fn with_host<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut Host, &mut Ctx<'_, Segment>) -> R,
    ) -> R;
    /// Process events up to and including `deadline`, handing agent
    /// signals to `on_signal`.
    fn run_signals(
        &mut self,
        deadline: SimTime,
        on_signal: impl FnMut(&mut Self, NodeId, u64),
    );
}

impl<A: Agent<Segment>> FlowSim for Sim<Segment, A> {
    fn now(&self) -> SimTime {
        Sim::now(self)
    }
    fn advance_to(&mut self, t: SimTime) {
        Sim::advance_to(self, t);
    }
    fn with_host<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut Host, &mut Ctx<'_, Segment>) -> R,
    ) -> R {
        self.with_agent::<Host, _>(node, f)
    }
    fn run_signals(
        &mut self,
        deadline: SimTime,
        on_signal: impl FnMut(&mut Self, NodeId, u64),
    ) {
        self.run_until(deadline, on_signal);
    }
}

impl<A: Agent<Segment> + Send> FlowSim for PartitionedSim<Segment, A> {
    fn now(&self) -> SimTime {
        PartitionedSim::now(self)
    }
    fn advance_to(&mut self, t: SimTime) {
        PartitionedSim::advance_to(self, t);
    }
    fn with_host<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut Host, &mut Ctx<'_, Segment>) -> R,
    ) -> R {
        self.with_agent::<Host, _>(node, f)
    }
    fn run_signals(
        &mut self,
        deadline: SimTime,
        on_signal: impl FnMut(&mut Self, NodeId, u64),
    ) {
        self.run_until(deadline, on_signal);
    }
}

/// Record of one flow's life.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Connection key.
    pub conn: ConnKey,
    /// Sending host.
    pub src_node: NodeId,
    /// Scheme label (e.g. "XMP-2").
    pub scheme: String,
    /// Transfer size in bytes (`u64::MAX` = unbounded background flow).
    pub size: u64,
    /// Number of subflows.
    pub subflows: usize,
    /// Locality class, when the topology defines one.
    pub category: Option<FlowCategory>,
    /// Free-form tag the patterns use (e.g. job index).
    pub tag: u64,
    /// Scheduled start.
    pub start: SimTime,
    /// Completion time, if the last byte was acknowledged.
    pub completed: Option<SimTime>,
    /// Goodput over the flow's lifetime (bits/s), filled at completion.
    pub goodput_bps: f64,
    /// Mean of the sender's RTT samples (ns), 0 if none.
    pub mean_rtt_ns: u64,
    /// Retransmission timeouts.
    pub rtos: u64,
    /// Fast retransmits.
    pub fast_retransmits: u64,
}

impl FlowRecord {
    /// Goodput normalized to a link capacity.
    pub fn normalized_goodput(&self, capacity_bps: u64) -> f64 {
        self.goodput_bps / capacity_bps as f64
    }
}

/// Everything needed to start one flow.
#[derive(Debug)]
pub struct FlowSpecBuilder {
    /// Sending host node.
    pub src_node: NodeId,
    /// Per-subflow path bindings.
    pub subflows: Vec<SubflowSpec>,
    /// Bytes to transfer (`u64::MAX` = unbounded).
    pub size: u64,
    /// Congestion-control scheme.
    pub scheme: Scheme,
    /// Start time.
    pub start: SimTime,
    /// Locality class, if known.
    pub category: Option<FlowCategory>,
    /// Pattern tag (job index etc.).
    pub tag: u64,
}

struct PendingFlow {
    spec: FlowSpecBuilder,
    conn: ConnKey,
}

/// Flow lifecycle manager over a [`Sim`] whose hosts run [`Host`] stacks.
#[derive(Default)]
pub struct Driver {
    next_conn: ConnKey,
    // Pending flows sorted by *descending* start time; due flows pop off
    // the back. Ties keep submission order.
    pending: Vec<PendingFlow>,
    // BTreeMap, not HashMap: metrics fold over `records()` (float sums,
    // CDF inputs), so iteration order must be deterministic — submission
    // order via the monotonically assigned ConnKey.
    records: BTreeMap<ConnKey, FlowRecord>,
    completed: u64,
    // Wrap every controller in `CcKind::Custom` (one vtable hop) — the
    // dispatch-differential lever; behaviour is identical by construction.
    boxed_cc: bool,
    // Reused by `subflow_snapshots` so steady-state observation never
    // allocates; cleared at the start of each call.
    snap_scratch: Vec<SubflowSnapshot>,
}

impl Driver {
    /// Empty driver.
    pub fn new() -> Self {
        Driver::default()
    }

    /// Route every controller through the boxed [`CcKind::Custom`] escape
    /// hatch instead of direct enum dispatch. Flow behaviour is identical;
    /// only the dispatch mechanism changes (the dispatch differential test
    /// flips this).
    pub fn set_boxed_cc(&mut self, boxed: bool) {
        self.boxed_cc = boxed;
    }

    /// Reserve a fresh connection key.
    pub fn alloc_conn(&mut self) -> ConnKey {
        self.next_conn += 1;
        self.next_conn
    }

    /// Queue a flow for its start time. Returns the connection key.
    pub fn submit(&mut self, spec: FlowSpecBuilder) -> ConnKey {
        let conn = self.alloc_conn();
        self.records.insert(
            conn,
            FlowRecord {
                conn,
                src_node: spec.src_node,
                scheme: spec.scheme.label(),
                size: spec.size,
                subflows: spec.subflows.len(),
                category: spec.category,
                tag: spec.tag,
                start: spec.start,
                completed: None,
                goodput_bps: 0.0,
                mean_rtt_ns: 0,
                rtos: 0,
                fast_retransmits: 0,
            },
        );
        let pos = self
            .pending
            .iter()
            .position(|p| p.spec.start < spec.start)
            .unwrap_or(self.pending.len());
        self.pending.insert(pos, PendingFlow { spec, conn });
        conn
    }

    /// Number of completed flows so far.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// All flow records (completed and not).
    pub fn records(&self) -> impl Iterator<Item = &FlowRecord> {
        self.records.values()
    }

    /// One record.
    pub fn record(&self, conn: ConnKey) -> Option<&FlowRecord> {
        self.records.get(&conn)
    }

    /// Run the simulation until `until`, starting queued flows on time and
    /// invoking `on_complete(sim, driver, conn)` as flows finish (the
    /// callback may submit more flows or stop unbounded ones). Works over
    /// any [`FlowSim`]: pass a serial [`Sim`] or a [`PartitionedSim`].
    pub fn run<S: FlowSim>(
        &mut self,
        sim: &mut S,
        until: SimTime,
        mut on_complete: impl FnMut(&mut S, &mut Driver, ConnKey),
    ) {
        loop {
            self.start_due(sim);
            // Advance to the next flow start or the deadline.
            let stop = match self.pending.last().map(|p| p.spec.start) {
                Some(t) if t <= until => t,
                _ => until,
            };
            sim.run_signals(stop, |sim2, node, conn| {
                // The stack signals the connection key on completion; the
                // callback may chain follow-up flows starting *now*.
                Self::harvest(&mut self.records, &mut self.completed, sim2, node, conn);
                on_complete(sim2, self, conn);
                self.start_due(sim2);
            });
            sim.advance_to(stop);
            // Done once the deadline is reached and nothing is due at it.
            if stop >= until
                && self
                    .pending
                    .last().is_none_or(|p| p.spec.start > sim.now())
            {
                break;
            }
        }
    }

    /// Start every pending flow whose start time has been reached.
    fn start_due<S: FlowSim>(&mut self, sim: &mut S) {
        while self
            .pending
            .last()
            .is_some_and(|p| p.spec.start <= sim.now())
        {
            let due = self.pending.pop().expect("checked non-empty");
            self.start_now(sim, due);
        }
    }

    fn start_now<S: FlowSim>(&mut self, sim: &mut S, due: PendingFlow) {
        let PendingFlow { spec, conn } = due;
        let cc = spec.scheme.make_cc();
        let cc = if self.boxed_cc { cc.boxed() } else { cc };
        sim.with_host(spec.src_node, |stack, ctx| {
            stack.open(ctx, conn, spec.subflows, spec.size, cc);
        });
        if let Some(rec) = self.records.get_mut(&conn) {
            rec.start = sim.now().max(rec.start);
        }
    }

    fn harvest<S: FlowSim>(
        records: &mut BTreeMap<ConnKey, FlowRecord>,
        completed: &mut u64,
        sim: &mut S,
        node: NodeId,
        conn: ConnKey,
    ) {
        let Some(rec) = records.get_mut(&conn) else {
            return;
        };
        if rec.completed.is_some() {
            return;
        }
        let now = sim.now();
        sim.with_host(node, |stack, _| {
            if let Some(stats) = stack.conn_stats(conn) {
                rec.completed = stats.completed;
                rec.goodput_bps = stats.goodput_bps(now);
                rec.mean_rtt_ns = stats.mean_rtt().map_or(0, |d| d.as_nanos());
                rec.rtos = stats.rtos;
                rec.fast_retransmits = stats.fast_retransmits;
            }
        });
        *completed += 1;
    }

    /// Join an extra subflow on a running flow (the paper's Fig. 6
    /// staggers subflow establishment).
    pub fn add_subflow<S: FlowSim>(
        &mut self,
        sim: &mut S,
        conn: ConnKey,
        spec: SubflowSpec,
    ) {
        let Some(rec) = self.records.get_mut(&conn) else {
            panic!("add_subflow on unknown flow {conn}");
        };
        rec.subflows += 1;
        let node = rec.src_node;
        sim.with_host(node, |stack, ctx| {
            stack.add_subflow(ctx, conn, spec);
        });
    }

    /// Stop an unbounded flow and finalize its record with the stats so
    /// far (used for background flows and for time-limited runs).
    pub fn stop_flow<S: FlowSim>(&mut self, sim: &mut S, conn: ConnKey) {
        let Some(rec) = self.records.get_mut(&conn) else {
            return;
        };
        let node = rec.src_node;
        let now = sim.now();
        sim.with_host(node, |stack, ctx| {
            if let Some(stats) = stack.conn_stats(conn) {
                rec.goodput_bps = stats.goodput_bps(now);
                rec.mean_rtt_ns = stats.mean_rtt().map_or(0, |d| d.as_nanos());
                rec.rtos = stats.rtos;
                rec.fast_retransmits = stats.fast_retransmits;
            }
            stack.close(ctx, conn);
        });
    }

    /// Finalize records of still-running flows without closing them
    /// (end-of-run accounting).
    pub fn finalize_running<S: FlowSim>(&mut self, sim: &mut S) {
        let now = sim.now();
        for rec in self.records.values_mut() {
            if rec.completed.is_some() {
                continue;
            }
            let node = rec.src_node;
            let conn = rec.conn;
            sim.with_host(node, |stack, _| {
                if let Some(stats) = stack.conn_stats(conn) {
                    rec.goodput_bps = stats.goodput_bps(now);
                    rec.mean_rtt_ns = stats.mean_rtt().map_or(0, |d| d.as_nanos());
                    rec.rtos = stats.rtos;
                    rec.fast_retransmits = stats.fast_retransmits;
                }
            });
        }
    }

    /// Instantaneous per-subflow state of a running flow: window,
    /// threshold, SRTT and — for round-based controllers (XMP/BOS) — the
    /// Fig. 2 round bookkeeping. Empty if the flow is unknown or closed.
    /// Pure observation: drives the probe layer's cwnd time series without
    /// perturbing the flow. The returned slice borrows a driver-owned
    /// scratch buffer (reused across calls so sampling loops never
    /// allocate at steady state); it is valid until the next call.
    pub fn subflow_snapshots<S: FlowSim>(
        &mut self,
        sim: &mut S,
        conn: ConnKey,
    ) -> &[SubflowSnapshot] {
        self.snap_scratch.clear();
        let Some(src_node) = self.records.get(&conn).map(|r| r.src_node) else {
            return &self.snap_scratch;
        };
        let scratch = &mut self.snap_scratch;
        sim.with_host(src_node, |stack, _| {
            let Some(sender) = stack.sender(conn) else {
                return;
            };
            let cc = sender.cc();
            scratch.extend(sender.view().iter().enumerate().map(|(r, sub)| {
                SubflowSnapshot {
                    subflow: r,
                    cwnd: sub.cwnd,
                    ssthresh: sub.ssthresh,
                    srtt_ns: sub.srtt.map(|d| d.as_nanos()),
                    cc: cc.probe(r),
                }
            }));
        });
        &self.snap_scratch
    }

    /// Bytes acknowledged so far on one subflow of a running flow.
    pub fn subflow_acked<S: FlowSim>(
        &self,
        sim: &mut S,
        conn: ConnKey,
        r: usize,
    ) -> u64 {
        let Some(rec) = self.records.get(&conn) else {
            return 0;
        };
        sim.with_host(rec.src_node, |stack, _| {
            stack
                .sender(conn)
                .map_or(0, |s| s.subflow_acked(r.min(s.subflow_count() - 1)))
        })
    }
}

/// One subflow's instantaneous congestion state, as returned by
/// [`Driver::subflow_snapshots`] (the probe layer's cwnd series rows).
#[derive(Debug, Clone)]
pub struct SubflowSnapshot {
    /// Subflow index within the connection.
    pub subflow: usize,
    /// Congestion window (packets).
    pub cwnd: f64,
    /// Slow-start threshold (packets; `INFINITY` before the first cut).
    pub ssthresh: f64,
    /// Smoothed RTT in nanoseconds, if measured.
    pub srtt_ns: Option<u64>,
    /// Round bookkeeping for round-based controllers (XMP/BOS), else
    /// `None`.
    pub cc: Option<CcSnapshot>,
}

/// Samples per-subflow rates between calls — the paper's normalized-rate
/// time series (Figs. 4, 6, 7).
#[derive(Default)]
pub struct RateSampler {
    prev: HashMap<(ConnKey, usize), (u64, SimTime)>,
}

impl RateSampler {
    /// New sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Average rate (bits/s) of `conn`'s subflow `r` since the previous
    /// call for the same key (0 on the first call).
    pub fn sample<S: FlowSim>(
        &mut self,
        sim: &mut S,
        driver: &Driver,
        conn: ConnKey,
        r: usize,
    ) -> f64 {
        let now = sim.now();
        let acked = driver.subflow_acked(sim, conn, r);
        let (prev_bytes, prev_t) = self
            .prev
            .insert((conn, r), (acked, now))
            .unwrap_or((acked, now));
        let dt = now.duration_since(prev_t);
        if dt == SimDuration::ZERO {
            0.0
        } else {
            (acked.saturating_sub(prev_bytes)) as f64 * 8.0 / dt.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmp_des::{Bandwidth, SimDuration};
    use xmp_netsim::QdiscConfig;
    use xmp_topo::Dumbbell;
    use xmp_transport::{StackConfig, DEFAULT_MSS};

    fn stack() -> Host {
        HostStack::new(StackConfig::default())
    }

    fn setup(n: usize) -> (Sim<Segment, Host>, Dumbbell) {
        let mut sim: Sim<Segment, Host> = Sim::new(7);
        let db = Dumbbell::build(
            &mut sim,
            n,
            Bandwidth::from_mbps(300),
            SimDuration::from_micros(1800),
            QdiscConfig::EcnThreshold { cap: 100, k: 15 },
            |_| stack(),
        );
        (sim, db)
    }

    fn flow(db: &Dumbbell, i: usize, size: u64, scheme: Scheme, start_ms: u64) -> FlowSpecBuilder {
        FlowSpecBuilder {
            src_node: db.sources[i],
            subflows: vec![SubflowSpec {
                local_port: xmp_netsim::PortId(0),
                src: Dumbbell::src_addr(i),
                dst: Dumbbell::dst_addr(i),
            }],
            size,
            scheme,
            start: SimTime::from_millis(start_ms),
            category: None,
            tag: 0,
        }
    }

    #[test]
    fn single_flow_transfers_exact_bytes() {
        let (mut sim, db) = setup(1);
        let mut d = Driver::new();
        let size = 5 * DEFAULT_MSS as u64 + 123;
        let conn = d.submit(flow(&db, 0, size, Scheme::xmp(1), 0));
        d.run(&mut sim, SimTime::from_secs(2), |_, _, _| {});
        let rec = d.record(conn).expect("record of the submitted flow");
        assert!(rec.completed.is_some(), "flow did not finish");
        assert!(rec.goodput_bps > 0.0);
        assert_eq!(d.completed_count(), 1);
    }

    #[test]
    fn staggered_starts_are_respected() {
        let (mut sim, db) = setup(2);
        let mut d = Driver::new();
        let c1 = d.submit(flow(&db, 0, 200_000, Scheme::Dctcp, 0));
        let c2 = d.submit(flow(&db, 1, 200_000, Scheme::Dctcp, 50));
        d.run(&mut sim, SimTime::from_secs(2), |_, _, _| {});
        let r1 = d.record(c1).expect("record of flow 1");
        let r2 = d.record(c2).expect("record of flow 2");
        assert!(
            r1.completed.expect("flow 1 completed") < r2.completed.expect("flow 2 completed")
        );
        assert!(r2.start >= SimTime::from_millis(50));
    }

    #[test]
    fn on_complete_can_chain_flows() {
        let (mut sim, db) = setup(1);
        let mut d = Driver::new();
        d.submit(flow(&db, 0, 100_000, Scheme::Tcp, 0));
        let mut started = 1;
        d.run(&mut sim, SimTime::from_secs(5), |sim, d, _conn| {
            if started < 3 {
                started += 1;
                let f = flow(&db, 0, 100_000, Scheme::Tcp, 0);
                let f = FlowSpecBuilder {
                    start: sim.now(),
                    ..f
                };
                d.submit(f);
            }
        });
        assert_eq!(d.completed_count(), 3);
    }

    #[test]
    fn unbounded_flow_stopped_and_recorded() {
        let (mut sim, db) = setup(1);
        let mut d = Driver::new();
        let conn = d.submit(flow(&db, 0, u64::MAX, Scheme::xmp(1), 0));
        d.run(&mut sim, SimTime::from_millis(500), |_, _, _| {});
        d.stop_flow(&mut sim, conn);
        let rec = d.record(conn).expect("record of the stopped flow");
        assert!(rec.completed.is_none());
        // ~300 Mbps for 0.5 s less handshake/ramp-up.
        assert!(
            rec.goodput_bps > 0.5 * 300e6 && rec.goodput_bps < 310e6,
            "goodput {}",
            rec.goodput_bps
        );
        // After stopping, the network drains and nothing more is acked.
        d.run(&mut sim, SimTime::from_millis(600), |_, _, _| {});
    }

    #[test]
    fn rate_sampler_sees_the_bottleneck_rate() {
        let (mut sim, db) = setup(1);
        let mut d = Driver::new();
        let conn = d.submit(flow(&db, 0, u64::MAX, Scheme::xmp(1), 0));
        let mut sampler = RateSampler::new();
        d.run(&mut sim, SimTime::from_millis(300), |_, _, _| {});
        sampler.sample(&mut sim, &d, conn, 0); // establish baseline
        d.run(&mut sim, SimTime::from_millis(800), |_, _, _| {});
        let rate = sampler.sample(&mut sim, &d, conn, 0);
        assert!(
            (0.85 * 300e6..310e6).contains(&rate),
            "steady rate {rate} not near 300 Mbps"
        );
        d.stop_flow(&mut sim, conn);
    }

    #[test]
    fn two_xmp_flows_share_fairly_and_keep_queue_near_k() {
        let (mut sim, db) = setup(2);
        let mut d = Driver::new();
        let c1 = d.submit(flow(&db, 0, u64::MAX, Scheme::xmp(1), 0));
        let c2 = d.submit(flow(&db, 1, u64::MAX, Scheme::xmp(1), 0));
        let mut sampler = RateSampler::new();
        d.run(&mut sim, SimTime::from_millis(500), |_, _, _| {});
        sampler.sample(&mut sim, &d, c1, 0);
        sampler.sample(&mut sim, &d, c2, 0);
        d.run(&mut sim, SimTime::from_millis(1500), |_, _, _| {});
        let r1 = sampler.sample(&mut sim, &d, c1, 0);
        let r2 = sampler.sample(&mut sim, &d, c2, 0);
        let jain = crate::metrics::jain_index(&[r1, r2]);
        assert!(jain > 0.95, "jain={jain} r1={r1} r2={r2}");
        assert!((r1 + r2) > 0.85 * 300e6, "under-utilized: {}", r1 + r2);
        // Buffer occupancy stays around K = 15, far below the 100 cap.
        let mean_q = sim
            .link(db.bottleneck)
            .dir(0)
            .stats
            .mean_depth(sim.now());
        assert!(mean_q < 25.0, "mean queue {mean_q} pkts");
        d.stop_flow(&mut sim, c1);
        d.stop_flow(&mut sim, c2);
    }
}
