//! TraSh — the Traffic Shifting algorithm (paper Section 2.2).
//!
//! TraSh couples the subflows of an MPTCP flow by retuning each subflow's
//! additive-increase gain δ once per round:
//!
//! ```text
//!            T_{s,r} · x_{s,r}      cwnd_r / srtt_r · srtt_r         (Eq. 9)
//! δ_{s,r} = ─────────────────── = ────────────────────────────
//!               T_s · y_s           min_rtt · Σ_j cwnd_j/srtt_j
//! ```
//!
//! i.e. `delta[r] = cwnd[r] / (total_rate × min_rtt)` in Algorithm 1, where
//! `total_rate = Σ_j instant_rate[j]` and `instant_rate[j] =
//! cwnd[j]/srtt[j]`. Following the Congestion Equality Principle, δ grows on
//! paths whose marking probability is below the flow-aggregate congestion
//! `U′(y)` (Proposition 1) and shrinks on more-congested ones, shifting
//! traffic towards less congested paths.

use xmp_transport::cc::SubflowCc;

/// Compute the per-round δ for subflow `r` from the live subflow states
/// (Algorithm 1's parameter-adjustment step).
///
/// Subflows with no RTT estimate yet contribute nothing to the total rate;
/// if none has an estimate the function returns 1 (the TraSh
/// initialization value).
pub fn delta_for(r: usize, view: &[SubflowCc]) -> f64 {
    let min_rtt = view
        .iter()
        .filter_map(|s| s.srtt)
        .min()
        .map(|d| d.as_secs_f64());
    let Some(min_rtt) = min_rtt else {
        return 1.0;
    };
    let total_rate: f64 = view.iter().filter_map(|s| s.instant_rate()).sum();
    if total_rate <= 0.0 || min_rtt <= 0.0 {
        return 1.0;
    }
    (view[r].cwnd / (total_rate * min_rtt)).clamp(MIN_DELTA, MAX_DELTA)
}

/// δ is clamped away from 0 so a starved subflow keeps probing its path
/// (the paper keeps subflows alive with a 2-packet window floor; a zero
/// gain would freeze them permanently), and bounded above for stability.
pub const MIN_DELTA: f64 = 0.01;
/// Upper clamp on δ.
pub const MAX_DELTA: f64 = 8.0;

#[cfg(test)]
mod tests {
    use super::*;
    use xmp_des::SimRng;
    use xmp_des::SimDuration;

    fn sub(cwnd: f64, rtt_us: u64) -> SubflowCc {
        let mut s = SubflowCc::new(cwnd);
        s.ssthresh = 1.0;
        s.srtt = Some(SimDuration::from_micros(rtt_us));
        s
    }

    #[test]
    fn single_path_delta_is_one() {
        // Eq. 9 with one subflow: delta = (T·x)/(T·x) = 1 — BOS exactly.
        let v = vec![sub(17.0, 250)];
        assert!((delta_for(0, &v) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equal_paths_split_delta_evenly() {
        let v = vec![sub(10.0, 200), sub(10.0, 200)];
        assert!((delta_for(0, &v) - 0.5).abs() < 1e-9);
        assert!((delta_for(1, &v) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bigger_window_bigger_delta() {
        let v = vec![sub(15.0, 200), sub(5.0, 200)];
        let d0 = delta_for(0, &v);
        let d1 = delta_for(1, &v);
        assert!(d0 > d1);
        // Equal RTTs: deltas proportional to windows and summing to 1.
        assert!((d0 + d1 - 1.0).abs() < 1e-9);
        assert!((d0 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn rtt_scaling_matches_eq9() {
        // delta_r = T_r x_r / (T_s y_s): a slower path with the same cwnd
        // has a smaller rate but the same T_r·x_r product (= cwnd), so its
        // delta equals the fast path's.
        let v = vec![sub(10.0, 100), sub(10.0, 400)];
        let d0 = delta_for(0, &v);
        let d1 = delta_for(1, &v);
        assert!((d0 - d1).abs() < 1e-9, "T_r*x_r = cwnd_r for both");
        // total_rate = 10/1e-4 + 10/4e-4 = 125_000 pkts/s; min_rtt = 1e-4;
        // delta = 10 / 12.5 = 0.8.
        assert!((d0 - 0.8).abs() < 1e-9);
    }

    #[test]
    fn no_rtt_yet_returns_initialization_value() {
        let mut s = SubflowCc::new(10.0);
        s.ssthresh = 1.0;
        assert!((delta_for(0, &[s]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clamped_to_bounds() {
        // A vanishing subflow next to a huge one.
        let v = vec![sub(2.0, 100), sub(100_000.0, 100)];
        assert!(delta_for(0, &v) >= MIN_DELTA);
        let v = vec![sub(100_000.0, 100), sub(0.1, 100_000)];
        assert!(delta_for(0, &v) <= MAX_DELTA);
    }

    /// With equal RTTs, deltas are window-proportional and sum to 1 —
    /// except that near-starved subflows are clamped *up* to MIN_DELTA,
    /// so the sum lands in [1, 1 + n*MIN_DELTA]. 250 seeded cases.
    #[test]
    fn equal_rtt_deltas_sum_to_one_seeded() {
        for seed in 0..250u64 {
            let mut rng = SimRng::new(seed);
            let n = 2 + rng.index(3);
            let v: Vec<SubflowCc> = (0..n)
                .map(|_| sub(2.0 + rng.unit_f64() * 98.0, 250))
                .collect();
            let sum: f64 = (0..v.len()).map(|r| delta_for(r, &v)).sum();
            let upper = 1.0 + v.len() as f64 * MIN_DELTA;
            assert!(
                (1.0 - 1e-6..=upper + 1e-6).contains(&sum),
                "seed {seed}: sum={sum} upper={upper}"
            );
        }
    }

    /// Proposition 1, computational form: if subflow r's equilibrium
    /// marking probability is below the aggregate congestion U'(y),
    /// the recomputed delta exceeds the current one. 250 seeded cases.
    #[test]
    fn proposition_1_seeded() {
        for seed in 0..250u64 {
            let mut rng = SimRng::new(seed);
            let cwnd_a = 2.0 + rng.unit_f64() * 58.0;
            let cwnd_b = 2.0 + rng.unit_f64() * 58.0;
            let rtt_a = rng.uniform_u64(100, 1999);
            let rtt_b = rng.uniform_u64(100, 1999);
            let delta_r = 0.05 + rng.unit_f64() * 3.95;
            let beta = (2 + rng.index(5)) as f64;
            let v = vec![sub(cwnd_a, rtt_a), sub(cwnd_b, rtt_b)];
            let t_r = rtt_a as f64 * 1e-6;
            let t_s = (rtt_a.min(rtt_b)) as f64 * 1e-6;
            let x_r = cwnd_a / t_r;
            let y: f64 = v.iter().filter_map(|s| s.instant_rate()).sum();
            // Eq. 8 and Eq. 7:
            let p_r = 1.0 / (1.0 + x_r * t_r / (delta_r * beta));
            let u_prime = 1.0 / (1.0 + y * t_s / beta);
            let new_delta = delta_for(0, &v);
            if p_r < u_prime && (MIN_DELTA..MAX_DELTA).contains(&new_delta) {
                assert!(
                    new_delta > delta_r,
                    "seed {seed}: p={p_r} < U'={u_prime} but delta {delta_r} -> {new_delta}"
                );
            }
        }
    }
}
