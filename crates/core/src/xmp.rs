//! XMP = BOS + TraSh as a pluggable congestion controller
//! (the paper's Algorithm 1, verbatim structure).
//!
//! Per new ACK on subflow `r`:
//!
//! ```text
//! // per-round operations (ack > beg_seq[r]):
//! instant_rate[r] = snd_cwnd[r] / srtt[r]
//! total_rate      = Σ instant_rate;  min_rtt = min srtt
//! delta[r]        = snd_cwnd[r] / (total_rate × min_rtt)        // TraSh
//! if state[r] = NORMAL and snd_cwnd[r] > snd_ssthresh[r]:       // BOS CA
//!     adder[r] += delta[r]; snd_cwnd[r] += ⌊adder[r]⌋; adder[r] -= ⌊adder[r]⌋
//! beg_seq[r] = snd_nxt[r]
//!
//! // per-ack operations:
//! if state[r] = NORMAL and snd_cwnd[r] ≤ snd_ssthresh[r]: snd_cwnd[r] += 1
//! if state[r] ≠ NORMAL and ack ≥ cwr_seq[r]: state[r] = NORMAL
//!
//! // at receiving ECE or CWR:
//! if state[r] = NORMAL:
//!     state[r] = REDUCED; cwr_seq[r] = snd_nxt[r]
//!     if snd_cwnd[r] > snd_ssthresh[r]:
//!         snd_cwnd[r] -= max(snd_cwnd[r]/β, 1); snd_cwnd[r] = max(snd_cwnd[r], 2)
//!     snd_ssthresh[r] = snd_cwnd[r] − 1
//! ```
//!
//! Packet loss falls back to the standard TCP response (per-subflow
//! halving + NewReno recovery in the sender machinery), as in the kernel
//! implementation.

use crate::bos::RoundState;
use crate::trash;
use xmp_transport::cc::{AckInfo, CcSnapshot, CongestionControl, SubflowCc, MIN_CWND};
use xmp_transport::segment::EchoMode;

/// The eXplicit MultiPath congestion controller.
#[derive(Debug)]
pub struct Xmp {
    beta: f64,
    coupled: bool,
    rounds: Vec<RoundState>,
}

impl Xmp {
    /// XMP with window-reduction factor `1/beta`
    /// (`mptcp_xmp_reducer` in the kernel module; the paper recommends 4).
    pub fn new(beta: u32) -> Self {
        assert!((2..=16).contains(&beta), "Eq. (1) requires beta >= 2");
        Xmp {
            beta: f64::from(beta),
            coupled: true,
            rounds: vec![RoundState::new()],
        }
    }

    /// Ablation: BOS independently on every subflow with a fixed gain
    /// `δ = 1` — TraSh disabled. Demonstrates why coupling matters: an
    /// n-subflow flow then grabs ~n competitors' worth of bandwidth
    /// (the fairness goal the paper's Section 2.2 motivates).
    pub fn uncoupled(beta: u32) -> Self {
        Xmp {
            coupled: false,
            ..Xmp::new(beta)
        }
    }

    /// Whether TraSh coupling is active.
    pub fn is_coupled(&self) -> bool {
        self.coupled
    }

    /// The configured β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Current δ gain of subflow `r` (tests / tracing).
    pub fn delta(&self, r: usize) -> f64 {
        self.rounds[r].delta
    }

    /// Round state of subflow `r` (tests / tracing).
    pub fn round(&self, r: usize) -> &RoundState {
        &self.rounds[r]
    }
}

impl CongestionControl for Xmp {
    fn init(&mut self, n: usize) {
        self.rounds = (0..n).map(|_| RoundState::new()).collect();
    }

    fn on_subflow_added(&mut self) {
        self.rounds.push(RoundState::new());
    }

    fn echo_mode(&self) -> EchoMode {
        EchoMode::CeCount
    }

    fn on_ack(&mut self, r: usize, info: &AckInfo, view: &mut [SubflowCc]) {
        let round = &mut self.rounds[r];

        // Per-ack state recovery must come first so a CE that arrives with
        // the ACK that closes the previous reduction can act this round.
        round.maybe_recover(info.ack_seq);

        // "At receiving ECE or CWR".
        if info.ce_count > 0 {
            round.on_ce(&mut view[r], self.beta);
        }

        // Per-round operations.
        if round.round_ended(info.ack_seq, view[r].snd_nxt) {
            round.delta = if self.coupled {
                trash::delta_for(r, view)
            } else {
                1.0 // ablation: plain BOS per subflow
            };
            round.apply_increase(&mut view[r]);
        }

        // Per-ack slow start.
        if info.newly_acked > 0 && info.ce_count == 0 {
            round.slow_start_tick(&mut view[r]);
        }
    }

    fn ssthresh_on_loss(&mut self, r: usize, view: &[SubflowCc]) -> f64 {
        (view[r].cwnd / 2.0).max(MIN_CWND)
    }

    fn on_rto(&mut self, r: usize, view: &mut [SubflowCc]) {
        self.rounds[r].on_rto(view[r].snd_una);
    }

    fn name(&self) -> &'static str {
        if self.coupled {
            "XMP"
        } else {
            "XMP-uncoupled"
        }
    }

    fn observed_round_p(&self, r: usize) -> Option<f64> {
        self.rounds.get(r).map(RoundState::observed_p)
    }

    fn probe(&self, r: usize) -> Option<CcSnapshot> {
        self.rounds.get(r).map(RoundState::snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmp_des::{SimDuration, SimTime};

    fn info(ack_seq: u64, newly: u64, ce: u8) -> AckInfo {
        AckInfo {
            ack_seq,
            newly_acked: newly,
            ce_count: ce,
            covered: 1,
            rtt_sample: None,
            now: SimTime::ZERO,
            mss: 1460,
        }
    }

    fn sub(cwnd: f64, rtt_us: u64, snd_nxt: u64) -> SubflowCc {
        let mut s = SubflowCc::new(cwnd);
        s.ssthresh = 1.0;
        s.srtt = Some(SimDuration::from_micros(rtt_us));
        s.snd_nxt = snd_nxt;
        s
    }

    #[test]
    fn deltas_follow_trash_at_round_end() {
        let mut cc = Xmp::new(4);
        cc.init(2);
        let mut v = vec![sub(15.0, 200, 30_000), sub(5.0, 200, 10_000)];
        cc.on_ack(0, &info(1460, 1460, 0), &mut v);
        assert!((cc.delta(0) - 0.75).abs() < 1e-9);
        cc.on_ack(1, &info(1460, 1460, 0), &mut v);
        // Subflow 0 grew by floor(adder) by now; recompute expectation.
        let expect = v[1].cwnd / ((v[0].cwnd / 200e-6 + v[1].cwnd / 200e-6) * 200e-6);
        assert!((cc.delta(1) - expect).abs() < 1e-6);
    }

    #[test]
    fn growth_is_delta_per_round_not_per_ack() {
        let mut cc = Xmp::new(4);
        cc.init(2);
        let mut v = vec![sub(10.0, 200, 14_600), sub(10.0, 200, 14_600)];
        // Round 1 end on subflow 0: delta=0.5, adder 0.5 -> no whole packet.
        cc.on_ack(0, &info(1460, 1460, 0), &mut v);
        assert!((v[0].cwnd - 10.0).abs() < 1e-9);
        // Round 2 end: adder 1.0 -> +1.
        v[0].snd_nxt = 29_200;
        cc.on_ack(0, &info(14_601, 1460, 0), &mut v);
        assert!((v[0].cwnd - 11.0).abs() < 1e-9);
    }

    #[test]
    fn ce_reduction_uses_beta() {
        let mut cc = Xmp::new(4);
        cc.init(2);
        let mut v = vec![sub(16.0, 200, 30_000), sub(16.0, 200, 30_000)];
        cc.on_ack(0, &info(1460, 1460, 2), &mut v);
        // 16 - 16/4 = 12; the sibling is untouched (coupling happens via
        // delta, not via direct window coupling).
        assert!((v[0].cwnd - 12.0).abs() < 1e-9);
        assert!((v[1].cwnd - 16.0).abs() < 1e-9);
    }

    #[test]
    fn traffic_shifts_towards_unmarked_path() {
        // Path 0 gets marked every round, path 1 never: delta_1 must grow
        // past delta_0 and window 1 must end higher.
        let mut cc = Xmp::new(4);
        cc.init(2);
        let mut v = vec![sub(20.0, 200, 0), sub(20.0, 200, 0)];
        let (mut a0, mut a1) = (0u64, 0u64);
        for _ in 0..200 {
            a0 += 14_600;
            v[0].snd_nxt = a0 + 14_600;
            v[0].snd_una = a0;
            cc.on_ack(0, &info(a0, 1460, 1), &mut v);
            a1 += 14_600;
            v[1].snd_nxt = a1 + 14_600;
            v[1].snd_una = a1;
            cc.on_ack(1, &info(a1, 1460, 0), &mut v);
        }
        assert!(
            v[1].cwnd > v[0].cwnd * 1.5,
            "expected shift: cwnd0={} cwnd1={}",
            v[0].cwnd,
            v[1].cwnd
        );
        assert!(cc.delta(1) > cc.delta(0));
    }

    #[test]
    fn equilibrium_windows_converge_under_threshold_feedback() {
        // Model the network's negative feedback: a subflow is marked
        // whenever its own window exceeds the path's capacity (~30 pkts on
        // equal paths). Windows must then stabilize near capacity and the
        // flow stays balanced across its own subflows.
        let mut cc = Xmp::new(4);
        cc.init(2);
        let mut v = vec![sub(10.0, 200, 0), sub(40.0, 200, 0)];
        let mut acks = [0u64; 2];
        for _ in 0..600 {
            for r in 0..2 {
                let mark = u8::from(v[r].cwnd > 30.0);
                acks[r] += 14_600;
                v[r].snd_nxt = acks[r] + 14_600;
                v[r].snd_una = acks[r];
                cc.on_ack(r, &info(acks[r], 1460, mark), &mut v);
            }
        }
        for (r, sf) in v.iter().enumerate() {
            assert!(
                (20.0..36.0).contains(&sf.cwnd),
                "subflow {r} cwnd={} not near capacity",
                sf.cwnd
            );
        }
        let ratio = v[0].cwnd / v[1].cwnd;
        assert!((0.6..1.7).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn single_subflow_degenerates_to_bos() {
        use crate::bos::Bos;
        let mut xmp = Xmp::new(4);
        xmp.init(1);
        let mut bos = Bos::new(4);
        bos.init(1);
        let mut vx = vec![sub(10.0, 200, 0)];
        let mut vb = vec![sub(10.0, 200, 0)];
        let mut ack = 0u64;
        for round in 0..100 {
            ack += 14_600;
            let ce = u8::from(round % 7 == 6);
            vx[0].snd_nxt = ack + 14_600;
            vb[0].snd_nxt = ack + 14_600;
            xmp.on_ack(0, &info(ack, 1460, ce), &mut vx);
            bos.on_ack(0, &info(ack, 1460, ce), &mut vb);
            assert!(
                (vx[0].cwnd - vb[0].cwnd).abs() < 1e-9,
                "diverged at round {round}: {} vs {}",
                vx[0].cwnd,
                vb[0].cwnd
            );
        }
    }

    #[test]
    fn loss_response_is_standard_halving() {
        let mut cc = Xmp::new(4);
        cc.init(1);
        let v = vec![sub(30.0, 200, 0)];
        assert!((cc.ssthresh_on_loss(0, &v) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn beta_bounds() {
        let _ = Xmp::new(2);
        let _ = Xmp::new(16);
    }

    #[test]
    fn uncoupled_keeps_delta_at_one() {
        let mut cc = Xmp::uncoupled(4);
        cc.init(3);
        assert!(!cc.is_coupled());
        assert_eq!(cc.name(), "XMP-uncoupled");
        let mut v = vec![
            sub(30.0, 200, 30_000),
            sub(5.0, 200, 10_000),
            sub(10.0, 200, 20_000),
        ];
        cc.on_ack(0, &info(1460, 1460, 0), &mut v);
        cc.on_ack(1, &info(1460, 1460, 0), &mut v);
        // Coupled XMP would give these very different deltas; uncoupled
        // keeps the full BOS gain on every path.
        assert!((cc.delta(0) - 1.0).abs() < 1e-12);
        assert!((cc.delta(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "beta >= 2")]
    fn beta_too_small_panics() {
        Xmp::new(1);
    }

    mod props {
        use super::*;
        use xmp_des::SimRng;

        /// Under arbitrary ack streams, XMP's invariants hold:
        /// cwnd >= 2 and delta stays within the TraSh clamps.
        /// (The once-per-window reduction guarantee is deterministic
        /// and covered by `bos::tests::at_most_one_reduction_per_round`;
        /// it is *per window of data*, not per beg_seq round, so a
        /// rounds-based bound would be the wrong invariant.)
        /// 250 seeded ack streams; the failing seed is printed.
        #[test]
        fn xmp_invariants_seeded() {
            for seed in 0..250u64 {
                let mut rng = SimRng::new(seed);
                let beta = 2 + rng.index(6) as u32;
                let steps = 1 + rng.index(299);
                let mut cc = Xmp::new(beta);
                cc.init(2);
                let mut v = vec![sub(10.0, 200, 0), sub(10.0, 300, 0)];
                let mut acks = [0u64; 2];
                for _ in 0..steps {
                    let advance = rng.index(3) as u64;
                    let ce = rng.index(4) as u8;
                    #[allow(clippy::needless_range_loop)] // r indexes two arrays
                    for r in 0..2 {
                        acks[r] += advance * 1460;
                        v[r].snd_una = acks[r];
                        // Realistic sender: snd_nxt leads by a full window.
                        v[r].snd_nxt = acks[r] + (v[r].cwnd as u64) * 1460;
                        cc.on_ack(r, &info(acks[r], advance * 1460, ce.min(3)), &mut v);
                        assert!(v[r].cwnd >= 2.0, "seed {seed}: cwnd {}", v[r].cwnd);
                        let d = cc.delta(r);
                        assert!(
                            (crate::trash::MIN_DELTA..=crate::trash::MAX_DELTA).contains(&d),
                            "seed {seed}: delta {d}"
                        );
                    }
                }
            }
        }

        /// The observed p never exceeds 1 and matches the counters.
        #[test]
        fn observed_p_consistent_seeded() {
            for seed in 0..250u64 {
                let mut rng = SimRng::new(seed);
                let marks = 1 + rng.index(199);
                let mut cc = Xmp::new(4);
                cc.init(1);
                let mut v = vec![sub(20.0, 200, 0)];
                let mut ack = 0u64;
                for _ in 0..marks {
                    ack += 14_600;
                    v[0].snd_una = ack;
                    v[0].snd_nxt = ack + 14_600;
                    cc.on_ack(0, &info(ack, 1460, u8::from(rng.chance(0.5))), &mut v);
                }
                let p = cc.observed_round_p(0).unwrap();
                assert!((0.0..=1.0).contains(&p), "seed {seed}: p={p}");
            }
        }
    }
}
