//! Parameter selection for XMP: the reduction factor β and the switch
//! marking threshold K.
//!
//! The full-utilization condition (paper Eq. 1) requires the post-cut
//! window to still cover the pipe: `(K + BDP)/β ≤ K`, i.e.
//!
//! ```text
//! K ≥ BDP / (β − 1),   β ≥ 2.
//! ```
//!
//! Larger β ⇒ smaller admissible K ⇒ lower queueing delay and more burst
//! headroom, but slower convergence and worse fairness (the paper's Figs. 4
//! and 6 show β = 6 degrading both); the paper recommends integer β between
//! 3 and 5 and uses **β = 4, K = 10** for 1 Gbps DCNs with RTT ≤ 400 µs
//! (BDP ≈ 33 packets).

use xmp_des::{Bandwidth, ByteSize, SimDuration};

/// A validated (β, K) configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XmpParams {
    /// Window-reduction divisor β (cut = cwnd/β).
    pub beta: u32,
    /// Switch marking threshold K in packets.
    pub k: usize,
}

impl XmpParams {
    /// The paper's recommended DCN setting: β = 4, K = 10.
    pub const PAPER_DEFAULT: XmpParams = XmpParams { beta: 4, k: 10 };

    /// Bandwidth-delay product in packets for a path.
    pub fn bdp_packets(bandwidth: Bandwidth, rtt: SimDuration, packet: ByteSize) -> f64 {
        bandwidth.bytes_in(rtt).as_bytes() as f64 / packet.as_bytes() as f64
    }

    /// Smallest K satisfying Eq. (1) for the given BDP (packets) and β.
    pub fn k_lower_bound(bdp_packets: f64, beta: u32) -> usize {
        assert!(beta >= 2, "Eq. (1) requires beta >= 2");
        (bdp_packets / (f64::from(beta) - 1.0)).ceil() as usize
    }

    /// Pick the paper's β = 4 and the smallest admissible K for a path.
    pub fn recommended(bandwidth: Bandwidth, rtt: SimDuration, packet: ByteSize) -> XmpParams {
        let beta = 4;
        let bdp = Self::bdp_packets(bandwidth, rtt, packet);
        XmpParams {
            beta,
            k: Self::k_lower_bound(bdp, beta).max(1),
        }
    }

    /// Whether this configuration satisfies Eq. (1) for the given BDP.
    pub fn full_utilization(&self, bdp_packets: f64) -> bool {
        self.k as f64 >= bdp_packets / (f64::from(self.beta) - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> ByteSize {
        ByteSize::from_bytes(1500)
    }

    #[test]
    fn paper_dcn_bdp_is_about_33_packets() {
        let bdp = XmpParams::bdp_packets(
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(400),
            pkt(),
        );
        assert!((32.0..34.0).contains(&bdp), "bdp={bdp}");
    }

    #[test]
    fn beta4_k10_plus_satisfies_eq1_for_the_paper_dcn() {
        // BDP ~33 pkts, beta=4 -> K >= 11; the paper rounds the BDP
        // ("about 33") and picks K=10, right at the bound. Our ceil is
        // conservative; K=11 satisfies it exactly.
        let bdp = 33.0;
        assert_eq!(XmpParams::k_lower_bound(bdp, 4), 11);
        assert!(XmpParams { beta: 4, k: 11 }.full_utilization(bdp));
        assert!(!XmpParams { beta: 4, k: 8 }.full_utilization(bdp));
    }

    #[test]
    fn fig1_example_beta2_k20() {
        // Paper Section 2.1: BDP ~19 pkts at 1 Gbps x 225 us; halving
        // (beta=2) needs K >= 19, "so if K = 20, halving cwnd still can
        // fully utilize link capacity".
        let bdp = XmpParams::bdp_packets(
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(225),
            pkt(),
        );
        let k = XmpParams::k_lower_bound(bdp, 2);
        assert!(k <= 20, "k={k}");
        assert!(XmpParams { beta: 2, k: 20 }.full_utilization(bdp));
    }

    #[test]
    fn torus_settings_match_paper_section5() {
        // Section 5.1: BDP between 15 and 60 pkts; beta/K pairs (4,20),
        // (5,15), (6,10). Check the pairs respect Eq. 1 at the relevant
        // per-link BDPs (e.g. 0.5 Gbps x 350 us ~ 14.6 pkts for L5).
        for (beta, k) in [(4u32, 20usize), (5, 15), (6, 10)] {
            let bdp_small = XmpParams::bdp_packets(
                Bandwidth::from_gbps_f64(0.5),
                SimDuration::from_micros(350),
                pkt(),
            );
            assert!(
                XmpParams { beta, k }.full_utilization(bdp_small),
                "beta={beta} k={k}"
            );
        }
    }

    #[test]
    fn larger_beta_allows_smaller_k() {
        let bdp = 45.0; // the testbed's ~45-packet BDP
        let k2 = XmpParams::k_lower_bound(bdp, 2);
        let k4 = XmpParams::k_lower_bound(bdp, 4);
        let k6 = XmpParams::k_lower_bound(bdp, 6);
        assert!(k2 > k4 && k4 > k6);
        assert_eq!(k2, 45);
        assert_eq!(k4, 15); // the testbed used K = 15
    }

    #[test]
    fn recommended_uses_beta_4() {
        let p = XmpParams::recommended(
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(400),
            pkt(),
        );
        assert_eq!(p.beta, 4);
        assert!(p.k >= 10);
    }

    #[test]
    #[should_panic(expected = "beta >= 2")]
    fn k_bound_rejects_beta_1() {
        XmpParams::k_lower_bound(10.0, 1);
    }
}
