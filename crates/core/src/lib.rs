//! # xmp-core — the eXplicit MultiPath (XMP) congestion control scheme
//!
//! This crate implements the primary contribution of
//! *Explicit Multipath Congestion Control for Data Center Networks*
//! (Cao, Xu, Fu, Dong — CoNEXT 2013):
//!
//! * [`bos`] — **Buffer Occupancy Suppression**: the per-round window
//!   control driven by instantaneous-threshold ECN marking, with the
//!   `NORMAL`/`REDUCED` state machine of the paper's Fig. 2 / Algorithm 1
//!   (reduce by `1/β` at most once per round; 2-bit CE-count echo),
//! * [`trash`] — **Traffic Shifting**: the per-round retuning of each
//!   subflow's additive-increase gain `δ` (Eq. 9) that equalizes congestion
//!   across paths (Congestion Equality Principle),
//! * [`xmp`] — the composition of the two as a
//!   [`CongestionControl`](xmp_transport::CongestionControl) implementation
//!   (BOS is the 1-subflow case),
//! * [`params`] — β/K selection, including the full-utilization bound
//!   `K ≥ BDP/(β−1)` (Eq. 1),
//! * [`analysis`] — the closed-form fluid model: equilibrium marking
//!   probability (Eq. 3), the BOS/XMP utility functions (Eqs. 4, 6, 7), the
//!   subflow equilibrium (Eq. 8) and Proposition 1.
//!
//! ```
//! use xmp_core::Xmp;
//! use xmp_transport::CongestionControl;
//!
//! // The paper's recommended DCN configuration: beta = 4 (with K = 10 set
//! // on the switches).
//! let cc = Xmp::new(4);
//! assert_eq!(cc.name(), "XMP");
//! ```

pub mod analysis;
pub mod bos;
pub mod kind;
pub mod params;
pub mod trash;
pub mod xmp;

pub use bos::{Bos, EcnState, RoundState};
pub use kind::CcKind;
pub use params::XmpParams;
pub use xmp::Xmp;
