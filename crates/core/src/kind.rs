//! Closed enum over every in-tree congestion controller.
//!
//! [`CcKind`] is the static-dispatch counterpart to
//! `Box<dyn CongestionControl>`: the workload driver builds one per flow
//! (see `Scheme::make_cc` in `xmp-workloads`) and the generic
//! `MpSender<CcKind>` / `HostStack<CcKind>` monomorphize the per-ACK hot
//! path into direct calls — no vtable, no per-flow controller allocation.
//! External or experimental algorithms still plug in through
//! [`CcKind::Custom`], which the dispatch differential test also uses to
//! prove both paths bit-identical.

use crate::bos::Bos;
use crate::xmp::Xmp;
use xmp_transport::{
    AckInfo, CcSnapshot, CongestionControl, Dctcp, EchoMode, Lia, Olia, Reno, SubflowCc,
};

/// One in-tree congestion controller, statically dispatched.
pub enum CcKind {
    /// Standard NewReno (uncoupled).
    Reno(Reno),
    /// DCTCP's α-based proportional backoff (uncoupled).
    Dctcp(Dctcp),
    /// Buffer Occupancy Suppression — the paper's single-path building
    /// block (also XMP's uncoupled ablation arm when built per-subflow).
    Bos(Bos),
    /// The full XMP scheme: BOS + TraSh window coupling.
    Xmp(Xmp),
    /// MPTCP's Linked Increases Algorithm (RFC 6356).
    Lia(Lia),
    /// The Opportunistic LIA variant.
    Olia(Olia),
    /// Escape hatch for out-of-tree controllers: one virtual call, exactly
    /// the historical `Box<dyn CongestionControl>` behaviour.
    Custom(Box<dyn CongestionControl>),
}

/// Match-delegating implementation: every arm is a direct (inlinable) call
/// into the concrete controller, so enum dispatch is behaviourally
/// identical to the boxed path by construction.
macro_rules! delegate {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            CcKind::Reno($inner) => $body,
            CcKind::Dctcp($inner) => $body,
            CcKind::Bos($inner) => $body,
            CcKind::Xmp($inner) => $body,
            CcKind::Lia($inner) => $body,
            CcKind::Olia($inner) => $body,
            CcKind::Custom($inner) => $body,
        }
    };
}

impl CongestionControl for CcKind {
    fn init(&mut self, n: usize) {
        delegate!(self, c => c.init(n))
    }

    fn on_subflow_added(&mut self) {
        delegate!(self, c => c.on_subflow_added())
    }

    fn echo_mode(&self) -> EchoMode {
        delegate!(self, c => c.echo_mode())
    }

    fn on_ack(&mut self, r: usize, info: &AckInfo, view: &mut [SubflowCc]) {
        delegate!(self, c => c.on_ack(r, info, view))
    }

    fn ssthresh_on_loss(&mut self, r: usize, view: &[SubflowCc]) -> f64 {
        delegate!(self, c => c.ssthresh_on_loss(r, view))
    }

    fn on_rto(&mut self, r: usize, view: &mut [SubflowCc]) {
        delegate!(self, c => c.on_rto(r, view))
    }

    fn name(&self) -> &'static str {
        delegate!(self, c => c.name())
    }

    fn observed_round_p(&self, r: usize) -> Option<f64> {
        delegate!(self, c => c.observed_round_p(r))
    }

    fn probe(&self, r: usize) -> Option<CcSnapshot> {
        delegate!(self, c => c.probe(r))
    }
}

impl CcKind {
    /// Wrap this controller in the [`CcKind::Custom`] boxed escape hatch.
    /// The boxed value is the enum itself, so behaviour is identical and
    /// only the dispatch mechanism (vtable vs match) changes — the lever
    /// the dispatch differential test flips.
    pub fn boxed(self) -> CcKind {
        CcKind::Custom(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmp_des::SimTime;

    fn ack_info(newly_acked: u64, ce: u8, covered: u8) -> AckInfo {
        AckInfo {
            ack_seq: 0,
            newly_acked,
            ce_count: ce,
            covered,
            rtt_sample: None,
            now: SimTime::ZERO,
            mss: 1460,
        }
    }

    #[test]
    fn enum_and_boxed_dispatch_agree() {
        for mk in [
            || CcKind::Reno(Reno::new()),
            || CcKind::Dctcp(Dctcp::new()),
            || CcKind::Bos(Bos::new(4)),
            || CcKind::Xmp(Xmp::new(4)),
            || CcKind::Lia(Lia::new()),
            || CcKind::Olia(Olia::new()),
        ] {
            let mut plain = mk();
            let mut boxed = mk().boxed();
            assert_eq!(plain.name(), boxed.name());
            assert_eq!(plain.echo_mode(), boxed.echo_mode());
            // One subflow: standalone BOS rejects multipath init.
            plain.init(1);
            boxed.init(1);
            let mut va = vec![SubflowCc::new(10.0)];
            let mut vb = va.clone();
            let info = ack_info(1460, 1, 1);
            for _ in 0..50 {
                plain.on_ack(0, &info, &mut va);
                boxed.on_ack(0, &info, &mut vb);
            }
            assert_eq!(va[0].cwnd.to_bits(), vb[0].cwnd.to_bits());
            assert_eq!(
                plain.ssthresh_on_loss(0, &va).to_bits(),
                boxed.ssthresh_on_loss(0, &vb).to_bits()
            );
        }
    }
}
