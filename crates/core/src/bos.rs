//! BOS — the Buffer Occupancy Suppression algorithm (paper Section 2.1 and
//! Algorithm 1, with the round bookkeeping of Fig. 2).
//!
//! BOS is the per-subflow window control XMP runs on every path:
//!
//! 1. switches CE-mark arriving packets when the instantaneous queue length
//!    reaches `K` (implemented in `xmp_netsim::queue::EcnThreshold`),
//! 2. the receiver echoes the exact number of CEs (≤3 per ACK, the 2-bit
//!    ECE+CWR encoding — `xmp_transport::receiver` in `CeCount` mode),
//! 3. the sender, per **round** (the interval until a recorded sequence
//!    number `beg_seq` is acknowledged, ≈ one RTT):
//!    * grows `cwnd` by `δ` if the round saw no marks (using the fractional
//!      `adder` accumulator, since windows move in whole packets),
//!    * on the first marked ACK, cuts `cwnd` by `1/β` — **at most once per
//!      round**, enforced by the `NORMAL → REDUCED` transition and
//!      `cwr_seq`,
//!    * slow start (`cwnd ≤ ssthresh`): +1 per clean ACK; the first mark
//!      ends slow start via `ssthresh = cwnd − 1`.
//!
//! [`RoundState`] is the reusable per-subflow implementation; [`Bos`] is
//! the standalone single-path controller (used by the paper's Fig. 1
//! "halving cwnd" flows with β = 2, and as the XMP building block).

use xmp_transport::cc::{AckInfo, CcSnapshot, CongestionControl, SubflowCc, MIN_CWND};
use xmp_transport::segment::EchoMode;

/// The ECN reaction state of a subflow (paper Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EcnState {
    /// May react to the next CE echo.
    #[default]
    Normal,
    /// Already reduced this round; CE echoes are ignored until the
    /// reduction's `cwr_seq` is acknowledged.
    Reduced,
}

/// Per-subflow round/reduction bookkeeping (Fig. 2 / Algorithm 1).
#[derive(Clone, Debug)]
pub struct RoundState {
    /// Acknowledging past this sequence number ends the current round.
    pub beg_seq: u64,
    /// Acknowledging up to here re-enables reductions.
    pub cwr_seq: u64,
    /// NORMAL / REDUCED.
    pub state: EcnState,
    /// Fractional window-increase accumulator (`adder` in Algorithm 1).
    pub adder: f64,
    /// Additive-increase gain δ; 1 for standalone BOS, retuned per round by
    /// TraSh under XMP.
    pub delta: f64,
    /// Number of rounds that triggered a reduction (the observable form of
    /// the paper's congestion metric p(t): reductions / rounds ≈ p̃).
    pub reductions: u64,
    /// Number of completed rounds.
    pub rounds: u64,
}

impl Default for RoundState {
    fn default() -> Self {
        Self::new()
    }
}

impl RoundState {
    /// Fresh state with δ = 1 (TraSh initialization, paper step 1).
    pub fn new() -> Self {
        RoundState {
            beg_seq: 0,
            cwr_seq: 0,
            state: EcnState::Normal,
            adder: 0.0,
            delta: 1.0,
            reductions: 0,
            rounds: 0,
        }
    }

    /// Per-ACK state recovery: `REDUCED → NORMAL` once the window that was
    /// cut has been fully acknowledged (`snd_una ≥ cwr_seq`).
    pub fn maybe_recover(&mut self, ack_seq: u64) {
        if self.state != EcnState::Normal && ack_seq >= self.cwr_seq {
            self.state = EcnState::Normal;
        }
    }

    /// Handle an ACK carrying CE echoes ("At receiving ECE or CWR" in
    /// Algorithm 1). Cuts at most once per round. `beta ≥ 2`.
    pub fn on_ce(&mut self, sub: &mut SubflowCc, beta: f64) {
        debug_assert!(beta >= 2.0);
        if self.state != EcnState::Normal {
            return;
        }
        self.state = EcnState::Reduced;
        self.cwr_seq = sub.snd_nxt;
        self.reductions += 1;
        if sub.cwnd > sub.ssthresh {
            // Congestion avoidance: multiplicative decrease by 1/beta.
            let cut = (sub.cwnd / beta).max(1.0);
            sub.cwnd = (sub.cwnd - cut).max(MIN_CWND);
        }
        // Avoid re-entering slow start (and end it on the first mark).
        sub.ssthresh = (sub.cwnd - 1.0).max(1.0);
    }

    /// Whether `ack_seq` ends the current round; if so, records the next
    /// round boundary at `snd_nxt`.
    pub fn round_ended(&mut self, ack_seq: u64, snd_nxt: u64) -> bool {
        if ack_seq > self.beg_seq {
            self.beg_seq = snd_nxt;
            self.rounds += 1;
            true
        } else {
            false
        }
    }

    /// Observed per-round reduction probability — the empirical form of
    /// the paper's congestion metric `p(t)` (Eq. 2/3). Clamped to 1: the
    /// CWR window and the `beg_seq` round are slightly different clocks,
    /// so degenerate ACK streams can count one more reduction than rounds.
    pub fn observed_p(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            (self.reductions as f64 / self.rounds as f64).min(1.0)
        }
    }

    /// Snapshot for the probe layer ([`CongestionControl::probe`]): the
    /// Fig. 2 state, current δ and the round/reduction counters.
    pub fn snapshot(&self) -> CcSnapshot {
        CcSnapshot {
            reduced: self.state == EcnState::Reduced,
            delta: self.delta,
            rounds: self.rounds,
            reductions: self.reductions,
        }
    }

    /// End-of-round additive increase (congestion avoidance, NORMAL state):
    /// `adder += δ; cwnd += ⌊adder⌋; adder -= ⌊adder⌋`.
    pub fn apply_increase(&mut self, sub: &mut SubflowCc) {
        if self.state == EcnState::Normal && !sub.in_slow_start() {
            self.adder += self.delta;
            let whole = self.adder.floor();
            sub.cwnd += whole;
            self.adder -= whole;
        }
    }

    /// Per-ACK slow-start growth (+1 per clean new ACK in NORMAL state).
    pub fn slow_start_tick(&mut self, sub: &mut SubflowCc) {
        if self.state == EcnState::Normal && sub.in_slow_start() {
            sub.cwnd += 1.0;
        }
    }

    /// Reset transient state after an RTO (the machinery re-enters slow
    /// start; a stale `cwr_seq` must not suppress future reductions).
    pub fn on_rto(&mut self, snd_una: u64) {
        self.state = EcnState::Normal;
        self.adder = 0.0;
        self.beg_seq = snd_una;
        self.cwr_seq = snd_una;
    }
}

/// Standalone single-path BOS controller with window-reduction factor
/// `1/β`. The paper's Fig. 1(c)/(d) "halving cwnd" flows are `Bos::new(2)`.
#[derive(Debug)]
pub struct Bos {
    beta: f64,
    round: RoundState,
}

impl Bos {
    /// BOS with reduction factor `1/beta` (`beta ≥ 2`, Eq. 1).
    pub fn new(beta: u32) -> Self {
        assert!(beta >= 2, "Eq. (1) requires beta >= 2");
        Bos {
            beta: f64::from(beta),
            round: RoundState::new(),
        }
    }

    /// The configured β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Inspect the round state (tests / tracing).
    pub fn round(&self) -> &RoundState {
        &self.round
    }
}

impl CongestionControl for Bos {
    fn init(&mut self, n: usize) {
        assert_eq!(n, 1, "standalone BOS is single-path; use Xmp for MPTCP");
    }

    fn on_subflow_added(&mut self) {
        panic!("standalone BOS is single-path; use Xmp for MPTCP");
    }

    fn echo_mode(&self) -> EchoMode {
        EchoMode::CeCount
    }

    fn on_ack(&mut self, r: usize, info: &AckInfo, view: &mut [SubflowCc]) {
        debug_assert_eq!(r, 0);
        let sub = &mut view[0];
        self.round.maybe_recover(info.ack_seq);
        if info.ce_count > 0 {
            self.round.on_ce(sub, self.beta);
        }
        if self.round.round_ended(info.ack_seq, sub.snd_nxt) {
            // delta stays 1 for a single path (Eq. 9 degenerates to 1).
            self.round.apply_increase(sub);
        }
        if info.newly_acked > 0 && info.ce_count == 0 {
            self.round.slow_start_tick(sub);
        }
    }

    fn ssthresh_on_loss(&mut self, _r: usize, view: &[SubflowCc]) -> f64 {
        (view[0].cwnd / 2.0).max(MIN_CWND)
    }

    fn on_rto(&mut self, _r: usize, view: &mut [SubflowCc]) {
        self.round.on_rto(view[0].snd_una);
    }

    fn name(&self) -> &'static str {
        "BOS"
    }

    fn observed_round_p(&self, _r: usize) -> Option<f64> {
        Some(self.round.observed_p())
    }

    fn probe(&self, r: usize) -> Option<CcSnapshot> {
        (r == 0).then(|| self.round.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmp_des::SimTime;

    fn info(ack_seq: u64, newly: u64, ce: u8) -> AckInfo {
        AckInfo {
            ack_seq,
            newly_acked: newly,
            ce_count: ce,
            covered: 1,
            rtt_sample: None,
            now: SimTime::ZERO,
            mss: 1460,
        }
    }

    fn ca_sub(cwnd: f64, snd_nxt: u64) -> SubflowCc {
        let mut s = SubflowCc::new(cwnd);
        s.ssthresh = 1.0;
        s.snd_nxt = snd_nxt;
        s
    }

    #[test]
    fn reduction_is_cwnd_over_beta() {
        let mut b = Bos::new(4);
        let mut v = vec![ca_sub(20.0, 30_000)];
        b.on_ack(0, &info(1460, 1460, 1), &mut v);
        // 20 - max(20/4, 1) = 15
        assert!((v[0].cwnd - 15.0).abs() < 1e-9);
        assert_eq!(b.round().state, EcnState::Reduced);
        assert!((v[0].ssthresh - 14.0).abs() < 1e-9);
    }

    #[test]
    fn at_most_one_reduction_per_round() {
        let mut b = Bos::new(4);
        let mut v = vec![ca_sub(20.0, 30_000)];
        b.on_ack(0, &info(1460, 1460, 1), &mut v);
        let after_first = v[0].cwnd;
        // More CEs inside the same round are ignored.
        b.on_ack(0, &info(2920, 1460, 2), &mut v);
        b.on_ack(0, &info(4380, 1460, 1), &mut v);
        assert!((v[0].cwnd - after_first).abs() < 1e-9);
        // Once snd_una passes cwr_seq (30_000), the next CE cuts again.
        v[0].snd_nxt = 60_000;
        b.on_ack(0, &info(30_000, 1460, 1), &mut v);
        assert!(v[0].cwnd < after_first);
    }

    #[test]
    fn clean_round_grows_by_delta_one() {
        let mut b = Bos::new(4);
        let mut v = vec![ca_sub(10.0, 14_600)];
        // First ack past beg_seq=0 ends round 1: +1.
        b.on_ack(0, &info(1460, 1460, 0), &mut v);
        assert!((v[0].cwnd - 11.0).abs() < 1e-9);
        // Acks within the round do nothing.
        b.on_ack(0, &info(2920, 1460, 0), &mut v);
        assert!((v[0].cwnd - 11.0).abs() < 1e-9);
        // Crossing the recorded boundary (14_600) ends round 2.
        v[0].snd_nxt = 29_200;
        b.on_ack(0, &info(14_600 + 1, 1, 0), &mut v);
        assert!((v[0].cwnd - 12.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_delta_accumulates() {
        let mut r = RoundState::new();
        r.delta = 0.4;
        let mut s = ca_sub(10.0, 0);
        r.apply_increase(&mut s); // adder 0.4
        assert!((s.cwnd - 10.0).abs() < 1e-9);
        r.apply_increase(&mut s); // adder 0.8
        assert!((s.cwnd - 10.0).abs() < 1e-9);
        r.apply_increase(&mut s); // adder 1.2 -> +1, adder 0.2
        assert!((s.cwnd - 11.0).abs() < 1e-9);
        assert!((r.adder - 0.2).abs() < 1e-9);
    }

    #[test]
    fn slow_start_grows_per_ack_and_first_mark_exits() {
        let mut b = Bos::new(4);
        let mut v = vec![SubflowCc::new(10.0)]; // ssthresh = inf
        v[0].snd_nxt = 14_600;
        b.on_ack(0, &info(1460, 1460, 0), &mut v);
        // +1 slow start; round-end increase skipped in slow start.
        assert!((v[0].cwnd - 11.0).abs() < 1e-9);
        // First mark: no multiplicative cut in slow start, but ssthresh
        // drops to cwnd-1 which moves the flow to congestion avoidance.
        b.on_ack(0, &info(2920, 1460, 1), &mut v);
        assert!((v[0].cwnd - 11.0).abs() < 1e-9);
        assert!(!v[0].in_slow_start());
    }

    #[test]
    fn cwnd_floor_is_two() {
        let mut b = Bos::new(2);
        let mut v = vec![ca_sub(2.0, 3000)];
        b.on_ack(0, &info(1460, 1460, 3), &mut v);
        assert!(v[0].cwnd >= 2.0);
    }

    #[test]
    fn rto_resets_round_state() {
        let mut b = Bos::new(4);
        let mut v = vec![ca_sub(20.0, 30_000)];
        b.on_ack(0, &info(1460, 1460, 1), &mut v);
        assert_eq!(b.round().state, EcnState::Reduced);
        v[0].snd_una = 1460;
        b.on_rto(0, &mut v);
        assert_eq!(b.round().state, EcnState::Normal);
        assert_eq!(b.round().beg_seq, 1460);
    }

    #[test]
    fn uses_ce_count_echo_mode() {
        assert_eq!(Bos::new(4).echo_mode(), EchoMode::CeCount);
    }

    #[test]
    #[should_panic(expected = "beta >= 2")]
    fn beta_lower_bound_enforced() {
        Bos::new(1);
    }
}
