//! The fluid model behind XMP (paper Section 2, Eqs. 2–9).
//!
//! BOS window evolution in congestion avoidance (Eq. 2):
//!
//! ```text
//! dw/dt = δ/T·(1 − p(t)) − w/(Tβ)·p(t)
//! ```
//!
//! where `p(t)` is the probability that at least one packet is marked in a
//! round (the paper argues packets arrive in batches, so the per-round mark
//! probability — not a per-packet one — is the right congestion metric in
//! DCNs). Setting `dw/dt = 0` yields the equilibrium (Eq. 3), whose inverse
//! characterizes the utility function (Eq. 4); "multi-path-lizing" it gives
//! XMP's aggregate utility (Eq. 6) with derivative (Eq. 7), the per-subflow
//! equilibrium (Eq. 8), and the TraSh fixed point (Eq. 9).

/// Equilibrium per-round marking probability of BOS (Eq. 3):
/// `p̃ = 1 / (1 + w̃/(δβ))`.
pub fn equilibrium_mark_prob(w: f64, delta: f64, beta: f64) -> f64 {
    assert!(w >= 0.0 && delta > 0.0 && beta >= 2.0);
    1.0 / (1.0 + w / (delta * beta))
}

/// Equilibrium window for a given marking probability (Eq. 3 inverted):
/// `w̃ = δβ(1 − p)/p`.
pub fn equilibrium_window(p: f64, delta: f64, beta: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p) && p > 0.0);
    delta * beta * (1.0 - p) / p
}

/// BOS utility function (Eq. 4):
/// `U(x) = (δβ/T)·log(1 + Tx/(δβ))`, `x` in packets/second.
pub fn bos_utility(x: f64, delta: f64, beta: f64, t: f64) -> f64 {
    assert!(x >= 0.0 && t > 0.0);
    (delta * beta / t) * (1.0 + t * x / (delta * beta)).ln()
}

/// XMP aggregate utility (Eq. 6): `U(y) = (β/T_s)·log(1 + T_s·y/β)` with
/// `T_s = min_r T_{s,r}`.
pub fn xmp_utility(y: f64, beta: f64, t_s: f64) -> f64 {
    bos_utility(y, 1.0, beta, t_s)
}

/// Derivative of the XMP utility (Eq. 7): `U′(y) = 1/(1 + y·T_s/β)` — the
/// "expected congestion extent" of the flow's virtual single path.
pub fn xmp_utility_prime(y: f64, beta: f64, t_s: f64) -> f64 {
    assert!(y >= 0.0 && t_s > 0.0 && beta >= 2.0);
    1.0 / (1.0 + y * t_s / beta)
}

/// Per-subflow equilibrium marking probability (Eq. 8):
/// `p̃_{s,r} = 1/(1 + x_{s,r}·T_{s,r}/(δ_{s,r}β))`.
pub fn subflow_equilibrium_mark_prob(x: f64, t: f64, delta: f64, beta: f64) -> f64 {
    equilibrium_mark_prob(x * t, delta, beta)
}

/// The TraSh fixed point (Eq. 9): `δ_{s,r} = (T_{s,r}·x_{s,r}) / (T_s·y_s)`.
pub fn trash_fixed_point(t_r: f64, x_r: f64, t_s: f64, y_s: f64) -> f64 {
    assert!(t_s > 0.0 && y_s > 0.0);
    (t_r * x_r) / (t_s * y_s)
}

/// Converged BOS rate for a given δ and steady marking probability
/// (Algorithm step 2): `x = βδ(1 − p)/(T·p)`.
pub fn bos_converged_rate(delta: f64, beta: f64, t: f64, p: f64) -> f64 {
    equilibrium_window(p, delta, beta) / t
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmp_des::SimRng;

    #[test]
    fn eq3_and_its_inverse_agree() {
        for &(w, d, b) in &[(10.0, 1.0, 4.0), (33.0, 0.5, 2.0), (100.0, 2.0, 6.0)] {
            let p = equilibrium_mark_prob(w, d, b);
            let w2 = equilibrium_window(p, d, b);
            assert!((w - w2).abs() < 1e-9, "w={w} w2={w2}");
        }
    }

    #[test]
    fn utility_is_increasing_and_concave() {
        let (d, b, t) = (1.0, 4.0, 250e-6);
        let xs: Vec<f64> = (1..100).map(|i| i as f64 * 1000.0).collect();
        for win in xs.windows(3) {
            let (u0, u1, u2) = (
                bos_utility(win[0], d, b, t),
                bos_utility(win[1], d, b, t),
                bos_utility(win[2], d, b, t),
            );
            assert!(u1 > u0, "increasing");
            assert!(u2 - u1 < u1 - u0, "strictly concave");
        }
    }

    #[test]
    fn utility_prime_matches_numeric_derivative() {
        let (b, t) = (4.0, 250e-6);
        for y in [1e3, 1e4, 1e5] {
            let h = y * 1e-6;
            let numeric = (xmp_utility(y + h, b, t) - xmp_utility(y - h, b, t)) / (2.0 * h);
            let closed = xmp_utility_prime(y, b, t);
            assert!(
                ((numeric - closed) / closed).abs() < 1e-4,
                "y={y}: {numeric} vs {closed}"
            );
        }
    }

    #[test]
    fn congestion_equality_at_the_fixed_point() {
        // At delta from Eq. 9, the subflow equilibrium (Eq. 8) equals the
        // aggregate congestion (Eq. 7) — the derivation (7)=(8) in the
        // paper.
        let (beta, t_r, t_s) = (4.0, 400e-6, 250e-6);
        let (x_r, y_s) = (30_000.0, 100_000.0);
        let delta = trash_fixed_point(t_r, x_r, t_s, y_s);
        let p_r = subflow_equilibrium_mark_prob(x_r, t_r, delta, beta);
        let up = xmp_utility_prime(y_s, beta, t_s);
        assert!((p_r - up).abs() < 1e-12, "p={p_r} U'={up}");
    }

    #[test]
    fn rate_convergence_formula() {
        // x = beta*delta*(1-p)/(T*p): cross-check via Eq. 3.
        let (delta, beta, t, p) = (0.5, 4.0, 300e-6, 0.1);
        let x = bos_converged_rate(delta, beta, t, p);
        let w = x * t;
        assert!((equilibrium_mark_prob(w, delta, beta) - p).abs() < 1e-12);
    }

    /// Proposition 1 on the closed forms: p_r < U'(y) implies the Eq. 9
    /// update raises delta (for any positive rates/RTTs). 500 seeded
    /// cases; the failing seed is printed.
    #[test]
    fn proposition_1_closed_form_seeded() {
        for seed in 0..500u64 {
            let mut rng = SimRng::new(seed);
            let t_r = 1e-4 + rng.unit_f64() * (1e-2 - 1e-4);
            let t_s = t_r * (0.1 + rng.unit_f64() * 0.9); // T_s = min rtt <= T_r
            let x_r = 1e2 + rng.unit_f64() * (1e6 - 1e2);
            let y = x_r + rng.unit_f64() * 1e6;
            let delta = 0.01 + rng.unit_f64() * 7.99;
            let beta = 2.0 + rng.unit_f64() * 6.0;
            let p_r = subflow_equilibrium_mark_prob(x_r, t_r, delta, beta);
            let u = xmp_utility_prime(y, beta, t_s);
            let new_delta = trash_fixed_point(t_r, x_r, t_s, y);
            if p_r < u {
                assert!(
                    new_delta > delta,
                    "seed {seed}: p={p_r} < U'={u} but {delta} -> {new_delta}"
                );
            }
            if p_r > u {
                assert!(
                    new_delta < delta,
                    "seed {seed}: p={p_r} > U'={u} but {delta} -> {new_delta}"
                );
            }
        }
    }

    /// Mark probability is within (0, 1] and decreasing in the window.
    #[test]
    fn mark_prob_monotone_seeded() {
        for seed in 0..500u64 {
            let mut rng = SimRng::new(seed);
            let w = rng.unit_f64() * 1e4;
            let d = 0.01 + rng.unit_f64() * 7.99;
            let b = 2.0 + rng.unit_f64() * 6.0;
            let p = equilibrium_mark_prob(w, d, b);
            assert!(p > 0.0 && p <= 1.0, "seed {seed}: p={p}");
            let p2 = equilibrium_mark_prob(w + 1.0, d, b);
            assert!(p2 < p, "seed {seed}: not decreasing at w={w}");
        }
    }
}
