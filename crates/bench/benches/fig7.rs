//! Regenerates paper Fig. 7 (torus rate compensation) at bench scale and
//! measures the simulation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use xmp_bench::criterion_config;
use xmp_des::SimDuration;
use xmp_experiments::fig7;

fn tiny() -> fig7::Fig7Config {
    fig7::Fig7Config {
        unit: SimDuration::from_millis(100),
        variants: vec![(4, 20)],
        seed: 1,
    }
}

fn bench(c: &mut Criterion) {
    let cfg = tiny();
    eprintln!("{}", fig7::run(&cfg));
    c.bench_function("fig7_torus_beta4", |b| {
        b.iter(|| std::hint::black_box(fig7::run(&cfg)))
    });
}

criterion_group! { name = benches; config = criterion_config(); targets = bench }
criterion_main!(benches);
