//! Regenerates paper Fig. 7 (torus rate compensation) at bench scale and
//! measures the simulation cost.

use xmp_des::SimDuration;
use xmp_experiments::fig7;

fn tiny() -> fig7::Fig7Config {
    fig7::Fig7Config {
        unit: SimDuration::from_millis(100),
        variants: vec![(4, 20)],
        seed: 1,
    }
}

fn main() {
    let cfg = tiny();
    eprintln!("{}", fig7::run(&cfg));
    xmp_bench::bench_main("fig7_torus_beta4", || std::hint::black_box(fig7::run(&cfg)));
}

