//! Regenerates paper Fig. 10 (RTT distributions by locality) at bench
//! scale, then measures one suite run.

use criterion::{criterion_group, criterion_main, Criterion};
use xmp_bench::criterion_config;
use xmp_experiments::suite::{render_fig10, run_suite, Pattern, SuiteConfig};
use xmp_workloads::Scheme;

fn tiny(scheme: Scheme) -> SuiteConfig {
    SuiteConfig {
        target_flows: 16,
        ..SuiteConfig::quick(scheme, Pattern::Random)
    }
}

fn bench(c: &mut Criterion) {
    let results: Vec<_> = [Scheme::Dctcp, Scheme::lia(2), Scheme::xmp(2)]
        .iter()
        .map(|&s| run_suite(&tiny(s)))
        .collect();
    eprintln!("{}", render_fig10(&results, Pattern::Random));
    let cfg = tiny(Scheme::xmp(2));
    c.bench_function("fig10_rtt_distribution_run", |b| {
        b.iter(|| std::hint::black_box(run_suite(&cfg)))
    });
}

criterion_group! { name = benches; config = criterion_config(); targets = bench }
criterion_main!(benches);
