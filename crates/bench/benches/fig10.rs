//! Regenerates paper Fig. 10 (RTT distributions by locality) at bench
//! scale, then measures one suite run.

use xmp_experiments::suite::{render_fig10, run_suite, Pattern, SuiteConfig};
use xmp_workloads::Scheme;

fn tiny(scheme: Scheme) -> SuiteConfig {
    SuiteConfig {
        target_flows: 16,
        ..SuiteConfig::quick(scheme, Pattern::Random)
    }
}

fn main() {
    let results: Vec<_> = [Scheme::Dctcp, Scheme::lia(2), Scheme::xmp(2)]
        .iter()
        .map(|&s| run_suite(&tiny(s)))
        .collect();
    eprintln!("{}", render_fig10(&results, Pattern::Random));
    let cfg = tiny(Scheme::xmp(2));
    xmp_bench::bench_main("fig10_rtt_distribution_run", || std::hint::black_box(run_suite(&cfg)));
}

