//! Regenerates paper Fig. 4 (traffic shifting on the Fig. 3a testbed) at
//! bench scale and measures the simulation cost.

use xmp_des::SimDuration;
use xmp_experiments::fig4;

fn tiny() -> fig4::Fig4Config {
    fig4::Fig4Config {
        unit: SimDuration::from_millis(150),
        bin: SimDuration::from_millis(25),
        betas: vec![4, 6],
        seed: 1,
    }
}

fn main() {
    let cfg = tiny();
    eprintln!("{}", fig4::run(&cfg));
    xmp_bench::bench_main("fig4_shift_beta4_beta6", || std::hint::black_box(fig4::run(&cfg)));
}

