//! Regenerates paper Fig. 4 (traffic shifting on the Fig. 3a testbed) at
//! bench scale and measures the simulation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use xmp_bench::criterion_config;
use xmp_des::SimDuration;
use xmp_experiments::fig4;

fn tiny() -> fig4::Fig4Config {
    fig4::Fig4Config {
        unit: SimDuration::from_millis(150),
        bin: SimDuration::from_millis(25),
        betas: vec![4, 6],
        seed: 1,
    }
}

fn bench(c: &mut Criterion) {
    let cfg = tiny();
    eprintln!("{}", fig4::run(&cfg));
    c.bench_function("fig4_shift_beta4_beta6", |b| {
        b.iter(|| std::hint::black_box(fig4::run(&cfg)))
    });
}

criterion_group! { name = benches; config = criterion_config(); targets = bench }
criterion_main!(benches);
