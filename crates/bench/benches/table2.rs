//! Regenerates paper Table 2 (XMP-2 coexisting with TCP) at bench scale,
//! then measures one coexistence cell.

use xmp_experiments::suite::{run_suite, Pattern, SuiteConfig};
use xmp_experiments::table2;
use xmp_workloads::Scheme;

fn main() {
    // Render at the meaningful k=8 scale once (coexistence needs path
    // diversity), then benchmark a small k=4 cell.
    let cfg = table2::Table2Config::quick();
    eprintln!("{}", table2::run(&cfg));
    let cell = SuiteConfig {
        target_flows: 16,
        coexist_with: Some(Scheme::Tcp),
        queue_cap: 50,
        ..SuiteConfig::quick(Scheme::xmp(2), Pattern::Random)
    };
    xmp_bench::bench_main("table2_coexistence_cell", || std::hint::black_box(run_suite(&cell)));
}

