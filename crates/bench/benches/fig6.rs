//! Regenerates paper Fig. 6 (fairness with 3/2/1/1 subflows) at bench
//! scale and measures the simulation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use xmp_bench::criterion_config;
use xmp_des::SimDuration;
use xmp_experiments::fig6;

fn tiny() -> fig6::Fig6Config {
    fig6::Fig6Config {
        unit: SimDuration::from_millis(150),
        bin: SimDuration::from_millis(25),
        betas: vec![4, 6],
        seed: 1,
    }
}

fn bench(c: &mut Criterion) {
    let cfg = tiny();
    eprintln!("{}", fig6::run(&cfg));
    c.bench_function("fig6_fairness_beta4_beta6", |b| {
        b.iter(|| std::hint::black_box(fig6::run(&cfg)))
    });
}

criterion_group! { name = benches; config = criterion_config(); targets = bench }
criterion_main!(benches);
