//! Regenerates paper Fig. 6 (fairness with 3/2/1/1 subflows) at bench
//! scale and measures the simulation cost.

use xmp_des::SimDuration;
use xmp_experiments::fig6;

fn tiny() -> fig6::Fig6Config {
    fig6::Fig6Config {
        unit: SimDuration::from_millis(150),
        bin: SimDuration::from_millis(25),
        betas: vec![4, 6],
        seed: 1,
    }
}

fn main() {
    let cfg = tiny();
    eprintln!("{}", fig6::run(&cfg));
    xmp_bench::bench_main("fig6_fairness_beta4_beta6", || std::hint::black_box(fig6::run(&cfg)));
}

