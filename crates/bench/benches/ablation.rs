//! Regenerates the extension artifacts (beta/K sweep, coupling ablation,
//! OLIA comparison) at bench scale, then measures one sweep point.

use criterion::{criterion_group, criterion_main, Criterion};
use xmp_bench::criterion_config;
use xmp_des::SimDuration;
use xmp_experiments::ablation::{self, AblationConfig};
use xmp_experiments::suite::{Pattern, SuiteConfig};
use xmp_workloads::Scheme;

fn tiny() -> AblationConfig {
    AblationConfig {
        betas: vec![2, 4],
        ks: vec![5, 20],
        window: SimDuration::from_millis(200),
        seed: 1,
        suite: SuiteConfig {
            target_flows: 12,
            ..SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation)
        },
    }
}

fn bench(c: &mut Criterion) {
    let cfg = tiny();
    eprintln!("{}", ablation::run(&cfg));
    c.bench_function("ablation_beta_k_sweep", |b| {
        b.iter(|| std::hint::black_box(ablation::run(&cfg)))
    });
}

criterion_group! { name = benches; config = criterion_config(); targets = bench }
criterion_main!(benches);
