//! Regenerates the extension artifacts (beta/K sweep, coupling ablation,
//! OLIA comparison) at bench scale, then measures one sweep point.

use xmp_des::SimDuration;
use xmp_experiments::ablation::{self, AblationConfig};
use xmp_experiments::suite::{Pattern, SuiteConfig};
use xmp_workloads::Scheme;

fn tiny() -> AblationConfig {
    AblationConfig {
        betas: vec![2, 4],
        ks: vec![5, 20],
        window: SimDuration::from_millis(200),
        seed: 1,
        suite: SuiteConfig {
            target_flows: 12,
            ..SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation)
        },
    }
}

fn main() {
    let cfg = tiny();
    eprintln!("{}", ablation::run(&cfg));
    xmp_bench::bench_main("ablation_beta_k_sweep", || std::hint::black_box(ablation::run(&cfg)));
}

