//! Regenerates paper Fig. 9 + Table 3 (Incast job completion times) at
//! bench scale, then measures one Incast suite run.

use xmp_experiments::suite::{render_jobs, run_suite, Pattern, SuiteConfig};
use xmp_workloads::Scheme;

fn tiny(scheme: Scheme) -> SuiteConfig {
    SuiteConfig {
        target_flows: 12,
        ..SuiteConfig::quick(scheme, Pattern::Incast)
    }
}

fn main() {
    let results: Vec<_> = [Scheme::Dctcp, Scheme::xmp(2)]
        .iter()
        .map(|&s| run_suite(&tiny(s)))
        .collect();
    for t in render_jobs(&results) {
        eprintln!("{t}");
    }
    let cfg = tiny(Scheme::xmp(2));
    xmp_bench::bench_main("fig9_table3_incast_run", || std::hint::black_box(run_suite(&cfg)));
}

