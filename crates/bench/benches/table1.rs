//! Regenerates paper Table 1 (average goodput: DCTCP / LIA-n / XMP-n x
//! Permutation / Random / Incast) at bench scale, then measures one
//! representative suite run.

use criterion::{criterion_group, criterion_main, Criterion};
use xmp_bench::criterion_config;
use xmp_experiments::suite::{render_table1, run_suite, Pattern, SuiteConfig};
use xmp_workloads::Scheme;

fn tiny(scheme: Scheme, pattern: Pattern) -> SuiteConfig {
    SuiteConfig {
        target_flows: 16,
        ..SuiteConfig::quick(scheme, pattern)
    }
}

fn bench(c: &mut Criterion) {
    let schemes = [Scheme::Dctcp, Scheme::lia(2), Scheme::xmp(2)];
    let patterns = [Pattern::Permutation, Pattern::Random];
    let results: Vec<_> = patterns
        .iter()
        .flat_map(|&p| schemes.iter().map(move |&s| run_suite(&tiny(s, p))))
        .collect();
    eprintln!("{}", render_table1(&results));
    let cfg = tiny(Scheme::xmp(2), Pattern::Permutation);
    c.bench_function("table1_suite_run_xmp2_permutation", |b| {
        b.iter(|| std::hint::black_box(run_suite(&cfg)))
    });
}

criterion_group! { name = benches; config = criterion_config(); targets = bench }
criterion_main!(benches);
