//! Regenerates paper Table 1 (average goodput: DCTCP / LIA-n / XMP-n x
//! Permutation / Random / Incast) at bench scale, then measures one
//! representative suite run.

use xmp_experiments::suite::{render_table1, run_suite, Pattern, SuiteConfig};
use xmp_workloads::Scheme;

fn tiny(scheme: Scheme, pattern: Pattern) -> SuiteConfig {
    SuiteConfig {
        target_flows: 16,
        ..SuiteConfig::quick(scheme, pattern)
    }
}

fn main() {
    let schemes = [Scheme::Dctcp, Scheme::lia(2), Scheme::xmp(2)];
    let patterns = [Pattern::Permutation, Pattern::Random];
    let results: Vec<_> = patterns
        .iter()
        .flat_map(|&p| schemes.iter().map(move |&s| run_suite(&tiny(s, p))))
        .collect();
    eprintln!("{}", render_table1(&results));
    let cfg = tiny(Scheme::xmp(2), Pattern::Permutation);
    xmp_bench::bench_main("table1_suite_run_xmp2_permutation", || std::hint::black_box(run_suite(&cfg)));
}

