//! Regenerates paper Fig. 1 (DCTCP vs constant-factor cut, K in {10, 20})
//! at bench scale and measures the simulation cost.

use xmp_des::SimDuration;
use xmp_experiments::fig1;

fn tiny() -> fig1::Fig1Config {
    fig1::Fig1Config {
        interval: SimDuration::from_millis(100),
        bin: SimDuration::from_millis(20),
        seed: 1,
        ..fig1::Fig1Config::default()
    }
}

fn main() {
    let cfg = tiny();
    eprintln!("{}", fig1::run(&cfg));
    xmp_bench::bench_main("fig1_four_variants", || std::hint::black_box(fig1::run(&cfg)));
}

