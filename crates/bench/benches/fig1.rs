//! Regenerates paper Fig. 1 (DCTCP vs constant-factor cut, K in {10, 20})
//! at bench scale and measures the simulation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use xmp_bench::criterion_config;
use xmp_des::SimDuration;
use xmp_experiments::fig1;

fn tiny() -> fig1::Fig1Config {
    fig1::Fig1Config {
        interval: SimDuration::from_millis(100),
        bin: SimDuration::from_millis(20),
        seed: 1,
    }
}

fn bench(c: &mut Criterion) {
    let cfg = tiny();
    eprintln!("{}", fig1::run(&cfg));
    c.bench_function("fig1_four_variants", |b| {
        b.iter(|| std::hint::black_box(fig1::run(&cfg)))
    });
}

criterion_group! { name = benches; config = criterion_config(); targets = bench }
criterion_main!(benches);
