//! Regenerates paper Fig. 11 (link utilization by layer) at bench scale,
//! then measures one suite run.

use xmp_experiments::suite::{render_fig11, run_suite, Pattern, SuiteConfig};
use xmp_workloads::Scheme;

fn tiny(scheme: Scheme) -> SuiteConfig {
    SuiteConfig {
        target_flows: 16,
        ..SuiteConfig::quick(scheme, Pattern::Permutation)
    }
}

fn main() {
    let results: Vec<_> = [Scheme::Dctcp, Scheme::xmp(2), Scheme::xmp(4)]
        .iter()
        .map(|&s| run_suite(&tiny(s)))
        .collect();
    eprintln!("{}", render_fig11(&results, Pattern::Permutation));
    let cfg = tiny(Scheme::xmp(2));
    xmp_bench::bench_main("fig11_utilization_run", || std::hint::black_box(run_suite(&cfg)));
}

