//! Regenerates paper Fig. 8 (goodput CDFs and per-locality percentiles) at
//! bench scale, then measures one suite run.

use xmp_experiments::suite::{render_fig8, run_suite, Pattern, SuiteConfig};
use xmp_workloads::Scheme;

fn tiny(scheme: Scheme) -> SuiteConfig {
    SuiteConfig {
        target_flows: 16,
        ..SuiteConfig::quick(scheme, Pattern::Permutation)
    }
}

fn main() {
    let results: Vec<_> = [Scheme::Dctcp, Scheme::xmp(2)]
        .iter()
        .map(|&s| run_suite(&tiny(s)))
        .collect();
    for t in render_fig8(&results, Pattern::Permutation) {
        eprintln!("{t}");
    }
    let cfg = tiny(Scheme::xmp(2));
    xmp_bench::bench_main("fig8_goodput_distribution_run", || std::hint::black_box(run_suite(&cfg)));
}

