//! Perf snapshot for the fault-injection subsystem, written to
//! `BENCH_pr3.json` (run from the repo root, e.g. via `scripts/bench.sh`).
//!
//! The fault machinery is always compiled in — generation-stamped link
//! events, per-direction in-network ledgers, the conservation audit — so
//! the question this bench answers is what a run with an **empty fault
//! plan** now costs relative to the committed PR 2 numbers. It reruns
//! `bench_pr2`'s exact workloads under all four `SimTuning` combinations
//! and, when a committed `BENCH_pr2.json` is present, reports the
//! `median_ms` ratio per combo (target: ≤ 1.02 for `compiled_lazy`).
//! It also times the failover experiment itself, the one run that
//! exercises the machinery for real.

use xmp_bench::{measure, BenchConfig, Json};
use xmp_des::SimDuration;
use xmp_experiments::failover::{self, FailoverConfig};
use xmp_experiments::fig1;
use xmp_experiments::suite::{run_suite_counting, Pattern, SuiteConfig};
use xmp_netsim::SimTuning;
use xmp_workloads::Scheme;

const COMBOS: [(&str, SimTuning); 4] = [
    (
        "dynamic_eager",
        SimTuning {
            compiled_fib: false,
            lazy_links: false,
            drop_unroutable: false,
        },
    ),
    (
        "compiled_eager",
        SimTuning {
            compiled_fib: true,
            lazy_links: false,
            drop_unroutable: false,
        },
    ),
    (
        "dynamic_lazy",
        SimTuning {
            compiled_fib: false,
            lazy_links: true,
            drop_unroutable: false,
        },
    ),
    (
        "compiled_lazy",
        SimTuning {
            compiled_fib: true,
            lazy_links: true,
            drop_unroutable: false,
        },
    ),
];

/// Scan the committed PR 2 snapshot for `section.combo.<field>` without a
/// JSON parser (the workspace has none, by design).
fn pr2_ms(doc: &str, section: &str, combo: &str, field: &str) -> Option<f64> {
    let s = doc.find(&format!("\"{section}\""))?;
    let c = s + doc[s..].find(&format!("\"{combo}\""))?;
    let m = c + doc[c..].find(&format!("\"{field}\""))?;
    let colon = m + doc[m..].find(':')?;
    let rest = &doc[colon + 1..];
    let end = rest
        .find([',', '}'])
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn section(
    title: &str,
    key: &str,
    pr2: Option<&str>,
    mut run: impl FnMut(SimTuning) -> u64,
) -> Json {
    println!("{title}:");
    let mut out = Json::obj();
    for (name, tuning) in COMBOS {
        let mut events = 0;
        // Default config (5 trials) rather than heavy (3): the overhead
        // ratios need the extra samples to tame scheduling noise.
        let s = measure(BenchConfig::default(), || {
            events = run(tuning);
        });
        let median_ns = s.median_ns;
        let eps = events as f64 / (median_ns as f64 / 1e9);
        let min_ms = s.min_ms();
        let mut cell = Json::from(s)
            .set("events", events)
            .set("events_per_sec", eps);
        if let Some(r) = pr2
            .and_then(|doc| pr2_ms(doc, key, name, "median_ms"))
            .map(|old| (median_ns as f64 / 1e6) / old)
        {
            cell = cell.set("vs_pr2_median", r);
        }
        // Fastest-trial ratio: on a shared host the min is far more robust
        // to scheduling noise than the median of a handful of trials.
        let min_ratio = pr2
            .and_then(|doc| pr2_ms(doc, key, name, "min_ms"))
            .map(|old| min_ms / old);
        if let Some(r) = min_ratio {
            cell = cell.set("vs_pr2_min", r);
        }
        println!(
            "  {name:<15} median {:>8.1} ms, {:>6.2} Mev/s{}",
            median_ns as f64 / 1e6,
            eps / 1e6,
            min_ratio.map_or(String::new(), |r| format!(", min {r:.3}x vs PR2")),
        );
        out = out.set(name, cell);
    }
    out
}

fn main() {
    let pr2 = std::fs::read_to_string("BENCH_pr2.json").ok();
    if pr2.is_none() {
        println!("note: BENCH_pr2.json not found, skipping overhead ratios");
    }
    let fig1_section = section(
        "fig1 (scaled down, 4 variants, empty fault plan)",
        "fig1_small",
        pr2.as_deref(),
        |tuning| {
            let cfg = fig1::Fig1Config {
                interval: SimDuration::from_millis(100),
                bin: SimDuration::from_millis(20),
                seed: 1,
                tuning,
            };
            let (r, events) = fig1::run_counting(&cfg);
            std::hint::black_box(r);
            events
        },
    );
    let table1_section = section(
        "table1 cell (quick, XMP-2/Permutation, empty fault plan)",
        "table1_cell_quick",
        pr2.as_deref(),
        |tuning| {
            let cfg = SuiteConfig {
                target_flows: 16,
                tuning,
                ..SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation)
            };
            let (r, events) = run_suite_counting(&cfg);
            std::hint::black_box(r);
            events
        },
    );
    println!("failover (quick, 3 schemes, real faults):");
    let failover_sample = measure(BenchConfig::heavy(), || {
        std::hint::black_box(failover::run(&FailoverConfig::quick()));
    });
    println!(
        "  {:<15} median {:>8.1} ms",
        "failover_quick",
        failover_sample.median_ns as f64 / 1e6
    );

    let report = Json::obj()
        .set("host", xmp_bench::host_meta())
        .set(
            "note",
            "vs_pr2_median / vs_pr2_min compare against the committed \
             BENCH_pr2.json on the same workload; the fault machinery \
             (disabled, empty plan) should cost <= ~2% on compiled_lazy. \
             Trust vs_pr2_min on shared hosts.",
        )
        .set(
            "fig1_small",
            fig1_section.set("config", "interval 100ms, bin 20ms, seed 1"),
        )
        .set(
            "table1_cell_quick",
            table1_section.set("config", "quick k=4, 16 flows, XMP-2 / Permutation"),
        )
        .set(
            "failover_quick",
            Json::from(failover_sample).set("config", "k=4, XMP-2/LIA-2/DCTCP, 24x50ms epochs"),
        );
    let out = report.render();
    std::fs::write("BENCH_pr3.json", &out).expect("write BENCH_pr3.json");
    println!("wrote BENCH_pr3.json");
}
