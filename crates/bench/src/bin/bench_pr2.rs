//! Perf snapshot for the forwarding fast path (compiled FIBs + lazy link
//! pipeline), written to `BENCH_pr2.json` (run from the repo root, e.g. via
//! `scripts/bench.sh`).
//!
//! Both workloads run under all four `SimTuning` combinations —
//! {dynamic router, compiled FIB} × {eager TxDone pipeline, lazy
//! one-event-per-hop pipeline} — reporting wall clock and engine
//! events/second. The differential tests (`fib_differential`,
//! `lazy_differential`) prove all four produce bit-identical results, so
//! every combination does the same simulated work; only the event count
//! per packet-hop (2 eager, 1 lazy) and per-packet routing cost differ.

use xmp_bench::{measure, BenchConfig, Json};
use xmp_des::SimDuration;
use xmp_experiments::fig1;
use xmp_experiments::suite::{run_suite_counting, Pattern, SuiteConfig};
use xmp_netsim::SimTuning;
use xmp_workloads::Scheme;

const COMBOS: [(&str, SimTuning); 4] = [
    (
        "dynamic_eager",
        SimTuning {
            compiled_fib: false,
            lazy_links: false,
            drop_unroutable: false,
        },
    ),
    (
        "compiled_eager",
        SimTuning {
            compiled_fib: true,
            lazy_links: false,
            drop_unroutable: false,
        },
    ),
    (
        "dynamic_lazy",
        SimTuning {
            compiled_fib: false,
            lazy_links: true,
            drop_unroutable: false,
        },
    ),
    (
        "compiled_lazy",
        SimTuning {
            compiled_fib: true,
            lazy_links: true,
            drop_unroutable: false,
        },
    ),
];

struct Cell {
    median_ns: u64,
    json: Json,
}

fn bench_combo(name: &str, events: u64, median_ns: u64, json: Json) -> Cell {
    let eps = events as f64 / (median_ns as f64 / 1e9);
    println!(
        "  {name:<15} median {:>8.1} ms, {:>6.2} Mev/s ({events} events)",
        median_ns as f64 / 1e6,
        eps / 1e6
    );
    Cell {
        median_ns,
        json: json.set("events", events).set("events_per_sec", eps),
    }
}

fn section(title: &str, mut run: impl FnMut(SimTuning) -> u64) -> Json {
    println!("{title}:");
    let mut out = Json::obj();
    let mut baseline_ns = 0u64;
    let mut fast_ns = 0u64;
    for (name, tuning) in COMBOS {
        let mut events = 0;
        let s = measure(BenchConfig::heavy(), || {
            events = run(tuning);
        });
        let cell = bench_combo(name, events, s.median_ns, Json::from(s));
        if name == "dynamic_eager" {
            baseline_ns = cell.median_ns;
        }
        if name == "compiled_lazy" {
            fast_ns = cell.median_ns;
        }
        out = out.set(name, cell.json);
    }
    let speedup = baseline_ns as f64 / fast_ns as f64;
    println!("  speedup (compiled_lazy vs dynamic_eager): {speedup:.2}x");
    out.set("speedup_compiled_lazy_vs_dynamic_eager", speedup)
}

fn main() {
    let fig1_section = section("fig1 (scaled down, 4 variants)", |tuning| {
        let cfg = fig1::Fig1Config {
            interval: SimDuration::from_millis(100),
            bin: SimDuration::from_millis(20),
            seed: 1,
            tuning,
        };
        let (r, events) = fig1::run_counting(&cfg);
        std::hint::black_box(r);
        events
    });
    let table1_section = section("table1 cell (quick, XMP-2/Permutation)", |tuning| {
        let cfg = SuiteConfig {
            target_flows: 16,
            tuning,
            ..SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation)
        };
        let (r, events) = run_suite_counting(&cfg);
        std::hint::black_box(r);
        events
    });
    let report = Json::obj()
        .set("host", xmp_bench::host_meta())
        .set(
            "note",
            "all four combos are bit-identical (see fib_differential / lazy_differential tests)",
        )
        .set(
            "fig1_small",
            fig1_section.set("config", "interval 100ms, bin 20ms, seed 1"),
        )
        .set(
            "table1_cell_quick",
            table1_section.set("config", "quick k=4, 16 flows, XMP-2 / Permutation"),
        );
    let out = report.render();
    std::fs::write("BENCH_pr2.json", &out).expect("write BENCH_pr2.json");
    println!("wrote BENCH_pr2.json");
}
