//! Perf snapshot for the partitioned-simulation PR, written to
//! `BENCH_pr6.json` (run from the repo root, e.g. via `scripts/bench.sh`).
//!
//! Three questions:
//!
//! 1. **Does sharding pay?** The scale experiment runs one permutation
//!    wave on a k = 16 fat tree (1024 hosts) serially and under 4 worker
//!    threads, digest-checking the partitioned run against the serial one
//!    — the binary **panics on a digest mismatch**, so the bit-identity
//!    claim is re-proven on every bench run. The recorded
//!    `speedup_4w` is the headline; it is only meaningful on a host with
//!    ≥ 4 cores (the `host` block records `parallelism` — on a smaller
//!    host the barrier overhead shows up as a slowdown, which is recorded
//!    honestly rather than hidden).
//! 2. **Is the steady state still allocation-free?** The PR 5 claim is
//!    re-asserted per tuning combo on the serial path (the partitioned
//!    path shares the same per-shard hot loop; its alloc probe is shared
//!    across threads and therefore excluded from determinism digests).
//! 3. **Did the serial path regress?** The `table1_cell_quick` continuity
//!    series continues against `BENCH_pr5.json`, now also recording
//!    `events_per_sec` — the workload-normalized macro throughput
//!    `bench_trend` surfaces from this snapshot onward.

use xmp_bench::{measure, BenchConfig, CountingAlloc, Json};
use xmp_des::{SimDuration, SimTime};
use xmp_experiments::scale::{self, ScaleConfig};
use xmp_experiments::suite::{run_suite_profiled, Pattern, SuiteConfig};
use xmp_netsim::{PortId, QdiscConfig, Sim, SimProfile, SimTuning};
use xmp_topo::{FatTree, FatTreeConfig};
use xmp_transport::{HostStack, Segment, StackConfig, SubflowSpec};
use xmp_workloads::{Driver, FlowSpecBuilder, Host, Scheme};

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const COMBOS: [(&str, SimTuning); 4] = [
    (
        "dynamic_eager",
        SimTuning {
            compiled_fib: false,
            lazy_links: false,
            drop_unroutable: false,
        },
    ),
    (
        "compiled_eager",
        SimTuning {
            compiled_fib: true,
            lazy_links: false,
            drop_unroutable: false,
        },
    ),
    (
        "dynamic_lazy",
        SimTuning {
            compiled_fib: false,
            lazy_links: true,
            drop_unroutable: false,
        },
    ),
    (
        "compiled_lazy",
        SimTuning {
            compiled_fib: true,
            lazy_links: true,
            drop_unroutable: false,
        },
    ),
];

/// Scan a committed snapshot for `section.combo.<field>` without a JSON
/// parser (the workspace has none, by design).
fn prior_ms(doc: &str, section: &str, combo: &str, field: &str) -> Option<f64> {
    let s = doc.find(&format!("\"{section}\""))?;
    let c = s + doc[s..].find(&format!("\"{combo}\""))?;
    let m = c + doc[c..].find(&format!("\"{field}\""))?;
    let colon = m + doc[m..].find(':')?;
    let rest = &doc[colon + 1..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn suite_cell(tuning: SimTuning) -> (u64, SimProfile) {
    let cfg = SuiteConfig {
        target_flows: 16,
        tuning,
        ..SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation)
    };
    let (r, events, profile) = run_suite_profiled(&cfg);
    std::hint::black_box(r);
    (events, profile)
}

/// The PR 5 steady-state window, re-asserted: a k = 4 fat tree of
/// unbounded XMP-2 permutation flows must allocate exactly zero times per
/// packet hop once warm.
fn steady_state_profile(tuning: SimTuning, warmup: SimDuration, window: SimDuration) -> SimProfile {
    let mut sim: Sim<Segment, Host> = Sim::new(1);
    sim.set_tuning(tuning);
    let cfg = FatTreeConfig {
        k: 4,
        ..FatTreeConfig::paper(QdiscConfig::EcnThreshold { cap: 100, k: 10 })
    };
    let ft = FatTree::build(&mut sim, &cfg, |_| HostStack::new(StackConfig::default()));
    let mut driver = Driver::new();
    let n = ft.hosts.len();
    for i in 0..n {
        let dst = (i + n / 2) % n;
        driver.submit(FlowSpecBuilder {
            src_node: ft.host(i),
            subflows: (0..2)
                .map(|t| SubflowSpec {
                    local_port: PortId(0),
                    src: ft.host_addr(i, t),
                    dst: ft.host_addr(dst, t),
                })
                .collect(),
            size: 1 << 42, // ~4 TB: never completes inside the window
            scheme: Scheme::xmp(2),
            start: SimTime::ZERO,
            category: Some(ft.category(i, dst)),
            tag: i as u64,
        });
    }
    driver.run(&mut sim, SimTime::ZERO + warmup, |_, _, _| {});
    let p0 = *sim.profile();
    driver.run(&mut sim, SimTime::ZERO + warmup + window, |_, _, _| {});
    let p1 = *sim.profile();
    let mut delta = p1;
    delta.allocs = p1.allocs - p0.allocs;
    delta.deliver = p1.deliver - p0.deliver;
    delta
}

fn main() {
    xmp_netsim::set_alloc_probe(xmp_bench::alloc_count);

    let pr5 = std::fs::read_to_string("BENCH_pr5.json").ok();
    if pr5.is_none() {
        println!("note: BENCH_pr5.json not found, skipping continuity ratios");
    }

    println!("steady-state allocation rate (400 ms warmup, 200 ms window, probes off):");
    let mut alloc_section = Json::obj();
    for (name, tuning) in COMBOS {
        let p = steady_state_profile(
            tuning,
            SimDuration::from_millis(400),
            SimDuration::from_millis(200),
        );
        assert!(
            p.deliver > 100_000,
            "{name}: steady-state window delivered only {} hops",
            p.deliver
        );
        let rate = p.allocs as f64 / p.deliver as f64;
        println!(
            "  {name:<15} {:>9} packet hops, {:>4} allocs ({rate:.6} per hop)",
            p.deliver, p.allocs
        );
        assert_eq!(
            p.allocs, 0,
            "{name}: steady state allocated ({} allocs over {} hops)",
            p.allocs, p.deliver
        );
        alloc_section = alloc_section.set(
            name,
            Json::obj()
                .set("packet_hops", p.deliver)
                .set("allocs", p.allocs)
                .set("allocs_per_packet_hop", rate),
        );
    }

    println!("table1 cell (quick, XMP-2/Permutation) continuity series:");
    let mut suite_section = Json::obj();
    for (name, tuning) in COMBOS {
        let mut events = 0;
        let mut profile = SimProfile::default();
        let s = measure(BenchConfig::default(), || {
            (events, profile) = suite_cell(tuning);
        });
        let mut cell = Json::from(s)
            .set("events", events)
            .set("pool_hit_rate", profile.pool_hit_rate())
            .set("events_per_sec", profile.events_per_sec());
        let median_ratio = pr5
            .as_deref()
            .and_then(|doc| prior_ms(doc, "table1_cell_quick", name, "median_ms"))
            .map(|old| (s.median_ns as f64 / 1e6) / old);
        let min_ratio = pr5
            .as_deref()
            .and_then(|doc| prior_ms(doc, "table1_cell_quick", name, "min_ms"))
            .map(|old| s.min_ms() / old);
        if let Some(r) = median_ratio {
            cell = cell.set("vs_pr5_median", r);
        }
        if let Some(r) = min_ratio {
            cell = cell.set("vs_pr5_min", r);
        }
        println!(
            "  {name:<15} median {:>8.1} ms | {:>6.2} Mev/s{}",
            s.median_ns as f64 / 1e6,
            profile.events_per_sec() / 1e6,
            median_ratio.map_or(String::new(), |r| format!(" | {r:.3}x vs PR5 median")),
        );
        suite_section = suite_section.set(name, cell);
    }

    println!("scale: k=16 fat tree (1024 hosts), one permutation wave, 1 vs 4 workers:");
    let scale_cfg = ScaleConfig::default_cfg();
    let r = scale::run(&scale_cfg);
    print!("{r}");
    assert!(
        r.digests_match,
        "partitioned k=16 run diverged from serial — determinism contract broken"
    );
    let speedup_4w = r.speedup(4);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        // With real parallelism the conservative protocol must pay for its
        // barriers at this scale.
        let s = speedup_4w.expect("4-worker cell present");
        assert!(
            s >= 2.0,
            "k=16 speedup at 4 workers is {s:.2}x on a {cores}-core host (target >= 2x)"
        );
    } else {
        println!(
            "note: host has {cores} core(s); the >= 2x speedup target needs >= 4 — \
             recording the honest numbers without asserting it"
        );
    }
    let mut scale_section = Json::obj()
        .set("config", format!("k={} fat tree, {} hosts, one 2 MiB XMP-2 flow per host", r.k, r.hosts))
        .set("digests_match", r.digests_match)
        .set("speedup_target_enforced", cores >= 4);
    if let Some(s) = speedup_4w {
        scale_section = scale_section.set("speedup_4w", s);
    }
    for c in &r.cells {
        scale_section = scale_section.set(
            &format!("workers_{}", c.workers),
            Json::obj()
                .set("wall_ms", c.wall_ms)
                .set("events", c.events)
                .set("events_per_sec", c.events_per_sec)
                .set("flows_completed", c.completed)
                .set("digest", format!("{:016x}", c.digest)),
        );
    }

    let report = Json::obj()
        .set("host", xmp_bench::host_meta())
        .set(
            "note",
            "scale_k16 runs the same pre-submitted permutation wave serially \
             and under 4 worker threads; the partitioned run must be \
             bit-identical (asserted via digest). speedup_4w is only \
             meaningful when host.parallelism >= 4. steady_state_allocs \
             re-asserts the PR 5 zero-allocation claim on the serial hot \
             path. table1_cell_quick continues the cross-PR series and now \
             records events_per_sec for bench_trend.",
        )
        .set(
            "steady_state_allocs",
            alloc_section.set(
                "config",
                "k=4 fat tree, 16 unbounded XMP-2 flows, 400 ms warmup, 200 ms window",
            ),
        )
        .set(
            "table1_cell_quick",
            suite_section.set("config", "quick k=4, 16 flows, XMP-2 / Permutation"),
        )
        .set("scale_k16", scale_section);
    let out = report.render();
    std::fs::write("BENCH_pr6.json", &out).expect("write BENCH_pr6.json");
    println!("wrote BENCH_pr6.json");
}
