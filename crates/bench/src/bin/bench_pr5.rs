//! Perf snapshot for the zero-allocation / static-dispatch overhaul,
//! written to `BENCH_pr5.json` (run from the repo root, e.g. via
//! `scripts/bench.sh`).
//!
//! Two questions:
//!
//! 1. **Is the steady state allocation-free?** A counting global allocator
//!    feeds the engine's alloc probe, and a k = 4 fat tree carrying
//!    effectively unbounded XMP-2 permutation flows is measured over a
//!    post-handshake window (probes off). The window's
//!    `allocs_per_packet_hop` must be exactly 0 under all four `SimTuning`
//!    combinations — the binary **panics** otherwise, so the claim is
//!    re-proven on every bench run.
//! 2. **What did devirtualization buy?** The same suite cell as
//!    `BENCH_pr4.json` (`table1_cell_quick`) is rerun — now with inline
//!    agents, enum qdiscs and enum controllers — and compared against the
//!    committed PR4 numbers (`vs_pr4_*`; target ≥ 1.10x median on
//!    `compiled_lazy`, i.e. `vs_pr4_median` ≤ 0.909).
//!
//! The counting allocator itself costs one relaxed atomic increment per
//! allocation, which is noise at the measured allocation rates (the hot
//! path performs none).

use xmp_bench::{measure, BenchConfig, CountingAlloc, Json};
use xmp_des::{SimDuration, SimTime};
use xmp_experiments::suite::{run_suite_profiled, Pattern, SuiteConfig};
use xmp_netsim::{PortId, QdiscConfig, Sim, SimProfile, SimTuning};
use xmp_topo::{FatTree, FatTreeConfig};
use xmp_transport::{HostStack, Segment, StackConfig, SubflowSpec};
use xmp_workloads::{Driver, FlowSpecBuilder, Host, Scheme};

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const COMBOS: [(&str, SimTuning); 4] = [
    (
        "dynamic_eager",
        SimTuning {
            compiled_fib: false,
            lazy_links: false,
            drop_unroutable: false,
        },
    ),
    (
        "compiled_eager",
        SimTuning {
            compiled_fib: true,
            lazy_links: false,
            drop_unroutable: false,
        },
    ),
    (
        "dynamic_lazy",
        SimTuning {
            compiled_fib: false,
            lazy_links: true,
            drop_unroutable: false,
        },
    ),
    (
        "compiled_lazy",
        SimTuning {
            compiled_fib: true,
            lazy_links: true,
            drop_unroutable: false,
        },
    ),
];

/// Scan a committed snapshot for `section.combo.<field>` without a JSON
/// parser (the workspace has none, by design).
fn prior_ms(doc: &str, section: &str, combo: &str, field: &str) -> Option<f64> {
    let s = doc.find(&format!("\"{section}\""))?;
    let c = s + doc[s..].find(&format!("\"{combo}\""))?;
    let m = c + doc[c..].find(&format!("\"{field}\""))?;
    let colon = m + doc[m..].find(':')?;
    let rest = &doc[colon + 1..];
    let end = rest
        .find([',', '}'])
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn suite_cell(tuning: SimTuning, boxed_dispatch: bool) -> (u64, SimProfile) {
    let cfg = SuiteConfig {
        target_flows: 16,
        tuning,
        boxed_dispatch,
        ..SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation)
    };
    let (r, events, profile) = run_suite_profiled(&cfg);
    std::hint::black_box(r);
    (events, profile)
}

/// The steady-state window: a k = 4 fat tree, one effectively unbounded
/// XMP-2 flow per host to its permutation partner, probes off. Returns the
/// engine profile over `[warmup, warmup + window]` only — handshakes, slow
/// start, scratch-buffer growth and pool fills all land in the warmup.
fn steady_state_profile(tuning: SimTuning, warmup: SimDuration, window: SimDuration) -> SimProfile {
    let mut sim: Sim<Segment, Host> = Sim::new(1);
    sim.set_tuning(tuning);
    let cfg = FatTreeConfig {
        k: 4,
        ..FatTreeConfig::paper(QdiscConfig::EcnThreshold { cap: 100, k: 10 })
    };
    let ft = FatTree::build(&mut sim, &cfg, |_| HostStack::new(StackConfig::default()));
    let mut driver = Driver::new();
    let n = ft.hosts.len();
    for i in 0..n {
        let dst = (i + n / 2) % n;
        driver.submit(FlowSpecBuilder {
            src_node: ft.host(i),
            subflows: (0..2)
                .map(|t| SubflowSpec {
                    local_port: PortId(0),
                    src: ft.host_addr(i, t),
                    dst: ft.host_addr(dst, t),
                })
                .collect(),
            size: 1 << 42, // ~4 TB: never completes inside the window
            scheme: Scheme::xmp(2),
            start: SimTime::ZERO,
            category: Some(ft.category(i, dst)),
            tag: i as u64,
        });
    }
    driver.run(&mut sim, SimTime::ZERO + warmup, |_, _, _| {});
    let p0 = *sim.profile();
    driver.run(&mut sim, SimTime::ZERO + warmup + window, |_, _, _| {});
    let p1 = *sim.profile();
    let mut delta = p1;
    delta.allocs = p1.allocs - p0.allocs;
    delta.deliver = p1.deliver - p0.deliver;
    delta
}

fn main() {
    xmp_netsim::set_alloc_probe(xmp_bench::alloc_count);

    let pr4 = std::fs::read_to_string("BENCH_pr4.json").ok();
    if pr4.is_none() {
        println!("note: BENCH_pr4.json not found, skipping continuity ratios");
    }

    println!("steady-state allocation rate (400 ms warmup, 200 ms window, probes off):");
    let mut alloc_section = Json::obj();
    for (name, tuning) in COMBOS {
        // Warmup spans two full RTO cycles (2 x 200 ms) so every
        // deadline-bumped retransmission timer has ridden through at least
        // one fire-and-re-arm round and the event queue has seen its
        // high-water population before the measured window opens.
        let p = steady_state_profile(
            tuning,
            SimDuration::from_millis(400),
            SimDuration::from_millis(200),
        );
        assert!(
            p.deliver > 100_000,
            "{name}: steady-state window delivered only {} hops",
            p.deliver
        );
        let rate = p.allocs as f64 / p.deliver as f64;
        println!(
            "  {name:<15} {:>9} packet hops, {:>4} allocs ({rate:.6} per hop)",
            p.deliver, p.allocs
        );
        assert_eq!(
            p.allocs, 0,
            "{name}: steady state allocated ({} allocs over {} hops)",
            p.allocs, p.deliver
        );
        alloc_section = alloc_section.set(
            name,
            Json::obj()
                .set("packet_hops", p.deliver)
                .set("allocs", p.allocs)
                .set("allocs_per_packet_hop", rate),
        );
    }

    println!("table1 cell (quick, XMP-2/Permutation), static vs boxed dispatch:");
    let mut suite_section = Json::obj();
    for (name, tuning) in COMBOS {
        let mut events = 0;
        let mut profile = SimProfile::default();
        let s = measure(BenchConfig::default(), || {
            (events, profile) = suite_cell(tuning, false);
        });
        // Same cell through the `dyn` escape hatches, in the same process:
        // this ratio is immune to host drift between PR snapshots, unlike
        // the cross-file vs_pr4_* ratios below.
        let boxed = measure(BenchConfig::default(), || {
            std::hint::black_box(suite_cell(tuning, true));
        });
        let boxed_over_static = boxed.min_ns as f64 / s.min_ns as f64;
        let mut cell = Json::from(s)
            .set("events", events)
            .set("pool_hit_rate", profile.pool_hit_rate())
            .set("boxed_median_ms", boxed.median_ns as f64 / 1e6)
            .set("boxed_min_ms", boxed.min_ms())
            .set("boxed_over_static_min", boxed_over_static);
        let median_ratio = pr4
            .as_deref()
            .and_then(|doc| prior_ms(doc, "table1_cell_quick", name, "median_ms"))
            .map(|old| (s.median_ns as f64 / 1e6) / old);
        let min_ratio = pr4
            .as_deref()
            .and_then(|doc| prior_ms(doc, "table1_cell_quick", name, "min_ms"))
            .map(|old| s.min_ms() / old);
        if let Some(r) = median_ratio {
            cell = cell.set("vs_pr4_median", r);
        }
        if let Some(r) = min_ratio {
            cell = cell.set("vs_pr4_min", r);
        }
        println!(
            "  {name:<15} static median {:>8.1} ms | boxed median {:>8.1} ms | boxed/static (min) {boxed_over_static:.3}x{}",
            s.median_ns as f64 / 1e6,
            boxed.median_ns as f64 / 1e6,
            median_ratio.map_or(String::new(), |r| format!(" | {r:.3}x vs PR4 median")),
        );
        suite_section = suite_section.set(name, cell);
    }

    let report = Json::obj()
        .set("host", xmp_bench::host_meta())
        .set(
            "note",
            "steady_state_allocs runs unbounded XMP-2 permutation flows on \
             a k=4 fat tree under a counting global allocator; \
             allocs_per_packet_hop must be exactly 0 (asserted). vs_pr4_* \
             compare the same suite cell (probes off) against the committed \
             BENCH_pr4.json; target <= 0.909 median (>= 1.10x) on \
             compiled_lazy. Wall-clock ratios are host-sensitive — trust \
             the *_min ratios on shared hosts.",
        )
        .set(
            "steady_state_allocs",
            alloc_section.set("config", "k=4 fat tree, 16 unbounded XMP-2 flows, 400 ms warmup, 200 ms window"),
        )
        .set(
            "table1_cell_quick",
            suite_section.set("config", "quick k=4, 16 flows, XMP-2 / Permutation"),
        );
    let out = report.render();
    std::fs::write("BENCH_pr5.json", &out).expect("write BENCH_pr5.json");
    println!("wrote BENCH_pr5.json");
}
