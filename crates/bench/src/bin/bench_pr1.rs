//! Perf snapshot for the hot-path overhaul, written to `BENCH_pr1.json`
//! (run from the repo root, e.g. via `scripts/bench.sh`).
//!
//! Sections:
//!
//! 1. **Scheduler microbench** — the timing-wheel [`EventQueue`] against
//!    the retained [`BinaryHeapQueue`] baseline on an identical synthetic
//!    dumbbell-profile workload (hold model: every pop schedules a
//!    replacement; deltas mix packet-serialization times, multi-ms flow
//!    gaps and 200 ms RTO-scale timers, matching the event population a
//!    real run keeps pending). Both queues consume the same [`SimRng`]
//!    stream, and a fold over the popped timestamps cross-checks that they
//!    did the same work in the same order.
//! 2. **Scaled-down fig1** wall clock (whole-simulation cost).
//! 3. **Table 1 cell** wall clock (one quick fat-tree suite run).
//! 4. **Suite parallelism** — a 4-cell `(scheme, pattern, seed)` batch run
//!    serially vs through `run_suite_parallel`, with a byte-identity check
//!    on the Debug rendering of the results. The speedup criterion only
//!    binds on multi-core hosts; `host.parallelism` records what this
//!    machine offers.

use std::time::Instant;
use xmp_bench::{measure, BenchConfig, Json, Sample};
use xmp_des::{BinaryHeapQueue, EventQueue, SimDuration, SimRng, SimTime};
use xmp_experiments::fig1;
use xmp_experiments::suite::{run_suite, run_suite_parallel, Pattern, SuiteConfig};
use xmp_workloads::Scheme;

/// Minimal scheduler interface so one driver exercises both queues.
trait Sched {
    fn push(&mut self, at: SimTime);
    fn pop(&mut self) -> Option<SimTime>;
}

impl Sched for EventQueue<u32> {
    fn push(&mut self, at: SimTime) {
        EventQueue::push(self, at, 0);
    }
    fn pop(&mut self) -> Option<SimTime> {
        EventQueue::pop(self).map(|ev| ev.at)
    }
}

impl Sched for BinaryHeapQueue<u32> {
    fn push(&mut self, at: SimTime) {
        BinaryHeapQueue::push(self, at, 0);
    }
    fn pop(&mut self) -> Option<SimTime> {
        BinaryHeapQueue::pop(self).map(|ev| ev.at)
    }
}

/// Pre-generated hold deltas (nanoseconds to the replacement event), so
/// the timed loop below measures the scheduler and nothing else — both
/// implementations replay the identical stream.
fn gen_deltas(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|_| {
            let roll = rng.index(100);
            if roll < 80 {
                // Packet-scale: serialization + switch hops at 1 Gbps.
                1 + rng.index(40_000) as u64
            } else if roll < 98 {
                // Flow-scale gaps: delayed ACK timers, application pauses.
                1 + rng.index(2_000_000) as u64
            } else {
                // RTO-scale far timers that cross the wheel horizon.
                200_000_000
            }
        })
        .collect()
}

/// Hold-model drive: prime `population` events, then one pop+push round
/// per remaining delta, then drain. Returns a checksum over every popped
/// timestamp so the two implementations can be cross-checked.
fn drive<Q: Sched>(q: &mut Q, deltas: &[u64], population: usize) -> u64 {
    let (prime, hold) = deltas.split_at(population);
    for &d in prime {
        q.push(SimTime::ZERO + SimDuration::from_nanos(d));
    }
    let mut checksum = 0u64;
    for &d in hold {
        let at = q.pop().expect("population keeps the queue non-empty");
        checksum = checksum.rotate_left(7) ^ at.as_nanos();
        q.push(at + SimDuration::from_nanos(d));
    }
    while let Some(at) = q.pop() {
        checksum = checksum.rotate_left(7) ^ at.as_nanos();
    }
    checksum
}

fn events_per_sec(ops: usize, population: usize, s: Sample) -> f64 {
    // Every op pops one event and every primed event eventually pops too.
    (ops + population) as f64 / (s.median_ns as f64 / 1e9)
}

fn scheduler_section() -> Json {
    const POPULATION: usize = 262_144;
    const OPS: usize = 1_000_000;
    const SEED: u64 = 7;
    let cfg = BenchConfig { warmup: 1, trials: 7 };
    let deltas = gen_deltas(SEED, POPULATION + OPS);

    let mut wheel_sum = 0u64;
    let wheel = measure(cfg, || {
        let mut q: EventQueue<u32> = EventQueue::new();
        wheel_sum = drive(&mut q, &deltas, POPULATION);
    });
    let mut heap_sum = 0u64;
    let heap = measure(cfg, || {
        let mut q: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
        heap_sum = drive(&mut q, &deltas, POPULATION);
    });
    assert_eq!(
        wheel_sum, heap_sum,
        "wheel and heap popped different event sequences"
    );

    let wheel_eps = events_per_sec(OPS, POPULATION, wheel);
    let heap_eps = events_per_sec(OPS, POPULATION, heap);
    let speedup = wheel_eps / heap_eps;
    println!(
        "scheduler: wheel {:.2} Mev/s vs heap {:.2} Mev/s — {:.2}x",
        wheel_eps / 1e6,
        heap_eps / 1e6,
        speedup
    );
    Json::obj()
        .set("workload", "dumbbell hold-model: 80% <=40us, 18% <=2ms, 2% 200ms RTO")
        .set("population", POPULATION)
        .set("ops", OPS)
        .set("checksums_match", true)
        .set(
            "timing_wheel",
            Json::from(wheel).set("events_per_sec", wheel_eps),
        )
        .set(
            "binary_heap",
            Json::from(heap).set("events_per_sec", heap_eps),
        )
        .set("speedup", speedup)
}

fn fig1_section() -> Json {
    let cfg = fig1::Fig1Config {
        interval: SimDuration::from_millis(100),
        bin: SimDuration::from_millis(20),
        seed: 1,
        ..fig1::Fig1Config::default()
    };
    let s = measure(BenchConfig::heavy(), || {
        std::hint::black_box(fig1::run(&cfg));
    });
    println!("fig1 (scaled down): {s}");
    Json::from(s).set("config", "interval 100ms, bin 20ms, seed 1")
}

fn table1_section() -> Json {
    let cfg = SuiteConfig {
        target_flows: 16,
        ..SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation)
    };
    let s = measure(BenchConfig::heavy(), || {
        std::hint::black_box(run_suite(&cfg));
    });
    println!("table1 cell (quick, XMP-2/Permutation): {s}");
    Json::from(s).set("config", "quick k=4, 16 flows, XMP-2 / Permutation")
}

fn parallel_section() -> Json {
    let cell = |scheme, pattern, seed| SuiteConfig {
        target_flows: 12,
        max_sim: SimDuration::from_secs(4),
        seed,
        ..SuiteConfig::quick(scheme, pattern)
    };
    let cells = [
        cell(Scheme::xmp(2), Pattern::Permutation, 1),
        cell(Scheme::Dctcp, Pattern::Permutation, 2),
        cell(Scheme::lia(2), Pattern::Random, 3),
        cell(Scheme::xmp(2), Pattern::Random, 4),
    ];

    let t0 = Instant::now();
    let serial: Vec<_> = cells.iter().map(run_suite).collect();
    let serial_ns = t0.elapsed().as_nanos() as u64;

    let t1 = Instant::now();
    let parallel = run_suite_parallel(&cells);
    let parallel_ns = t1.elapsed().as_nanos() as u64;

    let identical = serial
        .iter()
        .zip(parallel.iter())
        .all(|(a, b)| format!("{a:?}") == format!("{b:?}"));
    assert!(identical, "parallel suite diverged from serial");

    let speedup = serial_ns as f64 / parallel_ns as f64;
    println!(
        "suite 4 cells: serial {:.1} ms, parallel {:.1} ms — {:.2}x",
        serial_ns as f64 / 1e6,
        parallel_ns as f64 / 1e6,
        speedup
    );
    Json::obj()
        .set("cells", cells.len())
        .set("serial_ms", serial_ns as f64 / 1e6)
        .set("parallel_ms", parallel_ns as f64 / 1e6)
        .set("speedup", speedup)
        .set("results_identical", identical)
}

fn main() {
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The serial-vs-parallel comparison is meaningless on a single core
    // (run_suite_parallel degenerates to the serial loop): skip it rather
    // than report a vacuous 1.0x.
    let suite_parallel = if parallelism > 1 {
        parallel_section()
    } else {
        println!("suite 4 cells: skipped (single-core host)");
        Json::obj().set("skipped", "single-core host")
    };
    let report = Json::obj()
        .set(
            "host",
            xmp_bench::host_meta().set(
                "note",
                "suite speedup only binds on multi-core hosts (ISSUE: >=4 cores)",
            ),
        )
        .set("scheduler_microbench", scheduler_section())
        .set("fig1_small", fig1_section())
        .set("table1_cell_quick", table1_section())
        .set("suite_parallel", suite_parallel);
    let out = report.render();
    std::fs::write("BENCH_pr1.json", &out).expect("write BENCH_pr1.json");
    println!("wrote BENCH_pr1.json");
}
