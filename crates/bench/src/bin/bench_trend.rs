//! Cross-PR perf trend: one table over every committed `BENCH_pr*.json`.
//!
//! Each snapshot from PR 2 onward carries a `table1_cell_quick` section
//! with an identical workload (quick k = 4 suite cell, 16 flows, XMP-2 /
//! Permutation) per `SimTuning` combo, so their medians line up as a
//! longitudinal series. The table prints one row per snapshot and one
//! column per combo, plus the ratio of each cell to the previous
//! snapshot's. Run from the repo root (`scripts/bench.sh` does).
//!
//! Caveat printed with the table: snapshots were recorded on whatever host
//! ran the PR, sometimes under heavy contention — cross-PR ratios mix real
//! speedups with host drift. Same-file ratios (e.g. `boxed_over_static_min`
//! in `BENCH_pr5.json`) are the noise-immune measurements.

const COMBOS: [&str; 4] = [
    "dynamic_eager",
    "compiled_eager",
    "dynamic_lazy",
    "compiled_lazy",
];

/// Scan `doc` for `section.combo.<field>` without a JSON parser (the
/// workspace has none, by design; same scanner as the `bench_pr*` runners).
fn prior_ms(doc: &str, section: &str, combo: &str, field: &str) -> Option<f64> {
    let s = doc.find(&format!("\"{section}\""))?;
    let c = s + doc[s..].find(&format!("\"{combo}\""))?;
    let m = c + doc[c..].find(&format!("\"{field}\""))?;
    let colon = m + doc[m..].find(':')?;
    let rest = &doc[colon + 1..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Pull a string field out of the snapshot's `"host"` metadata block.
fn host_str(doc: &str, field: &str) -> Option<String> {
    let h = doc.find("\"host\"")?;
    let m = h + doc[h..].find(&format!("\"{field}\""))?;
    let colon = m + doc[m..].find(':')?;
    let rest = doc[colon + 1..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next().map(str::to_string)
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    }
}

fn main() {
    // Fixed candidate range rather than a directory scan: deterministic
    // order, and missing snapshots simply drop out of the table.
    let snapshots: Vec<(String, String)> = (1..=99)
        .filter_map(|i| {
            let name = format!("BENCH_pr{i}.json");
            std::fs::read_to_string(&name).ok().map(|doc| (name, doc))
        })
        .collect();
    if snapshots.is_empty() {
        eprintln!("bench_trend: no BENCH_pr*.json in the current directory");
        std::process::exit(1);
    }

    println!("table1_cell_quick median_ms across PR snapshots");
    println!("(quick k=4 suite cell, 16 flows, XMP-2 / Permutation; x-prev in parens)");
    print!("{:<16}", "snapshot");
    for combo in COMBOS {
        print!("{combo:>24}");
    }
    println!();

    let mut prev: [Option<f64>; 4] = [None; 4];
    let mut printed = 0;
    for (name, doc) in &snapshots {
        let row: Vec<Option<f64>> = COMBOS
            .iter()
            .map(|combo| prior_ms(doc, "table1_cell_quick", combo, "median_ms"))
            .collect();
        if row.iter().all(Option::is_none) {
            continue; // predates the shared section (e.g. BENCH_pr1.json)
        }
        print!("{name:<16}");
        for (slot, cell) in prev.iter_mut().zip(&row) {
            match cell {
                Some(ms) => {
                    let vs = match slot {
                        Some(p) => format!(" ({:.2}x)", *p / ms),
                        None => String::new(),
                    };
                    print!("{:>24}", format!("{ms:8.1} ms{vs}"));
                    *slot = Some(*ms);
                }
                None => print!("{:>24}", "-"),
            }
        }
        let host = [
            host_str(doc, "git_rev").map(|v| format!("rev {v}")),
            host_str(doc, "parallelism").map(|v| format!("{v} cpu")),
            host_str(doc, "rustc")
                .map(|v| v.split_whitespace().take(2).collect::<Vec<_>>().join(" ")),
        ]
        .into_iter()
        .flatten()
        .collect::<Vec<_>>()
        .join(", ");
        println!("   [{host}]");
        printed += 1;
    }
    if printed == 0 {
        eprintln!("bench_trend: no snapshot carries a table1_cell_quick section");
        std::process::exit(1);
    }

    // Macro throughput series: events handled per wall-clock second inside
    // the event loop, normalized per workload rather than per host.
    // Snapshots without the field (PR 4 and PR 5 dropped it; PR 6 brought
    // it back) simply drop out of this table.
    let mut printed_eps = false;
    for (name, doc) in &snapshots {
        let row: Vec<Option<f64>> = COMBOS
            .iter()
            .map(|combo| prior_ms(doc, "table1_cell_quick", combo, "events_per_sec"))
            .collect();
        if row.iter().all(Option::is_none) {
            continue;
        }
        if !printed_eps {
            println!();
            println!("table1_cell_quick events_per_sec across PR snapshots (Mev/s)");
            print!("{:<16}", "snapshot");
            for combo in COMBOS {
                print!("{combo:>24}");
            }
            println!();
            printed_eps = true;
        }
        print!("{name:<16}");
        for cell in &row {
            match cell {
                Some(eps) => print!("{:>24}", format!("{:.2} Mev/s", eps / 1e6)),
                None => print!("{:>24}", "-"),
            }
        }
        println!();
    }
    println!(
        "note: snapshots come from different sessions on a shared host; \
         cross-PR ratios mix real speedups with host drift. Trust \
         same-file ratios (BENCH_pr5.json boxed_over_static_min) for \
         dispatch comparisons."
    );
}
