//! Perf snapshot for the observability layer, written to `BENCH_pr4.json`
//! (run from the repo root, e.g. via `scripts/bench.sh`).
//!
//! Two questions:
//!
//! 1. **What do probes cost when off?** The probe fields and profiling
//!    counters are always compiled in, so the suite hot path is rerun
//!    probes-off under all four `SimTuning` combinations and compared
//!    against the committed `BENCH_pr3.json` (target: ≤ 1.02 on
//!    `compiled_lazy`).
//! 2. **What do probes cost when on?** The same cell runs with 1 ms
//!    sampling over every core link; the `probe_overhead_median` /
//!    `probe_overhead_min` ratios (on vs off, same process) should stay
//!    ≤ 1.05 — sampling is a handful of counter reads per tick.
//!
//! The dynamics experiment (the probe layer's real consumer) is timed as
//! well, and each cell records the engine profile counters (event mix,
//! pool hit rate) the `SimProfile` subsystem introduces.

use xmp_bench::{measure, BenchConfig, Json};
use xmp_des::SimDuration;
use xmp_experiments::dynamics::{self, DynamicsConfig};
use xmp_experiments::suite::{run_suite_profiled, Pattern, SuiteConfig};
use xmp_netsim::{SimProfile, SimTuning};
use xmp_workloads::Scheme;

const COMBOS: [(&str, SimTuning); 4] = [
    (
        "dynamic_eager",
        SimTuning {
            compiled_fib: false,
            lazy_links: false,
            drop_unroutable: false,
        },
    ),
    (
        "compiled_eager",
        SimTuning {
            compiled_fib: true,
            lazy_links: false,
            drop_unroutable: false,
        },
    ),
    (
        "dynamic_lazy",
        SimTuning {
            compiled_fib: false,
            lazy_links: true,
            drop_unroutable: false,
        },
    ),
    (
        "compiled_lazy",
        SimTuning {
            compiled_fib: true,
            lazy_links: true,
            drop_unroutable: false,
        },
    ),
];

/// Scan a committed snapshot for `section.combo.<field>` without a JSON
/// parser (the workspace has none, by design).
fn prior_ms(doc: &str, section: &str, combo: &str, field: &str) -> Option<f64> {
    let s = doc.find(&format!("\"{section}\""))?;
    let c = s + doc[s..].find(&format!("\"{combo}\""))?;
    let m = c + doc[c..].find(&format!("\"{field}\""))?;
    let colon = m + doc[m..].find(':')?;
    let rest = &doc[colon + 1..];
    let end = rest
        .find([',', '}'])
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn suite_cell(tuning: SimTuning, probe_interval: Option<SimDuration>) -> (u64, SimProfile) {
    let cfg = SuiteConfig {
        target_flows: 16,
        tuning,
        probe_interval,
        ..SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation)
    };
    let (r, events, profile) = run_suite_profiled(&cfg);
    std::hint::black_box(r);
    (events, profile)
}

fn profile_json(p: &SimProfile) -> Json {
    Json::obj()
        .set("deliver", p.deliver)
        .set("tx_done", p.tx_done)
        .set("timer", p.timer)
        .set("fault", p.fault)
        .set("sample", p.sample)
        .set("pool_hit_rate", p.pool_hit_rate())
        .set("fib_compile_ms", p.fib_compile_ns as f64 / 1e6)
}

fn main() {
    let pr3 = std::fs::read_to_string("BENCH_pr3.json").ok();
    if pr3.is_none() {
        println!("note: BENCH_pr3.json not found, skipping continuity ratios");
    }

    println!("table1 cell (quick, XMP-2/Permutation), probes off vs on:");
    let mut suite_section = Json::obj();
    for (name, tuning) in COMBOS {
        let mut events = 0;
        let mut profile = SimProfile::default();
        let off = measure(BenchConfig::default(), || {
            (events, profile) = suite_cell(tuning, None);
        });
        let on = measure(BenchConfig::default(), || {
            let r = suite_cell(tuning, Some(SimDuration::from_millis(1)));
            std::hint::black_box(r);
        });
        let overhead_median = on.median_ns as f64 / off.median_ns as f64;
        let overhead_min = on.min_ms() / off.min_ms();
        let mut cell = Json::from(off)
            .set("events", events)
            .set("probes_on_median_ms", on.median_ns as f64 / 1e6)
            .set("probes_on_min_ms", on.min_ms())
            .set("probe_overhead_median", overhead_median)
            .set("probe_overhead_min", overhead_min)
            .set("profile", profile_json(&profile));
        let min_ratio = pr3
            .as_deref()
            .and_then(|doc| prior_ms(doc, "table1_cell_quick", name, "min_ms"))
            .map(|old| off.min_ms() / old);
        if let Some(r) = pr3
            .as_deref()
            .and_then(|doc| prior_ms(doc, "table1_cell_quick", name, "median_ms"))
            .map(|old| (off.median_ns as f64 / 1e6) / old)
        {
            cell = cell.set("vs_pr3_median", r);
        }
        if let Some(r) = min_ratio {
            cell = cell.set("vs_pr3_min", r);
        }
        println!(
            "  {name:<15} off {:>8.1} ms, on {:>8.1} ms ({overhead_min:.3}x min){}",
            off.median_ns as f64 / 1e6,
            on.median_ns as f64 / 1e6,
            min_ratio.map_or(String::new(), |r| format!(", {r:.3}x vs PR3 min")),
        );
        suite_section = suite_section.set(name, cell);
    }

    println!("dynamics (quick, XMP-2 + DCTCP, probes fully on):");
    let dynamics_sample = measure(BenchConfig::heavy(), || {
        std::hint::black_box(dynamics::run(&DynamicsConfig::quick()));
    });
    println!(
        "  {:<15} median {:>8.1} ms",
        "dynamics_quick",
        dynamics_sample.median_ns as f64 / 1e6
    );

    let report = Json::obj()
        .set("host", xmp_bench::host_meta())
        .set(
            "note",
            "probe_overhead_* compare the same suite cell probes-on (1 ms \
             core-link sampling) vs probes-off in one process; target <= \
             1.05. vs_pr3_* compare probes-off against the committed \
             BENCH_pr3.json (target <= ~1.02 on compiled_lazy). Trust the \
             *_min ratios on shared hosts.",
        )
        .set(
            "table1_cell_quick",
            suite_section.set("config", "quick k=4, 16 flows, XMP-2 / Permutation"),
        )
        .set(
            "dynamics_quick",
            Json::from(dynamics_sample).set("config", "dumbbell 1 Gbps, 150x1ms epochs, 2 schemes"),
        );
    let out = report.render();
    std::fs::write("BENCH_pr4.json", &out).expect("write BENCH_pr4.json");
    println!("wrote BENCH_pr4.json");
}
