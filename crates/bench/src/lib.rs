//! # xmp-bench — in-tree benchmark harness (std-only)
//!
//! Replaces the former Criterion dependency so the workspace builds and
//! benches **offline with zero external crates**. The harness is
//! deliberately tiny: wall-clock trials via [`std::time::Instant`] with a
//! warmup pass, reporting median/min/mean, plus a hand-rolled JSON writer
//! for machine-readable perf trajectories (`BENCH_pr1.json`, written by the
//! `bench_pr1` binary — see `scripts/bench.sh`).
//!
//! Every `benches/*.rs` target is a plain `fn main()` (`harness = false`)
//! that first renders its paper artifact once (stderr, so `cargo bench`
//! output still contains the regenerated rows) and then measures the run
//! through [`measure`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How many heap allocations the process has performed (when
/// [`CountingAlloc`] is installed as the global allocator; always 0
/// otherwise). Signature matches `xmp_netsim::set_alloc_probe`, so the
/// engine can attribute allocations to event-loop windows.
pub fn alloc_count() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper over the system allocator, for bench binaries only
/// (`#[global_allocator] static A: CountingAlloc = CountingAlloc;`).
/// Counts every `alloc`/`alloc_zeroed`/`realloc` — frees are not counted,
/// since the zero-allocation claim is about *acquiring* memory on the hot
/// path. The counter is process-global and monotone; callers diff
/// [`alloc_count`] across a window.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Trial-count configuration. A single iteration here is a whole
/// simulation, so counts stay small (Criterion's `sample_size(10)`
/// equivalent).
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Untimed iterations to warm caches and the allocator.
    pub warmup: usize,
    /// Timed iterations.
    pub trials: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup: 1,
            trials: 5,
        }
    }
}

impl BenchConfig {
    /// Quick preset for heavyweight benches (one warmup, three trials).
    pub fn heavy() -> Self {
        BenchConfig {
            warmup: 1,
            trials: 3,
        }
    }
}

/// Wall-clock statistics over the timed trials, in nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Median trial.
    pub median_ns: u64,
    /// Fastest trial.
    pub min_ns: u64,
    /// Slowest trial.
    pub max_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Number of timed trials.
    pub trials: usize,
}

impl Sample {
    /// Median in fractional milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median_ns as f64 / 1e6
    }

    /// Minimum in fractional milliseconds.
    pub fn min_ms(&self) -> f64 {
        self.min_ns as f64 / 1e6
    }
}

impl fmt::Display for Sample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "median {:.3} ms, min {:.3} ms, mean {:.3} ms over {} trials",
            self.median_ns as f64 / 1e6,
            self.min_ns as f64 / 1e6,
            self.mean_ns as f64 / 1e6,
            self.trials
        )
    }
}

/// Time `f` for `cfg.trials` iterations after `cfg.warmup` untimed ones.
/// The closure's return value is passed through [`std::hint::black_box`]
/// so the compiler cannot elide the work.
pub fn measure<R>(cfg: BenchConfig, mut f: impl FnMut() -> R) -> Sample {
    for _ in 0..cfg.warmup {
        std::hint::black_box(f());
    }
    let mut times: Vec<u64> = Vec::with_capacity(cfg.trials);
    for _ in 0..cfg.trials.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    times.sort_unstable();
    let n = times.len();
    Sample {
        median_ns: times[n / 2],
        min_ns: times[0],
        max_ns: times[n - 1],
        mean_ns: (times.iter().map(|&t| t as u128).sum::<u128>() / n as u128) as u64,
        trials: n,
    }
}

/// Convenience wrapper used by the `benches/*.rs` targets: measure with the
/// default config and print one Criterion-style summary line to stdout.
pub fn bench_main<R>(name: &str, f: impl FnMut() -> R) -> Sample {
    let s = measure(BenchConfig::default(), f);
    println!("{name:<32} {s}");
    s
}

/// First line of a command's stdout, or `"unknown"` if the command is
/// missing or fails (benches must run on hermetic hosts without git or a
/// rustc on PATH).
fn first_line_of(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| {
            let s = String::from_utf8_lossy(&o.stdout);
            s.lines().next().map(|l| l.trim().to_string())
        })
        .filter(|l| !l.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Host metadata block every `BENCH_*.json` report embeds, so perf numbers
/// stay interpretable across machines: available parallelism, the
/// toolchain, and the exact source revision measured.
pub fn host_meta() -> Json {
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    Json::obj()
        .set("parallelism", parallelism)
        .set("rustc", first_line_of("rustc", &["--version"]))
        .set(
            "git_rev",
            first_line_of("git", &["rev-parse", "--short", "HEAD"]),
        )
        .set("os", std::env::consts::OS)
        .set("arch", std::env::consts::ARCH)
}

/// A minimal JSON value — just enough structure for the bench reports.
#[derive(Clone, Debug)]
pub enum Json {
    /// Float (serialized with enough digits to round-trip perf numbers).
    Num(f64),
    /// Unsigned integer.
    Int(u64),
    /// Boolean.
    Bool(bool),
    /// String (escaped on output).
    Str(String),
    /// Ordered key/value object.
    Obj(Vec<(String, Json)>),
    /// Array.
    Arr(Vec<Json>),
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert/append a field (objects only).
    pub fn set(mut self, key: &str, val: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), val.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    fn write(&self, out: &mut String, indent: usize) {
        use std::fmt::Write;
        match self {
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:.3}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{:1$}\"{k}\": ", "", (indent + 1) * 2);
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                let _ = write!(out, "{:1$}}}", "", indent * 2);
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.write(out, indent);
                }
                out.push(']');
            }
        }
    }

    /// Pretty-printed serialization.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Int(x)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Int(x as u64)
    }
}
impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}
impl From<&str> for Json {
    fn from(x: &str) -> Json {
        Json::Str(x.to_string())
    }
}
impl From<String> for Json {
    fn from(x: String) -> Json {
        Json::Str(x)
    }
}

impl From<Sample> for Json {
    fn from(s: Sample) -> Json {
        Json::obj()
            .set("median_ms", s.median_ns as f64 / 1e6)
            .set("min_ms", s.min_ns as f64 / 1e6)
            .set("max_ms", s.max_ns as f64 / 1e6)
            .set("mean_ms", s.mean_ns as f64 / 1e6)
            .set("trials", s.trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_ordered_stats() {
        let mut i = 0u64;
        let s = measure(BenchConfig { warmup: 0, trials: 5 }, || {
            i += 1;
            std::thread::sleep(std::time::Duration::from_micros(50 * (i % 3)));
        });
        assert_eq!(s.trials, 5);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn json_renders_nested_objects() {
        let j = Json::obj()
            .set("a", 1u64)
            .set("b", Json::obj().set("c", 2.5).set("s", "x\"y"))
            .set("arr", Json::Arr(vec![Json::Int(1), Json::Bool(true)]));
        let s = j.render();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"c\": 2.500"));
        assert!(s.contains("\\\"y"));
        assert!(s.contains("[1, true]"));
    }
}
