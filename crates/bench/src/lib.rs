//! # xmp-bench — Criterion benches regenerating the paper's artifacts
//!
//! One bench target per table/figure. Each target first renders the
//! artifact once (printed to stderr so `cargo bench` output contains the
//! regenerated rows), then measures the run under Criterion using
//! deliberately small "bench-scale" configurations so the whole suite
//! stays in the minutes range. The `xmp-experiments` binary is the place
//! for full-scale runs.

use std::time::Duration;

/// Criterion settings shared by all benches: tiny sample counts because a
/// single iteration is a whole simulation.
pub fn criterion_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
        .configure_from_args()
}
