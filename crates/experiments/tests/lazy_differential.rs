//! Differential equivalence of the simulator fast paths at the experiment
//! level: the compiled-FIB forwarding path and the lazy one-event-per-hop
//! link pipeline must reproduce the baseline (dynamic routing, eager
//! TxDone pipeline) **bit-identically** on the paper's workloads.
//!
//! The comparison digest is the full `Debug` rendering of each result
//! structure — f64 Debug formatting round-trips exactly, so equal strings
//! mean bit-equal rates, Jain indices, goodputs and queue statistics.

use xmp_des::SimDuration;
use xmp_experiments::fig1::{self, Fig1Config};
use xmp_experiments::suite::{run_suite, Pattern, SuiteConfig};
use xmp_netsim::SimTuning;
use xmp_workloads::Scheme;

const BASELINE: SimTuning = SimTuning {
    compiled_fib: false,
    lazy_links: false,
    drop_unroutable: false,
};
const FAST: SimTuning = SimTuning {
    compiled_fib: true,
    lazy_links: true,
    drop_unroutable: false,
};
const LAZY_ONLY: SimTuning = SimTuning {
    compiled_fib: false,
    lazy_links: true,
    drop_unroutable: false,
};

fn fig1_digest(seed: u64, tuning: SimTuning) -> String {
    let cfg = Fig1Config {
        interval: SimDuration::from_millis(60),
        bin: SimDuration::from_millis(20),
        seed,
        tuning,
    };
    format!("{:?}", fig1::run(&cfg))
}

#[test]
fn fig1_fast_paths_match_baseline_multi_seed() {
    for seed in [3, 7, 11] {
        let base = fig1_digest(seed, BASELINE);
        assert_eq!(
            base,
            fig1_digest(seed, FAST),
            "seed {seed}: compiled FIB + lazy links diverged on fig1"
        );
        assert_eq!(
            base,
            fig1_digest(seed, LAZY_ONLY),
            "seed {seed}: lazy links alone diverged on fig1"
        );
    }
}

fn table1_digest(seed: u64, scheme: Scheme, tuning: SimTuning) -> String {
    let cfg = SuiteConfig {
        target_flows: 6,
        max_sim: SimDuration::from_secs(2),
        seed,
        tuning,
        ..SuiteConfig::quick(scheme, Pattern::Permutation)
    };
    format!("{:?}", run_suite(&cfg))
}

#[test]
fn table1_cell_fast_paths_match_baseline() {
    // The fat-tree cell exercises ECMP hashing on every hop, ECN marking
    // at the paper's K, retransmission timers and multi-subflow transport —
    // the full event soup the equivalence argument has to survive.
    for (seed, scheme) in [(1, Scheme::xmp(2)), (2, Scheme::Dctcp)] {
        let base = table1_digest(seed, scheme, BASELINE);
        assert_eq!(
            base,
            table1_digest(seed, scheme, FAST),
            "seed {seed}: compiled FIB + lazy links diverged on table1 cell"
        );
    }
}
