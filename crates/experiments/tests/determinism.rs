//! The probe layer's determinism contract, at the experiment level:
//!
//! 1. **Observation never perturbs** — a probed run's simulated clock, flow
//!    outcomes and conservation audit are bit-identical to the unprobed
//!    run (only the engine event count differs, by exactly the sampling
//!    ticks).
//! 2. **Disabled means absent** — installing probes with a zero horizon
//!    schedules nothing and the run is fully identical, event count
//!    included, to one where `install_probes` was never called.
//! 3. **Exports are tuning-independent** — the `dynamics` JSONL export is
//!    byte-identical across every `SimTuning` combination (the sampled
//!    queue depth is defined to agree between the eager and lazy link
//!    pipelines, and the meta line carries no tuning).

use xmp_des::{Bandwidth, SimDuration, SimTime};
use xmp_experiments::common::host_stack;
use xmp_experiments::dynamics::{self, DynamicsConfig};
use xmp_netsim::{FaultPlan, PortId, ProbeConfig, QdiscConfig, Sim, SimTuning};
use xmp_topo::Dumbbell;
use xmp_transport::{Segment, SubflowSpec};
use xmp_workloads::{Driver, FlowSpecBuilder, Host, Scheme};

const TUNINGS: [SimTuning; 4] = [
    SimTuning {
        compiled_fib: false,
        lazy_links: false,
        drop_unroutable: false,
    },
    SimTuning {
        compiled_fib: true,
        lazy_links: false,
        drop_unroutable: false,
    },
    SimTuning {
        compiled_fib: false,
        lazy_links: true,
        drop_unroutable: false,
    },
    SimTuning {
        compiled_fib: true,
        lazy_links: true,
        drop_unroutable: false,
    },
];

enum Probing {
    None,
    ZeroHorizon,
    Full,
}

/// A faulted dumbbell run (two bounded DCTCP+XMP flows through a transient
/// bottleneck outage); returns (final clock, flow records digest, audit
/// digest, events processed, probe records).
fn faulted_run(tuning: SimTuning, probing: Probing) -> (u64, String, String, u64, usize) {
    let mut sim: Sim<Segment, Host> = Sim::new(11);
    sim.set_tuning(tuning);
    let db = Dumbbell::build(
        &mut sim,
        2,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(225),
        QdiscConfig::EcnThreshold { cap: 100, k: 10 },
        |_| host_stack(),
    );
    sim.install_fault_plan(
        &FaultPlan::new()
            .link_down(SimTime::from_millis(30), db.bottleneck)
            .link_up(SimTime::from_millis(35), db.bottleneck),
    );
    let end = SimTime::from_millis(100);
    match probing {
        Probing::None => {}
        Probing::ZeroHorizon => {
            sim.install_probes(ProbeConfig::every(SimDuration::from_millis(1)));
        }
        Probing::Full => sim.install_probes(
            ProbeConfig::every(SimDuration::from_millis(1))
                .until(end)
                .watch_queue(db.bottleneck, 0)
                .with_marks(),
        ),
    }

    let mut driver = Driver::new();
    for (i, scheme) in [(0usize, Scheme::xmp(2)), (1usize, Scheme::Dctcp)] {
        driver.submit(FlowSpecBuilder {
            src_node: db.sources[i],
            subflows: (0..scheme.subflow_count())
                .map(|_| SubflowSpec {
                    local_port: PortId(0),
                    src: Dumbbell::src_addr(i),
                    dst: Dumbbell::dst_addr(i),
                })
                .collect(),
            size: 2_000_000,
            scheme,
            start: SimTime::ZERO,
            category: None,
            tag: i as u64,
        });
    }
    driver.run(&mut sim, end, |_, _, _| {});
    driver.finalize_running(&mut sim);
    let audit = format!("{:?}", sim.audit_conservation());
    let flows = format!("{:?}", driver.records().collect::<Vec<_>>());
    let probe_records = sim.take_probes().map_or(0, |p| p.len());
    (
        sim.now().as_nanos(),
        flows,
        audit,
        sim.events_processed(),
        probe_records,
    )
}

#[test]
fn probes_observe_without_perturbing_across_tunings() {
    for tuning in TUNINGS {
        let off = faulted_run(tuning, Probing::None);
        let on = faulted_run(tuning, Probing::Full);
        assert_eq!(off.0, on.0, "{tuning:?}: clock diverged under probes");
        assert_eq!(off.1, on.1, "{tuning:?}: flow outcomes diverged");
        assert_eq!(off.2, on.2, "{tuning:?}: audit diverged");
        // The only difference is the sampling ticks themselves.
        assert!(
            on.3 > off.3,
            "{tuning:?}: probed run handled no extra events"
        );
        assert!(on.4 > 0, "{tuning:?}: probed run recorded nothing");
        assert_eq!(off.4, 0);
    }
}

#[test]
fn zero_horizon_probes_are_fully_absent() {
    let never = faulted_run(TUNINGS[3], Probing::None);
    let zero = faulted_run(TUNINGS[3], Probing::ZeroHorizon);
    // Bit-identical *including* the event count: a zero sampling horizon
    // schedules no event at all, the FaultPlan install discipline.
    assert_eq!(never.0, zero.0);
    assert_eq!(never.1, zero.1);
    assert_eq!(never.2, zero.2);
    assert_eq!(never.3, zero.3, "zero-horizon probes scheduled events");
    assert_eq!(zero.4, 0);
}

#[test]
fn dynamics_export_is_byte_identical_across_tunings() {
    let export = |tuning: SimTuning| {
        let cfg = DynamicsConfig {
            epochs: 60,
            tuning,
            ..DynamicsConfig::quick()
        };
        dynamics::run(&cfg)
            .traces
            .into_iter()
            .map(|t| t.jsonl)
            .collect::<Vec<_>>()
    };
    let base = export(TUNINGS[0]);
    assert!(base[0].contains("\"scheme\":\"XMP-2\""));
    for tuning in &TUNINGS[1..] {
        assert_eq!(
            base,
            export(*tuning),
            "{tuning:?}: exported series diverged from the baseline pipeline"
        );
    }
}

/// A faulted, probed k = 4 fat-tree cell with pre-submitted cross-pod
/// XMP-2 + DCTCP flows, run under `workers` threads; returns every
/// digest a serial observer could take (final clock, flow records, audit,
/// probe records, per-kind event counts). Pre-submitted flows make the
/// partitioned run *bit-identical* to serial — nothing chains on
/// completion, so window-boundary callback timing cannot shift the
/// workload.
fn partitioned_fat_tree_run(
    tuning: SimTuning,
    workers: usize,
) -> (u64, String, String, String, (u64, u64, u64)) {
    use xmp_netsim::PartitionedSim;
    use xmp_topo::{FatTree, FatTreeConfig};
    use xmp_transport::{HostStack, StackConfig};
    use xmp_workloads::FlowSim;

    let mut sim: Sim<Segment, Host> = Sim::new(7);
    sim.set_tuning(tuning);
    let ft_cfg = FatTreeConfig {
        k: 4,
        ..FatTreeConfig::paper(QdiscConfig::EcnThreshold { cap: 100, k: 10 })
    };
    let stack_cfg = StackConfig::default().with_rto_min(SimDuration::from_millis(200));
    let ft = FatTree::build(&mut sim, &ft_cfg, |_| HostStack::new(stack_cfg.clone()));
    let end = SimTime::from_millis(50);

    // Faults and probes both live on a core link — the partition cut.
    let watched = ft.core_link(0, 0, 0);
    sim.install_fault_plan(
        &FaultPlan::new()
            .link_down(SimTime::from_millis(15), watched)
            .link_up(SimTime::from_millis(25), watched),
    );
    sim.install_probes(
        ProbeConfig::every(SimDuration::from_millis(1))
            .until(end)
            .watch_queue(watched, 0)
            .watch_queue(watched, 1)
            .with_marks(),
    );

    // Cross-pod flows from every pod, alternating schemes.
    let mut driver = Driver::new();
    let n = ft.hosts.len();
    for i in 0..n {
        let dst = (i + n / 2) % n;
        let scheme = if i % 2 == 0 { Scheme::xmp(2) } else { Scheme::Dctcp };
        let tags: Vec<usize> = match scheme.subflow_count() {
            1 => vec![0],
            _ => vec![0, ft.tag_count() - 1],
        };
        driver.submit(FlowSpecBuilder {
            src_node: ft.host(i),
            subflows: tags
                .iter()
                .map(|&t| SubflowSpec {
                    local_port: PortId(0),
                    src: ft.host_addr(i, t),
                    dst: ft.host_addr(dst, t),
                })
                .collect(),
            size: 300_000,
            scheme,
            start: SimTime::ZERO + SimDuration::from_micros(i as u64),
            category: Some(ft.category(i, dst)),
            tag: i as u64,
        });
    }

    fn drive<S: FlowSim>(sim: &mut S, driver: &mut Driver, end: SimTime) {
        let slice = SimDuration::from_millis(5);
        while sim.now() < end {
            let t = (sim.now() + slice).min(end);
            driver.run(sim, t, |_, _, _| {});
        }
        driver.finalize_running(sim);
    }
    let mut sim = if workers > 1 {
        let plan = ft.partition_plan(workers);
        let mut psim = PartitionedSim::new(sim, &plan);
        drive(&mut psim, &mut driver, end);
        psim.finish()
    } else {
        drive(&mut sim, &mut driver, end);
        sim
    };

    let audit = format!("{:?}", sim.audit_conservation());
    let flows = format!("{:?}", driver.records().collect::<Vec<_>>());
    let probes = format!(
        "{:?}",
        sim.take_probes().expect("probes installed").records()
    );
    let p = sim.profile();
    (
        sim.now().as_nanos(),
        flows,
        audit,
        probes,
        (p.deliver, p.tx_done, p.timer),
    )
}

#[test]
fn partitioned_fat_tree_matches_serial_across_tunings_and_workers() {
    // The tentpole's determinism contract: sharding one simulation across
    // threads changes *nothing observable* — not the flow records, not the
    // conservation audit, not the probe time series, not the per-kind
    // event counts — under every tuning combination, with a core link
    // flapping and probes watching it. (`events_processed` and the
    // fault/sample counts are intentionally excluded: fault timelines and
    // sampling ticks are replicated per shard by design.)
    for tuning in TUNINGS {
        let serial = partitioned_fat_tree_run(tuning, 1);
        for workers in [2usize, 4] {
            let sharded = partitioned_fat_tree_run(tuning, workers);
            assert_eq!(serial, sharded, "tuning {tuning:?} workers {workers}");
        }
    }
}
