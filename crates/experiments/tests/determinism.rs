//! The probe layer's determinism contract, at the experiment level:
//!
//! 1. **Observation never perturbs** — a probed run's simulated clock, flow
//!    outcomes and conservation audit are bit-identical to the unprobed
//!    run (only the engine event count differs, by exactly the sampling
//!    ticks).
//! 2. **Disabled means absent** — installing probes with a zero horizon
//!    schedules nothing and the run is fully identical, event count
//!    included, to one where `install_probes` was never called.
//! 3. **Exports are tuning-independent** — the `dynamics` JSONL export is
//!    byte-identical across every `SimTuning` combination (the sampled
//!    queue depth is defined to agree between the eager and lazy link
//!    pipelines, and the meta line carries no tuning).

use xmp_des::{Bandwidth, SimDuration, SimTime};
use xmp_experiments::common::host_stack;
use xmp_experiments::dynamics::{self, DynamicsConfig};
use xmp_netsim::{FaultPlan, PortId, ProbeConfig, QdiscConfig, Sim, SimTuning};
use xmp_topo::Dumbbell;
use xmp_transport::{Segment, SubflowSpec};
use xmp_workloads::{Driver, FlowSpecBuilder, Host, Scheme};

const TUNINGS: [SimTuning; 4] = [
    SimTuning {
        compiled_fib: false,
        lazy_links: false,
        drop_unroutable: false,
    },
    SimTuning {
        compiled_fib: true,
        lazy_links: false,
        drop_unroutable: false,
    },
    SimTuning {
        compiled_fib: false,
        lazy_links: true,
        drop_unroutable: false,
    },
    SimTuning {
        compiled_fib: true,
        lazy_links: true,
        drop_unroutable: false,
    },
];

enum Probing {
    None,
    ZeroHorizon,
    Full,
}

/// A faulted dumbbell run (two bounded DCTCP+XMP flows through a transient
/// bottleneck outage); returns (final clock, flow records digest, audit
/// digest, events processed, probe records).
fn faulted_run(tuning: SimTuning, probing: Probing) -> (u64, String, String, u64, usize) {
    let mut sim: Sim<Segment, Host> = Sim::new(11);
    sim.set_tuning(tuning);
    let db = Dumbbell::build(
        &mut sim,
        2,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(225),
        QdiscConfig::EcnThreshold { cap: 100, k: 10 },
        |_| host_stack(),
    );
    sim.install_fault_plan(
        &FaultPlan::new()
            .link_down(SimTime::from_millis(30), db.bottleneck)
            .link_up(SimTime::from_millis(35), db.bottleneck),
    );
    let end = SimTime::from_millis(100);
    match probing {
        Probing::None => {}
        Probing::ZeroHorizon => {
            sim.install_probes(ProbeConfig::every(SimDuration::from_millis(1)));
        }
        Probing::Full => sim.install_probes(
            ProbeConfig::every(SimDuration::from_millis(1))
                .until(end)
                .watch_queue(db.bottleneck, 0)
                .with_marks(),
        ),
    }

    let mut driver = Driver::new();
    for (i, scheme) in [(0usize, Scheme::xmp(2)), (1usize, Scheme::Dctcp)] {
        driver.submit(FlowSpecBuilder {
            src_node: db.sources[i],
            subflows: (0..scheme.subflow_count())
                .map(|_| SubflowSpec {
                    local_port: PortId(0),
                    src: Dumbbell::src_addr(i),
                    dst: Dumbbell::dst_addr(i),
                })
                .collect(),
            size: 2_000_000,
            scheme,
            start: SimTime::ZERO,
            category: None,
            tag: i as u64,
        });
    }
    driver.run(&mut sim, end, |_, _, _| {});
    driver.finalize_running(&mut sim);
    let audit = format!("{:?}", sim.audit_conservation());
    let flows = format!("{:?}", driver.records().collect::<Vec<_>>());
    let probe_records = sim.take_probes().map_or(0, |p| p.len());
    (
        sim.now().as_nanos(),
        flows,
        audit,
        sim.events_processed(),
        probe_records,
    )
}

#[test]
fn probes_observe_without_perturbing_across_tunings() {
    for tuning in TUNINGS {
        let off = faulted_run(tuning, Probing::None);
        let on = faulted_run(tuning, Probing::Full);
        assert_eq!(off.0, on.0, "{tuning:?}: clock diverged under probes");
        assert_eq!(off.1, on.1, "{tuning:?}: flow outcomes diverged");
        assert_eq!(off.2, on.2, "{tuning:?}: audit diverged");
        // The only difference is the sampling ticks themselves.
        assert!(
            on.3 > off.3,
            "{tuning:?}: probed run handled no extra events"
        );
        assert!(on.4 > 0, "{tuning:?}: probed run recorded nothing");
        assert_eq!(off.4, 0);
    }
}

#[test]
fn zero_horizon_probes_are_fully_absent() {
    let never = faulted_run(TUNINGS[3], Probing::None);
    let zero = faulted_run(TUNINGS[3], Probing::ZeroHorizon);
    // Bit-identical *including* the event count: a zero sampling horizon
    // schedules no event at all, the FaultPlan install discipline.
    assert_eq!(never.0, zero.0);
    assert_eq!(never.1, zero.1);
    assert_eq!(never.2, zero.2);
    assert_eq!(never.3, zero.3, "zero-horizon probes scheduled events");
    assert_eq!(zero.4, 0);
}

#[test]
fn dynamics_export_is_byte_identical_across_tunings() {
    let export = |tuning: SimTuning| {
        let cfg = DynamicsConfig {
            epochs: 60,
            tuning,
            ..DynamicsConfig::quick()
        };
        dynamics::run(&cfg)
            .traces
            .into_iter()
            .map(|t| t.jsonl)
            .collect::<Vec<_>>()
    };
    let base = export(TUNINGS[0]);
    assert!(base[0].contains("\"scheme\":\"XMP-2\""));
    for tuning in &TUNINGS[1..] {
        assert_eq!(
            base,
            export(*tuning),
            "{tuning:?}: exported series diverged from the baseline pipeline"
        );
    }
}
