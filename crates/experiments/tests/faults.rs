//! End-to-end fault injection through the full transport stack: scheduled
//! link/switch failures on a fat-tree must surface as retransmission
//! timeouts and (for multipath) path failover — never as a hung or
//! panicking simulation.

use xmp_des::SimTime;
use xmp_netsim::{FaultPlan, PortId, QdiscConfig, Sim};
use xmp_topo::{FatTree, FatTreeConfig};
use xmp_transport::{ConnKey, Segment, SubflowSpec};
use xmp_workloads::{Driver, FlowSpecBuilder, Host, RateSampler, Scheme};

fn build_k4(seed: u64) -> (Sim<Segment, Host>, FatTree) {
    let mut sim: Sim<Segment, Host> = Sim::new(seed);
    let cfg = FatTreeConfig {
        k: 4,
        ..FatTreeConfig::paper(QdiscConfig::EcnThreshold { cap: 100, k: 10 })
    };
    let ft = FatTree::build(&mut sim, &cfg, |_| {
        xmp_transport::HostStack::new(xmp_transport::StackConfig::default())
    });
    (sim, ft)
}

fn submit(driver: &mut Driver, ft: &FatTree, scheme: Scheme, tags: &[usize], size: u64) -> ConnKey {
    let (src, dst) = (0usize, 4usize); // pod 0 → pod 1
    driver.submit(FlowSpecBuilder {
        src_node: ft.host(src),
        subflows: tags
            .iter()
            .map(|&t| SubflowSpec {
                local_port: PortId(0),
                src: ft.host_addr(src, t),
                dst: ft.host_addr(dst, t),
            })
            .collect(),
        size,
        scheme,
        start: SimTime::ZERO,
        category: Some(ft.category(src, dst)),
        tag: 0,
    })
}

#[test]
fn blackhole_window_triggers_rto_and_flow_still_completes() {
    let (mut sim, ft) = build_k4(7);
    // The single path of a DCTCP flow goes dark for 300 ms mid-transfer;
    // go-back-N must resend the blackholed window after repair.
    sim.install_fault_plan(
        &FaultPlan::new()
            .link_down(SimTime::from_millis(30), ft.core_link(0, 0, 0))
            .link_up(SimTime::from_millis(330), ft.core_link(0, 0, 0)),
    );
    let mut driver = Driver::new();
    let conn = submit(&mut driver, &ft, Scheme::Dctcp, &[0], 10_000_000);
    driver.run(&mut sim, SimTime::from_secs(5), |_, _, _| {});
    let rec = driver.record(conn).expect("record of the DCTCP flow");
    assert!(
        rec.completed.is_some(),
        "flow did not complete after the blackhole window"
    );
    assert!(rec.rtos >= 1, "no RTO despite a 300 ms blackhole");
    let l = sim.link(ft.core_link(0, 0, 0));
    assert!(
        l.dirs[0].stats.blackholed + l.dirs[1].stats.blackholed > 0,
        "nothing was blackholed on the dead link"
    );
    let audit = sim.audit_conservation();
    assert_eq!(audit.in_network, 0, "packets still in flight after drain");
}

#[test]
fn xmp2_keeps_moving_data_through_a_permanent_core_switch_failure() {
    let (mut sim, ft) = build_k4(7);
    // Core switch (0, 0) carries tag 0; it dies 30 ms in and never comes
    // back. Fresh connection bytes must keep flowing on the tag-3 subflow
    // (bytes already allocated to the dead subflow stay stranded — its
    // go-back-N retransmits blackhole until its RTO backs off).
    sim.install_fault_plan(
        &FaultPlan::new().switch_down(SimTime::from_millis(30), ft.cores[0]),
    );
    let mut driver = Driver::new();
    let conn = submit(&mut driver, &ft, Scheme::xmp(2), &[0, 3], u64::MAX);
    let mut sampler = RateSampler::new();
    driver.run(&mut sim, SimTime::from_secs(1), |_, _, _| {});
    for x in 0..2 {
        sampler.sample(&mut sim, &driver, conn, x);
    }
    driver.run(&mut sim, SimTime::from_secs(2), |_, _, _| {});
    let dead_bps = sampler.sample(&mut sim, &driver, conn, 0);
    let alive_bps = sampler.sample(&mut sim, &driver, conn, 1);
    assert!(
        alive_bps > 100e6,
        "surviving subflow stalled at {alive_bps} bits/s"
    );
    assert!(
        dead_bps < 1e6,
        "dead subflow still acking {dead_bps} bits/s through a dead switch"
    );
    driver.stop_flow(&mut sim, conn);
    let rec = driver.record(conn).expect("record of the XMP-2 flow");
    assert!(rec.rtos >= 1, "the dead subflow never timed out");
    sim.audit_conservation();
}
