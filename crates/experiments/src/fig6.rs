//! Figure 6 — fairness on the Fig. 3b testbed.
//!
//! Four flows share one 300 Mbps bottleneck. Flow 1 grows to three subflows
//! (established at 0 s, 5 s, 15 s), Flow 2 opens two subflows at 20 s,
//! Flows 3 and 4 are single-path (0 s and 10 s) and stop at 25 s. With
//! β = 4 every *flow* converges to an equal share regardless of its subflow
//! count — the point of coupling subflows; β = 6 degrades fairness.

use crate::common::{frac, host_stack, TextTable};
use std::fmt;
use xmp_des::{SimDuration, SimTime};
use xmp_netsim::Sim;
use xmp_topo::testbed::{FairnessTestbed, TestbedConfig};
use xmp_transport::{ConnKey, Segment, SubflowSpec};
use xmp_workloads::{jain_index, Driver, FlowSpecBuilder, Host, RateSampler, Scheme};

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct Fig6Config {
    /// Epoch length (paper: 5 s; 6 epochs → 30 s).
    pub unit: SimDuration,
    /// Sampling bin.
    pub bin: SimDuration,
    /// β values (paper: 4 and 6).
    pub betas: Vec<u32>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            unit: SimDuration::from_secs(5),
            bin: SimDuration::from_millis(250),
            betas: vec![4, 6],
            seed: 1,
        }
    }
}

impl Fig6Config {
    /// Scaled-down variant for benches.
    pub fn quick() -> Self {
        Fig6Config {
            unit: SimDuration::from_millis(500),
            bin: SimDuration::from_millis(50),
            betas: vec![4],
            seed: 1,
        }
    }
}

/// One β's data.
#[derive(Debug)]
pub struct Fig6Series {
    /// The β used.
    pub beta: u32,
    /// Per-bin normalized *flow* rates (subflows summed).
    pub bins: Vec<[f64; 4]>,
    /// Per-epoch mean flow rates.
    pub epoch_means: Vec<[f64; 4]>,
    /// Jain index over the flows active in each epoch.
    pub epoch_jain: Vec<f64>,
}

/// The figure.
#[derive(Debug)]
pub struct Fig6Result {
    /// One series per β.
    pub series: Vec<Fig6Series>,
}

/// Flows active during epoch `e`: flow1 from 0, flow2 from 4u, flow3 0–5u,
/// flow4 2u–5u.
fn active_in_epoch(e: usize) -> Vec<usize> {
    let mut v = vec![0];
    if e >= 4 {
        v.push(1);
    }
    if e < 5 {
        v.push(2);
    }
    if (2..5).contains(&e) {
        v.push(3);
    }
    v.sort_unstable();
    v
}

fn run_beta(cfg: &Fig6Config, beta: u32) -> Fig6Series {
    let mut sim: Sim<Segment, Host> = Sim::new(cfg.seed);
    let tcfg = TestbedConfig::default();
    let tb = FairnessTestbed::build(&mut sim, &tcfg, |_| host_stack());
    let capacity = tcfg.bandwidth.as_bps() as f64;
    let mut driver = Driver::new();
    let unit = cfg.unit;
    let total = SimTime::ZERO + unit * 6;

    let spec = |i: usize| SubflowSpec {
        local_port: tb.flow_path(i).port,
        src: tb.flow_path(i).src,
        dst: tb.flow_path(i).dst,
    };
    let xmp = |n: usize| Scheme::Xmp { beta, subflows: n };
    let mk = |node, subflows, scheme, start, tag| FlowSpecBuilder {
        src_node: node,
        subflows,
        size: u64::MAX,
        scheme,
        start,
        category: None,
        tag,
    };

    // Flow 1: one subflow now, two more joined later.
    let f1: ConnKey = driver.submit(mk(tb.net.sources[0], vec![spec(0)], xmp(1), SimTime::ZERO, 1));
    let f2: ConnKey = driver.submit(mk(
        tb.net.sources[1],
        vec![spec(1), spec(1)],
        xmp(2),
        SimTime::ZERO + unit * 4,
        2,
    ));
    let f3: ConnKey = driver.submit(mk(tb.net.sources[2], vec![spec(2)], xmp(1), SimTime::ZERO, 3));
    let f4: ConnKey = driver.submit(mk(
        tb.net.sources[3],
        vec![spec(3)],
        xmp(1),
        SimTime::ZERO + unit * 2,
        4,
    ));
    let conns = [f1, f2, f3, f4];

    let mut sampler = RateSampler::new();
    let mut bins = Vec::new();
    let mut joined = [false; 2];
    let mut stopped = false;
    let mut subflow_counts = [1usize, 2, 1, 1];
    let mut t = SimTime::ZERO;
    while t < total {
        t += cfg.bin;
        driver.run(&mut sim, t, |_, _, _| {});
        // Flow 1 joins its 2nd subflow at 1u and its 3rd at 3u.
        if !joined[0] && t >= SimTime::ZERO + unit {
            driver.add_subflow(&mut sim, f1, spec(0));
            subflow_counts[0] = 2;
            joined[0] = true;
        }
        if !joined[1] && t >= SimTime::ZERO + unit * 3 {
            driver.add_subflow(&mut sim, f1, spec(0));
            subflow_counts[0] = 3;
            joined[1] = true;
        }
        // Flows 3 and 4 shut down at 5u.
        if !stopped && t >= SimTime::ZERO + unit * 5 {
            driver.stop_flow(&mut sim, f3);
            driver.stop_flow(&mut sim, f4);
            stopped = true;
        }
        let mut row = [0.0f64; 4];
        for (i, &c) in conns.iter().enumerate() {
            for r in 0..subflow_counts[i] {
                row[i] += sampler.sample(&mut sim, &driver, c, r);
            }
            row[i] /= capacity;
        }
        bins.push(row);
    }

    let per_epoch = (unit.as_nanos() / cfg.bin.as_nanos()).max(1) as usize;
    let mut epoch_means = Vec::new();
    let mut epoch_jain = Vec::new();
    for e in 0..6 {
        let lo = e * per_epoch;
        let hi = ((e + 1) * per_epoch).min(bins.len());
        if lo >= hi {
            break;
        }
        let n = (hi - lo) as f64;
        let mut mean = [0.0; 4];
        for row in &bins[lo..hi] {
            for i in 0..4 {
                mean[i] += row[i] / n;
            }
        }
        let rates: Vec<f64> = active_in_epoch(e).iter().map(|&i| mean[i]).collect();
        epoch_jain.push(jain_index(&rates));
        epoch_means.push(mean);
    }

    Fig6Series {
        beta,
        bins,
        epoch_means,
        epoch_jain,
    }
}

/// Run for every configured β.
pub fn run(cfg: &Fig6Config) -> Fig6Result {
    Fig6Result {
        series: cfg.betas.iter().map(|&b| run_beta(cfg, b)).collect(),
    }
}

impl fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.series {
            let mut t = TextTable::new(format!(
                "Fig.6 — per-flow rates (subflows summed), beta={}",
                s.beta
            ))
            .header(["epoch", "flow1", "flow2", "flow3", "flow4", "jain(active)"]);
            for (e, m) in s.epoch_means.iter().enumerate() {
                t.row([
                    format!("{}", e + 1),
                    frac(m[0]),
                    frac(m[1]),
                    frac(m[2]),
                    frac(m[3]),
                    frac(s.epoch_jain[e]),
                ]);
            }
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_sets() {
        assert_eq!(active_in_epoch(0), vec![0, 2]);
        assert_eq!(active_in_epoch(2), vec![0, 2, 3]);
        assert_eq!(active_in_epoch(4), vec![0, 1, 2, 3]);
        assert_eq!(active_in_epoch(5), vec![0, 1]);
    }

    #[test]
    fn beta4_is_fair_regardless_of_subflow_count() {
        let cfg = Fig6Config {
            unit: SimDuration::from_millis(1500),
            bin: SimDuration::from_millis(100),
            betas: vec![4],
            seed: 5,
        };
        let s = run_beta(&cfg, 4);
        // Epoch 5: all four flows (with 3/2/1/1 subflows) share the link.
        let j = s.epoch_jain[4];
        assert!(j > 0.85, "jain={j} means={:?}", s.epoch_means[4]);
        // Flow 1 (3 subflows) must not dominate flow 3 (1 subflow).
        let m = s.epoch_means[4];
        assert!(
            m[0] < m[2] * 2.0,
            "flow1 {} vs flow3 {} — coupling failed",
            m[0],
            m[2]
        );
        // Utilization stays high while 2+ flows are active.
        let util: f64 = m.iter().sum();
        assert!(util > 0.8, "util={util}");
        // Final epoch: only flows 1 and 2 remain and pick up the slack.
        let end = s.epoch_means[5];
        assert!(end[0] + end[1] > 0.75, "end={end:?}");
    }
}
