//! # xmp-experiments — regenerating every table and figure of the paper
//!
//! One module per evaluation artifact:
//!
//! | Paper artifact | Module | What it shows |
//! |---|---|---|
//! | Fig. 1 | [`fig1`] | DCTCP convergence/fairness vs constant-factor cut, K ∈ {10, 20} |
//! | Fig. 4 | [`fig4`] | Traffic shifting on the Fig. 3a testbed, β = 4 vs 6 |
//! | Fig. 6 | [`fig6`] | Fairness across flows with 3/2/1/1 subflows, β = 4 vs 6 |
//! | Fig. 7 | [`fig7`] | Rate compensation on the Fig. 5 torus, β ∈ {4, 5, 6} |
//! | Table 1, Figs. 8/10/11 (+ Fig. 9, Table 3 for Incast) | [`suite`] | The fat-tree evaluation |
//! | Table 2 | [`table2`] | XMP coexistence with LIA / TCP / DCTCP |
//! | (extensions) | [`ablation`] | β/K sweep, TraSh-coupling ablation, OLIA |
//! | (extensions) | [`failover`] | goodput through a mid-transfer core-link failure |
//! | Fig. 2 (dynamics) | [`dynamics`] | cwnd/queue/mark time series, exported as JSONL |
//! | (tooling) | [`report`] | summaries rendered back from exported traces |
//! | (scaling) | [`scale`] | partitioned vs serial wall clock on one large cell, digest-checked |
//!
//! Each module exposes a `Config` (with paper defaults and a `quick()`
//! variant for benches), a `run` function, and a `Display`able result that
//! prints the same rows/series the paper reports. The
//! `xmp-experiments` binary drives them from the command line.

pub mod ablation;
pub mod common;
pub mod dynamics;
pub mod failover;
pub mod fig1;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod report;
pub mod scale;
pub mod suite;
pub mod table2;

pub use common::TextTable;
