//! `trace report` — render summaries from exported JSONL probe traces.
//!
//! Consumes the files `dynamics` / `trace export` write under `results/`
//! (any [`ProbeRecord`] stream works) and reduces each series to the
//! numbers the paper discusses:
//!
//! * per-subflow cwnd percentiles and the fraction of samples spent in the
//!   REDUCED state, plus the final observed p̃ = reductions / rounds,
//! * watched-queue depth percentiles, total/maximum per-epoch mark counts
//!   and drops (DCTCP vs XMP queue occupancy around K),
//! * mean delivered rate per watched link direction.
//!
//! Parsing uses the std-only [`ProbeRecord::parse`] checker — a malformed
//! line fails loudly with its line number, which is what lets `check.sh`
//! validate exports without any external JSON tooling.

use crate::common::{frac, mbps, TextTable};
use std::collections::BTreeMap;
use std::fmt;
use xmp_netsim::ProbeRecord;

/// Parse a whole JSONL export; errors carry the 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<ProbeRecord>, String> {
    text.lines()
        .enumerate()
        .map(|(i, line)| ProbeRecord::parse(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Aggregated cwnd series of one (connection, subflow).
#[derive(Debug)]
pub struct CwndSummary {
    /// Connection key.
    pub conn: u64,
    /// Subflow index.
    pub subflow: u32,
    /// Samples seen.
    pub samples: usize,
    /// 10th/50th/90th percentile window (packets).
    pub cwnd_p: [f64; 3],
    /// Fraction of samples in the REDUCED state (round-based schemes).
    pub time_reduced: Option<f64>,
    /// Final observed p̃ = reductions / rounds, if the scheme counts rounds.
    pub observed_p: Option<f64>,
    /// Final TraSh gain δ, if any.
    pub final_delta: Option<f64>,
}

/// Aggregated queue/utilization series of one watched link direction.
#[derive(Debug)]
pub struct QueueSummary {
    /// Link id.
    pub link: u32,
    /// Direction index.
    pub dir: u8,
    /// Samples seen.
    pub samples: usize,
    /// 10th/50th/90th percentile instantaneous depth (packets).
    pub depth_p: [f64; 3],
    /// Maximum sampled depth.
    pub depth_max: u64,
    /// Marks over the trace (last minus first cumulative counter).
    pub marked: u64,
    /// Largest between-samples mark burst.
    pub max_marks_per_epoch: u64,
    /// Drops over the trace.
    pub dropped: u64,
    /// Mean delivered rate over the sampled span (bits/s), if utilization
    /// records cover a non-empty interval.
    pub mean_rate_bps: Option<f64>,
}

/// Everything `trace report` prints about one export.
#[derive(Debug)]
pub struct TraceSummary {
    /// The meta line, if the export carries one.
    pub meta: Option<ProbeRecord>,
    /// Total records.
    pub records: usize,
    /// Exact-instant mark records.
    pub mark_events: usize,
    /// One row per (connection, subflow).
    pub cwnd: Vec<CwndSummary>,
    /// One row per watched link direction.
    pub queues: Vec<QueueSummary>,
}

/// Percentile by nearest-rank on a sorted copy.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn percentiles(mut vals: Vec<f64>) -> [f64; 3] {
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite series"));
    [
        percentile(&vals, 0.10),
        percentile(&vals, 0.50),
        percentile(&vals, 0.90),
    ]
}

/// Reduce a record stream to its summary.
pub fn summarize(records: &[ProbeRecord]) -> TraceSummary {
    let mut meta = None;
    let mut mark_events = 0;
    // (conn, subflow) -> (cwnds, reduced flags, last cc counters)
    #[allow(clippy::type_complexity)]
    let mut cwnd: BTreeMap<(u64, u32), (Vec<f64>, usize, usize, Option<(f64, u64, u64)>)> =
        BTreeMap::new();
    // (link, dir) -> (depths, (enqueued, marked, dropped) series, util pts)
    #[allow(clippy::type_complexity)]
    let mut queues: BTreeMap<(u32, u8), (Vec<f64>, Vec<u64>, u64, Vec<(u64, u64)>)> =
        BTreeMap::new();

    for r in records {
        match r {
            ProbeRecord::Meta { .. } => meta = Some(r.clone()),
            ProbeRecord::Cwnd {
                conn,
                subflow,
                cwnd: w,
                cc,
                ..
            } => {
                let e = cwnd.entry((*conn, *subflow)).or_default();
                e.0.push(*w);
                if let Some(cc) = cc {
                    e.1 += usize::from(cc.reduced);
                    e.2 += 1;
                    e.3 = Some((cc.delta, cc.rounds, cc.reductions));
                }
            }
            ProbeRecord::Queue {
                link,
                dir,
                depth,
                marked,
                dropped,
                ..
            } => {
                let e = queues.entry((*link, *dir)).or_default();
                e.0.push(*depth as f64);
                e.1.push(*marked);
                e.2 = *dropped;
            }
            ProbeRecord::Mark { .. } => mark_events += 1,
            ProbeRecord::Util {
                link,
                dir,
                at,
                delivered_bytes,
            } => {
                queues
                    .entry((*link, *dir))
                    .or_default()
                    .3
                    .push((at.as_nanos(), *delivered_bytes));
            }
        }
    }

    TraceSummary {
        meta,
        records: records.len(),
        mark_events,
        cwnd: cwnd
            .into_iter()
            .map(|((conn, subflow), (ws, reduced, cc_samples, last_cc))| CwndSummary {
                conn,
                subflow,
                samples: ws.len(),
                cwnd_p: percentiles(ws),
                time_reduced: (cc_samples > 0).then(|| reduced as f64 / cc_samples as f64),
                observed_p: last_cc.map(|(_, rounds, reds)| {
                    if rounds == 0 {
                        0.0
                    } else {
                        (reds as f64 / rounds as f64).min(1.0)
                    }
                }),
                final_delta: last_cc.map(|(d, _, _)| d),
            })
            .collect(),
        queues: queues
            .into_iter()
            .map(|((link, dir), (depths, marked, dropped, util))| {
                let total_marked = match (marked.first(), marked.last()) {
                    (Some(&a), Some(&b)) => b.saturating_sub(a),
                    _ => 0,
                };
                let max_burst = marked
                    .windows(2)
                    .map(|w| w[1].saturating_sub(w[0]))
                    .max()
                    .unwrap_or(0);
                let mean_rate_bps = match (util.first(), util.last()) {
                    (Some(&(t0, b0)), Some(&(t1, b1))) if t1 > t0 => {
                        Some((b1.saturating_sub(b0)) as f64 * 8.0 / ((t1 - t0) as f64 / 1e9))
                    }
                    _ => None,
                };
                QueueSummary {
                    link,
                    dir,
                    samples: depths.len(),
                    depth_max: depths.iter().fold(0.0f64, |a, &d| a.max(d)) as u64,
                    depth_p: percentiles(depths),
                    marked: total_marked,
                    max_marks_per_epoch: max_burst,
                    dropped,
                    mean_rate_bps,
                }
            })
            .collect(),
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let title = match &self.meta {
            Some(ProbeRecord::Meta {
                experiment,
                scheme,
                seed,
                note,
            }) => format!("{experiment} / {scheme} (seed {seed}) — {note}"),
            _ => "trace (no meta line)".to_string(),
        };
        writeln!(
            f,
            "{title}\n  {} records, {} exact-instant marks",
            self.records, self.mark_events
        )?;
        if !self.cwnd.is_empty() {
            let mut t = TextTable::new("cwnd (packets)").header([
                "conn.subflow",
                "samples",
                "p10",
                "p50",
                "p90",
                "reduced",
                "observed p",
                "delta",
            ]);
            for c in &self.cwnd {
                t.row([
                    format!("{}.{}", c.conn, c.subflow),
                    format!("{}", c.samples),
                    format!("{:.1}", c.cwnd_p[0]),
                    format!("{:.1}", c.cwnd_p[1]),
                    format!("{:.1}", c.cwnd_p[2]),
                    c.time_reduced.map_or("-".into(), frac),
                    c.observed_p.map_or("-".into(), frac),
                    c.final_delta.map_or("-".into(), |d| format!("{d:.2}")),
                ]);
            }
            writeln!(f, "{t}")?;
        }
        if !self.queues.is_empty() {
            let mut t = TextTable::new("watched queues").header([
                "link.dir",
                "samples",
                "depth p10",
                "p50",
                "p90",
                "max",
                "marked",
                "max/epoch",
                "dropped",
                "rate (Mbps)",
            ]);
            for q in &self.queues {
                t.row([
                    format!("l{}.{}", q.link, q.dir),
                    format!("{}", q.samples),
                    format!("{:.0}", q.depth_p[0]),
                    format!("{:.0}", q.depth_p[1]),
                    format!("{:.0}", q.depth_p[2]),
                    format!("{}", q.depth_max),
                    format!("{}", q.marked),
                    format!("{}", q.max_marks_per_epoch),
                    format!("{}", q.dropped),
                    q.mean_rate_bps.map_or("-".into(), mbps),
                ]);
            }
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmp_des::SimTime;
    use xmp_netsim::CcSnapshot;

    fn queue(ms: u64, depth: u64, marked: u64, dropped: u64) -> ProbeRecord {
        ProbeRecord::Queue {
            at: SimTime::from_millis(ms),
            link: 2,
            dir: 0,
            depth,
            enqueued: 100 * ms,
            marked,
            dropped,
        }
    }

    fn cwnd(ms: u64, subflow: u32, w: f64, reduced: bool, reds: u64) -> ProbeRecord {
        ProbeRecord::Cwnd {
            at: SimTime::from_millis(ms),
            conn: 1,
            subflow,
            cwnd: w,
            ssthresh: w - 1.0,
            cc: Some(CcSnapshot {
                reduced,
                delta: 0.5,
                rounds: 10 * (ms + 1),
                reductions: reds,
            }),
        }
    }

    #[test]
    fn summary_aggregates_all_series() {
        let mut recs = vec![ProbeRecord::Meta {
            experiment: "dynamics".into(),
            scheme: "XMP-2".into(),
            seed: 7,
            note: "test".into(),
        }];
        for ms in 0..4u64 {
            recs.push(cwnd(ms, 0, 10.0 + ms as f64, ms == 1, ms));
            recs.push(queue(ms, 5 + ms, 3 * ms, 0));
        }
        recs.push(ProbeRecord::Util {
            at: SimTime::from_millis(0),
            link: 2,
            dir: 0,
            delivered_bytes: 0,
        });
        recs.push(ProbeRecord::Util {
            at: SimTime::from_millis(4),
            link: 2,
            dir: 0,
            delivered_bytes: 500_000, // 4 ms -> 1 Gbps
        });
        recs.push(ProbeRecord::Mark {
            at: SimTime::from_millis(1),
            link: 2,
            dir: 0,
        });

        let s = summarize(&recs);
        assert_eq!(s.records, recs.len());
        assert_eq!(s.mark_events, 1);
        assert_eq!(s.cwnd.len(), 1);
        let c = &s.cwnd[0];
        assert_eq!((c.conn, c.subflow, c.samples), (1, 0, 4));
        assert!((c.time_reduced.unwrap() - 0.25).abs() < 1e-12);
        // last cc: rounds = 10*4 = 40, reductions = 3.
        assert!((c.observed_p.unwrap() - 3.0 / 40.0).abs() < 1e-12);
        assert_eq!(s.queues.len(), 1);
        let q = &s.queues[0];
        assert_eq!(q.samples, 4);
        assert_eq!(q.depth_max, 8);
        assert_eq!(q.marked, 9); // 9 - 0
        assert_eq!(q.max_marks_per_epoch, 3);
        let rate = q.mean_rate_bps.unwrap();
        assert!((rate - 1e9).abs() < 1e6, "rate {rate}");

        let txt = s.to_string();
        assert!(txt.contains("dynamics / XMP-2 (seed 7)"), "{txt}");
        assert!(txt.contains("watched queues"), "{txt}");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "{\"type\":\"mark\",\"at_ns\":1,\"link\":0,\"dir\":0}\nnot json\n";
        let err = parse_jsonl(text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert_eq!(parse_jsonl("").unwrap().len(), 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let p = percentiles(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(p, [1.0, 3.0, 4.0]);
        assert_eq!(percentiles(vec![]), [0.0, 0.0, 0.0]);
    }
}
