//! Ablations and extensions beyond the paper's evaluation.
//!
//! 1. **β/K sweep** — the paper's future-work item ("a deeper
//!    understanding on these impacts should be based on further
//!    theoretical analysis"): sweep the window-reduction divisor β and the
//!    marking threshold K on a shared bottleneck and report utilization,
//!    mean queue depth (≈ latency) and fairness. Eq. 1 predicts the
//!    utilization cliff at `K < BDP/(β−1)`.
//! 2. **Coupling ablation** — XMP with TraSh disabled (`uXMP`): an
//!    n-subflow flow competing against single-path flows takes roughly n
//!    shares, violating the fairness goal that motivates coupling
//!    (paper Section 2.2).
//! 3. **OLIA comparison** — the Pareto-optimality fix the paper's
//!    Section 7 points to, run through the same fat-tree suite.

use crate::common::{frac, host_stack, mbps, TextTable};
use crate::suite::{run_suite, Pattern, SuiteConfig};
use std::fmt;
use xmp_des::{Bandwidth, SimDuration, SimTime};
use xmp_netsim::{PortId, QdiscConfig, Sim};
use xmp_topo::Dumbbell;
use xmp_transport::{Segment, SubflowSpec};
use xmp_workloads::{jain_index, Driver, FlowSpecBuilder, Host, RateSampler, Scheme};

/// Configuration for the ablation suite.
#[derive(Clone, Debug)]
pub struct AblationConfig {
    /// β values for the sweep.
    pub betas: Vec<u32>,
    /// K values for the sweep (packets).
    pub ks: Vec<usize>,
    /// Measurement window per sweep point.
    pub window: SimDuration,
    /// Seed.
    pub seed: u64,
    /// Base config for the OLIA suite comparison.
    pub suite: SuiteConfig,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            betas: vec![2, 3, 4, 5, 6, 8],
            ks: vec![5, 10, 15, 20, 30],
            window: SimDuration::from_secs(2),
            seed: 1,
            suite: SuiteConfig::quick_k8(Scheme::xmp(2), Pattern::Permutation),
        }
    }
}

impl AblationConfig {
    /// Bench-scale variant.
    pub fn quick() -> Self {
        AblationConfig {
            betas: vec![2, 4, 6],
            ks: vec![5, 10, 20],
            window: SimDuration::from_millis(400),
            suite: SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation),
            ..AblationConfig::default()
        }
    }
}

/// One β/K sweep point.
#[derive(Debug)]
pub struct SweepPoint {
    /// β.
    pub beta: u32,
    /// K (packets).
    pub k: usize,
    /// Bottleneck utilization over the window.
    pub utilization: f64,
    /// Time-weighted mean queue depth (packets).
    pub mean_queue: f64,
    /// Jain index over the four flows.
    pub jain: f64,
    /// Whether Eq. 1 predicts full utilization at this point.
    pub eq1_satisfied: bool,
}

/// Full ablation result.
#[derive(Debug)]
pub struct AblationResult {
    /// The β/K sweep grid.
    pub sweep: Vec<SweepPoint>,
    /// (coupled share, uncoupled share) of a 3-subflow flow against three
    /// single-path competitors.
    pub coupling: (f64, f64),
    /// (scheme label, avg goodput bps) for XMP-2 / LIA-2 / OLIA-2 on the
    /// permutation suite.
    pub olia_rows: Vec<(String, f64)>,
    /// (routing label, avg goodput bps) for XMP-2 under two-level lookup
    /// vs per-flow ECMP.
    pub routing_rows: Vec<(String, f64)>,
    /// (label, avg goodput bps, median JCT ms) for LIA-2 and XMP-2 under
    /// RTOmin 200 ms vs 10 ms on the Incast pattern — the paper's
    /// related-work conjecture that fine-grained RTO would help MPTCP.
    pub rto_rows: Vec<(String, f64, f64)>,
}

/// Four single-path XMP flows on a 1 Gbps / 400 µs dumbbell at (β, K).
fn sweep_point(cfg: &AblationConfig, beta: u32, k: usize) -> SweepPoint {
    let bdp_packets = 33.0; // 1 Gbps x 400 us / 1500 B
    let mut sim: Sim<Segment, Host> = Sim::new(cfg.seed);
    let db = Dumbbell::build(
        &mut sim,
        4,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(400),
        QdiscConfig::EcnThreshold { cap: 100, k },
        |_| host_stack(),
    );
    let mut d = Driver::new();
    let conns: Vec<_> = (0..4)
        .map(|i| {
            d.submit(FlowSpecBuilder {
                src_node: db.sources[i],
                subflows: vec![SubflowSpec {
                    local_port: PortId(0),
                    src: Dumbbell::src_addr(i),
                    dst: Dumbbell::dst_addr(i),
                }],
                size: u64::MAX,
                scheme: Scheme::Xmp { beta, subflows: 1 },
                start: SimTime::ZERO,
                category: None,
                tag: i as u64,
            })
        })
        .collect();
    // Warm up one window, measure over the next.
    let warm = SimTime::ZERO + cfg.window;
    d.run(&mut sim, warm, |_, _, _| {});
    let mut sampler = RateSampler::new();
    for &c in &conns {
        sampler.sample(&mut sim, &d, c, 0);
    }
    let bytes_before = sim.link(db.bottleneck).dir(0).stats.delivered_bytes;
    let t0 = sim.now();
    d.run(&mut sim, warm + cfg.window, |_, _, _| {});
    let rates: Vec<f64> = conns
        .iter()
        .map(|&c| sampler.sample(&mut sim, &d, c, 0))
        .collect();
    let s = &sim.link(db.bottleneck).dir(0).stats;
    let dt = sim.now().duration_since(t0).as_secs_f64();
    let bits = (s.delivered_bytes - bytes_before).as_bytes() as f64 * 8.0;
    for &c in &conns {
        // Leave the flows in place; each sweep point owns its sim.
        let _ = c;
    }
    SweepPoint {
        beta,
        k,
        utilization: bits / (1e9 * dt),
        mean_queue: s.mean_depth(sim.now()),
        jain: jain_index(&rates),
        eq1_satisfied: k as f64 >= bdp_packets / (f64::from(beta) - 1.0),
    }
}

/// The coupling ablation on a 300 Mbps bottleneck: a 3-subflow flow vs
/// three single-path XMP flows; returns the multi-subflow flow's share.
fn coupling_share(cfg: &AblationConfig, coupled: bool) -> f64 {
    let mut sim: Sim<Segment, Host> = Sim::new(cfg.seed);
    let db = Dumbbell::build(
        &mut sim,
        4,
        Bandwidth::from_mbps(300),
        SimDuration::from_micros(1800),
        QdiscConfig::EcnThreshold { cap: 100, k: 15 },
        |_| host_stack(),
    );
    let mut d = Driver::new();
    let spec = |i: usize| SubflowSpec {
        local_port: PortId(0),
        src: Dumbbell::src_addr(i),
        dst: Dumbbell::dst_addr(i),
    };
    let scheme = if coupled {
        Scheme::Xmp { beta: 4, subflows: 3 }
    } else {
        Scheme::XmpUncoupled { beta: 4, subflows: 3 }
    };
    let multi = d.submit(FlowSpecBuilder {
        src_node: db.sources[0],
        subflows: vec![spec(0); 3],
        size: u64::MAX,
        scheme,
        start: SimTime::ZERO,
        category: None,
        tag: 0,
    });
    for i in 1..4 {
        d.submit(FlowSpecBuilder {
            src_node: db.sources[i],
            subflows: vec![spec(i)],
            size: u64::MAX,
            scheme: Scheme::xmp(1),
            start: SimTime::ZERO,
            category: None,
            tag: i as u64,
        });
    }
    let warm = SimTime::ZERO + cfg.window * 2;
    d.run(&mut sim, warm, |_, _, _| {});
    let mut sampler = RateSampler::new();
    for r in 0..3 {
        sampler.sample(&mut sim, &d, multi, r);
    }
    d.run(&mut sim, warm + cfg.window * 2, |_, _, _| {});
    let rate: f64 = (0..3).map(|r| sampler.sample(&mut sim, &d, multi, r)).sum();
    rate / 300e6
}

/// Run all three ablations.
pub fn run(cfg: &AblationConfig) -> AblationResult {
    let mut sweep = Vec::new();
    for &beta in &cfg.betas {
        for &k in &cfg.ks {
            sweep.push(sweep_point(cfg, beta, k));
        }
    }
    let coupling = (coupling_share(cfg, true), coupling_share(cfg, false));
    let olia_rows = [Scheme::xmp(2), Scheme::lia(2), Scheme::Olia { subflows: 2 }]
        .iter()
        .map(|&s| {
            let r = run_suite(&SuiteConfig {
                scheme: s,
                ..cfg.suite.clone()
            });
            (s.label(), r.avg_goodput_bps)
        })
        .collect();
    let routing_rows = [
        ("two-level (paper)", xmp_topo::RoutingMode::TwoLevel),
        ("per-flow ECMP", xmp_topo::RoutingMode::EcmpPerFlow),
    ]
    .iter()
    .map(|&(label, mode)| {
        let r = run_suite(&SuiteConfig {
            routing: mode,
            ..cfg.suite.clone()
        });
        (label.to_string(), r.avg_goodput_bps)
    })
    .collect();
    let rto_rows = [
        (Scheme::lia(2), 200u64),
        (Scheme::lia(2), 10),
        (Scheme::xmp(2), 200),
        (Scheme::xmp(2), 10),
    ]
    .iter()
    .map(|&(scheme, ms)| {
        let r = run_suite(&SuiteConfig {
            scheme,
            pattern: Pattern::Incast,
            rto_min: SimDuration::from_millis(ms),
            ..cfg.suite.clone()
        });
        let jct = r.job_times_ms.as_ref().map_or(0.0, |c| c.median());
        (
            format!("{} @ RTOmin {ms}ms", scheme.label()),
            r.avg_goodput_bps,
            jct,
        )
    })
    .collect();
    AblationResult {
        sweep,
        coupling,
        olia_rows,
        routing_rows,
        rto_rows,
    }
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Ablation — beta/K sweep (4 XMP flows, 1 Gbps, BDP ~33 pkts)")
            .header(["beta", "K", "Eq.1 ok", "utilization", "mean queue", "jain"]);
        for p in &self.sweep {
            t.row([
                p.beta.to_string(),
                p.k.to_string(),
                if p.eq1_satisfied { "yes" } else { "no" }.into(),
                frac(p.utilization),
                format!("{:.1}", p.mean_queue),
                frac(p.jain),
            ]);
        }
        writeln!(f, "{t}")?;
        let mut t = TextTable::new("Ablation — TraSh coupling (3-subflow flow vs 3 single flows)")
            .header(["variant", "share of bottleneck", "fair share"]);
        t.row(["XMP (coupled)".to_string(), frac(self.coupling.0), frac(0.25)]);
        t.row([
            "uXMP (uncoupled)".to_string(),
            frac(self.coupling.1),
            frac(0.25),
        ]);
        writeln!(f, "{t}")?;
        let mut t = TextTable::new("Extension — OLIA vs LIA vs XMP (Permutation)")
            .header(["scheme", "avg goodput (Mbps)"]);
        for (label, bps) in &self.olia_rows {
            t.row([label.clone(), mbps(*bps)]);
        }
        writeln!(f, "{t}")?;
        let mut t = TextTable::new("Ablation — uplink routing (XMP-2, Permutation)")
            .header(["routing", "avg goodput (Mbps)"]);
        for (label, bps) in &self.routing_rows {
            t.row([label.clone(), mbps(*bps)]);
        }
        writeln!(f, "{t}")?;
        let mut t = TextTable::new(
            "Extension — fine-grained RTO (Incast; Vasudevan et al. conjecture)",
        )
        .header(["variant", "avg goodput (Mbps)", "median JCT (ms)"]);
        for (label, bps, jct) in &self.rto_rows {
            t.row([label.clone(), mbps(*bps), format!("{jct:.1}")]);
        }
        writeln!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AblationConfig {
        AblationConfig {
            betas: vec![2, 6],
            ks: vec![5, 30],
            window: SimDuration::from_millis(600),
            seed: 3,
            suite: SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation),
        }
    }

    #[test]
    fn eq1_predicts_the_utilization_cliff() {
        let cfg = tiny();
        // beta=2 needs K >= 33: K=5 under-utilizes, K=30 nearly does not.
        let low = sweep_point(&cfg, 2, 5);
        let high = sweep_point(&cfg, 2, 30);
        assert!(!low.eq1_satisfied && low.utilization < 0.85, "{low:?}");
        assert!(
            high.utilization > low.utilization + 0.1,
            "K=30 {high:?} vs K=5 {low:?}"
        );
        // Larger beta tolerates small K: beta=6 with K=10 >= 33/5.
        let b6 = sweep_point(&cfg, 6, 30);
        assert!(b6.utilization > 0.85, "{b6:?}");
    }

    #[test]
    fn queue_depth_tracks_k() {
        let cfg = tiny();
        let small = sweep_point(&cfg, 4, 5);
        let large = sweep_point(&cfg, 4, 30);
        assert!(
            large.mean_queue > small.mean_queue,
            "queue should grow with K: {} vs {}",
            small.mean_queue,
            large.mean_queue
        );
    }

    #[test]
    fn coupling_restores_fairness() {
        let cfg = tiny();
        let coupled = coupling_share(&cfg, true);
        let uncoupled = coupling_share(&cfg, false);
        // Fair share is 0.25; uncoupled should grab roughly 3 of 6 "slots".
        assert!(
            uncoupled > coupled + 0.1,
            "uncoupled {uncoupled} should exceed coupled {coupled}"
        );
        assert!(
            (0.15..0.40).contains(&coupled),
            "coupled share {coupled} should be near fair 0.25"
        );
        assert!(uncoupled > 0.38, "uncoupled share {uncoupled}");
    }
}
