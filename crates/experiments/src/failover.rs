//! Failover — goodput through a mid-transfer core-link failure.
//!
//! One long flow crosses pods on a k = 4 fat-tree. At a fixed simulated
//! time the aggregation↔core link carrying path tag 0 dies (optionally
//! repaired later). Every scheme has a subflow on the dead path:
//!
//! * **XMP-2 / LIA-2** place subflows on tags 0 and `tag_count - 1`
//!   (disjoint aggregation and core switches), so the surviving subflow
//!   compensates — goodput dips, then recovers *while the link is still
//!   down*,
//! * **DCTCP** is single-path on tag 0, so its goodput collapses to ~0
//!   until the link (if ever) comes back and its backed-off RTO fires.
//!
//! Reported per scheme: pre-failure goodput, the worst epoch during the
//! outage, time to re-attain 90 % of the pre-failure goodput, RTO count,
//! and packets blackholed on the dead link. Every run ends with the
//! packet-conservation audit.

use crate::common::{frac, host_stack, mbps, TextTable};
use std::fmt;
use xmp_des::{SimDuration, SimTime};
use xmp_netsim::{AuditReport, FaultPlan, PortId, QdiscConfig, Sim, SimTuning};
use xmp_topo::{FatTree, FatTreeConfig};
use xmp_transport::{Segment, SubflowSpec};
use xmp_workloads::{Driver, FlowSpecBuilder, Host, RateSampler, Scheme};

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct FailoverConfig {
    /// Sampling epoch length.
    pub epoch: SimDuration,
    /// Total epochs simulated.
    pub epochs: u64,
    /// The link dies at `fail_epoch * epoch`.
    pub fail_epoch: u64,
    /// Optional repair at `repair_epoch * epoch`.
    pub repair_epoch: Option<u64>,
    /// RNG seed.
    pub seed: u64,
    /// Simulator fast-path knobs.
    pub tuning: SimTuning,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            epoch: SimDuration::from_millis(100),
            epochs: 40,
            fail_epoch: 10,
            repair_epoch: Some(25),
            seed: 1,
            tuning: SimTuning::default(),
        }
    }
}

impl FailoverConfig {
    /// Scaled-down variant for tests and the smoke suite.
    pub fn quick() -> Self {
        FailoverConfig {
            epoch: SimDuration::from_millis(50),
            epochs: 24,
            fail_epoch: 6,
            repair_epoch: Some(15),
            ..FailoverConfig::default()
        }
    }
}

/// One scheme's run through the failure.
#[derive(Debug)]
pub struct SchemeRow {
    /// Scheme label.
    pub scheme: String,
    /// Mean goodput over the last three pre-failure epochs (bits/s).
    pub pre_goodput_bps: f64,
    /// Worst epoch goodput during the outage (bits/s).
    pub dip_goodput_bps: f64,
    /// Time from the failure instant to the end of the first epoch back
    /// at ≥ 90 % of the pre-failure goodput, if any.
    pub recovery_ms: Option<f64>,
    /// Retransmission timeouts over the whole run.
    pub rtos: u64,
    /// Packets blackholed on the dead link (both directions).
    pub blackholed: u64,
    /// Aggregate goodput per epoch (bits/s), all subflows summed.
    pub goodput_bps: Vec<f64>,
    /// Packet-conservation audit at end of run.
    pub audit: AuditReport,
}

/// The experiment.
#[derive(Debug)]
pub struct FailoverResult {
    /// Failure instant (ms).
    pub fail_at_ms: f64,
    /// Repair instant (ms), if any.
    pub repair_at_ms: Option<f64>,
    /// Epoch length (ms).
    pub epoch_ms: f64,
    /// One row per scheme.
    pub rows: Vec<SchemeRow>,
}

fn run_scheme(cfg: &FailoverConfig, scheme: Scheme) -> SchemeRow {
    let mut sim: Sim<Segment, Host> = Sim::new(cfg.seed);
    sim.set_tuning(cfg.tuning);
    let ft_cfg = FatTreeConfig {
        k: 4,
        ..FatTreeConfig::paper(QdiscConfig::EcnThreshold { cap: 100, k: 10 })
    };
    let ft = FatTree::build(&mut sim, &ft_cfg, |_| host_stack());

    // Tag-0 inter-pod traffic crosses core (0, 0); its pod-0 attachment is
    // the link we kill. A multipath flow's second subflow rides the last
    // tag — a disjoint aggregation and core switch.
    let dead = ft.core_link(0, 0, 0);
    let fail_at = SimTime::ZERO + cfg.epoch * cfg.fail_epoch;
    let mut plan = FaultPlan::new().link_down(fail_at, dead);
    if let Some(r) = cfg.repair_epoch {
        plan = plan.link_up(SimTime::ZERO + cfg.epoch * r, dead);
    }
    sim.install_fault_plan(&plan);

    // One unbounded flow from pod 0 to pod 1.
    let (src, dst) = (0usize, (ft_cfg.k / 2) * (ft_cfg.k / 2));
    let tags: Vec<usize> = match scheme.subflow_count() {
        1 => vec![0],
        n => {
            assert!(n == 2, "failover experiment places exactly 2 subflows");
            vec![0, ft.tag_count() - 1]
        }
    };
    let mut driver = Driver::new();
    let conn = driver.submit(FlowSpecBuilder {
        src_node: ft.host(src),
        subflows: tags
            .iter()
            .map(|&t| SubflowSpec {
                local_port: PortId(0),
                src: ft.host_addr(src, t),
                dst: ft.host_addr(dst, t),
            })
            .collect(),
        size: u64::MAX,
        scheme,
        start: SimTime::ZERO,
        category: Some(ft.category(src, dst)),
        tag: 0,
    });

    let mut sampler = RateSampler::new();
    let mut goodput = Vec::with_capacity(cfg.epochs as usize);
    for e in 0..cfg.epochs {
        driver.run(&mut sim, SimTime::ZERO + cfg.epoch * (e + 1), |_, _, _| {});
        let bps: f64 = (0..tags.len())
            .map(|x| sampler.sample(&mut sim, &driver, conn, x))
            .sum();
        goodput.push(bps);
    }
    driver.stop_flow(&mut sim, conn);
    let rtos = driver.record(conn).map_or(0, |r| r.rtos);
    let l = sim.link(dead);
    let blackholed = l.dirs[0].stats.blackholed + l.dirs[1].stats.blackholed;
    let audit = sim.audit_conservation();

    let fail = cfg.fail_epoch as usize;
    let pre_from = fail.saturating_sub(3);
    let pre_goodput_bps =
        goodput[pre_from..fail].iter().sum::<f64>() / (fail - pre_from).max(1) as f64;
    let outage_end = cfg
        .repair_epoch
        .map_or(cfg.epochs, |r| r.min(cfg.epochs)) as usize;
    let dip_goodput_bps = goodput[fail..outage_end]
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let epoch_ms = cfg.epoch.as_nanos() as f64 / 1e6;
    let recovery_ms = goodput[fail..]
        .iter()
        .position(|&g| g >= 0.9 * pre_goodput_bps)
        .map(|i| (i + 1) as f64 * epoch_ms);

    SchemeRow {
        scheme: scheme.label(),
        pre_goodput_bps,
        dip_goodput_bps,
        recovery_ms,
        rtos,
        blackholed,
        goodput_bps: goodput,
        audit,
    }
}

/// Run XMP-2, LIA-2 and DCTCP through the same failure.
pub fn run(cfg: &FailoverConfig) -> FailoverResult {
    let epoch_ms = cfg.epoch.as_nanos() as f64 / 1e6;
    FailoverResult {
        fail_at_ms: cfg.fail_epoch as f64 * epoch_ms,
        repair_at_ms: cfg.repair_epoch.map(|r| r as f64 * epoch_ms),
        epoch_ms,
        rows: [Scheme::xmp(2), Scheme::lia(2), Scheme::Dctcp]
            .into_iter()
            .map(|s| run_scheme(cfg, s))
            .collect(),
    }
}

impl fmt::Display for FailoverResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let repair = self
            .repair_at_ms
            .map_or("never".into(), |r| format!("{r:.0} ms"));
        let mut t = TextTable::new(format!(
            "Failover — core link down at {:.0} ms, repaired {repair}",
            self.fail_at_ms
        ))
        .header([
            "scheme",
            "pre (Mbps)",
            "dip (Mbps)",
            "recovery (ms)",
            "RTOs",
            "blackholed",
        ]);
        for r in &self.rows {
            t.row([
                r.scheme.clone(),
                mbps(r.pre_goodput_bps),
                mbps(r.dip_goodput_bps),
                r.recovery_ms.map_or("-".into(), |m| format!("{m:.0}")),
                format!("{}", r.rtos),
                format!("{}", r.blackholed),
            ]);
        }
        writeln!(f, "{t}")?;
        let mut s = TextTable::new("Failover — per-epoch goodput / 1 Gbps access").header(
            std::iter::once("scheme".to_string())
                .chain((1..=self.rows[0].goodput_bps.len()).map(|e| format!("e{e}"))),
        );
        for r in &self.rows {
            s.row(
                std::iter::once(r.scheme.clone())
                    .chain(r.goodput_bps.iter().map(|&g| frac(g / 1e9))),
            );
        }
        writeln!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multipath_recovers_during_outage_single_path_stalls() {
        let cfg = FailoverConfig::quick();
        let r = run(&cfg);
        let xmp = &r.rows[0];
        let lia = &r.rows[1];
        let dctcp = &r.rows[2];

        // Every scheme had a subflow on the dead path.
        for row in &r.rows {
            assert!(row.blackholed > 0, "{}: no packets blackholed", row.scheme);
            assert!(row.rtos >= 1, "{}: no RTO on the dead subflow", row.scheme);
            assert_eq!(
                row.audit.injected,
                row.audit.delivered + row.audit.dropped + row.audit.in_network,
                "{}: conservation", row.scheme
            );
        }

        // Multipath re-attains 90% of pre-failure goodput before repair.
        let outage_ms = (cfg.repair_epoch.unwrap() - cfg.fail_epoch) as f64
            * cfg.epoch.as_nanos() as f64
            / 1e6;
        for row in [xmp, lia] {
            let rec = row
                .recovery_ms
                .unwrap_or_else(|| panic!("{} never recovered", row.scheme));
            assert!(
                rec < outage_ms,
                "{}: recovery {rec} ms not within the {outage_ms} ms outage",
                row.scheme
            );
        }

        // Single-path DCTCP collapses while its only path is down.
        assert!(
            dctcp.dip_goodput_bps < 0.1 * dctcp.pre_goodput_bps,
            "DCTCP dip {} vs pre {}",
            dctcp.dip_goodput_bps,
            dctcp.pre_goodput_bps
        );
    }
}
