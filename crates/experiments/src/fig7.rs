//! Figure 7 — rate compensation on the Fig. 5 torus.
//!
//! Five XMP-2 flows around the five-bottleneck ring, started 5 s apart.
//! Four background flows join L3 one by one (25–40 s), leave one by one
//! (45–60 s), and L3 is closed at 60 s. The paper's observations:
//!
//! * the two subflows crossing L3 (Flow 2-2, Flow 3-1) shrink as L3
//!   congests; their siblings (2-1, 3-2) grow to compensate,
//! * the compensation ripples to the neighbours with attenuation
//!   ("attenuated Dominos") — flows two hops away barely move,
//! * when L3 closes, the L3 subflows collapse to ~0 and their siblings
//!   absorb the traffic,
//! * per flow, one subflow's rate curve mirrors the other's.

use crate::common::{frac, host_stack, TextTable};
use std::fmt;
use xmp_des::{SimDuration, SimTime};
use xmp_netsim::Sim;
use xmp_topo::testbed::Path;
use xmp_topo::torus::{Torus, TorusConfig, CAPACITIES_GBPS, RING};
use xmp_transport::{ConnKey, Segment, SubflowSpec};
use xmp_workloads::{Driver, FlowSpecBuilder, Host, RateSampler, Scheme};

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct Fig7Config {
    /// Epoch length (paper: 5 s; 14 epochs → 70 s).
    pub unit: SimDuration,
    /// (β, K) pairs to run (paper: (4,20), (5,15), (6,10) per Eq. 1).
    pub variants: Vec<(u32, usize)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            unit: SimDuration::from_secs(5),
            variants: vec![(4, 20), (5, 15), (6, 10)],
            seed: 1,
        }
    }
}

impl Fig7Config {
    /// Scaled-down variant for benches.
    pub fn quick() -> Self {
        Fig7Config {
            unit: SimDuration::from_millis(400),
            variants: vec![(4, 20)],
            seed: 1,
        }
    }
}

/// One (β, K) run.
#[derive(Debug)]
pub struct Fig7Series {
    /// β used.
    pub beta: u32,
    /// K used.
    pub k: usize,
    /// `rates[flow][subflow][epoch]` — mean rate in the epoch, normalized
    /// to the subflow's bottleneck capacity.
    pub rates: Vec<[Vec<f64>; 2]>,
}

/// The figure.
#[derive(Debug)]
pub struct Fig7Result {
    /// One series per (β, K).
    pub series: Vec<Fig7Series>,
}

fn to_spec(p: Path) -> SubflowSpec {
    SubflowSpec {
        local_port: p.port,
        src: p.src,
        dst: p.dst,
    }
}

fn run_variant(cfg: &Fig7Config, beta: u32, k: usize) -> Fig7Series {
    let mut sim: Sim<Segment, Host> = Sim::new(cfg.seed);
    let torus = Torus::build(
        &mut sim,
        &TorusConfig {
            k,
            ..TorusConfig::default()
        },
        |_| host_stack(),
    );
    let mut driver = Driver::new();
    let unit = cfg.unit;

    // Flows 1..5, two subflows each, started 1 unit apart.
    let flows: Vec<ConnKey> = (0..RING)
        .map(|i| {
            driver.submit(FlowSpecBuilder {
                src_node: torus.src[i],
                subflows: torus.flow_paths(i).into_iter().map(to_spec).collect(),
                size: u64::MAX,
                scheme: Scheme::Xmp { beta, subflows: 2 },
                start: SimTime::ZERO + unit * i as u64,
                category: None,
                tag: i as u64,
            })
        })
        .collect();
    // Four background flows on L3, staggered on/off.
    let bg: Vec<ConnKey> = (0..4)
        .map(|b| {
            driver.submit(FlowSpecBuilder {
                src_node: torus.bg_src,
                subflows: vec![to_spec(torus.bg_path())],
                size: u64::MAX,
                scheme: Scheme::Xmp { beta, subflows: 1 },
                start: SimTime::ZERO + unit * (5 + b as u64),
                category: None,
                tag: 100 + b as u64,
            })
        })
        .collect();

    let mut sampler = RateSampler::new();
    let mut rates: Vec<[Vec<f64>; 2]> = (0..RING).map(|_| [Vec::new(), Vec::new()]).collect();
    let mut bg_stopped = [false; 4];
    let mut l3_closed = false;
    for epoch in 0..14u64 {
        let t = SimTime::ZERO + unit * (epoch + 1);
        driver.run(&mut sim, t, |_, _, _| {});
        // Background flows leave at 9u, 10u, 11u, 12u.
        for (b, stop) in bg_stopped.iter_mut().enumerate() {
            if !*stop && epoch + 1 >= 9 + b as u64 {
                driver.stop_flow(&mut sim, bg[b]);
                *stop = true;
            }
        }
        // L3 closes at 12u (60 s in the paper's timeline).
        if !l3_closed && epoch + 1 >= 12 {
            sim.set_link_drop_prob(torus.bottlenecks[2], 1.0);
            l3_closed = true;
        }
        for (i, &c) in flows.iter().enumerate() {
            for x in 0..2 {
                let bps = sampler.sample(&mut sim, &driver, c, x);
                let cap = CAPACITIES_GBPS[(i + x) % RING] * 1e9;
                rates[i][x].push(bps / cap);
            }
        }
    }

    Fig7Series { beta, k, rates }
}

/// Run every configured (β, K).
pub fn run(cfg: &Fig7Config) -> Fig7Result {
    Fig7Result {
        series: cfg
            .variants
            .iter()
            .map(|&(b, k)| run_variant(cfg, b, k))
            .collect(),
    }
}

impl fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.series {
            let mut t = TextTable::new(format!(
                "Fig.7 — per-epoch normalized subflow rates, K={} beta={}",
                s.k, s.beta
            ))
            .header(
                std::iter::once("subflow".to_string())
                    .chain((1..=s.rates[0][0].len()).map(|e| format!("e{e}"))),
            );
            for (i, pair) in s.rates.iter().enumerate() {
                for (x, series) in pair.iter().enumerate() {
                    t.row(
                        std::iter::once(format!("Flow {}-{} (L{})", i + 1, x + 1, (i + x) % RING + 1))
                            .chain(series.iter().map(|&v| frac(v))),
                    );
                }
            }
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_compensation_on_l3_congestion_and_closure() {
        let cfg = Fig7Config {
            unit: SimDuration::from_millis(800),
            variants: vec![(4, 20)],
            seed: 3,
        };
        let s = run_variant(&cfg, 4, 20);
        // Flow 2 (index 1): subflow 1 (x=1) rides L3; Flow 3 (index 2):
        // subflow 0 rides L3.
        let f2_l3 = &s.rates[1][1];
        let f2_sib = &s.rates[1][0];
        // Quiet epoch (8: all flows up, bg fully loaded at 9..) — compare
        // epoch 8 (bg building) vs epoch 5 (pre-bg, index 4).
        let pre = f2_l3[4];
        let congested = f2_l3[8];
        assert!(
            congested < pre * 0.85,
            "L3 subflow should shrink: {pre} -> {congested}"
        );
        assert!(
            f2_sib[8] > f2_sib[4] * 1.02,
            "sibling should compensate: {} -> {}",
            f2_sib[4],
            f2_sib[8]
        );
        // After closure (epochs 13, 14 → indices 12, 13): L3 subflows die.
        assert!(
            f2_l3[13] < 0.05,
            "L3 subflow should collapse after closure: {}",
            f2_l3[13]
        );
        let f3_l3 = &s.rates[2][0];
        assert!(f3_l3[13] < 0.05, "flow3-1 too: {}", f3_l3[13]);
        // Siblings carry the flow.
        assert!(f2_sib[13] > 0.1, "sibling alive: {}", f2_sib[13]);
    }
}
