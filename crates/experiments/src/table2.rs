//! Table 2 — coexistence: half the hosts run XMP-2, the other half run
//! LIA-2, TCP or DCTCP, under the Random pattern, with queue sizes 50 and
//! 100 packets.
//!
//! Expected shape (paper): XMP ≈ DCTCP (both ECN-driven, fair split);
//! XMP ≫ TCP/LIA at queue 50, with the gap narrowing at queue 100 because
//! the loss-driven schemes can then keep larger windows and their deeper
//! buffers feed more ECN marks back to XMP.

use crate::common::{mbps, TextTable};
use crate::suite::{run_suite, Pattern, SuiteConfig};
use std::fmt;
use xmp_workloads::Scheme;

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct Table2Config {
    /// Queue capacities to test (paper: 50, 100).
    pub queue_caps: Vec<usize>,
    /// Schemes coexisting with XMP-2 (paper: LIA-2, TCP, DCTCP).
    pub others: Vec<Scheme>,
    /// Base suite configuration (scale, flow target, k, seed).
    pub base: SuiteConfig,
}

impl Default for Table2Config {
    fn default() -> Self {
        Table2Config {
            queue_caps: vec![50, 100],
            others: vec![Scheme::lia(2), Scheme::Tcp, Scheme::Dctcp],
            base: SuiteConfig::new(Scheme::xmp(2), Pattern::Random),
        }
    }
}

impl Table2Config {
    /// Small variant for benches (full k = 8 tree — XMP's coexistence
    /// story depends on shifting away from loss-driven flows, which needs
    /// real path diversity).
    pub fn quick() -> Self {
        Table2Config {
            queue_caps: vec![50],
            others: vec![Scheme::Tcp],
            base: SuiteConfig::quick_k8(Scheme::xmp(2), Pattern::Random),
        }
    }
}

/// One cell pair of the table.
#[derive(Debug)]
pub struct CoexistCell {
    /// The competing scheme's label.
    pub other: String,
    /// Queue capacity.
    pub queue_cap: usize,
    /// Mean goodput of the XMP-2 half (bits/s).
    pub xmp_bps: f64,
    /// Mean goodput of the other half (bits/s).
    pub other_bps: f64,
}

/// The whole table.
#[derive(Debug)]
pub struct Table2Result {
    /// All cells.
    pub cells: Vec<CoexistCell>,
}

/// Run the coexistence grid.
pub fn run(cfg: &Table2Config) -> Table2Result {
    let mut cells = Vec::new();
    for &cap in &cfg.queue_caps {
        for &other in &cfg.others {
            let sc = SuiteConfig {
                queue_cap: cap,
                coexist_with: Some(other),
                ..cfg.base.clone()
            };
            let r = run_suite(&sc);
            let xmp_label = cfg.base.scheme.label();
            let xmp_bps = r.goodput_by_scheme.get(&xmp_label).copied().unwrap_or(0.0);
            let other_bps = r
                .goodput_by_scheme
                .get(&other.label())
                .copied()
                .unwrap_or(0.0);
            cells.push(CoexistCell {
                other: other.label(),
                queue_cap: cap,
                xmp_bps,
                other_bps,
            });
        }
    }
    Table2Result { cells }
}

impl fmt::Display for Table2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Table 2 — Average Goodput (Mbps), XMP-2 coexisting (Random pattern)",
        )
        .header(["pairing", "queue", "XMP", "other"]);
        for c in &self.cells {
            t.row([
                format!("XMP : {}", c.other),
                format!("{} pkts", c.queue_cap),
                mbps(c.xmp_bps),
                mbps(c.other_bps),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xmp_coexists_and_beats_tcp_at_small_queue() {
        let cfg = Table2Config::quick();
        let r = run(&cfg);
        assert_eq!(r.cells.len(), 1);
        let c = &r.cells[0];
        assert!(c.xmp_bps > 0.0 && c.other_bps > 0.0);
        // The paper's Table 2 shape: XMP well above TCP at queue 50.
        assert!(
            c.xmp_bps > c.other_bps,
            "XMP {} <= TCP {}",
            c.xmp_bps,
            c.other_bps
        );
    }
}
