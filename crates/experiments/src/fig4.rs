//! Figure 4 — traffic shifting on the Fig. 3a testbed.
//!
//! Flows 1–3 start at 0 s (Flow 2 is XMP with one subflow through DN1 and
//! one through DN2). A background flow runs on DN1 from 10–20 s and on DN2
//! from 20–30 s. With β = 4 Flow 2 shifts its traffic cleanly away from the
//! congested bottleneck and back (rate compensation); β = 6 relinquishes
//! less bandwidth per mark, converges slower, and can stall under global
//! synchronization.

use crate::common::{frac, host_stack, TextTable};
use std::fmt;
use xmp_des::{SimDuration, SimTime};
use xmp_netsim::Sim;
use xmp_topo::testbed::{Path, ShiftTestbed, TestbedConfig};
use xmp_transport::{ConnKey, Segment, SubflowSpec};
use xmp_workloads::{Driver, FlowSpecBuilder, Host, RateSampler, Scheme};

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct Fig4Config {
    /// Epoch length (paper: 5 s; 8 epochs → 40 s).
    pub unit: SimDuration,
    /// Sampling bin.
    pub bin: SimDuration,
    /// β values to run (paper: 4 and 6).
    pub betas: Vec<u32>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            unit: SimDuration::from_secs(5),
            bin: SimDuration::from_millis(250),
            betas: vec![4, 6],
            seed: 1,
        }
    }
}

impl Fig4Config {
    /// Scaled-down variant for benches.
    pub fn quick() -> Self {
        Fig4Config {
            unit: SimDuration::from_millis(500),
            bin: SimDuration::from_millis(50),
            betas: vec![4],
            seed: 1,
        }
    }
}

/// One β's series.
#[derive(Debug)]
pub struct Fig4Series {
    /// The β used.
    pub beta: u32,
    /// Normalized rates of Flow 2's two subflows per bin.
    pub bins: Vec<[f64; 2]>,
    /// Per-epoch means of (subflow 1, subflow 2, their sum).
    pub epoch_means: Vec<[f64; 3]>,
}

/// The full figure.
#[derive(Debug)]
pub struct Fig4Result {
    /// One series per β.
    pub series: Vec<Fig4Series>,
}

fn to_spec(p: Path) -> SubflowSpec {
    SubflowSpec {
        local_port: p.port,
        src: p.src,
        dst: p.dst,
    }
}

fn run_beta(cfg: &Fig4Config, beta: u32) -> Fig4Series {
    let mut sim: Sim<Segment, Host> = Sim::new(cfg.seed);
    let tcfg = TestbedConfig::default();
    let tb = ShiftTestbed::build(&mut sim, &tcfg, |_| host_stack());
    let capacity = tcfg.bandwidth.as_bps() as f64;
    let mut driver = Driver::new();
    let unit = cfg.unit;
    let total = SimTime::ZERO + unit * 8;

    let single = |path: Path| vec![to_spec(path)];
    let xmp1 = Scheme::Xmp { beta, subflows: 1 };
    let xmp2 = Scheme::Xmp { beta, subflows: 2 };
    let mk = |node, subflows, scheme, start, tag| FlowSpecBuilder {
        src_node: node,
        subflows,
        size: u64::MAX,
        scheme,
        start,
        category: None,
        tag,
    };

    driver.submit(mk(tb.s[0], single(tb.flow1_path()), xmp1, SimTime::ZERO, 1));
    let flow2: ConnKey = driver.submit(mk(
        tb.s[1],
        tb.flow2_paths().into_iter().map(to_spec).collect(),
        xmp2,
        SimTime::ZERO,
        2,
    ));
    driver.submit(mk(tb.s[2], single(tb.flow3_path()), xmp1, SimTime::ZERO, 3));
    // Background epochs: DN1 during [2u, 4u), DN2 during [4u, 6u).
    let bg1 = driver.submit(mk(
        tb.bg_src[0],
        single(tb.bg_path(0)),
        xmp1,
        SimTime::ZERO + unit * 2,
        10,
    ));
    let bg2 = driver.submit(mk(
        tb.bg_src[1],
        single(tb.bg_path(1)),
        xmp1,
        SimTime::ZERO + unit * 4,
        11,
    ));

    let mut sampler = RateSampler::new();
    let mut bins = Vec::new();
    let mut stopped = [false; 2];
    let mut t = SimTime::ZERO;
    while t < total {
        t += cfg.bin;
        driver.run(&mut sim, t, |_, _, _| {});
        if !stopped[0] && t >= SimTime::ZERO + unit * 4 {
            driver.stop_flow(&mut sim, bg1);
            stopped[0] = true;
        }
        if !stopped[1] && t >= SimTime::ZERO + unit * 6 {
            driver.stop_flow(&mut sim, bg2);
            stopped[1] = true;
        }
        let r0 = sampler.sample(&mut sim, &driver, flow2, 0) / capacity;
        let r1 = sampler.sample(&mut sim, &driver, flow2, 1) / capacity;
        bins.push([r0, r1]);
    }

    let per_epoch = (unit.as_nanos() / cfg.bin.as_nanos()).max(1) as usize;
    let mut epoch_means = Vec::new();
    for e in 0..8 {
        let lo = e * per_epoch;
        let hi = ((e + 1) * per_epoch).min(bins.len());
        if lo >= hi {
            break;
        }
        let n = (hi - lo) as f64;
        let s0: f64 = bins[lo..hi].iter().map(|b| b[0]).sum::<f64>() / n;
        let s1: f64 = bins[lo..hi].iter().map(|b| b[1]).sum::<f64>() / n;
        epoch_means.push([s0, s1, s0 + s1]);
    }

    Fig4Series {
        beta,
        bins,
        epoch_means,
    }
}

/// Run the experiment for every configured β.
pub fn run(cfg: &Fig4Config) -> Fig4Result {
    Fig4Result {
        series: cfg.betas.iter().map(|&b| run_beta(cfg, b)).collect(),
    }
}

impl fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.series {
            let mut t = TextTable::new(format!("Fig.4 — Flow 2 subflow rates, beta={}", s.beta))
                .header(["epoch", "bg state", "flow2-1 (DN1)", "flow2-2 (DN2)", "sum"]);
            let bg = [
                "-",
                "-",
                "bg on DN1",
                "bg on DN1",
                "bg on DN2",
                "bg on DN2",
                "-",
                "-",
            ];
            for (e, m) in s.epoch_means.iter().enumerate() {
                t.row([
                    format!("{}", e + 1),
                    bg.get(e).copied().unwrap_or("-").to_string(),
                    frac(m[0]),
                    frac(m[1]),
                    frac(m[2]),
                ]);
            }
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta4_shifts_traffic_and_compensates() {
        let cfg = Fig4Config {
            unit: SimDuration::from_millis(1500),
            bin: SimDuration::from_millis(100),
            betas: vec![4],
            seed: 2,
        };
        let s = run_beta(&cfg, 4);
        // Epoch 2 (no bg): subflows roughly split the two bottlenecks
        // against flows 1 and 3 — each gets a decent share.
        let before = s.epoch_means[1];
        assert!(before[0] > 0.15 && before[1] > 0.15, "{before:?}");
        // Epoch 4 (bg on DN1 converged): subflow 1 gives way, subflow 2
        // compensates above its pre-bg level.
        let during = s.epoch_means[3];
        assert!(
            during[0] < before[0] * 0.85,
            "subflow1 should shrink: {before:?} -> {during:?}"
        );
        assert!(
            during[1] > before[1] * 1.05,
            "subflow2 should compensate: {before:?} -> {during:?}"
        );
        // Epoch 6 (bg moved to DN2): the shift reverses.
        let reversed = s.epoch_means[5];
        assert!(
            reversed[0] > during[0] && reversed[1] < during[1],
            "shift should reverse: {during:?} -> {reversed:?}"
        );
        // Final epoch (no bg): aggregate recovers.
        let end = s.epoch_means[7];
        assert!(end[2] > 0.5 * before[2], "end={end:?} before={before:?}");
    }
}
