//! Scale experiment: one large fat-tree cell, serial vs partitioned.
//!
//! One pre-submitted permutation wave (every host sends one fixed-size
//! XMP-2 flow to the host half a tree away) runs on the same topology and
//! seed under each requested worker count. Because every flow is submitted
//! before the first event — nothing chains on completion — the partitioned
//! runs are **bit-identical** to the serial one: the experiment digests
//! every flow record, the packet-conservation audit, the probe records and
//! the per-kind event counts, and refuses to report a speedup unless every
//! digest matches the serial baseline. A core link flaps mid-run and
//! probes watch it throughout, so the digest covers the fault and
//! observability paths, not just the happy path.
//!
//! The headline (`ScaleResult`): wall-clock per worker count and the
//! speedup over serial on the identical workload — the number
//! `BENCH_pr6.json` records for the k = 16 cell.

use crate::common::TextTable;
use std::fmt;
use std::hash::{DefaultHasher, Hash, Hasher};
use xmp_des::{SimDuration, SimTime};
use xmp_netsim::{FaultPlan, PartitionedSim, PortId, QdiscConfig, Sim, SimTuning};
use xmp_topo::{FatTree, FatTreeConfig};
use xmp_transport::{HostStack, Segment, StackConfig, SubflowSpec};
use xmp_workloads::{Driver, FlowSim, FlowSpecBuilder, Host, Scheme};

/// Configuration for one scale run.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Fat-tree port count (the headline cell uses 16 → 1024 hosts).
    pub k: usize,
    /// Worker counts to run, each on a fresh identically-seeded cell. The
    /// first entry is the digest baseline (use 1).
    pub workers: Vec<usize>,
    /// Bytes per flow (one flow per host).
    pub flow_bytes: u64,
    /// RNG seed.
    pub seed: u64,
    /// Hard wall on simulated time.
    pub max_sim: SimDuration,
    /// Simulator fast-path knobs.
    pub tuning: SimTuning,
    /// Probe sampling interval on the watched core link.
    pub probe_interval: SimDuration,
    /// Flap a core link down/up mid-run (exercises the fault path under
    /// partitioning; the digest must still match).
    pub faults: bool,
}

impl ScaleConfig {
    /// The headline k = 16 cell: 1024 hosts, serial vs 4 workers.
    pub fn default_cfg() -> Self {
        ScaleConfig {
            k: 16,
            workers: vec![1, 4],
            flow_bytes: 2 << 20,
            seed: 42,
            max_sim: SimDuration::from_secs(2),
            tuning: SimTuning::default(),
            probe_interval: SimDuration::from_micros(500),
            faults: true,
        }
    }

    /// CI-sized variant: k = 8 (128 hosts), serial vs 4 workers, small
    /// flows. Fast enough for `scripts/check.sh`, still crosses every
    /// partition boundary.
    pub fn quick() -> Self {
        ScaleConfig {
            k: 8,
            workers: vec![1, 4],
            flow_bytes: 256 << 10,
            seed: 42,
            max_sim: SimDuration::from_millis(500),
            ..ScaleConfig::default_cfg()
        }
    }
}

/// One worker count's outcome.
#[derive(Clone, Debug)]
pub struct ScaleCell {
    /// Worker threads used.
    pub workers: usize,
    /// Digest over flow records + audit + probes + event counts + clock.
    pub digest: u64,
    /// Completed flows.
    pub completed: usize,
    /// Events handled (all kinds).
    pub events: u64,
    /// Wall-clock milliseconds spent driving the simulation.
    pub wall_ms: f64,
    /// Events per wall-clock second inside the event loop.
    pub events_per_sec: f64,
}

/// All cells plus the digest verdict.
#[derive(Clone, Debug)]
pub struct ScaleResult {
    /// Topology summary for the report header.
    pub k: usize,
    /// Hosts in the cell.
    pub hosts: usize,
    /// One entry per requested worker count, in input order.
    pub cells: Vec<ScaleCell>,
    /// Every cell's digest equals the first (serial) cell's.
    pub digests_match: bool,
}

impl ScaleResult {
    /// Wall-clock speedup of `workers` over the first (serial) cell.
    pub fn speedup(&self, workers: usize) -> Option<f64> {
        let base = self.cells.first()?.wall_ms;
        let cell = self.cells.iter().find(|c| c.workers == workers)?;
        if cell.wall_ms > 0.0 {
            Some(base / cell.wall_ms)
        } else {
            None
        }
    }
}

/// Submit the pre-planned permutation wave: host `i` sends one flow to the
/// host `n/2` positions away (always inter-pod for a whole tree), with
/// subflow paths on tags 0 and `tag_count - 1` (disjoint cores), staggered
/// 1 µs apart so startup does not synchronize every stack.
fn submit_wave(driver: &mut Driver, ft: &FatTree, cfg: &ScaleConfig) {
    let n = ft.hosts.len();
    let scheme = Scheme::xmp(2);
    for i in 0..n {
        let dst = (i + n / 2) % n;
        let tags = [0, ft.tag_count() - 1];
        let subflows: Vec<SubflowSpec> = tags
            .iter()
            .map(|&t| SubflowSpec {
                local_port: PortId(0),
                src: ft.host_addr(i, t),
                dst: ft.host_addr(dst, t),
            })
            .collect();
        driver.submit(FlowSpecBuilder {
            src_node: ft.host(i),
            subflows,
            size: cfg.flow_bytes,
            scheme,
            start: SimTime::ZERO + SimDuration::from_micros(i as u64),
            category: Some(ft.category(i, dst)),
            tag: i as u64,
        });
    }
}

/// Harvest-only drive loop: no chaining, so serial and partitioned runs
/// process identical event sets.
fn drive<S: FlowSim>(sim: &mut S, driver: &mut Driver, deadline: SimTime, target: usize) {
    let slice = SimDuration::from_millis(10);
    while sim.now() < deadline && (driver.completed_count() as usize) < target {
        let t = (sim.now() + slice).min(deadline);
        driver.run(sim, t, |_, _, _| {});
    }
    driver.finalize_running(sim);
}

/// Run the wave at one worker count and digest the outcome.
pub fn run_cell(cfg: &ScaleConfig, workers: usize) -> ScaleCell {
    let mut sim: Sim<Segment, Host> = Sim::new(cfg.seed);
    sim.set_tuning(cfg.tuning);
    let ft_cfg = FatTreeConfig {
        k: cfg.k,
        ..FatTreeConfig::paper(QdiscConfig::EcnThreshold { cap: 100, k: 10 })
    };
    let stack_cfg = StackConfig::default().with_rto_min(SimDuration::from_millis(200));
    let ft = FatTree::build(&mut sim, &ft_cfg, |_| HostStack::new(stack_cfg.clone()));

    let watched = ft.core_link(0, 0, 0);
    let pc = xmp_netsim::ProbeConfig::every(cfg.probe_interval)
        .until(SimTime::ZERO + cfg.max_sim)
        .watch_queue(watched, 0)
        .watch_queue(watched, 1);
    sim.install_probes(pc);
    if cfg.faults {
        let down = SimTime::ZERO + SimDuration::from_millis(20);
        let up = SimTime::ZERO + SimDuration::from_millis(40);
        let plan = FaultPlan::new().link_down(down, watched).link_up(up, watched);
        sim.install_fault_plan(&plan);
    }

    let mut driver = Driver::new();
    submit_wave(&mut driver, &ft, cfg);
    let target = ft.hosts.len();
    let deadline = SimTime::ZERO + cfg.max_sim;

    let wall = std::time::Instant::now();
    let sim = if workers > 1 {
        let plan = ft.partition_plan(workers);
        let mut psim = PartitionedSim::new(sim, &plan);
        drive(&mut psim, &mut driver, deadline, target);
        psim.finish()
    } else {
        drive(&mut sim, &mut driver, deadline, target);
        sim
    };
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    let audit = sim.audit_conservation();
    let mut sim = sim;
    let probes = sim.take_probes().expect("probes installed");
    let profile = sim.profile();

    // Digest everything a serial observer could see. Deliberately absent:
    // `profile.allocs` (the global alloc probe is shared across threads),
    // `fault`/`sample` counts (replicated per shard by design) and wall
    // times.
    let mut h = DefaultHasher::new();
    format!("{:?}", sim.now()).hash(&mut h);
    for r in driver.records() {
        format!("{r:?}").hash(&mut h);
    }
    format!("{audit:?}").hash(&mut h);
    for r in probes.records() {
        format!("{r:?}").hash(&mut h);
    }
    profile.deliver.hash(&mut h);
    profile.tx_done.hash(&mut h);
    profile.timer.hash(&mut h);

    let completed = driver
        .records()
        .filter(|r| r.completed.is_some())
        .count();
    ScaleCell {
        workers,
        digest: h.finish(),
        completed,
        events: profile.events_handled(),
        wall_ms,
        events_per_sec: profile.events_per_sec(),
    }
}

/// Run every requested worker count and check the digests.
pub fn run(cfg: &ScaleConfig) -> ScaleResult {
    let h = cfg.k / 2;
    let hosts = cfg.k * h * h;
    let cells: Vec<ScaleCell> = cfg.workers.iter().map(|&w| run_cell(cfg, w)).collect();
    let digests_match = cells
        .iter()
        .all(|c| c.digest == cells[0].digest);
    ScaleResult {
        k: cfg.k,
        hosts,
        cells,
        digests_match,
    }
}

impl fmt::Display for ScaleResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Scale — k={} fat tree ({} hosts), one permutation wave",
            self.k, self.hosts
        ))
        .header(["workers", "wall (ms)", "speedup", "Mev/s", "flows", "digest"]);
        for c in &self.cells {
            t.row([
                format!("{}", c.workers),
                format!("{:.0}", c.wall_ms),
                self.speedup(c.workers)
                    .map_or("-".into(), |s| format!("{s:.2}x")),
                format!("{:.2}", c.events_per_sec / 1e6),
                format!("{}", c.completed),
                format!("{:016x}", c.digest),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "digests {}",
            if self.digests_match {
                "MATCH — partitioned runs bit-identical to serial"
            } else {
                "MISMATCH — partitioned run diverged from serial"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_digests_match() {
        let cfg = ScaleConfig {
            k: 4,
            workers: vec![1, 2],
            flow_bytes: 64 << 10,
            max_sim: SimDuration::from_millis(200),
            ..ScaleConfig::quick()
        };
        let r = run(&cfg);
        assert!(r.digests_match, "{r}");
        assert!(r.cells[0].completed > 0);
        assert_eq!(r.cells[0].completed, r.cells[1].completed);
    }
}
