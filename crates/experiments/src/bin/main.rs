//! `xmp-experiments` — command-line driver regenerating the paper's tables
//! and figures.
//!
//! ```text
//! xmp-experiments <command> [--quick] [--seed N] [--scale N] [--flows N]
//!
//! commands:
//!   fig1      DCTCP vs constant-cut convergence/fairness
//!   fig4      traffic shifting on the Fig.3a testbed (beta 4 vs 6)
//!   fig6      fairness with 3/2/1/1 subflows (beta 4 vs 6)
//!   fig7      torus rate compensation (beta 4/5/6)
//!   fattree   the fat-tree suite: Table 1, Figs. 8/9/10/11, Table 3
//!   table2    XMP coexistence with LIA / TCP / DCTCP
//!   ablation  beta/K sweep, TraSh-coupling ablation, OLIA comparison
//!   failover  goodput through a mid-transfer core-link failure
//!   dynamics  Fig.2-style cwnd/queue time series, exported to results/
//!   scale     partitioned vs serial wall clock on one large cell,
//!             digest-checked (exits nonzero on a digest mismatch)
//!   trace     export | report [files...] — write / summarize JSONL traces
//!   all       everything above (except trace and scale)
//! ```

use std::time::Instant;
use xmp_experiments::suite::{self, Pattern, SuiteConfig};
use xmp_experiments::{ablation, dynamics, failover, fig1, fig4, fig6, fig7, report, scale, table2};
use xmp_workloads::Scheme;

#[derive(Debug, Clone)]
struct Opts {
    quick: bool,
    seed: u64,
    scale: u64,
    flows: usize,
    pattern: Option<String>,
    workers: usize,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        quick: false,
        seed: 42,
        scale: 128,
        flows: 2000,
        pattern: None,
        workers: 4,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => o.quick = true,
            "--seed" => o.seed = it.next().expect("--seed N").parse().expect("seed"),
            "--scale" => o.scale = it.next().expect("--scale N").parse().expect("scale"),
            "--flows" => o.flows = it.next().expect("--flows N").parse().expect("flows"),
            "--pattern" => o.pattern = Some(it.next().expect("--pattern NAME").to_lowercase()),
            "--workers" => o.workers = it.next().expect("--workers N").parse().expect("workers"),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    o
}

fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let r = f();
    eprintln!("[{label}] wall time {:.1}s", t0.elapsed().as_secs_f64());
    r
}

fn run_fig1(o: &Opts) {
    let mut cfg = if o.quick {
        fig1::Fig1Config::quick()
    } else {
        fig1::Fig1Config::default()
    };
    cfg.seed = o.seed;
    let r = timed("fig1", || fig1::run(&cfg));
    println!("{r}");
}

fn run_fig4(o: &Opts) {
    let mut cfg = if o.quick {
        fig4::Fig4Config::quick()
    } else {
        fig4::Fig4Config::default()
    };
    cfg.seed = o.seed;
    let r = timed("fig4", || fig4::run(&cfg));
    println!("{r}");
}

fn run_fig6(o: &Opts) {
    let mut cfg = if o.quick {
        fig6::Fig6Config::quick()
    } else {
        fig6::Fig6Config::default()
    };
    cfg.seed = o.seed;
    let r = timed("fig6", || fig6::run(&cfg));
    println!("{r}");
}

fn run_fig7(o: &Opts) {
    let mut cfg = if o.quick {
        fig7::Fig7Config::quick()
    } else {
        fig7::Fig7Config::default()
    };
    cfg.seed = o.seed;
    let r = timed("fig7", || fig7::run(&cfg));
    println!("{r}");
}

fn suite_cfg(o: &Opts, scheme: Scheme, pattern: Pattern) -> SuiteConfig {
    let mut cfg = if o.quick {
        SuiteConfig::quick(scheme, pattern)
    } else {
        SuiteConfig::new(scheme, pattern)
    };
    cfg.seed = o.seed;
    if !o.quick {
        cfg.scale = o.scale;
        cfg.target_flows = o.flows;
    }
    cfg
}

fn run_fattree(o: &Opts) {
    let schemes = [
        Scheme::Dctcp,
        Scheme::lia(2),
        Scheme::lia(4),
        Scheme::xmp(2),
        Scheme::xmp(4),
    ];
    let all = [Pattern::Permutation, Pattern::Random, Pattern::Incast];
    let patterns: Vec<Pattern> = all
        .iter()
        .copied()
        .filter(|p| {
            o.pattern
                .as_deref()
                .is_none_or(|want| p.label().to_lowercase().starts_with(want))
        })
        .collect();
    let mut results = Vec::new();
    for &p in &patterns {
        for &s in &schemes {
            let cfg = suite_cfg(o, s, p);
            let label = format!("{}/{}", s.label(), p.label());
            let (r, _events, profile) = timed(&label, || suite::run_suite_profiled(&cfg));
            eprintln!("  -> {r}");
            eprintln!("  -> profile: {}", profile.summary());
            results.push(r);
        }
    }
    println!("{}", suite::render_table1(&results));
    for &p in &patterns {
        for t in suite::render_fig8(&results, p) {
            println!("{t}");
        }
    }
    for t in suite::render_jobs(&results) {
        println!("{t}");
    }
    for &p in &patterns {
        println!("{}", suite::render_fig10(&results, p));
    }
    for &p in &patterns {
        println!("{}", suite::render_fig11(&results, p));
    }
    for &p in &patterns {
        println!("{}", suite::render_occupancy(&results, p));
    }
}

fn run_table2(o: &Opts) {
    let mut cfg = if o.quick {
        table2::Table2Config::quick()
    } else {
        table2::Table2Config::default()
    };
    cfg.base = suite_cfg(o, Scheme::xmp(2), Pattern::Random);
    let r = timed("table2", || table2::run(&cfg));
    println!("{r}");
}

fn run_dynamics(o: &Opts) {
    let mut cfg = if o.quick {
        dynamics::DynamicsConfig::quick()
    } else {
        dynamics::DynamicsConfig::default()
    };
    cfg.seed = o.seed;
    let r = timed("dynamics", || dynamics::run(&cfg));
    print!("{r}");
    std::fs::create_dir_all("results").expect("create results/");
    for tr in &r.traces {
        let path = format!("results/{}", tr.filename());
        std::fs::write(&path, &tr.jsonl).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path} ({} lines)", tr.jsonl.lines().count());
    }
}

/// `trace report [files...]` — defaults to every results/dynamics_*.jsonl.
fn run_trace_report(paths: &[String]) {
    let paths: Vec<String> = if paths.is_empty() {
        let mut found: Vec<String> = std::fs::read_dir("results")
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path().to_string_lossy().into_owned())
            .filter(|p| p.ends_with(".jsonl"))
            .collect();
        found.sort();
        if found.is_empty() {
            eprintln!("no .jsonl traces under results/ — run `dynamics` or `trace export` first");
            std::process::exit(2);
        }
        found
    } else {
        paths.to_vec()
    };
    for path in &paths {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("read {path}: {e}");
            std::process::exit(2);
        });
        match report::parse_jsonl(&text) {
            Ok(records) => {
                println!("-- {path} --");
                print!("{}", report::summarize(&records));
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn run_failover(o: &Opts) {
    let mut cfg = if o.quick {
        failover::FailoverConfig::quick()
    } else {
        failover::FailoverConfig::default()
    };
    cfg.seed = o.seed;
    let r = timed("failover", || failover::run(&cfg));
    println!("{r}");
}

fn run_scale(o: &Opts) {
    let mut cfg = if o.quick {
        scale::ScaleConfig::quick()
    } else {
        scale::ScaleConfig::default_cfg()
    };
    cfg.seed = o.seed;
    cfg.workers = vec![1, o.workers];
    let r = timed("scale", || scale::run(&cfg));
    println!("{r}");
    if !r.digests_match {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: xmp-experiments <fig1|fig4|fig6|fig7|fattree|table2|ablation|failover|dynamics|scale|trace|all> [--quick] [--seed N] [--scale N] [--flows N] [--workers N]");
        std::process::exit(2);
    };
    // `trace` takes file paths, which parse_opts would reject.
    if cmd == "trace" {
        match rest.split_first() {
            Some((sub, tail)) if sub == "export" => run_dynamics(&parse_opts(tail)),
            Some((sub, tail)) if sub == "report" => run_trace_report(tail),
            _ => {
                eprintln!("usage: xmp-experiments trace <export [--quick] [--seed N] | report [files...]>");
                std::process::exit(2);
            }
        }
        return;
    }
    let o = parse_opts(rest);
    match cmd.as_str() {
        "fig1" => run_fig1(&o),
        "fig4" => run_fig4(&o),
        "fig6" => run_fig6(&o),
        "fig7" => run_fig7(&o),
        "fattree" | "table1" | "fig8" | "fig9" | "fig10" | "fig11" | "table3" => run_fattree(&o),
        "table2" => run_table2(&o),
        "failover" => run_failover(&o),
        "dynamics" => run_dynamics(&o),
        "scale" => run_scale(&o),
        "ablation" => {
            let cfg = if o.quick {
                ablation::AblationConfig::quick()
            } else {
                ablation::AblationConfig::default()
            };
            let r = timed("ablation", || ablation::run(&cfg));
            println!("{r}");
        }
        "all" => {
            run_fig1(&o);
            run_fig4(&o);
            run_fig6(&o);
            run_fig7(&o);
            run_fattree(&o);
            run_table2(&o);
            run_failover(&o);
            run_dynamics(&o);
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}
