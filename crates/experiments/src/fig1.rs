//! Figure 1 — the motivating microbenchmark: four flows share a 1 Gbps
//! bottleneck (RTT 225 µs, no-load), flows starting/stopping every 5 s.
//! DCTCP (K = 10, 20) is compared against a constant-factor window cut
//! ("halving cwnd" = BOS with β = 2) under the same instantaneous-threshold
//! marking.
//!
//! The paper's takeaways this experiment reproduces:
//! * DCTCP can converge slowly and lock into unfair shares under global
//!   synchronization (Figs. 1a/1b),
//! * halving with K ≥ BDP/(β−1) (K = 20 > BDP ≈ 19) keeps the link fully
//!   utilized (Fig. 1d), and even K = 10 loses little because the smaller
//!   RTT speeds up window growth (Fig. 1c).

use crate::common::{frac, host_stack, TextTable};
use std::fmt;
use xmp_des::{Bandwidth, SimDuration, SimTime};
use xmp_netsim::{PortId, QdiscConfig, Sim, SimTuning};
use xmp_topo::Dumbbell;
use xmp_transport::{ConnKey, Segment, SubflowSpec};
use xmp_workloads::{jain_index, Driver, FlowSpecBuilder, Host, RateSampler, Scheme};

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct Fig1Config {
    /// Flow start/stop interval (paper: 5 s → 35 s total).
    pub interval: SimDuration,
    /// Rate-sampling bin.
    pub bin: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Simulator fast-path knobs (compiled FIBs, lazy links).
    pub tuning: SimTuning,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Fig1Config {
            interval: SimDuration::from_secs(5),
            bin: SimDuration::from_millis(100),
            seed: 1,
            tuning: SimTuning::default(),
        }
    }
}

impl Fig1Config {
    /// Scaled-down variant for benches (0.5 s epochs).
    pub fn quick() -> Self {
        Fig1Config {
            interval: SimDuration::from_millis(500),
            bin: SimDuration::from_millis(25),
            ..Fig1Config::default()
        }
    }
}

/// One subplot's data.
#[derive(Debug)]
pub struct Fig1Series {
    /// Variant label (e.g. "DCTCP, K=10").
    pub label: String,
    /// Normalized per-flow rates, one row per bin.
    pub bins: Vec<[f64; 4]>,
    /// Per-epoch (5 s) mean normalized rate per flow.
    pub epoch_means: Vec<[f64; 4]>,
    /// Jain index over the *active* flows, per epoch.
    pub epoch_jain: Vec<f64>,
    /// Aggregate normalized utilization per epoch.
    pub epoch_util: Vec<f64>,
}

/// The four subplots.
#[derive(Debug)]
pub struct Fig1Result {
    /// One series per variant, in the paper's order (a)–(d).
    pub series: Vec<Fig1Series>,
}

const CAPACITY_BPS: f64 = 1e9;

/// Which flows are alive during epoch `e` (0-based): starts at 0,1,2,3;
/// stops at 4,5,6 (flows 0,1,2).
fn active_in_epoch(e: usize) -> Vec<usize> {
    (0..4)
        .filter(|&i| e >= i && (i == 3 || e < 4 + i))
        .collect()
}

fn run_variant(cfg: &Fig1Config, label: &str, scheme: Scheme, k: usize) -> (Fig1Series, u64) {
    let mut sim: Sim<Segment, Host> = Sim::new(cfg.seed);
    sim.set_tuning(cfg.tuning);
    let db = Dumbbell::build(
        &mut sim,
        4,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(225),
        QdiscConfig::EcnThreshold { cap: 100, k },
        |_| host_stack(),
    );
    let mut driver = Driver::new();
    let unit = cfg.interval;
    let total = SimTime::ZERO + unit * 7;
    // Flow i starts at i*unit; flows 0..2 stop at (4+i)*unit.
    let conns: Vec<ConnKey> = (0..4)
        .map(|i| {
            driver.submit(FlowSpecBuilder {
                src_node: db.sources[i],
                subflows: vec![SubflowSpec {
                    local_port: PortId(0),
                    src: Dumbbell::src_addr(i),
                    dst: Dumbbell::dst_addr(i),
                }],
                size: u64::MAX,
                scheme,
                start: SimTime::ZERO + unit * i as u64,
                category: None,
                tag: i as u64,
            })
        })
        .collect();

    let mut sampler = RateSampler::new();
    let mut bins = Vec::new();
    let mut stopped = [false; 4];
    let mut t = SimTime::ZERO;
    while t < total {
        t += cfg.bin;
        driver.run(&mut sim, t, |_, _, _| {});
        for i in 0..3 {
            if !stopped[i] && t >= SimTime::ZERO + unit * (4 + i as u64) {
                driver.stop_flow(&mut sim, conns[i]);
                stopped[i] = true;
            }
        }
        let mut row = [0.0; 4];
        for (i, &c) in conns.iter().enumerate() {
            let r = sampler.sample(&mut sim, &driver, c, 0);
            row[i] = r / CAPACITY_BPS;
        }
        bins.push(row);
    }

    // Epoch summaries.
    let per_epoch = (unit.as_nanos() / cfg.bin.as_nanos()).max(1) as usize;
    let mut epoch_means = Vec::new();
    let mut epoch_jain = Vec::new();
    let mut epoch_util = Vec::new();
    for e in 0..7 {
        let lo = e * per_epoch;
        let hi = ((e + 1) * per_epoch).min(bins.len());
        if lo >= hi {
            break;
        }
        let mut mean = [0.0; 4];
        for row in &bins[lo..hi] {
            for i in 0..4 {
                mean[i] += row[i];
            }
        }
        for m in &mut mean {
            *m /= (hi - lo) as f64;
        }
        let active = active_in_epoch(e);
        let rates: Vec<f64> = active.iter().map(|&i| mean[i]).collect();
        epoch_jain.push(jain_index(&rates));
        epoch_util.push(rates.iter().sum());
        epoch_means.push(mean);
    }

    let series = Fig1Series {
        label: label.into(),
        bins,
        epoch_means,
        epoch_jain,
        epoch_util,
    };
    (series, sim.events_processed())
}

/// Run all four variants.
pub fn run(cfg: &Fig1Config) -> Fig1Result {
    run_counting(cfg).0
}

/// [`run`], also returning the total engine events processed across the
/// four variants (for the bench harness; the count depends on the link
/// pipeline — the lazy pipeline does one event per packet-hop, the eager
/// one two — so it lives outside [`Fig1Result`] and its digests).
pub fn run_counting(cfg: &Fig1Config) -> (Fig1Result, u64) {
    let variants: [(&str, Scheme, usize); 4] = [
        ("DCTCP, K=10", Scheme::Dctcp, 10),
        ("DCTCP, K=20", Scheme::Dctcp, 20),
        ("Halving cwnd, K=10", Scheme::Bos { beta: 2 }, 10),
        ("Halving cwnd, K=20", Scheme::Bos { beta: 2 }, 20),
    ];
    let mut events = 0;
    let series = variants
        .iter()
        .map(|(label, scheme, k)| {
            let (s, ev) = run_variant(cfg, label, *scheme, *k);
            events += ev;
            s
        })
        .collect();
    (Fig1Result { series }, events)
}

impl fmt::Display for Fig1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.series {
            let mut t = TextTable::new(format!("Fig.1 — {}", s.label)).header([
                "epoch", "flow1", "flow2", "flow3", "flow4", "jain", "util",
            ]);
            for (e, m) in s.epoch_means.iter().enumerate() {
                t.row([
                    format!("{}", e + 1),
                    frac(m[0]),
                    frac(m[1]),
                    frac(m[2]),
                    frac(m[3]),
                    frac(s.epoch_jain[e]),
                    frac(s.epoch_util[e]),
                ]);
            }
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_flow_sets() {
        assert_eq!(active_in_epoch(0), vec![0]);
        assert_eq!(active_in_epoch(3), vec![0, 1, 2, 3]);
        assert_eq!(active_in_epoch(4), vec![1, 2, 3]);
        assert_eq!(active_in_epoch(6), vec![3]);
    }

    #[test]
    fn halving_k20_is_fair_and_utilized() {
        // The paper's Fig. 1d: with K=20 >= BDP/(beta-1), the constant
        // cut keeps the link busy and the flows fair.
        let cfg = Fig1Config {
            interval: SimDuration::from_millis(1000),
            bin: SimDuration::from_millis(50),
            seed: 3,
            ..Fig1Config::default()
        };
        let (s, _) = run_variant(&cfg, "halving", Scheme::Bos { beta: 2 }, 20);
        // Epoch 4 (all four flows active): near-fair, near-full.
        assert!(s.epoch_jain[3] > 0.9, "jain={}", s.epoch_jain[3]);
        assert!(s.epoch_util[3] > 0.85, "util={}", s.epoch_util[3]);
        // Epoch 1: single flow saturates the link alone.
        assert!(s.epoch_util[0] > 0.8, "util={}", s.epoch_util[0]);
        // Last epoch: only flow 4 remains and picks the capacity back up.
        assert!(
            s.epoch_means[6][3] > 0.8,
            "flow4 end rate {}",
            s.epoch_means[6][3]
        );
        assert!(s.epoch_means[6][0] < 0.01, "flow1 stopped");
    }

    #[test]
    fn dctcp_variant_runs_and_utilizes() {
        let cfg = Fig1Config {
            interval: SimDuration::from_millis(800),
            bin: SimDuration::from_millis(50),
            seed: 4,
            ..Fig1Config::default()
        };
        let (s, _) = run_variant(&cfg, "dctcp", Scheme::Dctcp, 20);
        assert!(s.epoch_util[3] > 0.8, "util={}", s.epoch_util[3]);
        assert_eq!(s.epoch_means.len(), 7);
    }
}
