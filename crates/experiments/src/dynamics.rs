//! Dynamics — Fig. 2-style congestion time series on the dumbbell.
//!
//! One unbounded flow (XMP-2's two subflows vs single-path DCTCP) crosses a
//! 1 Gbps bottleneck (RTT 225 µs, K = 10, cap 100). The probe layer samples
//! every epoch:
//!
//! * per-subflow **cwnd/ssthresh** plus, for XMP, the NORMAL/REDUCED round
//!   state, TraSh gain δ and the round/reduction counters (pushed through
//!   [`xmp_workloads::Driver::subflow_snapshots`]),
//! * the bottleneck queue's instantaneous **depth** and cumulative
//!   enqueue/mark/drop counters, its delivered bytes (utilization), and the
//!   exact instant of every CE **mark**.
//!
//! The recorded series export as JSON Lines ([`DynamicsTrace::jsonl`]) —
//! the `dynamics` / `trace export` CLI commands write them under
//! `results/`, and `trace report` renders summaries back from the files.
//! The export is byte-identical across `SimTuning` combinations (the meta
//! line deliberately omits tuning; pinned by `tests/determinism.rs`).

use crate::common::{host_stack, TextTable};
use std::fmt;
use xmp_des::{Bandwidth, SimDuration, SimTime};
use xmp_netsim::{AuditReport, PortId, ProbeConfig, ProbeRecord, QdiscConfig, Sim, SimTuning};
use xmp_topo::Dumbbell;
use xmp_transport::{Segment, SubflowSpec};
use xmp_workloads::{Driver, FlowSpecBuilder, Host, Scheme};

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct DynamicsConfig {
    /// Sampling epoch (cwnd snapshots and queue samples once per epoch).
    pub epoch: SimDuration,
    /// Total epochs simulated.
    pub epochs: u64,
    /// RNG seed.
    pub seed: u64,
    /// Simulator fast-path knobs.
    pub tuning: SimTuning,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            epoch: SimDuration::from_millis(1),
            epochs: 400,
            seed: 1,
            tuning: SimTuning::default(),
        }
    }
}

impl DynamicsConfig {
    /// Scaled-down variant for tests and the smoke suite.
    pub fn quick() -> Self {
        DynamicsConfig {
            epochs: 150,
            ..DynamicsConfig::default()
        }
    }
}

/// One scheme's recorded time series.
#[derive(Debug)]
pub struct DynamicsTrace {
    /// Scheme label (e.g. "XMP-2").
    pub scheme: String,
    /// The full export: one meta line + every probe record, JSON Lines.
    pub jsonl: String,
    /// Per-subflow cwnd snapshots recorded.
    pub cwnd_points: usize,
    /// Bottleneck queue samples recorded.
    pub queue_points: usize,
    /// CE marks recorded at their exact instants.
    pub marks: usize,
    /// Window reductions taken by subflow 0 (round-based schemes; 0 for
    /// DCTCP whose per-ack response has no round counter).
    pub reductions: u64,
    /// Packet-conservation audit at end of run.
    pub audit: AuditReport,
}

impl DynamicsTrace {
    /// Conventional export filename (`dynamics_<scheme>.jsonl`).
    pub fn filename(&self) -> String {
        format!(
            "dynamics_{}.jsonl",
            self.scheme.to_lowercase().replace('/', "-")
        )
    }
}

/// The experiment: one trace per scheme.
#[derive(Debug)]
pub struct DynamicsResult {
    /// Epoch length (ms).
    pub epoch_ms: f64,
    /// One trace per scheme.
    pub traces: Vec<DynamicsTrace>,
}

fn run_scheme(cfg: &DynamicsConfig, scheme: Scheme) -> DynamicsTrace {
    let mut sim: Sim<Segment, Host> = Sim::new(cfg.seed);
    sim.set_tuning(cfg.tuning);
    let db = Dumbbell::build(
        &mut sim,
        1,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(225),
        QdiscConfig::EcnThreshold { cap: 100, k: 10 },
        |_| host_stack(),
    );
    let end = SimTime::ZERO + cfg.epoch * cfg.epochs;
    sim.install_probes(
        ProbeConfig::every(cfg.epoch)
            .until(end)
            .watch_queue(db.bottleneck, 0)
            .with_marks(),
    );

    // One unbounded flow; multipath schemes lay every subflow over the same
    // dumbbell path (distinct FlowIds keep them apart on the wire), so the
    // trace shows the windows jointly filling one bottleneck, as in Fig. 2.
    let mut driver = Driver::new();
    let conn = driver.submit(FlowSpecBuilder {
        src_node: db.sources[0],
        subflows: (0..scheme.subflow_count())
            .map(|_| SubflowSpec {
                local_port: PortId(0),
                src: Dumbbell::src_addr(0),
                dst: Dumbbell::dst_addr(0),
            })
            .collect(),
        size: u64::MAX,
        scheme,
        start: SimTime::ZERO,
        category: None,
        tag: 0,
    });

    for e in 0..cfg.epochs {
        driver.run(&mut sim, SimTime::ZERO + cfg.epoch * (e + 1), |_, _, _| {});
        let at = sim.now();
        let snaps = driver.subflow_snapshots(&mut sim, conn);
        if let Some(p) = sim.probes_mut() {
            for s in snaps {
                p.push(ProbeRecord::Cwnd {
                    at,
                    conn,
                    subflow: s.subflow as u32,
                    cwnd: s.cwnd,
                    ssthresh: s.ssthresh,
                    cc: s.cc,
                });
            }
        }
    }
    driver.stop_flow(&mut sim, conn);
    let audit = sim.audit_conservation();
    let probes = sim.take_probes().expect("probes were installed above");

    let mut cwnd_points = 0;
    let mut queue_points = 0;
    let mut marks = 0;
    let mut reductions = 0;
    for r in probes.records() {
        match r {
            ProbeRecord::Cwnd { subflow, cc, .. } => {
                cwnd_points += 1;
                if *subflow == 0 {
                    if let Some(cc) = cc {
                        reductions = cc.reductions;
                    }
                }
            }
            ProbeRecord::Queue { .. } => queue_points += 1,
            ProbeRecord::Mark { .. } => marks += 1,
            _ => {}
        }
    }

    let meta = ProbeRecord::Meta {
        experiment: "dynamics".into(),
        scheme: scheme.label(),
        seed: cfg.seed,
        note: format!(
            "dumbbell 1 Gbps, RTT 225us, K=10 cap=100, epoch {} us x {}",
            cfg.epoch.as_nanos() / 1_000,
            cfg.epochs
        ),
    };
    let jsonl = format!("{}\n{}", meta.to_json(), probes.export_jsonl());

    DynamicsTrace {
        scheme: scheme.label(),
        jsonl,
        cwnd_points,
        queue_points,
        marks,
        reductions,
        audit,
    }
}

/// Run XMP-2 and DCTCP through the same bottleneck and record both traces.
pub fn run(cfg: &DynamicsConfig) -> DynamicsResult {
    DynamicsResult {
        epoch_ms: cfg.epoch.as_nanos() as f64 / 1e6,
        traces: [Scheme::xmp(2), Scheme::Dctcp]
            .into_iter()
            .map(|s| run_scheme(cfg, s))
            .collect(),
    }
}

impl fmt::Display for DynamicsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Dynamics — recorded series ({} ms epochs)",
            self.epoch_ms
        ))
        .header([
            "scheme",
            "cwnd pts",
            "queue pts",
            "marks",
            "reductions",
            "export",
        ]);
        for tr in &self.traces {
            t.row([
                tr.scheme.clone(),
                format!("{}", tr.cwnd_points),
                format!("{}", tr.queue_points),
                format!("{}", tr.marks),
                format!("{}", tr.reductions),
                tr.filename(),
            ]);
        }
        writeln!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xmp_trace_has_both_subflows_marks_and_reductions() {
        let r = run(&DynamicsConfig::quick());
        let xmp = &r.traces[0];
        let dctcp = &r.traces[1];
        assert_eq!(xmp.scheme, "XMP-2");
        assert_eq!(dctcp.scheme, "DCTCP");

        for tr in &r.traces {
            assert_eq!(tr.queue_points as u64, DynamicsConfig::quick().epochs);
            assert!(tr.marks > 0, "{}: no CE marks on the bottleneck", tr.scheme);
            assert_eq!(
                tr.audit.injected,
                tr.audit.delivered + tr.audit.dropped + tr.audit.in_network,
                "{}: conservation",
                tr.scheme
            );
        }
        // Two subflows → two cwnd rows per epoch; single-path DCTCP → one.
        assert_eq!(xmp.cwnd_points, 2 * dctcp.cwnd_points);
        // XMP's round machinery reduced at least once under marking.
        assert!(xmp.reductions > 0, "XMP never entered REDUCED");
        // DCTCP has no round counters: every cwnd line lacks the cc fields.
        assert_eq!(dctcp.reductions, 0);
    }

    #[test]
    fn export_parses_line_by_line_and_queue_stays_sane() {
        let r = run(&DynamicsConfig::quick());
        for tr in &r.traces {
            let mut meta_lines = 0;
            for (i, line) in tr.jsonl.lines().enumerate() {
                let rec = ProbeRecord::parse(line)
                    .unwrap_or_else(|e| panic!("{} line {}: {e}", tr.scheme, i + 1));
                match rec {
                    ProbeRecord::Meta { experiment, .. } => {
                        assert_eq!(experiment, "dynamics");
                        meta_lines += 1;
                    }
                    ProbeRecord::Queue { depth, .. } => {
                        assert!(depth <= 101, "depth {depth} above cap+serializing");
                    }
                    _ => {}
                }
            }
            assert_eq!(meta_lines, 1, "{}: exactly one meta line", tr.scheme);
        }
    }
}
