//! The fat-tree evaluation suite (paper Section 5.2): one simulation per
//! (scheme × traffic pattern), from which Table 1 (average goodput),
//! Fig. 8 (goodput distributions), Fig. 9 + Table 3 (job completion times),
//! Fig. 10 (RTT distributions) and Fig. 11 (link utilization by layer) are
//! all extracted.
//!
//! The paper runs >2000 large flows moving ~600 GB per pattern; the suite
//! keeps the flow counts and divides flow sizes by `scale`
//! (goodput is a rate, so the distribution shapes survive scaling —
//! EXPERIMENTS.md records the scale used).

use crate::common::{mbps, TextTable};
use std::collections::BTreeMap;
use std::fmt;
use xmp_des::{SimDuration, SimTime};
use xmp_netsim::{Agent, QdiscConfig, Sim, SimTuning};
use xmp_topo::{FatTree, FatTreeConfig, FlowCategory, LinkLayer, RoutingMode};
use xmp_transport::{HostStack, Segment, StackConfig};
use xmp_workloads::{
    link_utilization, Cdf, Driver, FlowSim, Host, IncastPattern, PatternConfig,
    PermutationPattern, RandomPattern, Scheme,
};

/// Which of the paper's traffic patterns to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Every host → one random destination; waves.
    Permutation,
    /// One chained random flow per host, Pareto sizes.
    Random,
    /// 8 concurrent 9-host jobs over TCP + Random background.
    Incast,
}

impl Pattern {
    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::Permutation => "Permutation",
            Pattern::Random => "Random",
            Pattern::Incast => "Incast",
        }
    }
}

/// One (scheme, pattern) simulation's configuration.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Fat-tree port count (paper: 8 → 128 hosts, 80 switches).
    pub k: usize,
    /// Scheme for large flows.
    pub scheme: Scheme,
    /// Traffic pattern.
    pub pattern: Pattern,
    /// Stop after this many completed large flows (paper: >2000).
    pub target_flows: usize,
    /// For the Incast pattern, additionally require this many completed
    /// Jobs before stopping (the JCT distributions need the sample size).
    pub min_jobs: usize,
    /// Flow-size divisor.
    pub scale: u64,
    /// Hard wall on simulated time.
    pub max_sim: SimDuration,
    /// Switch marking threshold K (paper: 10).
    pub k_mark: usize,
    /// Queue capacity in packets (paper: 100).
    pub queue_cap: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional per-host scheme split (Table 2): even hosts get `scheme`,
    /// odd hosts get this one.
    pub coexist_with: Option<Scheme>,
    /// Uplink routing mode (ablation; the paper uses two-level lookup).
    pub routing: RoutingMode,
    /// Minimum RTO for every host stack (paper: 200 ms; the fine-grained
    /// RTO ablation follows Vasudevan et al., discussed in the paper's
    /// related work).
    pub rto_min: SimDuration,
    /// Simulator fast-path knobs (compiled FIBs, lazy links).
    pub tuning: SimTuning,
    /// Install probes sampling every core link at this interval (`None`,
    /// the default, schedules nothing — the bit-identical baseline). The
    /// probe-overhead bench flips this on the otherwise-identical cell.
    pub probe_interval: Option<SimDuration>,
    /// Route the hot path through the three dynamic-dispatch escape
    /// hatches instead of the default static enums: agents stored as
    /// `Box<dyn Agent>`, qdiscs wrapped via [`QdiscConfig::boxed`], and
    /// per-flow controllers boxed as `CcKind::Custom`. The dispatch
    /// differential test flips this to prove both paths bit-identical.
    pub boxed_dispatch: bool,
    /// Worker threads for *one* simulation. `1` (the default) runs the
    /// classic serial event loop; `> 1` shards the fat tree by pod into a
    /// [`xmp_netsim::PartitionedSim`] (must divide `k`). Event processing
    /// is bit-identical to serial — the determinism suite asserts it on
    /// pre-submitted workloads — but the suite's *chained* patterns see
    /// completions at window boundaries, so their sharded results are
    /// statistically equivalent rather than byte-equal (and reproducible
    /// run-to-run). Orthogonal to [`run_suite_parallel`], which runs
    /// *independent cells* on separate threads.
    pub workers: usize,
}

impl SuiteConfig {
    /// Paper-shaped defaults at a tractable scale.
    pub fn new(scheme: Scheme, pattern: Pattern) -> Self {
        SuiteConfig {
            k: 8,
            scheme,
            pattern,
            target_flows: 2000,
            min_jobs: 400,
            scale: 128,
            max_sim: SimDuration::from_secs(120),
            k_mark: 10,
            queue_cap: 100,
            seed: 42,
            coexist_with: None,
            routing: RoutingMode::TwoLevel,
            rto_min: SimDuration::from_millis(200),
            tuning: SimTuning::default(),
            probe_interval: None,
            boxed_dispatch: false,
            workers: 1,
        }
    }

    /// Small variant for benches and tests (k = 4 tree, few flows). Flow
    /// sizes stay in the multi-megabyte range — scaling them into the
    /// tens-of-kilobytes regime would turn the paper's *large* flows into
    /// small ones and invert every comparison.
    pub fn quick(scheme: Scheme, pattern: Pattern) -> Self {
        SuiteConfig {
            k: 4,
            target_flows: 40,
            min_jobs: 8,
            scale: 128,
            max_sim: SimDuration::from_secs(20),
            ..SuiteConfig::new(scheme, pattern)
        }
    }

    /// Bench/test variant on the full k = 8 tree (XMP needs the path
    /// diversity of the real topology for the comparative claims).
    pub fn quick_k8(scheme: Scheme, pattern: Pattern) -> Self {
        SuiteConfig {
            k: 8,
            target_flows: 150,
            min_jobs: 30,
            scale: 128,
            max_sim: SimDuration::from_secs(30),
            ..SuiteConfig::new(scheme, pattern)
        }
    }
}

/// Everything measured in one run.
#[derive(Debug)]
pub struct SuiteResult {
    /// Scheme label.
    pub scheme: String,
    /// Pattern run.
    pub pattern: Pattern,
    /// Mean goodput over completed large flows (bits/s).
    pub avg_goodput_bps: f64,
    /// Goodput distribution, normalized to the 1 Gbps access capacity.
    pub goodput_cdf: Cdf,
    /// Normalized goodput by locality class.
    pub goodput_by_category: BTreeMap<&'static str, Cdf>,
    /// Mean per-flow RTT (ms) by locality class.
    pub rtt_by_category: BTreeMap<&'static str, Cdf>,
    /// Link utilization distribution by layer.
    pub util_by_layer: BTreeMap<&'static str, Cdf>,
    /// Job completion times in ms (Incast only).
    pub job_times_ms: Option<Cdf>,
    /// Mean goodput (bits/s) per scheme label (coexistence runs).
    pub goodput_by_scheme: BTreeMap<String, f64>,
    /// Per layer: mean (over links, busier direction) fraction of time the
    /// instantaneous queue sat at or above the marking threshold K — the
    /// paper's buffer-occupancy story in one number.
    pub occupancy_above_k: BTreeMap<&'static str, f64>,
    /// Completed large flows.
    pub completed_flows: usize,
    /// Simulated time used.
    pub sim_time: SimTime,
}

fn category_name(c: FlowCategory) -> &'static str {
    match c {
        FlowCategory::InterPod => "Inter-Pod",
        FlowCategory::InterRack => "Inter-Rack",
        FlowCategory::InnerRack => "Inner-Rack",
    }
}

fn layer_name(l: LinkLayer) -> &'static str {
    match l {
        LinkLayer::Core => "Core",
        LinkLayer::Aggregation => "Aggregation",
        LinkLayer::Rack => "Rack",
    }
}

enum PatternState {
    Perm(PermutationPattern),
    Rand(RandomPattern),
    Incast(IncastPattern),
}

/// Run one (scheme, pattern) simulation.
pub fn run_suite(cfg: &SuiteConfig) -> SuiteResult {
    run_suite_counting(cfg).0
}

/// [`run_suite`], also returning the engine events processed (for the
/// bench harness; the count depends on the link pipeline, so it stays out
/// of [`SuiteResult`] and its determinism digests).
pub fn run_suite_counting(cfg: &SuiteConfig) -> (SuiteResult, u64) {
    let (result, events, _) = run_suite_profiled(cfg);
    (result, events)
}

/// [`run_suite_counting`], additionally returning the simulator's
/// profiling counters (event mix, pool hit rate, wall time in the event
/// loop). Like the event count, the profile stays out of [`SuiteResult`]
/// so determinism digests compare workload outcomes only.
pub fn run_suite_profiled(cfg: &SuiteConfig) -> (SuiteResult, u64, xmp_netsim::SimProfile) {
    if cfg.boxed_dispatch {
        run_suite_inner(cfg, |sc| -> Box<dyn Agent<Segment> + Send> {
            Box::new(HostStack::<xmp_core::CcKind>::new(sc))
        })
    } else {
        run_suite_inner(cfg, |sc| -> Host { HostStack::new(sc) })
    }
}

/// The body of [`run_suite_profiled`], generic over how host agents are
/// stored in the simulation: `A = Host` monomorphizes the whole event loop
/// over inline agents (static dispatch); `A = Box<dyn Agent<Segment>>` is
/// the historical vtable path. `cfg.boxed_dispatch` picks the arm and also
/// flips the other two dyn boundaries (qdiscs, controllers) so one flag
/// covers the full dispatch differential.
fn run_suite_inner<A: Agent<Segment> + Send>(
    cfg: &SuiteConfig,
    mut make_host: impl FnMut(StackConfig) -> A,
) -> (SuiteResult, u64, xmp_netsim::SimProfile) {
    let mut sim: Sim<Segment, A> = Sim::new(cfg.seed);
    sim.set_tuning(cfg.tuning);
    let mut qdisc = QdiscConfig::EcnThreshold {
        cap: cfg.queue_cap,
        k: cfg.k_mark,
    };
    if cfg.boxed_dispatch {
        qdisc = qdisc.boxed();
    }
    let ft_cfg = FatTreeConfig {
        k: cfg.k,
        routing: cfg.routing,
        ..FatTreeConfig::paper(qdisc)
    };
    let stack_cfg = StackConfig::default().with_rto_min(cfg.rto_min);
    let ft = FatTree::build(&mut sim, &ft_cfg, |_| make_host(stack_cfg.clone()));
    let mut driver = Driver::new();
    driver.set_boxed_cc(cfg.boxed_dispatch);

    if let Some(interval) = cfg.probe_interval {
        let mut pc = xmp_netsim::ProbeConfig::every(interval).until(SimTime::ZERO + cfg.max_sim);
        for (_, id) in ft.links_by_layer().filter(|&(l, _)| l == LinkLayer::Core) {
            pc = pc.watch_queue(id, 0).watch_queue(id, 1);
        }
        sim.install_probes(pc);
    }

    let pcfg = PatternConfig::new(cfg.scheme, cfg.seed, cfg.scale, usize::MAX);
    let mut pattern = match cfg.pattern {
        Pattern::Permutation => {
            let mut p = PermutationPattern::new(pcfg);
            p.start(&mut sim, &mut driver, &ft);
            PatternState::Perm(p)
        }
        Pattern::Random => {
            let mut p = RandomPattern::new(pcfg);
            if let Some(other) = cfg.coexist_with {
                p.host_schemes = Some(
                    (0..ft.hosts.len())
                        .map(|h| if h % 2 == 0 { cfg.scheme } else { other })
                        .collect(),
                );
            }
            p.start(&mut sim, &mut driver, &ft);
            PatternState::Rand(p)
        }
        Pattern::Incast => {
            let mut p = IncastPattern::new(pcfg);
            p.start(&mut sim, &mut driver, &ft, 8);
            PatternState::Incast(p)
        }
    };

    // Run in short slices until enough large flows completed. The loop is
    // generic over the simulation backend: serial, or partitioned across
    // `cfg.workers` threads (merged back into a serial `Sim` at the end so
    // the metric collection below is backend-agnostic).
    fn drive_flows<S: FlowSim>(
        sim: &mut S,
        driver: &mut Driver,
        pattern: &mut PatternState,
        ft: &FatTree,
        cfg: &SuiteConfig,
    ) -> usize {
        let slice = SimDuration::from_millis(100);
        let mut large_done = 0usize;
        let deadline = SimTime::ZERO + cfg.max_sim;
        let done = |large_done: usize, pattern: &PatternState| {
            large_done >= cfg.target_flows
                && match pattern {
                    PatternState::Incast(p) => p.jobs_completed() >= cfg.min_jobs,
                    _ => true,
                }
        };
        while sim.now() < deadline && !done(large_done, pattern) {
            let t = (sim.now() + slice).min(deadline);
            driver.run(sim, t, |sim, d, conn| {
                let is_large = d.record(conn).is_some_and(|r| r.tag < 1_000_000);
                if is_large {
                    large_done += 1;
                }
                match pattern {
                    PatternState::Perm(p) => p.on_complete(sim, d, ft, conn),
                    PatternState::Rand(p) => p.on_complete(sim, d, ft, conn),
                    PatternState::Incast(p) => p.on_complete(sim, d, ft, conn),
                }
            });
        }
        driver.finalize_running(sim);
        large_done
    }
    let (sim, large_done) = if cfg.workers > 1 {
        let plan = ft.partition_plan(cfg.workers);
        let mut psim = xmp_netsim::PartitionedSim::new(sim, &plan);
        let n = drive_flows(&mut psim, &mut driver, &mut pattern, &ft, cfg);
        (psim.finish(), n)
    } else {
        let n = drive_flows(&mut sim, &mut driver, &mut pattern, &ft, cfg);
        (sim, n)
    };
    // Every injected packet must be delivered, dropped for a counted
    // reason, or still in flight — panics on a conservation violation.
    sim.audit_conservation();
    let now = sim.now();

    // Collect per-flow metrics over completed large flows.
    const ACCESS_BPS: f64 = 1e9;
    let large = || {
        driver
            .records()
            .filter(|r| r.tag < 1_000_000 && r.completed.is_some())
    };
    let avg_goodput_bps = {
        let (sum, n) = large().fold((0.0, 0usize), |(s, n), r| (s + r.goodput_bps, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    };
    let goodput_cdf = Cdf::new(large().map(|r| r.goodput_bps / ACCESS_BPS));
    let mut by_cat: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    let mut rtt_cat: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for r in large() {
        if let Some(c) = r.category {
            by_cat
                .entry(category_name(c))
                .or_default()
                .push(r.goodput_bps / ACCESS_BPS);
            if r.mean_rtt_ns > 0 {
                rtt_cat
                    .entry(category_name(c))
                    .or_default()
                    .push(r.mean_rtt_ns as f64 / 1e6);
            }
        }
    }
    let mut goodput_by_scheme: BTreeMap<String, f64> = BTreeMap::new();
    if cfg.coexist_with.is_some() {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for r in large() {
            let e = sums.entry(r.scheme.clone()).or_default();
            e.0 += r.goodput_bps;
            e.1 += 1;
        }
        for (k, (s, n)) in sums {
            goodput_by_scheme.insert(k, s / n.max(1) as f64);
        }
    }

    // Link utilization and buffer occupancy by layer.
    let mut util_by_layer = BTreeMap::new();
    let mut occupancy_above_k = BTreeMap::new();
    for layer in [LinkLayer::Core, LinkLayer::Aggregation, LinkLayer::Rack] {
        let ids: Vec<_> = ft
            .links_by_layer()
            .filter(|&(l, _)| l == layer)
            .map(|(_, id)| id)
            .collect();
        util_by_layer.insert(
            layer_name(layer),
            Cdf::new(link_utilization(&sim, ids.iter().copied(), now)),
        );
        let mean_occ = if ids.is_empty() {
            0.0
        } else {
            ids.iter()
                .map(|&id| {
                    let l = sim.link(id);
                    l.dirs[0]
                        .stats
                        .occupancy_at_least(cfg.k_mark)
                        .max(l.dirs[1].stats.occupancy_at_least(cfg.k_mark))
                })
                .sum::<f64>()
                / ids.len() as f64
        };
        occupancy_above_k.insert(layer_name(layer), mean_occ);
    }

    let job_times_ms = match &pattern {
        PatternState::Incast(p) if !p.job_times_ms.is_empty() => {
            Some(Cdf::new(p.job_times_ms.iter().copied()))
        }
        _ => None,
    };

    let result = SuiteResult {
        scheme: cfg.scheme.label(),
        pattern: cfg.pattern,
        avg_goodput_bps,
        goodput_cdf,
        goodput_by_category: by_cat.into_iter().map(|(k, v)| (k, Cdf::new(v))).collect(),
        rtt_by_category: rtt_cat.into_iter().map(|(k, v)| (k, Cdf::new(v))).collect(),
        util_by_layer,
        job_times_ms,
        goodput_by_scheme,
        occupancy_above_k,
        completed_flows: large_done,
        sim_time: now,
    };
    (result, sim.events_processed(), *sim.profile())
}

/// Run a batch of suite cells across OS threads.
///
/// Each `(scheme, pattern, seed)` cell is a fully self-contained
/// simulation — it owns its engine, RNG, topology and flow driver — so the
/// batch is embarrassingly parallel. Workers pull cell indices from a
/// shared atomic counter and stream results back over a channel; the batch
/// returns in **input order** and is byte-identical to calling
/// [`run_suite`] on each config serially (asserted by the determinism
/// regression tests), because no simulation state crosses a thread
/// boundary and thread scheduling only affects *when* a cell runs, never
/// what it computes.
///
/// Worker count is `min(available_parallelism, cells)`; a single-core host
/// degenerates to the serial loop with no thread overhead.
pub fn run_suite_parallel(cfgs: &[SuiteConfig]) -> Vec<SuiteResult> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(cfgs.len());
    if workers <= 1 {
        return cfgs.iter().map(run_suite).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cfgs.len() {
                    break;
                }
                let r = run_suite(&cfgs[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<SuiteResult>> = (0..cfgs.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every cell produces a result"))
            .collect()
    })
}

/// Render Table 1 from a set of suite results.
pub fn render_table1(results: &[SuiteResult]) -> TextTable {
    let mut patterns: Vec<Pattern> = Vec::new();
    let mut schemes: Vec<String> = Vec::new();
    for r in results {
        if !patterns.contains(&r.pattern) {
            patterns.push(r.pattern);
        }
        if !schemes.contains(&r.scheme) {
            schemes.push(r.scheme.clone());
        }
    }
    let mut t = TextTable::new("Table 1 — Average Goodput (Mbps)").header(
        std::iter::once("scheme".to_string()).chain(patterns.iter().map(|p| p.label().into())),
    );
    for s in &schemes {
        let mut row = vec![s.clone()];
        for p in &patterns {
            let cell = results
                .iter()
                .find(|r| &r.scheme == s && r.pattern == *p)
                .map_or("-".into(), |r| mbps(r.avg_goodput_bps));
            row.push(cell);
        }
        t.row(row);
    }
    t
}

/// Render Fig. 8 (goodput distributions: CDF quantiles + per-category
/// percentiles) for one pattern.
pub fn render_fig8(results: &[SuiteResult], pattern: Pattern) -> Vec<TextTable> {
    let mut out = Vec::new();
    let mut cdf_t = TextTable::new(format!(
        "Fig.8 — normalized goodput CDF quantiles ({})",
        pattern.label()
    ))
    .header(["scheme", "p10", "p25", "p50", "p75", "p90", "max"]);
    for r in results.iter().filter(|r| r.pattern == pattern) {
        if r.goodput_cdf.is_empty() {
            continue;
        }
        cdf_t.row([
            r.scheme.clone(),
            format!("{:.3}", r.goodput_cdf.percentile(10.0)),
            format!("{:.3}", r.goodput_cdf.percentile(25.0)),
            format!("{:.3}", r.goodput_cdf.percentile(50.0)),
            format!("{:.3}", r.goodput_cdf.percentile(75.0)),
            format!("{:.3}", r.goodput_cdf.percentile(90.0)),
            format!("{:.3}", r.goodput_cdf.max()),
        ]);
    }
    out.push(cdf_t);
    let mut cat_t = TextTable::new(format!(
        "Fig.8 — goodput by locality: min/p10/p50/p90/max ({})",
        pattern.label()
    ))
    .header(["scheme", "category", "min", "p10", "p50", "p90", "max"]);
    for r in results.iter().filter(|r| r.pattern == pattern) {
        for (cat, cdf) in &r.goodput_by_category {
            if cdf.is_empty() {
                continue;
            }
            cat_t.row([
                r.scheme.clone(),
                (*cat).into(),
                format!("{:.3}", cdf.min()),
                format!("{:.3}", cdf.percentile(10.0)),
                format!("{:.3}", cdf.percentile(50.0)),
                format!("{:.3}", cdf.percentile(90.0)),
                format!("{:.3}", cdf.max()),
            ]);
        }
    }
    out.push(cat_t);
    out
}

/// Render Fig. 10 (RTT distributions by locality) for one pattern.
pub fn render_fig10(results: &[SuiteResult], pattern: Pattern) -> TextTable {
    let mut t = TextTable::new(format!(
        "Fig.10 — per-flow mean RTT in ms: p10/p50/p90 ({})",
        pattern.label()
    ))
    .header(["scheme", "category", "p10", "p50", "p90"]);
    for r in results.iter().filter(|r| r.pattern == pattern) {
        for (cat, cdf) in &r.rtt_by_category {
            if cdf.is_empty() {
                continue;
            }
            t.row([
                r.scheme.clone(),
                (*cat).into(),
                format!("{:.2}", cdf.percentile(10.0)),
                format!("{:.2}", cdf.percentile(50.0)),
                format!("{:.2}", cdf.percentile(90.0)),
            ]);
        }
    }
    t
}

/// Render Fig. 11 (link utilization by layer) for one pattern.
pub fn render_fig11(results: &[SuiteResult], pattern: Pattern) -> TextTable {
    let mut t = TextTable::new(format!(
        "Fig.11 — link utilization by layer: min/mean/max ({})",
        pattern.label()
    ))
    .header(["scheme", "layer", "min", "mean", "max"]);
    for r in results.iter().filter(|r| r.pattern == pattern) {
        for (layer, cdf) in &r.util_by_layer {
            if cdf.is_empty() {
                continue;
            }
            t.row([
                r.scheme.clone(),
                (*layer).into(),
                format!("{:.3}", cdf.min()),
                format!("{:.3}", cdf.mean()),
                format!("{:.3}", cdf.max()),
            ]);
        }
    }
    t
}

/// Render the buffer-occupancy summary for one pattern: fraction of time
/// queues sit at or above the marking threshold K (per layer, mean over
/// links). XMP/DCTCP should be near the marking boundary only briefly;
/// loss-driven schemes camp above it.
pub fn render_occupancy(results: &[SuiteResult], pattern: Pattern) -> TextTable {
    let mut t = TextTable::new(format!(
        "Buffer occupancy — mean fraction of time queue >= K ({})",
        pattern.label()
    ))
    .header(["scheme", "Core", "Aggregation", "Rack"]);
    for r in results.iter().filter(|r| r.pattern == pattern) {
        t.row([
            r.scheme.clone(),
            format!("{:.3}", r.occupancy_above_k.get("Core").copied().unwrap_or(0.0)),
            format!(
                "{:.3}",
                r.occupancy_above_k.get("Aggregation").copied().unwrap_or(0.0)
            ),
            format!("{:.3}", r.occupancy_above_k.get("Rack").copied().unwrap_or(0.0)),
        ]);
    }
    t
}

/// Render Fig. 9 + Table 3 (job completion times) from the Incast runs.
pub fn render_jobs(results: &[SuiteResult]) -> Vec<TextTable> {
    let mut t3 = TextTable::new("Table 3 — Average Job Completion Time")
        .header([
            "scheme",
            "jobs",
            "mean (ms)",
            "p50 (ms)",
            "> 300 ms",
            "<= 20 ms", // deadline-style view: the paper's motivating
            "<= 100 ms", // "tens of milliseconds" service deadlines
        ]);
    let mut f9 = TextTable::new("Fig.9 — Job completion time CDF quantiles (ms)").header([
        "scheme", "p10", "p25", "p50", "p75", "p90", "p99", "max",
    ]);
    for r in results
        .iter()
        .filter(|r| r.pattern == Pattern::Incast)
    {
        if let Some(jt) = &r.job_times_ms {
            t3.row([
                r.scheme.clone(),
                format!("{}", jt.len()),
                format!("{:.0}", jt.mean()),
                format!("{:.0}", jt.median()),
                format!("{:.1}%", 100.0 * jt.fraction_above(300.0)),
                format!("{:.1}%", 100.0 * (1.0 - jt.fraction_above(20.0))),
                format!("{:.1}%", 100.0 * (1.0 - jt.fraction_above(100.0))),
            ]);
            f9.row([
                r.scheme.clone(),
                format!("{:.1}", jt.percentile(10.0)),
                format!("{:.1}", jt.percentile(25.0)),
                format!("{:.1}", jt.percentile(50.0)),
                format!("{:.1}", jt.percentile(75.0)),
                format!("{:.1}", jt.percentile(90.0)),
                format!("{:.1}", jt.percentile(99.0)),
                format!("{:.1}", jt.max()),
            ]);
        }
    }
    vec![t3, f9]
}

impl fmt::Display for SuiteResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} / {}: {} large flows, avg goodput {} Mbps, simulated {}",
            self.scheme,
            self.pattern.label(),
            self.completed_flows,
            mbps(self.avg_goodput_bps),
            self.sim_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_runs_and_measures() {
        let cfg = SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation);
        let r = run_suite(&cfg);
        assert!(r.completed_flows >= 50, "{} flows", r.completed_flows);
        assert!(
            r.avg_goodput_bps > 50e6,
            "avg goodput {} too low",
            r.avg_goodput_bps
        );
        assert!(!r.goodput_cdf.is_empty());
        assert!(!r.util_by_layer["Core"].is_empty());
    }

    #[test]
    fn xmp2_beats_dctcp_on_permutation() {
        // Table 1's headline: XMP-2 > DCTCP by exploiting path diversity.
        let x = run_suite(&SuiteConfig {
            seed: 9,
            ..SuiteConfig::quick_k8(Scheme::xmp(2), Pattern::Permutation)
        });
        let d = run_suite(&SuiteConfig {
            seed: 9,
            ..SuiteConfig::quick_k8(Scheme::Dctcp, Pattern::Permutation)
        });
        assert!(
            x.avg_goodput_bps > d.avg_goodput_bps,
            "XMP-2 {} <= DCTCP {}",
            x.avg_goodput_bps,
            d.avg_goodput_bps
        );
    }

    #[test]
    fn incast_quick_produces_job_times() {
        let cfg = SuiteConfig {
            target_flows: 30,
            ..SuiteConfig::quick(Scheme::xmp(2), Pattern::Incast)
        };
        let r = run_suite(&cfg);
        let jt = r.job_times_ms.expect("job times recorded");
        assert!(jt.len() >= 8, "{} jobs", jt.len());
        assert!(jt.min() > 0.0);
    }

    #[test]
    fn partitioned_suite_is_reproducible_and_sane() {
        // Suite patterns *chain* flows on completion, and a partitioned run
        // surfaces completions at window boundaries — statistically
        // equivalent to serial, not bit-identical (the bit-identity
        // contract for pre-submitted workloads is asserted by the
        // determinism suite and the scale experiment's digest check). What
        // must hold here: the sharded run is deterministic run-to-run, and
        // it completes the workload with plausible goodput.
        let tiny = || SuiteConfig {
            target_flows: 6,
            max_sim: SimDuration::from_secs(2),
            seed: 3,
            workers: 2,
            ..SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation)
        };
        let a = run_suite(&tiny());
        let b = run_suite(&tiny());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(a.completed_flows >= 6, "{} flows", a.completed_flows);
        assert!(
            a.avg_goodput_bps > 50e6,
            "avg goodput {} too low",
            a.avg_goodput_bps
        );
    }

    #[test]
    fn parallel_batch_matches_serial_in_input_order() {
        let tiny = |scheme, seed| SuiteConfig {
            target_flows: 6,
            max_sim: SimDuration::from_secs(2),
            seed,
            ..SuiteConfig::quick(scheme, Pattern::Permutation)
        };
        let cfgs = [tiny(Scheme::xmp(2), 1), tiny(Scheme::Dctcp, 2)];
        let serial: Vec<String> = cfgs.iter().map(|c| format!("{:?}", run_suite(c))).collect();
        let parallel: Vec<String> = run_suite_parallel(&cfgs)
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn renderers_produce_rows() {
        let r = run_suite(&SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation));
        let t1 = render_table1(std::slice::from_ref(&r));
        assert_eq!(t1.row_count(), 1);
        let f8 = render_fig8(std::slice::from_ref(&r), Pattern::Permutation);
        assert!(f8[0].row_count() >= 1);
        let f11 = render_fig11(std::slice::from_ref(&r), Pattern::Permutation);
        assert_eq!(f11.row_count(), 3);
    }
}
