//! Shared experiment plumbing: host factories and plain-text rendering.

use std::fmt;
use xmp_transport::{HostStack, StackConfig};
use xmp_workloads::Host;

/// Standard host agent for experiments: a [`HostStack`] over the
/// statically dispatched [`xmp_core::CcKind`] controllers, stored inline
/// in the simulation (`Sim<Segment, Host>`) so the packet hot path is
/// fully devirtualized.
pub fn host_stack() -> Host {
    HostStack::new(StackConfig::default())
}

/// A simple aligned text table (the experiment reports are plain text, one
/// table per paper artifact).
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        TextTable {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Set the header row.
    pub fn header(mut self, cells: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.header = cells.into_iter().map(Into::into).collect();
        self
    }

    /// Append a data row.
    pub fn row(&mut self, cells: impl IntoIterator<Item = impl Into<String>>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .chain(std::iter::once(&self.header))
            .map(Vec::len)
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "  {}", cells.join("  "))
        };
        if !self.header.is_empty() {
            fmt_row(f, &self.header)?;
            writeln!(f, "  {}", "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)))?;
        }
        for row in &self.rows {
            fmt_row(f, row)?;
        }
        Ok(())
    }
}

/// Format bits/s as Mbps with one decimal.
pub fn mbps(bps: f64) -> String {
    format!("{:.1}", bps / 1e6)
}

/// Format a 0..1 fraction with two decimals.
pub fn frac(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new("Demo").header(["scheme", "goodput"]);
        t.row(["XMP-2", "644.3"]);
        t.row(["DCTCP", "513.6"]);
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("XMP-2"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Columns align: both data lines have the same width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mbps(644_300_000.0), "644.3");
        assert_eq!(frac(0.5), "0.50");
    }
}
