//! Compiled forwarding tables (FIBs).
//!
//! Dynamic [`Router`](crate::routing::Router)s answer `route()` by scanning
//! pattern tables behind a `Box<dyn>` — fine for topology construction,
//! wasteful when the same question is asked once per packet per hop. Since
//! every destination a packet can carry is bound in the simulation's address
//! book *before* the run starts, the whole forwarding function of a switch
//! can be flattened at build time:
//!
//! * the sorted address book becomes a dense **destination index**
//!   ([`AddrIndex`]: address → small integer, one array load),
//! * each switch's router compiles to a [`CompiledFib`]: one [`FibEntry`]
//!   per destination index, either a fixed port or a hash-spread group.
//!
//! A per-packet lookup is then one or two array indexations plus (for ECMP
//! entries) the same `mix64` hash the dynamic router uses — bit-identical
//! port choices by construction, pinned by the exhaustive differential
//! tests in `xmp-topo`. Destinations a router cannot compile (or addresses
//! outside the book) fall back to the dynamic router, preserving its
//! behaviour including "no route" panics.

use crate::addr::Addr;
use crate::node::PortId;
use crate::packet::FlowId;
use crate::routing::mix64;

/// Forwarding decision for one (switch, destination) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FibEntry {
    /// Deterministic next hop.
    Port(PortId),
    /// Hash-spread over `len` ports starting at `off` in the group pool:
    /// `group[(mix64(flow ^ salt) >> shift) % len]`. The `salt`/`shift`
    /// parameters reproduce each dynamic router's exact hash input
    /// ([`EcmpRouter`](crate::routing::EcmpRouter) salts with the
    /// destination word; the fat-tree ECMP mode shifts for its second
    /// level).
    Hash {
        /// Offset of the group in `CompiledFib::groups`.
        off: u32,
        /// Group size (ports).
        len: u16,
        /// Right-shift applied to the hash before the modulo.
        shift: u8,
        /// XOR'd into the flow id before hashing.
        salt: u64,
    },
    /// No compiled route — fall back to the dynamic router.
    Miss,
}

/// A switch's flattened forwarding table, indexed by destination index.
#[derive(Clone, Debug)]
pub struct CompiledFib {
    entries: Vec<FibEntry>,
    groups: Vec<PortId>,
}

impl CompiledFib {
    /// The output port for destination index `dst_idx` and `flow`, or
    /// `None` when this destination must take the dynamic fallback.
    #[inline]
    pub fn lookup(&self, dst_idx: u32, flow: FlowId) -> Option<PortId> {
        match self.entries[dst_idx as usize] {
            FibEntry::Port(p) => Some(p),
            FibEntry::Hash {
                off,
                len,
                shift,
                salt,
            } => {
                let h = mix64(flow.0 ^ salt) >> shift;
                Some(self.groups[off as usize + (h % u64::from(len)) as usize])
            }
            FibEntry::Miss => None,
        }
    }

    /// The raw entry for a destination index (used by tests).
    pub fn entry(&self, dst_idx: u32) -> FibEntry {
        self.entries[dst_idx as usize]
    }

    /// Demote every entry that can choose `port` to [`FibEntry::Miss`], so
    /// affected destinations take the dynamic fallback. Called when the
    /// link behind `port` fails: the compiled table must stop steering
    /// traffic at a dead port without a full (and failure-oblivious)
    /// recompile.
    pub fn invalidate_port(&mut self, port: PortId) {
        let groups = &self.groups;
        for e in &mut self.entries {
            let hit = match *e {
                FibEntry::Port(p) => p == port,
                FibEntry::Hash { off, len, .. } => groups
                    [off as usize..off as usize + len as usize]
                    .contains(&port),
                FibEntry::Miss => false,
            };
            if hit {
                *e = FibEntry::Miss;
            }
        }
    }
}

/// Incrementally builds a [`CompiledFib`] over `n` destinations.
#[derive(Debug)]
pub struct FibBuilder {
    entries: Vec<FibEntry>,
    groups: Vec<PortId>,
}

impl FibBuilder {
    /// All-miss table over `n` destination indices.
    pub fn new(n: usize) -> Self {
        FibBuilder {
            entries: vec![FibEntry::Miss; n],
            groups: Vec::new(),
        }
    }

    /// Fix destination `dst` to a single port.
    pub fn port(&mut self, dst: usize, p: PortId) {
        self.entries[dst] = FibEntry::Port(p);
    }

    /// Intern a port group in the pool; returns `(off, len)` for reuse
    /// across destinations sharing the group.
    pub fn group(&mut self, ports: &[PortId]) -> (u32, u16) {
        assert!(!ports.is_empty(), "empty ECMP group");
        assert!(ports.len() <= u16::MAX as usize, "ECMP group too large");
        let off = u32::try_from(self.groups.len()).expect("group pool overflow");
        self.groups.extend_from_slice(ports);
        (off, ports.len() as u16)
    }

    /// Hash destination `dst` over an interned group.
    pub fn hashed(&mut self, dst: usize, (off, len): (u32, u16), shift: u8, salt: u64) {
        self.entries[dst] = FibEntry::Hash {
            off,
            len,
            shift,
            salt,
        };
    }

    /// Finish the table.
    pub fn build(self) -> CompiledFib {
        CompiledFib {
            entries: self.entries,
            groups: self.groups,
        }
    }
}

/// Address → destination-index translation, built from the sorted address
/// book. Dense (one array load) when the bound addresses span a reasonable
/// range — true for every in-tree topology — with a binary-search fallback
/// so pathological address plans stay correct.
#[derive(Clone, Debug)]
pub enum AddrIndex {
    /// `table[addr - base]` is the index, or `u32::MAX` for unbound.
    Dense {
        /// Lowest bound address (big-endian u32).
        base: u32,
        /// Index table covering `base..=max`.
        table: Vec<u32>,
    },
    /// Sorted bound addresses; the index is the binary-search position.
    Sparse {
        /// Sorted big-endian address keys.
        keys: Vec<u32>,
    },
}

/// Spans beyond this fall back to [`AddrIndex::Sparse`] (a k = 16 fat tree
/// spans ≈ 1 M addresses; 4 MB of table is fine, unbounded growth is not).
const DENSE_SPAN_LIMIT: usize = 1 << 22;

impl AddrIndex {
    /// Build from sorted big-endian address keys (the address book's
    /// order); the returned index maps each key to its position.
    pub fn build(keys: &[u32]) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted");
        match (keys.first(), keys.last()) {
            (Some(&lo), Some(&hi)) if ((hi - lo) as usize) < DENSE_SPAN_LIMIT => {
                let mut table = vec![u32::MAX; (hi - lo) as usize + 1];
                for (i, &k) in keys.iter().enumerate() {
                    table[(k - lo) as usize] = i as u32;
                }
                AddrIndex::Dense { base: lo, table }
            }
            _ => AddrIndex::Sparse {
                keys: keys.to_vec(),
            },
        }
    }

    /// Destination index of `addr`, or `None` if unbound.
    #[inline]
    pub fn lookup(&self, addr: Addr) -> Option<u32> {
        let key = u32::from_be_bytes(addr.0);
        match self {
            AddrIndex::Dense { base, table } => {
                let i = key.checked_sub(*base)? as usize;
                match table.get(i) {
                    Some(&idx) if idx != u32::MAX => Some(idx),
                    _ => None,
                }
            }
            AddrIndex::Sparse { keys } => keys.binary_search(&key).ok().map(|i| i as u32),
        }
    }

    /// Number of indexed destinations.
    pub fn len(&self) -> usize {
        match self {
            AddrIndex::Dense { table, .. } => {
                table.iter().filter(|&&i| i != u32::MAX).count()
            }
            AddrIndex::Sparse { keys } => keys.len(),
        }
    }

    /// Whether no addresses are indexed.
    pub fn is_empty(&self) -> bool {
        match self {
            AddrIndex::Dense { table, .. } => table.iter().all(|&i| i == u32::MAX),
            AddrIndex::Sparse { keys } => keys.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_index_dense_round_trips() {
        let keys: Vec<u32> = [(10, 0, 0, 2), (10, 0, 0, 5), (10, 1, 0, 2)]
            .iter()
            .map(|&(a, b, c, d)| u32::from_be_bytes([a, b, c, d]))
            .collect();
        let idx = AddrIndex::build(&keys);
        assert!(matches!(idx, AddrIndex::Dense { .. }));
        assert_eq!(idx.lookup(Addr::new(10, 0, 0, 2)), Some(0));
        assert_eq!(idx.lookup(Addr::new(10, 0, 0, 5)), Some(1));
        assert_eq!(idx.lookup(Addr::new(10, 1, 0, 2)), Some(2));
        assert_eq!(idx.lookup(Addr::new(10, 0, 0, 3)), None);
        assert_eq!(idx.lookup(Addr::new(9, 0, 0, 2)), None);
        assert_eq!(idx.lookup(Addr::new(10, 1, 0, 3)), None);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn addr_index_sparse_fallback() {
        let keys = vec![0u32, u32::MAX - 1];
        let idx = AddrIndex::build(&keys);
        assert!(matches!(idx, AddrIndex::Sparse { .. }));
        assert_eq!(idx.lookup(Addr(0u32.to_be_bytes())), Some(0));
        assert_eq!(idx.lookup(Addr((u32::MAX - 1).to_be_bytes())), Some(1));
        assert_eq!(idx.lookup(Addr(7u32.to_be_bytes())), None);
    }

    #[test]
    fn fib_port_and_hash_entries() {
        let mut b = FibBuilder::new(3);
        b.port(0, PortId(4));
        let g = b.group(&[PortId(1), PortId(2), PortId(3)]);
        b.hashed(1, g, 0, 0xABCD);
        let fib = b.build();
        assert_eq!(fib.lookup(0, FlowId(9)), Some(PortId(4)));
        // Hash entry reproduces the dynamic formula exactly.
        let h = mix64(9 ^ 0xABCD);
        let expect = [PortId(1), PortId(2), PortId(3)][(h % 3) as usize];
        assert_eq!(fib.lookup(1, FlowId(9)), Some(expect));
        // Miss falls through.
        assert_eq!(fib.lookup(2, FlowId(9)), None);
    }

    #[test]
    fn invalidate_port_demotes_to_miss() {
        let mut b = FibBuilder::new(4);
        b.port(0, PortId(4));
        b.port(1, PortId(5));
        let g = b.group(&[PortId(1), PortId(4)]);
        b.hashed(2, g, 0, 0);
        let g2 = b.group(&[PortId(2), PortId(3)]);
        b.hashed(3, g2, 0, 0);
        let mut fib = b.build();
        fib.invalidate_port(PortId(4));
        // Direct port hit and the group containing it both miss now; the
        // untouched entries keep forwarding.
        assert_eq!(fib.entry(0), FibEntry::Miss);
        assert_eq!(fib.entry(1), FibEntry::Port(PortId(5)));
        assert_eq!(fib.entry(2), FibEntry::Miss);
        assert!(matches!(fib.entry(3), FibEntry::Hash { .. }));
    }
}
