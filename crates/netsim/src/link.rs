//! Full-duplex links with store-and-forward serialization.
//!
//! A link is two independent **directions**. Each direction has its own
//! queue discipline, serialization state and statistics. A packet offered to
//! a direction is (a) possibly dropped by fault injection, (b) offered to
//! the qdisc (which may mark or drop), then (c) serialized onto the wire for
//! `size / rate` and delivered `prop_delay` later.

use crate::node::{NodeId, PortId};
use crate::packet::Packet;
use crate::queue::{Qdisc, QdiscConfig, QdiscKind};
use crate::stats::DirStats;
use std::collections::VecDeque;
use std::fmt;
use xmp_des::{Bandwidth, SimDuration, SimRng, SimTime};

/// Index of a link in the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Random fault injection on a link direction (smoltcp-style `--drop-chance`
/// and `--corrupt-chance`).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultConfig {
    /// Probability that an arriving packet is silently dropped.
    pub drop_prob: f64,
    /// Probability that a packet is corrupted in transit and discarded by
    /// the receiving end (after spending its full serialization and
    /// propagation time on the wire).
    pub corrupt_prob: f64,
}

/// Parameters for creating a link. Both directions share them.
#[derive(Clone, Debug)]
pub struct LinkParams {
    /// Serialization rate.
    pub bandwidth: Bandwidth,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Queue discipline for each direction.
    pub queue: QdiscConfig,
    /// Optional fault injection.
    pub fault: FaultConfig,
}

impl LinkParams {
    /// A link with the given rate/delay and a queue config, no faults.
    pub fn new(bandwidth: Bandwidth, delay: SimDuration, queue: QdiscConfig) -> Self {
        LinkParams {
            bandwidth,
            delay,
            queue,
            fault: FaultConfig::default(),
        }
    }

    /// Add random drops with the given probability.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.fault.drop_prob = p;
        self
    }
}

/// One direction of a link.
pub struct Direction<P> {
    /// Node the direction delivers to.
    pub to_node: NodeId,
    /// Port on `to_node` the packet arrives on.
    pub to_port: PortId,
    /// Queue of packets waiting behind the one being serialized.
    /// Statically dispatched for the in-tree disciplines; see
    /// [`QdiscKind`].
    pub queue: QdiscKind<P>,
    /// Packet currently on the wire (being serialized), if any.
    pub in_flight: Option<Packet<P>>,
    /// Per-direction counters.
    pub stats: DirStats,
    pub(crate) fault: FaultConfig,
    pub(crate) fault_rng: SimRng,
    /// Separate stream for corruption draws so enabling one fault kind
    /// never perturbs the other's sequence.
    pub(crate) corrupt_rng: SimRng,
    /// The direction is failed: everything offered is blackholed.
    pub(crate) down: bool,
    /// Bumped on every `LinkDown`; `TxDone`/`Deliver` events carry the
    /// generation they were scheduled under, so events belonging to packets
    /// purged by a failure are recognized as stale.
    pub(crate) fail_gen: u32,
    /// Conservation audit: packets accepted by this direction whose
    /// `Deliver` has not yet been processed (negative would mean a packet
    /// was double-counted — asserted by `Sim::audit_conservation`).
    pub(crate) in_network: i64,
    /// Lazy pipeline: when the port frees up. Serialization is FIFO and
    /// non-preemptive, so a packet accepted at `now` starts transmitting at
    /// `busy_until.max(now)` — its departure is fully determined at enqueue.
    pub(crate) busy_until: SimTime,
    /// Lazy pipeline: `(start, depart)` per accepted, undelivered-from-port
    /// packet, in departure order. The front entry with `start <= now` is
    /// the one "on the wire"; later entries are the waiting backlog.
    pub(crate) pending: VecDeque<(SimTime, SimTime)>,
}

impl<P: Send> Direction<P> {
    /// Instantaneous backlog (waiting packets, excluding the one on the wire).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Whether the direction is currently failed (see
    /// [`FaultPlan`](crate::FaultPlan)).
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Record a queue-length sample for time-weighted averaging.
    pub(crate) fn sample_backlog(&mut self, now: SimTime) {
        let depth = self.queue.len() + usize::from(self.in_flight.is_some());
        self.stats.observe_backlog(now, depth);
    }

    /// Lazy pipeline: retire entries that departed strictly before `now`,
    /// replaying the backlog sample the eager path would have taken at each
    /// `TxDone`. Strict, because the eager path processes a same-timestamp
    /// arrival *before* the `TxDone` scheduled for the same instant
    /// (propagation exceeds serialization on every in-tree link, so the
    /// arrival was scheduled first).
    pub(crate) fn lazy_advance(&mut self, now: SimTime) {
        while let Some(&(_, depart)) = self.pending.front() {
            if depart >= now {
                break;
            }
            self.pending.pop_front();
            self.stats.observe_backlog(depart, self.pending.len());
        }
    }

    /// Lazy pipeline: retire entries with `depart <= t` — used when a run
    /// window closes, mirroring the eager engine processing every `TxDone`
    /// up to and including the deadline.
    pub(crate) fn lazy_flush(&mut self, t: SimTime) {
        while let Some(&(_, depart)) = self.pending.front() {
            if depart > t {
                break;
            }
            self.pending.pop_front();
            self.stats.observe_backlog(depart, self.pending.len());
        }
    }

    /// Lazy pipeline: waiting backlog at `now` (excluding the packet on the
    /// wire), after [`Self::lazy_advance`]. The front entry has started
    /// whenever `start <= now`.
    pub(crate) fn lazy_waiting(&self, now: SimTime) -> usize {
        match self.pending.front() {
            Some(&(start, _)) if start <= now => {
                // A link teardown clears `pending` wholesale; a stale
                // started-entry here would make the backlog go negative
                // (and silently skew ECN marking decisions).
                debug_assert!(
                    !self.down,
                    "lazy backlog consulted on a downed direction"
                );
                self.pending.len().checked_sub(1).expect(
                    "lazy_waiting underflow: started entry on empty pending ring",
                )
            }
            _ => self.pending.len(),
        }
    }
}

impl<P: Send> fmt::Debug for Direction<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Direction")
            .field("to_node", &self.to_node)
            .field("backlog", &self.queue.len())
            .field("busy", &self.in_flight.is_some())
            .finish()
    }
}

/// A full-duplex link: `dirs[0]` carries a→b, `dirs[1]` carries b→a.
pub struct Link<P> {
    /// Serialization rate (both directions).
    pub bandwidth: Bandwidth,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// The two directions.
    pub dirs: [Direction<P>; 2],
    /// Optional label from the topology builder (e.g. `"L3"`).
    pub label: String,
    /// The queue configuration both directions were built from, kept so a
    /// partitioned run can replicate pristine direction state per shard.
    pub(crate) qcfg: QdiscConfig,
}

impl<P> Link<P> {
    pub(crate) fn new(
        params: &LinkParams,
        a: (NodeId, PortId),
        b: (NodeId, PortId),
        rng: &SimRng,
        link_index: u32,
        label: String,
    ) -> Self
    where
        P: Send + 'static,
    {
        let mk_dir = |to: (NodeId, PortId), salt: u64| Direction {
            to_node: to.0,
            to_port: to.1,
            queue: params.queue.build(),
            in_flight: None,
            stats: DirStats::default(),
            fault: params.fault,
            fault_rng: rng.derive((link_index as u64) << 1 | salt),
            corrupt_rng: rng.derive((1 << 32) | (link_index as u64) << 1 | salt),
            down: false,
            fail_gen: 0,
            in_network: 0,
            busy_until: SimTime::ZERO,
            pending: VecDeque::new(),
        };
        Link {
            bandwidth: params.bandwidth,
            delay: params.delay,
            dirs: [mk_dir(b, 0), mk_dir(a, 1)],
            label,
            qcfg: params.queue.clone(),
        }
    }

    /// Clone this link with **pristine** dynamic state: a fresh queue built
    /// from the stored config, no packet in flight, an empty lazy pipeline,
    /// and copies of the stats/RNG/fault state. Only valid before any
    /// traffic has run (asserted), so a partitioned run can hand every
    /// shard an identical replica of the full link table.
    pub(crate) fn replicate(&self) -> Self
    where
        P: Send + 'static,
    {
        let rep_dir = |d: &Direction<P>| {
            assert!(
                d.in_flight.is_none() && d.queue.len() == 0 && d.pending.is_empty(),
                "link replication requires a pristine link (no traffic yet)"
            );
            Direction {
                to_node: d.to_node,
                to_port: d.to_port,
                queue: self.qcfg.build(),
                in_flight: None,
                stats: d.stats.clone(),
                fault: d.fault,
                fault_rng: d.fault_rng.clone(),
                corrupt_rng: d.corrupt_rng.clone(),
                down: d.down,
                fail_gen: d.fail_gen,
                in_network: d.in_network,
                busy_until: d.busy_until,
                pending: VecDeque::new(),
            }
        };
        Link {
            bandwidth: self.bandwidth,
            delay: self.delay,
            dirs: [rep_dir(&self.dirs[0]), rep_dir(&self.dirs[1])],
            label: self.label.clone(),
            qcfg: self.qcfg.clone(),
        }
    }

    /// Convenience accessor.
    pub fn dir(&self, d: u8) -> &Direction<P> {
        &self.dirs[d as usize]
    }

    /// Mutable accessor.
    pub fn dir_mut(&mut self, d: u8) -> &mut Direction<P> {
        &mut self.dirs[d as usize]
    }
}

impl<P> fmt::Debug for Link<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Link")
            .field("bandwidth", &self.bandwidth)
            .field("delay", &self.delay)
            .field("label", &self.label)
            .finish()
    }
}
