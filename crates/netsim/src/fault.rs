//! Deterministic fault injection: scheduled topology failures plus seeded
//! random loss and corruption.
//!
//! A [`FaultPlan`] is a per-run description of everything that goes wrong:
//!
//! * a **timeline** of [`FaultEvent`]s at absolute sim times — links going
//!   down and (optionally) back up, whole switches failing,
//! * per-link Bernoulli **loss** and **corruption** rates, drawn from
//!   per-direction RNG streams derived from the sim seed so runs stay
//!   bit-reproducible.
//!
//! Plans are installed with [`Sim::install_fault_plan`](crate::Sim::install_fault_plan)
//! before (or during) a run; the timeline is driven by the DES engine like
//! any other event, so the same seed plus the same plan replays the same
//! byte-identical run. An empty plan is free: no RNG stream is consumed and
//! no event is scheduled, so results match a faultless build bit for bit.
//!
//! What a downed link does to traffic — blackholing, FIB invalidation, the
//! generation-stamped in-flight purge — is documented on
//! [`Sim::take_link_down`](crate::Sim::take_link_down) and in DESIGN.md §11.

use crate::link::LinkId;
use crate::node::NodeId;
use xmp_des::SimTime;

/// One scheduled topology fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Both directions of the link fail: in-flight packets are blackholed
    /// and all traffic offered while down is dropped (counted).
    LinkDown(LinkId),
    /// The link is repaired; routing recovers via FIB recompilation.
    LinkUp(LinkId),
    /// Every link attached to the node fails (the node itself keeps its
    /// state — a repaired switch resumes forwarding after `LinkUp`s).
    SwitchDown(NodeId),
}

/// A deterministic per-run schedule of faults. Build with the chainable
/// constructors, then hand to
/// [`Sim::install_fault_plan`](crate::Sim::install_fault_plan).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub(crate) timeline: Vec<(SimTime, FaultEvent)>,
    pub(crate) loss: Vec<(LinkId, f64)>,
    pub(crate) corruption: Vec<(LinkId, f64)>,
}

impl FaultPlan {
    /// An empty plan (installing it is a no-op).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule both directions of `link` to fail at `at`.
    pub fn link_down(mut self, at: SimTime, link: LinkId) -> Self {
        self.timeline.push((at, FaultEvent::LinkDown(link)));
        self
    }

    /// Schedule `link` to be repaired at `at`.
    pub fn link_up(mut self, at: SimTime, link: LinkId) -> Self {
        self.timeline.push((at, FaultEvent::LinkUp(link)));
        self
    }

    /// Schedule every link attached to `node` to fail at `at`.
    pub fn switch_down(mut self, at: SimTime, node: NodeId) -> Self {
        self.timeline.push((at, FaultEvent::SwitchDown(node)));
        self
    }

    /// Bernoulli-drop packets offered to either direction of `link` with
    /// probability `p` (seeded per direction; equivalent to
    /// [`LinkParams::with_drop_prob`](crate::LinkParams::with_drop_prob)
    /// but applied per run instead of at construction).
    pub fn drop_rate(mut self, link: LinkId, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.loss.push((link, p));
        self
    }

    /// Bernoulli-corrupt packets *arriving* over either direction of `link`
    /// with probability `p`. A corrupted packet is counted
    /// ([`DirStats::corrupted`](crate::stats::DirStats::corrupted)) and
    /// discarded at the receiver — the model is a frame failing its
    /// checksum, so it consumed wire time unlike a fault drop.
    pub fn corrupt_rate(mut self, link: LinkId, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.corruption.push((link, p));
        self
    }

    /// Whether the plan schedules or configures nothing at all.
    pub fn is_empty(&self) -> bool {
        self.timeline.is_empty() && self.loss.is_empty() && self.corruption.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let p = FaultPlan::new()
            .link_down(SimTime::from_millis(5), LinkId(3))
            .link_up(SimTime::from_millis(9), LinkId(3))
            .switch_down(SimTime::from_millis(7), NodeId(1))
            .drop_rate(LinkId(0), 0.1)
            .corrupt_rate(LinkId(2), 0.01);
        assert!(!p.is_empty());
        assert_eq!(p.timeline.len(), 3);
        assert_eq!(p.timeline[0].1, FaultEvent::LinkDown(LinkId(3)));
        assert_eq!(p.loss, vec![(LinkId(0), 0.1)]);
        assert_eq!(p.corruption, vec![(LinkId(2), 0.01)]);
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        let _ = FaultPlan::new().drop_rate(LinkId(0), 1.5);
    }
}
