//! Queue disciplines for switch output ports.
//!
//! Three disciplines are provided:
//!
//! * [`DropTail`] — classic FIFO, drop on overflow.
//! * [`EcnThreshold`] — the paper's packet-marking rule (BOS rule 1 /
//!   DCTCP-style): an arriving ECT packet is CE-marked when the
//!   *instantaneous* queue length is at least `K` packets; non-ECT packets
//!   are only dropped on overflow. This is also what the paper configures on
//!   real RED switches via `Wq = 1`, `min = max = K`.
//! * [`Red`] — Random Early Detection with EWMA average-queue estimation and
//!   the count-based probability spreading of Floyd & Jacobson, in either
//!   marking or dropping mode. Included both as the Internet-style baseline
//!   the paper argues against (Section 2.1) and to verify the degenerate
//!   configuration equals [`EcnThreshold`].
//!
//! All capacities and thresholds are counted in **packets**, as in the paper
//! ("we set K to 15 and the queue size to 100 packets").

use crate::packet::Packet;
use std::collections::VecDeque;
use xmp_des::SimRng;

/// Result of offering a packet to a queue discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Packet accepted unchanged.
    Enqueued,
    /// Packet accepted and CE-marked (ECT packets only).
    EnqueuedMarked,
    /// Packet rejected (buffer overflow or early drop).
    Dropped,
}

/// A FIFO queue discipline over simulator packets.
///
/// The mark/drop decision is factored out of buffering as
/// [`Qdisc::classify`] so the lazy link pipeline — which tracks backlog
/// analytically instead of holding packets in the discipline's buffer —
/// exercises the *same* decision code as the eager path: `enqueue` is
/// required to behave exactly like `classify(self.len(), ..)` followed by
/// a push when accepted.
pub trait Qdisc<P>: Send {
    /// Offer a packet; the discipline may mark, enqueue or drop it.
    fn enqueue(&mut self, pkt: Packet<P>) -> EnqueueOutcome;
    /// Decide the outcome for a packet arriving to `backlog` waiting
    /// packets, mutating the packet (CE marking) and any internal signal
    /// state (EWMA, RNG) — but without buffering the packet.
    fn classify(&mut self, backlog: usize, pkt: &mut Packet<P>) -> EnqueueOutcome;
    /// Take the next packet for transmission.
    fn dequeue(&mut self) -> Option<Packet<P>>;
    /// Instantaneous backlog in packets.
    fn len(&self) -> usize;
    /// Whether the backlog is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Buffer capacity in packets.
    fn capacity(&self) -> usize;
}

/// Declarative queue configuration, turned into a [`QdiscKind`] per port.
#[derive(Clone, Debug)]
pub enum QdiscConfig {
    /// FIFO with the given capacity (packets).
    DropTail {
        /// Buffer capacity in packets.
        cap: usize,
    },
    /// Instantaneous-threshold ECN marking (the paper's rule).
    EcnThreshold {
        /// Buffer capacity in packets.
        cap: usize,
        /// Marking threshold K in packets.
        k: usize,
    },
    /// Classic RED.
    Red {
        /// Buffer capacity in packets.
        cap: usize,
        /// EWMA weight Wq in (0, 1].
        wq: f64,
        /// Lower threshold (packets).
        min_th: f64,
        /// Upper threshold (packets).
        max_th: f64,
        /// Max marking probability at `max_th`.
        max_p: f64,
        /// Mark ECT packets or drop.
        mode: RedMode,
        /// RNG seed for the probabilistic decisions.
        seed: u64,
    },
    /// Build the inner configuration behind the [`QdiscKind::Custom`] boxed
    /// escape hatch instead of its enum variant. Behaviour is identical —
    /// only the dispatch mechanism changes — which is exactly what the
    /// dispatch differential tests exercise.
    Boxed(Box<QdiscConfig>),
}

impl QdiscConfig {
    /// Materialize the configuration as a statically dispatched
    /// [`QdiscKind`].
    pub fn build<P: Send + 'static>(&self) -> QdiscKind<P> {
        match self {
            &QdiscConfig::DropTail { cap } => QdiscKind::DropTail(DropTail::new(cap)),
            &QdiscConfig::EcnThreshold { cap, k } => {
                QdiscKind::EcnThreshold(EcnThreshold::new(cap, k))
            }
            &QdiscConfig::Red {
                cap,
                wq,
                min_th,
                max_th,
                max_p,
                mode,
                seed,
            } => QdiscKind::Red(Red::new(cap, wq, min_th, max_th, max_p, mode, seed)),
            QdiscConfig::Boxed(inner) => QdiscKind::Custom(Box::new(inner.build::<P>())),
        }
    }

    /// Wrap this configuration so it builds through the boxed escape hatch.
    pub fn boxed(self) -> QdiscConfig {
        QdiscConfig::Boxed(Box::new(self))
    }
}

/// The closed set of in-tree queue disciplines, dispatched by `match`
/// instead of through a vtable — every per-packet `enqueue`/`classify` on
/// the hot path monomorphizes to direct calls. External disciplines still
/// plug in through [`QdiscKind::Custom`]; since `QdiscKind` itself
/// implements [`Qdisc`], the boxed path can wrap an enum value, which is
/// how the differential tests prove both paths bit-identical.
pub enum QdiscKind<P> {
    /// FIFO, drop on overflow.
    DropTail(DropTail<P>),
    /// Instantaneous-threshold ECN marking (the paper's rule).
    EcnThreshold(EcnThreshold<P>),
    /// Classic RED.
    Red(Red<P>),
    /// Escape hatch: any boxed [`Qdisc`] implementation.
    Custom(Box<dyn Qdisc<P>>),
}

impl<P: Send> Qdisc<P> for QdiscKind<P> {
    fn enqueue(&mut self, pkt: Packet<P>) -> EnqueueOutcome {
        match self {
            QdiscKind::DropTail(q) => q.enqueue(pkt),
            QdiscKind::EcnThreshold(q) => q.enqueue(pkt),
            QdiscKind::Red(q) => q.enqueue(pkt),
            QdiscKind::Custom(q) => q.enqueue(pkt),
        }
    }

    fn classify(&mut self, backlog: usize, pkt: &mut Packet<P>) -> EnqueueOutcome {
        match self {
            QdiscKind::DropTail(q) => q.classify(backlog, pkt),
            QdiscKind::EcnThreshold(q) => q.classify(backlog, pkt),
            QdiscKind::Red(q) => q.classify(backlog, pkt),
            QdiscKind::Custom(q) => q.classify(backlog, pkt),
        }
    }

    fn dequeue(&mut self) -> Option<Packet<P>> {
        match self {
            QdiscKind::DropTail(q) => q.dequeue(),
            QdiscKind::EcnThreshold(q) => q.dequeue(),
            QdiscKind::Red(q) => q.dequeue(),
            QdiscKind::Custom(q) => q.dequeue(),
        }
    }

    fn len(&self) -> usize {
        match self {
            QdiscKind::DropTail(q) => q.len(),
            QdiscKind::EcnThreshold(q) => q.len(),
            QdiscKind::Red(q) => q.len(),
            QdiscKind::Custom(q) => q.len(),
        }
    }

    fn capacity(&self) -> usize {
        match self {
            QdiscKind::DropTail(q) => q.capacity(),
            QdiscKind::EcnThreshold(q) => q.capacity(),
            QdiscKind::Red(q) => q.capacity(),
            QdiscKind::Custom(q) => q.capacity(),
        }
    }
}

/// FIFO, drop on overflow.
#[derive(Debug)]
pub struct DropTail<P> {
    buf: VecDeque<Packet<P>>,
    cap: usize,
}

impl<P> DropTail<P> {
    /// FIFO with `cap` packet slots.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        DropTail {
            buf: VecDeque::with_capacity(cap.min(4096)),
            cap,
        }
    }
}

impl<P: Send> Qdisc<P> for DropTail<P> {
    fn enqueue(&mut self, mut pkt: Packet<P>) -> EnqueueOutcome {
        let outcome = self.classify(self.buf.len(), &mut pkt);
        if outcome != EnqueueOutcome::Dropped {
            self.buf.push_back(pkt);
        }
        outcome
    }

    fn classify(&mut self, backlog: usize, _pkt: &mut Packet<P>) -> EnqueueOutcome {
        if backlog >= self.cap {
            EnqueueOutcome::Dropped
        } else {
            EnqueueOutcome::Enqueued
        }
    }

    fn dequeue(&mut self) -> Option<Packet<P>> {
        self.buf.pop_front()
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn capacity(&self) -> usize {
        self.cap
    }
}

/// The paper's marking rule: CE-mark an arriving ECT packet when the
/// instantaneous queue length (packets already waiting) is `>= K`.
#[derive(Debug)]
pub struct EcnThreshold<P> {
    buf: VecDeque<Packet<P>>,
    cap: usize,
    k: usize,
}

impl<P> EcnThreshold<P> {
    /// Threshold marker with capacity `cap` and marking threshold `k`.
    pub fn new(cap: usize, k: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        assert!(k <= cap, "marking threshold K={k} exceeds capacity {cap}");
        EcnThreshold {
            buf: VecDeque::with_capacity(cap.min(4096)),
            cap,
            k,
        }
    }

    /// The marking threshold K (packets).
    pub fn k(&self) -> usize {
        self.k
    }
}

impl<P: Send> Qdisc<P> for EcnThreshold<P> {
    fn enqueue(&mut self, mut pkt: Packet<P>) -> EnqueueOutcome {
        let outcome = self.classify(self.buf.len(), &mut pkt);
        if outcome != EnqueueOutcome::Dropped {
            self.buf.push_back(pkt);
        }
        outcome
    }

    fn classify(&mut self, backlog: usize, pkt: &mut Packet<P>) -> EnqueueOutcome {
        if backlog >= self.cap {
            return EnqueueOutcome::Dropped;
        }
        if backlog >= self.k && pkt.ecn.is_capable() {
            pkt.mark_ce();
            EnqueueOutcome::EnqueuedMarked
        } else {
            EnqueueOutcome::Enqueued
        }
    }

    fn dequeue(&mut self) -> Option<Packet<P>> {
        self.buf.pop_front()
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn capacity(&self) -> usize {
        self.cap
    }
}

/// Whether RED signals congestion by marking ECT packets or by dropping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedMode {
    /// CE-mark ECT packets; drop non-ECT ones that would have been marked.
    Mark,
    /// Always drop (the original RED; DummyNet's built-in behaviour the
    /// paper had to patch away).
    Drop,
}

/// Random Early Detection (Floyd & Jacobson 1993) with EWMA averaging.
#[derive(Debug)]
pub struct Red<P> {
    buf: VecDeque<Packet<P>>,
    cap: usize,
    wq: f64,
    min_th: f64,
    max_th: f64,
    max_p: f64,
    mode: RedMode,
    avg: f64,
    /// Packets since the last mark/drop while in the between-thresholds band.
    count: i64,
    rng: SimRng,
}

impl<P> Red<P> {
    /// Classic RED. `wq = 1.0, min_th = max_th = K` reproduces the paper's
    /// instantaneous-threshold marker on RED-only hardware.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cap: usize,
        wq: f64,
        min_th: f64,
        max_th: f64,
        max_p: f64,
        mode: RedMode,
        seed: u64,
    ) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        assert!((0.0..=1.0).contains(&wq) && wq > 0.0, "Wq must be in (0,1]");
        assert!(min_th <= max_th, "min_th must not exceed max_th");
        assert!((0.0..=1.0).contains(&max_p), "max_p must be a probability");
        Red {
            buf: VecDeque::with_capacity(cap.min(4096)),
            cap,
            wq,
            min_th,
            max_th,
            max_p,
            mode,
            avg: 0.0,
            count: -1,
            rng: SimRng::new(seed),
        }
    }

    /// Current EWMA queue estimate (packets).
    pub fn avg(&self) -> f64 {
        self.avg
    }

    /// Decide whether the arriving packet should be signalled, updating the
    /// EWMA (over `backlog` waiting packets) and the inter-mark count.
    fn should_signal(&mut self, backlog: usize) -> bool {
        self.avg = (1.0 - self.wq) * self.avg + self.wq * backlog as f64;
        if self.avg < self.min_th {
            self.count = -1;
            return false;
        }
        if self.avg >= self.max_th {
            self.count = 0;
            return true;
        }
        // Between thresholds: geometric spreading via the count mechanism.
        if self.count >= 0 {
            self.count += 1;
        } else {
            self.count = 0;
        }
        let pb = (self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th))
            .clamp(0.0, 1.0);
        let pa = if self.count as f64 * pb >= 1.0 {
            1.0
        } else {
            pb / (1.0 - self.count as f64 * pb)
        };
        if self.rng.chance(pa) {
            self.count = 0;
            true
        } else {
            false
        }
    }
}

impl<P: Send> Qdisc<P> for Red<P> {
    fn enqueue(&mut self, mut pkt: Packet<P>) -> EnqueueOutcome {
        let outcome = self.classify(self.buf.len(), &mut pkt);
        if outcome != EnqueueOutcome::Dropped {
            self.buf.push_back(pkt);
        }
        outcome
    }

    fn classify(&mut self, backlog: usize, pkt: &mut Packet<P>) -> EnqueueOutcome {
        if backlog >= self.cap {
            self.count = 0;
            return EnqueueOutcome::Dropped;
        }
        if self.should_signal(backlog) {
            match self.mode {
                RedMode::Mark if pkt.ecn.is_capable() => {
                    pkt.mark_ce();
                    EnqueueOutcome::EnqueuedMarked
                }
                _ => EnqueueOutcome::Dropped,
            }
        } else {
            EnqueueOutcome::Enqueued
        }
    }

    fn dequeue(&mut self) -> Option<Packet<P>> {
        self.buf.pop_front()
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::packet::{Ecn, FlowId};
    use xmp_des::SimRng;
    use xmp_des::ByteSize;

    fn pkt(ecn: Ecn) -> Packet<u32> {
        Packet::new(
            Addr::new(10, 0, 0, 2),
            Addr::new(10, 1, 0, 2),
            FlowId(1),
            ecn,
            ByteSize::from_bytes(1500),
            0,
        )
    }

    #[test]
    fn droptail_drops_on_overflow() {
        let mut q = DropTail::new(2);
        assert_eq!(q.enqueue(pkt(Ecn::NotEct)), EnqueueOutcome::Enqueued);
        assert_eq!(q.enqueue(pkt(Ecn::NotEct)), EnqueueOutcome::Enqueued);
        assert_eq!(q.enqueue(pkt(Ecn::NotEct)), EnqueueOutcome::Dropped);
        assert_eq!(q.len(), 2);
        assert!(q.dequeue().is_some());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn threshold_marks_ect_at_k() {
        let mut q = EcnThreshold::new(100, 3);
        for _ in 0..3 {
            assert_eq!(q.enqueue(pkt(Ecn::Ect)), EnqueueOutcome::Enqueued);
        }
        // 4th arrival sees backlog 3 >= K=3 -> marked.
        assert_eq!(q.enqueue(pkt(Ecn::Ect)), EnqueueOutcome::EnqueuedMarked);
        // Draining below K stops marking.
        q.dequeue();
        q.dequeue();
        assert_eq!(q.enqueue(pkt(Ecn::Ect)), EnqueueOutcome::Enqueued);
    }

    #[test]
    fn threshold_never_marks_non_ect() {
        let mut q = EcnThreshold::new(10, 1);
        q.enqueue(pkt(Ecn::NotEct));
        assert_eq!(q.enqueue(pkt(Ecn::NotEct)), EnqueueOutcome::Enqueued);
        // Fill and overflow-drop.
        for _ in 0..8 {
            q.enqueue(pkt(Ecn::NotEct));
        }
        assert_eq!(q.enqueue(pkt(Ecn::NotEct)), EnqueueOutcome::Dropped);
    }

    #[test]
    fn threshold_marked_packet_carries_ce() {
        let mut q = EcnThreshold::new(10, 0);
        assert_eq!(q.enqueue(pkt(Ecn::Ect)), EnqueueOutcome::EnqueuedMarked);
        assert_eq!(q.dequeue().unwrap().ecn, Ecn::Ce);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn threshold_k_must_fit() {
        EcnThreshold::<u32>::new(10, 11);
    }

    #[test]
    fn red_below_min_never_signals() {
        let mut q = Red::new(100, 0.5, 50.0, 80.0, 0.1, RedMode::Mark, 1);
        for _ in 0..20 {
            assert_eq!(q.enqueue(pkt(Ecn::Ect)), EnqueueOutcome::Enqueued);
        }
    }

    #[test]
    fn red_degenerate_config_equals_threshold() {
        // Wq = 1, min = max = K: signal exactly when instantaneous len >= K.
        let k = 5.0;
        let mut red = Red::new(100, 1.0, k, k, 1.0, RedMode::Mark, 2);
        let mut thr = EcnThreshold::new(100, 5);
        for i in 0..40 {
            let a = red.enqueue(pkt(Ecn::Ect));
            let b = thr.enqueue(pkt(Ecn::Ect));
            assert_eq!(a, b, "diverged at packet {i}");
            if i % 3 == 0 {
                red.dequeue();
                thr.dequeue();
            }
        }
    }

    #[test]
    fn red_drop_mode_drops_instead_of_marking() {
        let mut q = Red::new(100, 1.0, 0.0, 0.0, 1.0, RedMode::Drop, 3);
        assert_eq!(q.enqueue(pkt(Ecn::Ect)), EnqueueOutcome::Dropped);
    }

    #[test]
    fn red_mark_mode_drops_non_ect() {
        let mut q = Red::new(100, 1.0, 0.0, 0.0, 1.0, RedMode::Mark, 4);
        assert_eq!(q.enqueue(pkt(Ecn::NotEct)), EnqueueOutcome::Dropped);
        assert_eq!(q.enqueue(pkt(Ecn::Ect)), EnqueueOutcome::EnqueuedMarked);
    }

    #[test]
    fn qdisc_config_builds() {
        let mut a: QdiscKind<u32> = QdiscConfig::DropTail { cap: 4 }.build();
        let mut b: QdiscKind<u32> = QdiscConfig::EcnThreshold { cap: 4, k: 1 }.build();
        let mut c: QdiscKind<u32> = QdiscConfig::Red {
            cap: 4,
            wq: 0.5,
            min_th: 1.0,
            max_th: 3.0,
            max_p: 0.5,
            mode: RedMode::Mark,
            seed: 7,
        }
        .build();
        let mut d: QdiscKind<u32> = QdiscConfig::EcnThreshold { cap: 4, k: 1 }.boxed().build();
        assert!(matches!(a, QdiscKind::DropTail(_)));
        assert!(matches!(d, QdiscKind::Custom(_)));
        for q in [&mut a, &mut b, &mut c, &mut d] {
            assert_eq!(q.capacity(), 4);
            q.enqueue(pkt(Ecn::Ect));
            assert_eq!(q.len(), 1);
        }
    }

    /// The boxed escape hatch and the enum variant make identical
    /// per-packet decisions (including the RNG-bearing RED discipline).
    #[test]
    fn boxed_build_matches_enum_build() {
        let cfg = QdiscConfig::Red {
            cap: 16,
            wq: 0.7,
            min_th: 2.0,
            max_th: 9.0,
            max_p: 0.4,
            mode: RedMode::Mark,
            seed: 11,
        };
        let mut plain: QdiscKind<u32> = cfg.build();
        let mut boxed: QdiscKind<u32> = cfg.boxed().build();
        let mut rng = SimRng::new(99);
        for i in 0..400 {
            if rng.chance(0.6) {
                assert_eq!(plain.enqueue(pkt(Ecn::Ect)), boxed.enqueue(pkt(Ecn::Ect)), "op {i}");
            } else {
                assert_eq!(
                    plain.dequeue().map(|p| p.ecn),
                    boxed.dequeue().map(|p| p.ecn),
                    "op {i}"
                );
            }
            assert_eq!(plain.len(), boxed.len(), "op {i}");
        }
    }

    /// Conservation under a seeded random op stream: every offered packet
    /// is either dropped or eventually dequeued; backlog never exceeds
    /// capacity. 250 seeds x up to 300 ops; the failing seed is printed.
    #[test]
    fn queue_conservation_seeded() {
        for seed in 0..250u64 {
            let mut rng = SimRng::new(seed);
            let cap = 1 + rng.index(63);
            let k = rng.index(64).min(cap);
            let ops = rng.index(300);
            let mut q = EcnThreshold::new(cap, k);
            let (mut enq, mut drop, mut deq) = (0u32, 0u32, 0u32);
            for _ in 0..ops {
                if rng.chance(0.5) {
                    match q.enqueue(pkt(Ecn::Ect)) {
                        EnqueueOutcome::Dropped => drop += 1,
                        _ => enq += 1,
                    }
                } else if q.dequeue().is_some() {
                    deq += 1;
                }
                assert!(q.len() <= cap, "seed {seed}: backlog over capacity");
            }
            assert_eq!(
                enq as usize,
                deq as usize + q.len(),
                "seed {seed}: packets leaked ({drop} dropped)"
            );
        }
    }

    /// FIFO order is preserved by all disciplines for accepted packets.
    #[test]
    fn fifo_order_seeded() {
        for seed in 0..250u64 {
            let n = 1 + SimRng::new(seed).index(49);
            let mut q = DropTail::new(64);
            for i in 0..n {
                let mut p = pkt(Ecn::NotEct);
                p.payload = i as u32;
                q.enqueue(p);
            }
            for i in 0..n {
                assert_eq!(
                    q.dequeue().unwrap().payload,
                    i as u32,
                    "seed {seed}: FIFO order broken"
                );
            }
        }
    }
}
