//! Time-series probes and the JSONL trace exporter.
//!
//! The aggregate counters in [`crate::stats`] answer "how did the run end",
//! but the paper's core evidence is *dynamics*: Fig. 2's NORMAL/REDUCED
//! cwnd sawtooth, queue occupancy oscillating around the marking threshold
//! K, per-round ECN mark rates. [`Probes`] records those series:
//!
//! * **periodic sampling** — [`Sim::install_probes`](crate::Sim::install_probes)
//!   schedules a self-rescheduling `Sample` engine event every
//!   [`ProbeConfig::interval`]; each tick appends one [`ProbeRecord::Queue`]
//!   and one [`ProbeRecord::Util`] per watched link direction,
//! * **on-change hooks** — with [`ProbeConfig::record_marks`], every
//!   CE-marked enqueue on a watched direction appends a
//!   [`ProbeRecord::Mark`] at the exact mark instant,
//! * **driver pushes** — higher layers (the workloads driver, experiments)
//!   append their own records (per-subflow cwnd snapshots) through
//!   [`Probes::push`].
//!
//! The determinism contract follows the [`FaultPlan`](crate::FaultPlan)
//! discipline: a sim on which `install_probes` was never called schedules
//! no event, touches no RNG stream, and is **bit-identical** to a build
//! without the subsystem. With probes installed, sampling observes but
//! never perturbs — flow outcomes and the conservation audit stay
//! bit-identical to an unprobed run (pinned by `tests/determinism.rs`).
//!
//! Records serialize to JSON Lines ([`ProbeRecord::to_json`], one object
//! per line) and parse back ([`ProbeRecord::parse`]) without any external
//! crates, matching the workspace's hermetic-build rule.

use crate::link::LinkId;
use std::fmt::Write as _;
use std::sync::OnceLock;
use xmp_des::{SimDuration, SimTime};

/// Process-wide allocation-counter probe, installed once by an
/// instrumented harness (the bench crate's counting global allocator).
static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Install an allocation-counter probe: a function returning the running
/// total of heap allocations made by this process. `Sim::run_until` samples
/// it at the start and end of every event-loop window and accumulates the
/// delta into [`SimProfile::allocs`], giving
/// [`SimProfile::allocs_per_packet_hop`] without the simulator depending on
/// a custom global allocator itself.
///
/// The probe is process-global and write-once: the first call wins and
/// later calls are ignored (benches install it from `main` before any sim
/// runs). Uninstalled — the default for all library and test builds — it
/// costs one relaxed atomic load per `run_until` call and
/// `SimProfile::allocs` stays 0.
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

/// Sample the installed allocation probe, if any.
pub(crate) fn read_alloc_probe() -> Option<u64> {
    ALLOC_PROBE.get().map(|f| f())
}

/// Round-state snapshot of one subflow's congestion controller, embedded in
/// [`ProbeRecord::Cwnd`] for round-based algorithms (XMP/BOS). Defined here
/// — rather than in the transport crate — so the serializer and the
/// controllers share one type across the crate graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CcSnapshot {
    /// Whether the subflow is in the REDUCED state (cut already taken this
    /// round; further CE echoes ignored until `cwr_seq` is acknowledged).
    pub reduced: bool,
    /// The TraSh additive-increase gain δ (1.0 for standalone BOS).
    pub delta: f64,
    /// Completed rounds so far.
    pub rounds: u64,
    /// Rounds that triggered a window reduction (`reductions / rounds` is
    /// the empirical form of the paper's congestion metric p(t)).
    pub reductions: u64,
}

/// One observation in an exported time series. Each variant serializes to
/// one JSON object (`{"type": ...}`) per line.
#[derive(Clone, Debug, PartialEq)]
pub enum ProbeRecord {
    /// Run metadata, conventionally the first line of an export. Kept free
    /// of tuning knobs on purpose: exports must be byte-identical across
    /// `SimTuning` combinations.
    Meta {
        /// Experiment name (e.g. "dynamics").
        experiment: String,
        /// Scheme label (e.g. "XMP-2").
        scheme: String,
        /// RNG seed of the run.
        seed: u64,
        /// Free-form description (topology, K, epoch length, ...).
        note: String,
    },
    /// Per-subflow congestion window snapshot (driver-pushed, once per
    /// sampling epoch).
    Cwnd {
        /// Sample time.
        at: SimTime,
        /// Connection key.
        conn: u64,
        /// Subflow index within the connection.
        subflow: u32,
        /// Congestion window (packets).
        cwnd: f64,
        /// Slow-start threshold (packets; `f64::INFINITY` before the first
        /// cut, serialized as JSON `null`).
        ssthresh: f64,
        /// Round bookkeeping for round-based controllers, `None` otherwise.
        cc: Option<CcSnapshot>,
    },
    /// Watched queue state at a sampling tick: instantaneous depth plus the
    /// cumulative counters mark rates are computed from.
    Queue {
        /// Sample time.
        at: SimTime,
        /// Link id.
        link: u32,
        /// Direction index (0 = a→b).
        dir: u8,
        /// Instantaneous backlog in packets (queued + serializing),
        /// identical across the eager and lazy link pipelines.
        depth: u64,
        /// Cumulative packets accepted by the queue.
        enqueued: u64,
        /// Cumulative packets CE-marked on acceptance.
        marked: u64,
        /// Cumulative packets dropped by the queue discipline.
        dropped: u64,
    },
    /// A packet was CE-marked on a watched direction (on-change hook; exact
    /// mark instants between sampling ticks).
    Mark {
        /// Mark time.
        at: SimTime,
        /// Link id.
        link: u32,
        /// Direction index.
        dir: u8,
    },
    /// Watched link-direction delivery progress at a sampling tick; rate
    /// deltas between ticks give the utilization series.
    Util {
        /// Sample time.
        at: SimTime,
        /// Link id.
        link: u32,
        /// Direction index.
        dir: u8,
        /// Cumulative bytes delivered to the far end.
        delivered_bytes: u64,
    },
}

/// Append `s` to `out` with JSON string escaping.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Append an f64 to `out`; non-finite values (an uncut `ssthresh` is
/// `f64::INFINITY`) become JSON `null` and parse back as infinity.
fn f64_into(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is the shortest representation that round-trips exactly.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// A parsed flat-JSON value (the subset the exporter emits).
#[derive(Clone, Debug, PartialEq)]
enum JsonVal {
    Str(String),
    Num(f64),
    Null,
}

/// Parse one flat JSON object (string/number/null values only) into its
/// key/value pairs. This is the std-only checker `trace report` runs over
/// exported files; it rejects nesting, trailing garbage and bad escapes.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let mut cs = line.trim().chars().peekable();
    let mut out = Vec::new();
    if cs.next() != Some('{') {
        return Err("expected '{'".into());
    }
    loop {
        match cs.peek() {
            Some('}') => {
                cs.next();
                break;
            }
            Some('"') => {}
            other => return Err(format!("expected key string, found {other:?}")),
        }
        let key = parse_string(&mut cs)?;
        skip_ws(&mut cs);
        if cs.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        skip_ws(&mut cs);
        let val = match cs.peek() {
            Some('"') => JsonVal::Str(parse_string(&mut cs)?),
            Some('n') => {
                for want in "null".chars() {
                    if cs.next() != Some(want) {
                        return Err("bad literal (expected null)".into());
                    }
                }
                JsonVal::Null
            }
            Some(&c) if c == '-' || c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&c) = cs.peek() {
                    if c.is_ascii_digit() || "+-.eE".contains(c) {
                        num.push(c);
                        cs.next();
                    } else {
                        break;
                    }
                }
                JsonVal::Num(num.parse().map_err(|_| format!("bad number {num:?}"))?)
            }
            other => return Err(format!("unsupported value start {other:?}")),
        };
        out.push((key, val));
        skip_ws(&mut cs);
        match cs.next() {
            Some(',') => skip_ws(&mut cs),
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    skip_ws(&mut cs);
    if let Some(c) = cs.next() {
        return Err(format!("trailing garbage starting at {c:?}"));
    }
    Ok(out)
}

fn skip_ws(cs: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while cs.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        cs.next();
    }
}

/// Parse a JSON string literal (opening quote still pending in `cs`).
fn parse_string(cs: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if cs.next() != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut s = String::new();
    loop {
        match cs.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(s),
            Some('\\') => match cs.next() {
                Some('"') => s.push('"'),
                Some('\\') => s.push('\\'),
                Some('/') => s.push('/'),
                Some('n') => s.push('\n'),
                Some('r') => s.push('\r'),
                Some('t') => s.push('\t'),
                Some('b') => s.push('\u{8}'),
                Some('f') => s.push('\u{c}'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = cs.next().and_then(|c| c.to_digit(16));
                        code = code * 16 + d.ok_or("bad \\u escape")?;
                    }
                    s.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => s.push(c),
        }
    }
}

struct Fields(Vec<(String, JsonVal)>);

impl Fields {
    fn get(&self, key: &str) -> Result<&JsonVal, String> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    }
    fn str(&self, key: &str) -> Result<String, String> {
        match self.get(key)? {
            JsonVal::Str(s) => Ok(s.clone()),
            other => Err(format!("{key:?}: expected string, found {other:?}")),
        }
    }
    fn num(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            JsonVal::Num(n) => Ok(*n),
            // `null` is how the exporter writes non-finite floats.
            JsonVal::Null => Ok(f64::INFINITY),
            other => Err(format!("{key:?}: expected number, found {other:?}")),
        }
    }
    fn int(&self, key: &str) -> Result<u64, String> {
        let n = self.num(key)?;
        if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(63) {
            Ok(n as u64)
        } else {
            Err(format!("{key:?}: expected unsigned integer, found {n}"))
        }
    }
    fn has(&self, key: &str) -> bool {
        self.0.iter().any(|(k, _)| k == key)
    }
}

impl ProbeRecord {
    /// Serialize to one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(96);
        match self {
            ProbeRecord::Meta {
                experiment,
                scheme,
                seed,
                note,
            } => {
                o.push_str("{\"type\":\"meta\",\"experiment\":\"");
                escape_into(&mut o, experiment);
                o.push_str("\",\"scheme\":\"");
                escape_into(&mut o, scheme);
                let _ = write!(o, "\",\"seed\":{seed},\"note\":\"");
                escape_into(&mut o, note);
                o.push_str("\"}");
            }
            ProbeRecord::Cwnd {
                at,
                conn,
                subflow,
                cwnd,
                ssthresh,
                cc,
            } => {
                let _ = write!(
                    o,
                    "{{\"type\":\"cwnd\",\"at_ns\":{},\"conn\":{conn},\"subflow\":{subflow},\"cwnd\":",
                    at.as_nanos()
                );
                f64_into(&mut o, *cwnd);
                o.push_str(",\"ssthresh\":");
                f64_into(&mut o, *ssthresh);
                if let Some(cc) = cc {
                    let _ = write!(
                        o,
                        ",\"reduced\":{},\"delta\":",
                        if cc.reduced { 1 } else { 0 }
                    );
                    f64_into(&mut o, cc.delta);
                    let _ = write!(o, ",\"rounds\":{},\"reductions\":{}", cc.rounds, cc.reductions);
                }
                o.push('}');
            }
            ProbeRecord::Queue {
                at,
                link,
                dir,
                depth,
                enqueued,
                marked,
                dropped,
            } => {
                let _ = write!(
                    o,
                    "{{\"type\":\"queue\",\"at_ns\":{},\"link\":{link},\"dir\":{dir},\"depth\":{depth},\"enqueued\":{enqueued},\"marked\":{marked},\"dropped\":{dropped}}}",
                    at.as_nanos()
                );
            }
            ProbeRecord::Mark { at, link, dir } => {
                let _ = write!(
                    o,
                    "{{\"type\":\"mark\",\"at_ns\":{},\"link\":{link},\"dir\":{dir}}}",
                    at.as_nanos()
                );
            }
            ProbeRecord::Util {
                at,
                link,
                dir,
                delivered_bytes,
            } => {
                let _ = write!(
                    o,
                    "{{\"type\":\"util\",\"at_ns\":{},\"link\":{link},\"dir\":{dir},\"delivered_bytes\":{delivered_bytes}}}",
                    at.as_nanos()
                );
            }
        }
        o
    }

    /// Parse one exported line back into a record.
    pub fn parse(line: &str) -> Result<ProbeRecord, String> {
        let f = Fields(parse_flat_object(line)?);
        let at = || f.int("at_ns").map(SimTime::from_nanos);
        match f.str("type")?.as_str() {
            "meta" => Ok(ProbeRecord::Meta {
                experiment: f.str("experiment")?,
                scheme: f.str("scheme")?,
                seed: f.int("seed")?,
                note: f.str("note")?,
            }),
            "cwnd" => Ok(ProbeRecord::Cwnd {
                at: at()?,
                conn: f.int("conn")?,
                subflow: f.int("subflow")? as u32,
                cwnd: f.num("cwnd")?,
                ssthresh: f.num("ssthresh")?,
                cc: if f.has("reduced") {
                    Some(CcSnapshot {
                        reduced: f.int("reduced")? != 0,
                        delta: f.num("delta")?,
                        rounds: f.int("rounds")?,
                        reductions: f.int("reductions")?,
                    })
                } else {
                    None
                },
            }),
            "queue" => Ok(ProbeRecord::Queue {
                at: at()?,
                link: f.int("link")? as u32,
                dir: f.int("dir")? as u8,
                depth: f.int("depth")?,
                enqueued: f.int("enqueued")?,
                marked: f.int("marked")?,
                dropped: f.int("dropped")?,
            }),
            "mark" => Ok(ProbeRecord::Mark {
                at: at()?,
                link: f.int("link")? as u32,
                dir: f.int("dir")? as u8,
            }),
            "util" => Ok(ProbeRecord::Util {
                at: at()?,
                link: f.int("link")? as u32,
                dir: f.int("dir")? as u8,
                delivered_bytes: f.int("delivered_bytes")?,
            }),
            other => Err(format!("unknown record type {other:?}")),
        }
    }
}

/// What to sample and how often; passed to
/// [`Sim::install_probes`](crate::Sim::install_probes).
#[derive(Clone, Debug)]
pub struct ProbeConfig {
    /// Sampling period (must be positive).
    pub interval: SimDuration,
    /// Last instant at which a sampling tick may fire; no event is
    /// scheduled past it (and none at all if `until < interval`).
    pub until: SimTime,
    /// Link directions whose queue/utilization series are sampled.
    pub watch: Vec<(LinkId, u8)>,
    /// Also record a [`ProbeRecord::Mark`] per CE-marked packet on watched
    /// directions (exact instants, not just per-tick counter deltas).
    pub record_marks: bool,
}

impl ProbeConfig {
    /// Sample every `interval` (builder start; add watches and an end time).
    pub fn every(interval: SimDuration) -> Self {
        assert!(
            interval > SimDuration::ZERO,
            "probe interval must be positive"
        );
        ProbeConfig {
            interval,
            until: SimTime::ZERO,
            watch: Vec::new(),
            record_marks: false,
        }
    }

    /// Sample up to and including `t`.
    pub fn until(mut self, t: SimTime) -> Self {
        self.until = t;
        self
    }

    /// Watch one link direction's queue and delivery counters.
    pub fn watch_queue(mut self, link: LinkId, dir: u8) -> Self {
        self.watch.push((link, dir));
        self
    }

    /// Record every CE mark on watched directions as it happens.
    pub fn with_marks(mut self) -> Self {
        self.record_marks = true;
        self
    }
}

/// The recorded series of one probed run. Owned by the sim once installed;
/// retrieve with [`Sim::probes`](crate::Sim::probes) /
/// [`Sim::take_probes`](crate::Sim::take_probes).
#[derive(Debug)]
pub struct Probes {
    pub(crate) interval: SimDuration,
    pub(crate) until: SimTime,
    pub(crate) watch: Vec<(LinkId, u8)>,
    pub(crate) record_marks: bool,
    records: Vec<ProbeRecord>,
    /// Merge-rank side channel, active only on partitioned shards: one
    /// `(primary, secondary)` rank per record, parallel to `records`. The
    /// primary is the identity key of the engine event being handled when
    /// the record was pushed; the secondary orders records within one event
    /// (sampling ticks) or driver operations. The cross-shard merge sorts
    /// by `(time, rank)` to reproduce the serial recording order exactly.
    pub(crate) ranks: Option<Vec<(u64, u64)>>,
}

impl Probes {
    pub(crate) fn new(cfg: ProbeConfig) -> Self {
        Probes {
            interval: cfg.interval,
            until: cfg.until,
            watch: cfg.watch,
            record_marks: cfg.record_marks,
            records: Vec::new(),
            ranks: None,
        }
    }

    /// Append a record (sampling ticks do this; drivers push their own,
    /// e.g. per-subflow cwnd snapshots).
    pub fn push(&mut self, rec: ProbeRecord) {
        if let Some(ranks) = self.ranks.as_mut() {
            // Un-ranked pushes on a shard (none exist today) would sort
            // after everything at their instant.
            ranks.push((u64::MAX, u64::MAX));
        }
        self.records.push(rec);
    }

    /// Append a record with an explicit merge rank (partitioned shards;
    /// the rank is dropped when the side channel is inactive).
    pub(crate) fn push_ranked(&mut self, rec: ProbeRecord, rank: (u64, u64)) {
        if let Some(ranks) = self.ranks.as_mut() {
            ranks.push(rank);
        }
        self.records.push(rec);
    }

    /// All records in recording order.
    pub fn records(&self) -> &[ProbeRecord] {
        &self.records
    }

    /// Move all records out (the partitioned merge re-orders per-shard
    /// records into the serial recording order).
    pub(crate) fn take_records(&mut self) -> Vec<ProbeRecord> {
        std::mem::take(&mut self.records)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Watched link directions.
    pub fn watched(&self) -> &[(LinkId, u8)] {
        &self.watch
    }

    /// On-change hook for CE marks (called from the enqueue paths).
    /// `rank` is the processing event's merge rank on partitioned shards,
    /// `None` in serial runs.
    pub(crate) fn on_mark(&mut self, at: SimTime, link: LinkId, dir: u8, rank: Option<(u64, u64)>) {
        if self.record_marks && self.watch.contains(&(link, dir)) {
            self.push_ranked(
                ProbeRecord::Mark {
                    at,
                    link: link.0,
                    dir,
                },
                rank.unwrap_or((u64::MAX, u64::MAX)),
            );
        }
    }

    /// Render all records as JSON Lines (one object per line, trailing
    /// newline included when non-empty).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 96);
        for r in &self.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

/// Always-on engine-loop profiling counters (pure observation: no events,
/// no RNG, no behavioural effect; excluded from determinism digests).
/// Surfaced by the suite runner and `BENCH_pr4.json`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimProfile {
    /// `Deliver` events handled.
    pub deliver: u64,
    /// `TxDone` events handled (eager pipeline only).
    pub tx_done: u64,
    /// `Timer` events handled.
    pub timer: u64,
    /// `Fault` events handled.
    pub fault: u64,
    /// `Sample` probe ticks handled.
    pub sample: u64,
    /// Emit-buffer pool pops that reused a recycled buffer.
    pub pool_hits: u64,
    /// Emit-buffer pool pops that had to allocate.
    pub pool_misses: u64,
    /// Wall-clock nanoseconds spent inside the `run_until` event loop.
    pub run_wall_ns: u64,
    /// Wall-clock nanoseconds spent compiling FIBs.
    pub fib_compile_ns: u64,
    /// Heap allocations observed inside `run_until` windows by the
    /// installed [`set_alloc_probe`] hook (0 when no probe is installed —
    /// the default outside instrumented benches).
    pub allocs: u64,
}

impl SimProfile {
    /// Total events handled, all kinds.
    pub fn events_handled(&self) -> u64 {
        self.deliver + self.tx_done + self.timer + self.fault + self.sample
    }

    /// Macro throughput: events handled per wall-clock second inside
    /// `run_until` windows. The cross-PR normalizer for throughput claims
    /// (`bench_trend` surfaces it next to raw wall clock, which depends on
    /// workload size); 0.0 before anything has run.
    pub fn events_per_sec(&self) -> f64 {
        if self.run_wall_ns == 0 {
            0.0
        } else {
            self.events_handled() as f64 / (self.run_wall_ns as f64 / 1e9)
        }
    }

    /// Heap allocations per `Deliver` event — the headline "allocations per
    /// packet-hop" number. Meaningful only when an allocation probe is
    /// installed ([`set_alloc_probe`]); 0.0 when nothing was delivered.
    pub fn allocs_per_packet_hop(&self) -> f64 {
        if self.deliver == 0 {
            0.0
        } else {
            self.allocs as f64 / self.deliver as f64
        }
    }

    /// Fraction of emit-buffer pops served from the pool (1.0 = no
    /// allocation after warmup).
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// One-line human summary (suite output).
    pub fn summary(&self) -> String {
        format!(
            "events deliver={} txdone={} timer={} fault={} sample={} | pool hit {:.3} | run {:.1} ms (fib {:.2} ms) | {:.2} Mev/s",
            self.deliver,
            self.tx_done,
            self.timer,
            self.fault,
            self.sample,
            self.pool_hit_rate(),
            self.run_wall_ns as f64 / 1e6,
            self.fib_compile_ns as f64 / 1e6,
            self.events_per_sec() / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: ProbeRecord) {
        let line = rec.to_json();
        let back = ProbeRecord::parse(&line)
            .unwrap_or_else(|e| panic!("parse failed for {line}: {e}"));
        assert_eq!(back, rec, "round-trip mismatch for {line}");
    }

    #[test]
    fn every_record_type_round_trips() {
        roundtrip(ProbeRecord::Meta {
            experiment: "dynamics".into(),
            scheme: "XMP-2".into(),
            seed: 42,
            note: "dumbbell 1 Gbps, K=10".into(),
        });
        roundtrip(ProbeRecord::Cwnd {
            at: SimTime::from_micros(125),
            conn: 3,
            subflow: 1,
            cwnd: 17.333333333333332,
            ssthresh: 12.0,
            cc: Some(CcSnapshot {
                reduced: true,
                delta: 0.625,
                rounds: 44,
                reductions: 7,
            }),
        });
        roundtrip(ProbeRecord::Cwnd {
            at: SimTime::ZERO,
            conn: 1,
            subflow: 0,
            cwnd: 10.0,
            ssthresh: f64::INFINITY, // serialized as null
            cc: None,
        });
        roundtrip(ProbeRecord::Queue {
            at: SimTime::from_millis(3),
            link: 0,
            dir: 0,
            depth: 11,
            enqueued: 12345,
            marked: 321,
            dropped: 2,
        });
        roundtrip(ProbeRecord::Mark {
            at: SimTime::from_nanos(999_999_999_999),
            link: 7,
            dir: 1,
        });
        roundtrip(ProbeRecord::Util {
            at: SimTime::from_secs(2),
            link: 4,
            dir: 0,
            delivered_bytes: u64::from(u32::MAX) * 3,
        });
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t control\u{1} unicode\u{2603}";
        let rec = ProbeRecord::Meta {
            experiment: nasty.into(),
            scheme: "s".into(),
            seed: 0,
            note: String::new(),
        };
        let line = rec.to_json();
        assert!(!line.contains('\n'), "escaped newline leaked: {line}");
        assert_eq!(ProbeRecord::parse(&line).unwrap(), rec);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"type\":\"queue\"}",          // missing fields
            "{\"type\":\"nope\",\"x\":1}",   // unknown type
            "not json at all",
            "{\"type\":\"mark\",\"at_ns\":1,\"link\":0,\"dir\":0} trailing",
            "{\"type\":\"mark\",\"at_ns\":-4,\"link\":0,\"dir\":0}", // negative count
            "{\"type\":\"mark\",\"at_ns\":1.5,\"link\":0,\"dir\":0}", // fractional int
        ] {
            assert!(
                ProbeRecord::parse(bad).is_err(),
                "accepted malformed line {bad:?}"
            );
        }
    }

    #[test]
    fn export_is_one_line_per_record() {
        let mut p = Probes::new(
            ProbeConfig::every(SimDuration::from_millis(1)).until(SimTime::from_secs(1)),
        );
        p.push(ProbeRecord::Mark {
            at: SimTime::ZERO,
            link: 0,
            dir: 0,
        });
        p.push(ProbeRecord::Queue {
            at: SimTime::from_millis(1),
            link: 0,
            dir: 0,
            depth: 1,
            enqueued: 1,
            marked: 0,
            dropped: 0,
        });
        let text = p.export_jsonl();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            ProbeRecord::parse(line).expect("exported line parses");
        }
    }

    #[test]
    fn mark_hook_respects_watch_list_and_flag() {
        let cfg = ProbeConfig::every(SimDuration::from_millis(1))
            .until(SimTime::from_secs(1))
            .watch_queue(LinkId(3), 0);
        let mut p = Probes::new(cfg.clone().with_marks());
        p.on_mark(SimTime::ZERO, LinkId(3), 0, None); // watched
        p.on_mark(SimTime::ZERO, LinkId(3), 1, None); // wrong dir
        p.on_mark(SimTime::ZERO, LinkId(4), 0, None); // wrong link
        assert_eq!(p.len(), 1);
        let mut quiet = Probes::new(cfg); // record_marks off
        quiet.on_mark(SimTime::ZERO, LinkId(3), 0, None);
        assert!(quiet.is_empty());
    }

    #[test]
    fn profile_rates() {
        let mut pr = SimProfile::default();
        assert_eq!(pr.pool_hit_rate(), 0.0);
        pr.pool_hits = 3;
        pr.pool_misses = 1;
        pr.deliver = 10;
        pr.timer = 5;
        assert_eq!(pr.events_handled(), 15);
        assert!((pr.pool_hit_rate() - 0.75).abs() < 1e-12);
        assert!(pr.summary().contains("deliver=10"));
    }
}
