//! Switch forwarding logic.
//!
//! Each switch owns a [`Router`] deciding the output port for a packet.
//! Small topologies use [`StaticRouter`] (longest-exact-match on the
//! destination address with octet wildcards); [`EcmpRouter`] adds
//! hash-based spreading over equal-cost ports (the scheme the paper's
//! simulations *replace* with deterministic Two-Level Routing Lookup — kept
//! here for ablation studies). The fat-tree two-level router lives in
//! `xmp-topo` next to the topology that defines its semantics.
//!
//! Routers answer packets through the dynamic [`Router::route`], but may
//! additionally [`Router::compile`] themselves into a flat
//! [`CompiledFib`] once the set of reachable destinations is known — see
//! the [`fib`](crate::fib) module. The dynamic path stays authoritative:
//! compiled tables are checked bit-identical against it by differential
//! tests, and any destination a router declines to compile falls back to
//! `route()` at forwarding time.

use crate::addr::Addr;
use crate::fib::{CompiledFib, FibBuilder};
use crate::node::PortId;
use crate::packet::FlowId;

/// Forwarding decision logic for one switch.
pub trait Router: Send {
    /// Choose the output port for a packet to `dst` belonging to `flow`,
    /// arriving on `in_port`. Panics when the destination is unroutable.
    fn route(&self, dst: Addr, flow: FlowId, in_port: PortId) -> PortId;

    /// Like [`Router::route`] but returns `None` instead of panicking when
    /// no route exists — the forwarding path uses this under
    /// [`SimTuning::drop_unroutable`](crate::SimTuning::drop_unroutable) so
    /// partitioned topologies degrade into counted drops. The default
    /// delegates to `route()` (total routers never return `None`).
    fn try_route(&self, dst: Addr, flow: FlowId, in_port: PortId) -> Option<PortId> {
        Some(self.route(dst, flow, in_port))
    }

    /// One-time table finalization, called by the sim when the router is
    /// installed (after which `add`-style mutation is no longer possible).
    /// Routers that defer sorting do it here.
    fn prepare(&mut self) {}

    /// Compile this router into a flat table over the given destinations
    /// (the sim's address book, in destination-index order). `None` means
    /// the router doesn't support compilation; per-destination misses
    /// inside a returned table likewise fall back to [`Router::route`].
    fn compile(&self, _dsts: &[Addr]) -> Option<CompiledFib> {
        None
    }
}

/// A destination pattern: each octet either matches exactly or is a wildcard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddrPattern(pub [Option<u8>; 4]);

impl AddrPattern {
    /// Match the full address exactly.
    pub fn exact(a: Addr) -> Self {
        AddrPattern([Some(a.0[0]), Some(a.0[1]), Some(a.0[2]), Some(a.0[3])])
    }

    /// Match the first three octets (a /24-style subnet).
    pub fn subnet3(a: Addr) -> Self {
        AddrPattern([Some(a.0[0]), Some(a.0[1]), Some(a.0[2]), None])
    }

    /// Match the first two octets (a pod).
    pub fn subnet2(a: Addr) -> Self {
        AddrPattern([Some(a.0[0]), Some(a.0[1]), None, None])
    }

    /// Match anything.
    pub fn any() -> Self {
        AddrPattern([None; 4])
    }

    /// Whether `a` matches this pattern.
    pub fn matches(&self, a: Addr) -> bool {
        self.0
            .iter()
            .zip(a.0.iter())
            .all(|(p, o)| p.is_none_or(|v| v == *o))
    }

    /// Number of fixed octets (specificity for longest-match).
    pub fn specificity(&self) -> usize {
        self.0.iter().filter(|p| p.is_some()).count()
    }
}

/// First index whose pattern matches `dst` under longest-match semantics.
///
/// When `sorted` (descending specificity, stable) the first hit wins; on an
/// unsorted table we scan for the highest specificity, keeping the earliest
/// entry among equals — exactly what a stable sort followed by first-match
/// would return, so behaviour is identical whether or not
/// [`Router::prepare`] ran.
fn find_match<T>(entries: &[(AddrPattern, T)], sorted: bool, dst: Addr) -> Option<usize> {
    if sorted {
        return entries.iter().position(|(p, _)| p.matches(dst));
    }
    let mut best: Option<(usize, usize)> = None;
    for (i, (p, _)) in entries.iter().enumerate() {
        if p.matches(dst) {
            let s = p.specificity();
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((i, s));
            }
        }
    }
    best.map(|(i, _)| i)
}

/// Longest-match static routing over [`AddrPattern`]s.
pub struct StaticRouter {
    entries: Vec<(AddrPattern, PortId)>,
    // Entries are appended unsorted (O(1)) and stable-sorted by descending
    // specificity once, in `prepare`; `route` handles both states.
    sorted: bool,
}

impl StaticRouter {
    /// Empty table.
    pub fn new() -> Self {
        StaticRouter {
            entries: Vec::new(),
            sorted: false,
        }
    }

    /// Add a route; more specific patterns take precedence regardless of
    /// insertion order; equal specificity resolves by insertion order.
    pub fn add(mut self, pat: AddrPattern, port: PortId) -> Self {
        self.entries.push((pat, port));
        self.sorted = false;
        self
    }

    /// Convenience: exact-destination route.
    pub fn to(self, dst: Addr, port: PortId) -> Self {
        self.add(AddrPattern::exact(dst), port)
    }

    /// Convenience: default route.
    pub fn default_via(self, port: PortId) -> Self {
        self.add(AddrPattern::any(), port)
    }
}

impl Default for StaticRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl Router for StaticRouter {
    fn route(&self, dst: Addr, flow: FlowId, in_port: PortId) -> PortId {
        self.try_route(dst, flow, in_port)
            .unwrap_or_else(|| panic!("no route to {dst}"))
    }

    fn try_route(&self, dst: Addr, _flow: FlowId, _in_port: PortId) -> Option<PortId> {
        find_match(&self.entries, self.sorted, dst).map(|i| self.entries[i].1)
    }

    fn prepare(&mut self) {
        if !self.sorted {
            self.entries
                .sort_by_key(|(p, _)| std::cmp::Reverse(p.specificity()));
            self.sorted = true;
        }
    }

    fn compile(&self, dsts: &[Addr]) -> Option<CompiledFib> {
        let mut b = FibBuilder::new(dsts.len());
        for (i, &dst) in dsts.iter().enumerate() {
            if let Some(e) = find_match(&self.entries, self.sorted, dst) {
                b.port(i, self.entries[e].1);
            }
        }
        Some(b.build())
    }
}

/// ECMP: static routes whose targets are port *groups*, spread by a hash of
/// the flow id (per-flow consistent, like real switch ECMP).
pub struct EcmpRouter {
    entries: Vec<(AddrPattern, Vec<PortId>)>,
    sorted: bool,
}

impl EcmpRouter {
    /// Empty table.
    pub fn new() -> Self {
        EcmpRouter {
            entries: Vec::new(),
            sorted: false,
        }
    }

    /// Add a route to a group of equal-cost ports.
    pub fn add(mut self, pat: AddrPattern, ports: Vec<PortId>) -> Self {
        assert!(!ports.is_empty(), "ECMP group must be non-empty");
        self.entries.push((pat, ports));
        self.sorted = false;
        self
    }
}

impl Default for EcmpRouter {
    fn default() -> Self {
        Self::new()
    }
}

/// The murmur-style 64-bit finalizer used for every hash-based port choice
/// in the tree (ECMP spreading here, per-flow path selection in `xmp-topo`,
/// and compiled [`FibEntry::Hash`](crate::fib::FibEntry) entries).
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^ (z >> 33)
}

/// The destination word [`EcmpRouter`] salts into its flow hash.
fn dst_salt(dst: Addr) -> u64 {
    u64::from_le_bytes([dst.0[0], dst.0[1], dst.0[2], dst.0[3], 0, 0, 0, 0])
}

impl Router for EcmpRouter {
    fn route(&self, dst: Addr, flow: FlowId, in_port: PortId) -> PortId {
        self.try_route(dst, flow, in_port)
            .unwrap_or_else(|| panic!("no ECMP route to {dst}"))
    }

    fn try_route(&self, dst: Addr, flow: FlowId, _in_port: PortId) -> Option<PortId> {
        let group = find_match(&self.entries, self.sorted, dst).map(|i| &self.entries[i].1)?;
        let h = mix64(flow.0 ^ dst_salt(dst));
        Some(group[(h % group.len() as u64) as usize])
    }

    fn prepare(&mut self) {
        if !self.sorted {
            self.entries
                .sort_by_key(|(p, _)| std::cmp::Reverse(p.specificity()));
            self.sorted = true;
        }
    }

    fn compile(&self, dsts: &[Addr]) -> Option<CompiledFib> {
        let mut b = FibBuilder::new(dsts.len());
        // Intern each entry's group once, shared across destinations.
        let mut interned: Vec<Option<(u32, u16)>> = vec![None; self.entries.len()];
        for (i, &dst) in dsts.iter().enumerate() {
            let Some(e) = find_match(&self.entries, self.sorted, dst) else {
                continue;
            };
            let group = &self.entries[e].1;
            if group.len() == 1 {
                // hash % 1 == 0: a singleton group is a fixed port.
                b.port(i, group[0]);
            } else {
                let g = *interned[e].get_or_insert_with(|| b.group(group));
                b.hashed(i, g, 0, dst_salt(dst));
            }
        }
        Some(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_matching() {
        let a = Addr::new(10, 1, 2, 3);
        assert!(AddrPattern::exact(a).matches(a));
        assert!(!AddrPattern::exact(a).matches(Addr::new(10, 1, 2, 4)));
        assert!(AddrPattern::subnet3(a).matches(Addr::new(10, 1, 2, 9)));
        assert!(!AddrPattern::subnet3(a).matches(Addr::new(10, 1, 3, 3)));
        assert!(AddrPattern::subnet2(a).matches(Addr::new(10, 1, 7, 7)));
        assert!(AddrPattern::any().matches(Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn static_longest_match_wins() {
        let dst = Addr::new(10, 1, 2, 3);
        let r = StaticRouter::new()
            .default_via(PortId(0))
            .add(AddrPattern::subnet2(dst), PortId(1))
            .to(dst, PortId(2));
        assert_eq!(r.route(dst, FlowId(0), PortId(9)), PortId(2));
        assert_eq!(r.route(Addr::new(10, 1, 9, 9), FlowId(0), PortId(9)), PortId(1));
        assert_eq!(r.route(Addr::new(9, 9, 9, 9), FlowId(0), PortId(9)), PortId(0));
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn static_missing_route_panics() {
        StaticRouter::new().route(Addr::new(1, 1, 1, 1), FlowId(0), PortId(0));
    }

    #[test]
    fn try_route_is_total_where_route_is() {
        let dst = Addr::new(10, 1, 2, 3);
        let r = StaticRouter::new().to(dst, PortId(2));
        assert_eq!(r.try_route(dst, FlowId(0), PortId(0)), Some(PortId(2)));
        assert_eq!(r.try_route(Addr::new(9, 9, 9, 9), FlowId(0), PortId(0)), None);
        let e = EcmpRouter::new().add(AddrPattern::exact(dst), vec![PortId(4)]);
        assert_eq!(e.try_route(dst, FlowId(0), PortId(0)), Some(PortId(4)));
        assert_eq!(e.try_route(Addr::new(9, 9, 9, 9), FlowId(0), PortId(0)), None);
    }

    #[test]
    fn ecmp_is_per_flow_consistent_and_spreads() {
        let r = EcmpRouter::new().add(
            AddrPattern::any(),
            vec![PortId(0), PortId(1), PortId(2), PortId(3)],
        );
        let dst = Addr::new(10, 0, 0, 2);
        let mut seen = std::collections::HashSet::new();
        for f in 0..64 {
            let p1 = r.route(dst, FlowId(f), PortId(0));
            let p2 = r.route(dst, FlowId(f), PortId(0));
            assert_eq!(p1, p2, "same flow must always hash to the same port");
            seen.insert(p1);
        }
        assert!(seen.len() >= 3, "64 flows should cover most of 4 ports");
    }

    #[test]
    fn equal_specificity_insertion_order_respected() {
        // Two /24-style patterns both matching `dst`: the one added first
        // must win, both before and after `prepare()` sorts the table.
        let dst = Addr::new(10, 1, 2, 3);
        let build = || {
            StaticRouter::new()
                .default_via(PortId(9))
                .add(AddrPattern([Some(10), Some(1), Some(2), None]), PortId(1))
                .add(AddrPattern([Some(10), None, Some(2), Some(3)]), PortId(2))
        };
        let unsorted = build();
        assert_eq!(unsorted.route(dst, FlowId(0), PortId(0)), PortId(1));

        let mut prepared = build();
        prepared.prepare();
        assert_eq!(prepared.route(dst, FlowId(0), PortId(0)), PortId(1));

        // Same contract for ECMP tables (singleton groups for clarity).
        let e = EcmpRouter::new()
            .add(AddrPattern([Some(10), Some(1), Some(2), None]), vec![PortId(1)])
            .add(AddrPattern([Some(10), None, Some(2), Some(3)]), vec![PortId(2)]);
        assert_eq!(e.route(dst, FlowId(0), PortId(0)), PortId(1));
        let mut e2 = EcmpRouter::new()
            .add(AddrPattern([Some(10), Some(1), Some(2), None]), vec![PortId(1)])
            .add(AddrPattern([Some(10), None, Some(2), Some(3)]), vec![PortId(2)]);
        e2.prepare();
        assert_eq!(e2.route(dst, FlowId(0), PortId(0)), PortId(1));
    }

    #[test]
    fn compiled_static_matches_dynamic() {
        let dst = Addr::new(10, 1, 2, 3);
        let r = StaticRouter::new()
            .default_via(PortId(0))
            .add(AddrPattern::subnet2(dst), PortId(1))
            .to(dst, PortId(2));
        let dsts = [dst, Addr::new(10, 1, 9, 9), Addr::new(9, 9, 9, 9)];
        let fib = r.compile(&dsts).unwrap();
        for (i, &d) in dsts.iter().enumerate() {
            assert_eq!(
                fib.lookup(i as u32, FlowId(0)),
                Some(r.route(d, FlowId(0), PortId(0)))
            );
        }
    }

    #[test]
    fn compiled_ecmp_matches_dynamic() {
        let r = EcmpRouter::new().add(
            AddrPattern::any(),
            vec![PortId(0), PortId(1), PortId(2), PortId(3)],
        );
        let dsts = [Addr::new(10, 0, 0, 2), Addr::new(10, 0, 0, 3)];
        let fib = r.compile(&dsts).unwrap();
        for (i, &d) in dsts.iter().enumerate() {
            for f in 0..256u64 {
                assert_eq!(
                    fib.lookup(i as u32, FlowId(f)),
                    Some(r.route(d, FlowId(f), PortId(0))),
                    "dst {d} flow {f}"
                );
            }
        }
    }
}
