//! Switch forwarding logic.
//!
//! Each switch owns a [`Router`] deciding the output port for a packet.
//! Small topologies use [`StaticRouter`] (longest-exact-match on the
//! destination address with octet wildcards); [`EcmpRouter`] adds
//! hash-based spreading over equal-cost ports (the scheme the paper's
//! simulations *replace* with deterministic Two-Level Routing Lookup — kept
//! here for ablation studies). The fat-tree two-level router lives in
//! `xmp-topo` next to the topology that defines its semantics.

use crate::addr::Addr;
use crate::node::PortId;
use crate::packet::FlowId;

/// Forwarding decision logic for one switch.
pub trait Router: Send {
    /// Choose the output port for a packet to `dst` belonging to `flow`,
    /// arriving on `in_port`.
    fn route(&self, dst: Addr, flow: FlowId, in_port: PortId) -> PortId;
}

/// A destination pattern: each octet either matches exactly or is a wildcard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddrPattern(pub [Option<u8>; 4]);

impl AddrPattern {
    /// Match the full address exactly.
    pub fn exact(a: Addr) -> Self {
        AddrPattern([Some(a.0[0]), Some(a.0[1]), Some(a.0[2]), Some(a.0[3])])
    }

    /// Match the first three octets (a /24-style subnet).
    pub fn subnet3(a: Addr) -> Self {
        AddrPattern([Some(a.0[0]), Some(a.0[1]), Some(a.0[2]), None])
    }

    /// Match the first two octets (a pod).
    pub fn subnet2(a: Addr) -> Self {
        AddrPattern([Some(a.0[0]), Some(a.0[1]), None, None])
    }

    /// Match anything.
    pub fn any() -> Self {
        AddrPattern([None; 4])
    }

    /// Whether `a` matches this pattern.
    pub fn matches(&self, a: Addr) -> bool {
        self.0
            .iter()
            .zip(a.0.iter())
            .all(|(p, o)| p.is_none_or(|v| v == *o))
    }

    /// Number of fixed octets (specificity for longest-match).
    pub fn specificity(&self) -> usize {
        self.0.iter().filter(|p| p.is_some()).count()
    }
}

/// Longest-match static routing over [`AddrPattern`]s.
pub struct StaticRouter {
    // Kept sorted by descending specificity; first match wins.
    entries: Vec<(AddrPattern, PortId)>,
}

impl StaticRouter {
    /// Empty table.
    pub fn new() -> Self {
        StaticRouter {
            entries: Vec::new(),
        }
    }

    /// Add a route; more specific patterns take precedence regardless of
    /// insertion order; equal specificity resolves by insertion order.
    pub fn add(mut self, pat: AddrPattern, port: PortId) -> Self {
        let pos = self
            .entries
            .iter()
            .position(|(p, _)| p.specificity() < pat.specificity())
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, (pat, port));
        self
    }

    /// Convenience: exact-destination route.
    pub fn to(self, dst: Addr, port: PortId) -> Self {
        self.add(AddrPattern::exact(dst), port)
    }

    /// Convenience: default route.
    pub fn default_via(self, port: PortId) -> Self {
        self.add(AddrPattern::any(), port)
    }
}

impl Default for StaticRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl Router for StaticRouter {
    fn route(&self, dst: Addr, _flow: FlowId, _in_port: PortId) -> PortId {
        self.entries
            .iter()
            .find(|(p, _)| p.matches(dst))
            .map(|&(_, port)| port)
            .unwrap_or_else(|| panic!("no route to {dst}"))
    }
}

/// ECMP: static routes whose targets are port *groups*, spread by a hash of
/// the flow id (per-flow consistent, like real switch ECMP).
pub struct EcmpRouter {
    entries: Vec<(AddrPattern, Vec<PortId>)>,
}

impl EcmpRouter {
    /// Empty table.
    pub fn new() -> Self {
        EcmpRouter {
            entries: Vec::new(),
        }
    }

    /// Add a route to a group of equal-cost ports.
    pub fn add(mut self, pat: AddrPattern, ports: Vec<PortId>) -> Self {
        assert!(!ports.is_empty(), "ECMP group must be non-empty");
        let pos = self
            .entries
            .iter()
            .position(|(p, _)| p.specificity() < pat.specificity())
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, (pat, ports));
        self
    }
}

impl Default for EcmpRouter {
    fn default() -> Self {
        Self::new()
    }
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^ (z >> 33)
}

impl Router for EcmpRouter {
    fn route(&self, dst: Addr, flow: FlowId, _in_port: PortId) -> PortId {
        let (_, group) = self
            .entries
            .iter()
            .find(|(p, _)| p.matches(dst))
            .unwrap_or_else(|| panic!("no ECMP route to {dst}"));
        let h = mix64(flow.0 ^ u64::from_le_bytes([dst.0[0], dst.0[1], dst.0[2], dst.0[3], 0, 0, 0, 0]));
        group[(h % group.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_matching() {
        let a = Addr::new(10, 1, 2, 3);
        assert!(AddrPattern::exact(a).matches(a));
        assert!(!AddrPattern::exact(a).matches(Addr::new(10, 1, 2, 4)));
        assert!(AddrPattern::subnet3(a).matches(Addr::new(10, 1, 2, 9)));
        assert!(!AddrPattern::subnet3(a).matches(Addr::new(10, 1, 3, 3)));
        assert!(AddrPattern::subnet2(a).matches(Addr::new(10, 1, 7, 7)));
        assert!(AddrPattern::any().matches(Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn static_longest_match_wins() {
        let dst = Addr::new(10, 1, 2, 3);
        let r = StaticRouter::new()
            .default_via(PortId(0))
            .add(AddrPattern::subnet2(dst), PortId(1))
            .to(dst, PortId(2));
        assert_eq!(r.route(dst, FlowId(0), PortId(9)), PortId(2));
        assert_eq!(r.route(Addr::new(10, 1, 9, 9), FlowId(0), PortId(9)), PortId(1));
        assert_eq!(r.route(Addr::new(9, 9, 9, 9), FlowId(0), PortId(9)), PortId(0));
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn static_missing_route_panics() {
        StaticRouter::new().route(Addr::new(1, 1, 1, 1), FlowId(0), PortId(0));
    }

    #[test]
    fn ecmp_is_per_flow_consistent_and_spreads() {
        let r = EcmpRouter::new().add(
            AddrPattern::any(),
            vec![PortId(0), PortId(1), PortId(2), PortId(3)],
        );
        let dst = Addr::new(10, 0, 0, 2);
        let mut seen = std::collections::HashSet::new();
        for f in 0..64 {
            let p1 = r.route(dst, FlowId(f), PortId(0));
            let p2 = r.route(dst, FlowId(f), PortId(0));
            assert_eq!(p1, p2, "same flow must always hash to the same port");
            seen.insert(p1);
        }
        assert!(seen.len() >= 3, "64 flows should cover most of 4 ports");
    }
}
