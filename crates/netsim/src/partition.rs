//! Partitioned parallel simulation: one `Sim` sharded across threads,
//! bit-identical to the serial run.
//!
//! # Model
//!
//! A [`PartitionPlan`] assigns every node to one of `W` shards. Each shard
//! is a complete [`Sim`] of its own — its own event wheel, RNG streams,
//! qdisc storage and stats — holding the **real** node/agent/timer state
//! for its assigned nodes and lightweight placeholders for everyone else.
//! The link table is **fully replicated**: every shard carries a pristine
//! copy of every link so global link indices (and therefore the
//! per-direction RNG stream derivations) are preserved without remapping.
//! Per direction, exactly one shard is *transmit-authoritative* (the shard
//! owning the sending node runs the qdisc, fault draws and serialization)
//! and one is *receive-authoritative* (the shard owning the receiving node
//! processes the `Deliver`, draws corruption and dispatches). For most
//! links both are the same shard; for **cut links** they differ, and the
//! transmit side pushes the delivery into an outbox instead of its own
//! wheel.
//!
//! # Conservative synchronization
//!
//! Workers advance in rounds bounded by the *lookahead* `L`: the minimum
//! propagation delay over all cut links. A `Deliver` handed off while
//! processing an event at `t ∈ (h, h+L]` arrives at
//! `depart + delay > h + L` (serialization is strictly positive and the
//! cut link's delay is at least `L`), i.e. strictly after the round's
//! horizon — so exchanging outboxes at the round barrier, *before* the
//! next round runs, can never violate causality. Each round is: run every
//! shard's wheel to the horizon in parallel, barrier, drain outboxes into
//! per-target buffers, barrier, sort and schedule the received deliveries,
//! barrier, advance the horizon.
//!
//! # Determinism
//!
//! The contract is **bit-identity with the serial run**, which rests on
//! the identity-keyed `(time, key)` event ordering:
//!
//! * two events with equal `(time, key)` share their identity (same link
//!   direction, same node), hence live on the same shard — cross-shard
//!   ties are impossible, and merging per-shard event streams sorted by
//!   `(time, key)` reproduces the serial order exactly;
//! * received deliveries are sorted by `(arrival, key, source order)`
//!   before scheduling, so the merge is independent of thread timing and
//!   lock acquisition order;
//! * every RNG draw happens on the shard that is authoritative for that
//!   stream (fault draws tx-side, corruption draws rx-side, per-direction
//!   streams derived from the *global* link index), so each stream
//!   advances exactly as in the serial run;
//! * probe records carry a merge rank — the identity key of the event
//!   being processed when they were recorded — so the reassembled record
//!   list is byte-identical to the serial export.
//!
//! Fault events are replicated to every shard (each holds the full link
//! table, so down/up transitions evolve identically everywhere); agent
//! signals are collected per shard and replayed to the driver callback in
//! serial event order after each window.
//!
//! Driver callbacks run at window boundaries rather than mid-window, so
//! workloads that *inject new flows from completion callbacks* see those
//! flows start at the end of the current window — statistically
//! equivalent, not bit-identical. Pre-submitted workloads with
//! harvest-only callbacks (the determinism tests, the scale experiment and
//! the benchmarks) are bit-identical end to end.

use super::{
    deliver_key, event_rank, AuditReport, NetEvent, Payload, ShardState, Sim, TimerState,
    SAMPLE_KEY,
};
use crate::agent::{Agent, Ctx};
use crate::link::{Link, LinkId};
use crate::node::{Node, NodeId, NodeKind};
use crate::probe::{ProbeConfig, ProbeRecord, Probes, SimProfile};
use std::collections::VecDeque;
use std::sync::{Barrier, Mutex};
use xmp_des::{Engine, SimDuration, SimRng, SimTime};

/// Merge-rank namespace for driver operations ([`PartitionedSim::with_agent`]):
/// they rank after every same-instant engine event and probe sample, in call
/// order — exactly where the serial run performs them (after `run_until`
/// returns at that instant).
const DRIVER_RANK_BASE: u64 = 1 << 32;

/// Assignment of every node to a shard (worker thread).
///
/// Topology builders produce plans (e.g.
/// `FatTree::partition_plan` in the `topo` crate assigns pods to shards
/// and spreads core switches round-robin); any assignment is valid — the
/// partitioning is bit-identical regardless — but wall-clock speedup needs
/// balanced shards and long cut-link delays (the lookahead).
#[derive(Clone, Debug)]
pub struct PartitionPlan {
    assignment: Vec<u32>,
    workers: usize,
}

impl PartitionPlan {
    /// Plan from an explicit per-node shard assignment. Shard ids must be
    /// dense (every id in `0..=max` used is fine; gaps just produce idle
    /// workers).
    pub fn new(assignment: Vec<u32>) -> Self {
        assert!(!assignment.is_empty(), "empty partition plan");
        let workers = assignment.iter().map(|&s| s as usize + 1).max().unwrap_or(1);
        PartitionPlan {
            assignment,
            workers,
        }
    }

    /// The trivial plan: all `nodes` on one shard.
    pub fn single(nodes: usize) -> Self {
        PartitionPlan::new(vec![0; nodes])
    }

    /// Number of shards (worker threads).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The per-node shard assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Shard owning `node`.
    pub fn owner(&self, node: NodeId) -> u32 {
        self.assignment[node.0 as usize]
    }
}

/// A cross-shard delivery in flight through the broker:
/// `(arrival, link, dir, fail_gen, packet, source sequence)`.
type Handoff<P> = (SimTime, LinkId, u8, u32, crate::packet::Packet<P>, u64);

/// An agent signal captured on a shard during a window:
/// `(time, merge rank, node, code)`.
type SignalRec = (SimTime, (u64, u64), NodeId, u64);

/// Shard-0 metadata threaded through `finish` into the merged sim:
/// `(addr_book, rng, tuning, fault_timeline)`.
type SimMeta = (
    Vec<(u32, NodeId)>,
    SimRng,
    super::SimTuning,
    Vec<crate::fault::FaultEvent>,
);

/// A [`Sim`] sharded across `std::thread` workers.
///
/// Build the full topology (and install fault plans / probes) on a single
/// pristine `Sim`, then hand it to [`PartitionedSim::new`] with a plan.
/// Drive it with the same `run_until` / `advance_to` / `with_agent` calls
/// a serial sim takes, and call [`PartitionedSim::finish`] to reassemble
/// one serial `Sim` holding the merged end state — stats, probe records,
/// audit counters and pending events all bit-identical to a serial run of
/// the same workload.
pub struct PartitionedSim<P: Payload, A: Agent<P> + Send> {
    shards: Vec<Sim<P, A>>,
    /// Node → owning shard.
    owner: Vec<u32>,
    /// Link → per-direction `(tx shard, rx shard)`.
    dir_owner: Vec<[(u32, u32); 2]>,
    /// Conservative round bound: minimum cut-link propagation delay.
    /// `None` when no link crosses shards (single round per window).
    lookahead: Option<SimDuration>,
    /// Driver-visible clock (advanced by `run_until`/`advance_to`).
    clock: SimTime,
    /// Driver-operation counter backing `with_agent` merge ranks.
    op_seq: u64,
    /// Wall-clock nanoseconds spent inside `run_until` (whole-window, so
    /// barrier and exchange overhead is included; becomes the merged
    /// profile's `run_wall_ns`).
    wall_ns: u64,
    /// Probe configuration replicated to every shard (`None` = unprobed).
    probe_cfg: Option<ProbeConfig>,
    /// Records pushed before partitioning (e.g. a `Meta` line); prepended
    /// to the merged record list by `finish`.
    probe_preamble: Vec<ProbeRecord>,
    /// Signals raised by driver operations (`with_agent`) between windows,
    /// stamped with the operation's rank; delivered by the next `run_until`.
    pending_signals: Vec<SignalRec>,
}

impl<P: Payload, A: Agent<P> + Send> PartitionedSim<P, A> {
    /// Shard a pristine sim according to `plan`.
    ///
    /// # Panics
    /// Panics if the sim has already run (events processed, traffic on any
    /// link, or a non-zero clock), has tracing enabled (the ring buffer is
    /// inherently serial), or the plan's length does not match the node
    /// count.
    pub fn new(sim: Sim<P, A>, plan: &PartitionPlan) -> Self {
        assert!(
            sim.trace.is_none(),
            "packet tracing is unsupported in partitioned runs"
        );
        assert_eq!(
            sim.engine.now(),
            SimTime::ZERO,
            "partitioning requires a pristine sim (clock at zero)"
        );
        assert_eq!(
            plan.assignment.len(),
            sim.nodes.len(),
            "partition plan length does not match node count"
        );
        assert!(sim.signals.is_empty(), "undrained signals at partition time");
        let w = plan.workers();
        let owner = plan.assignment.clone();

        // Per-direction authority and the conservative lookahead. The
        // sender of `dirs[d]` is the *other* end: `dirs[d]` delivers to
        // `dirs[d].to_node`, which `dirs[d^1].to_node` transmits toward.
        let mut dir_owner = Vec::with_capacity(sim.links.len());
        let mut lookahead: Option<SimDuration> = None;
        for l in &sim.links {
            let mut per = [(0u32, 0u32); 2];
            for d in 0..2usize {
                let tx = owner[l.dirs[d ^ 1].to_node.0 as usize];
                let rx = owner[l.dirs[d].to_node.0 as usize];
                per[d] = (tx, rx);
                if tx != rx {
                    assert!(
                        l.delay > SimDuration::ZERO,
                        "cut link {} has zero propagation delay (no lookahead)",
                        l.label
                    );
                    lookahead = Some(match lookahead {
                        Some(cur) => cur.min(l.delay),
                        None => l.delay,
                    });
                }
            }
            dir_owner.push(per);
        }

        let Sim {
            engine,
            nodes,
            links,
            agents,
            addr_book,
            timers,
            signals: _,
            emit_pool: _,
            rng,
            trace: _,
            probes,
            profile: _,
            tuning,
            addr_index: _,
            fibs: _,
            fibs_ready: _,
            fault_timeline,
            unroutable,
            audit_injected,
            audit_delivered,
            audit_dropped,
            part,
        } = sim;
        assert!(part.is_none(), "sim is already a shard of a partitioned run");

        // Probe state: keep the config (replicated to every shard so the
        // sampling tick phase is uniform) and any pre-run records.
        let mut probe_preamble = Vec::new();
        let probe_cfg = probes.map(|mut p| {
            probe_preamble = p.take_records();
            ProbeConfig {
                interval: p.interval,
                until: p.until,
                watch: std::mem::take(&mut p.watch),
                record_marks: p.record_marks,
            }
        });

        // Nodes, agents and timer tables: the real state moves to the
        // owner; other shards get an agent-less placeholder host carrying
        // the same port table (fault handling iterates ports everywhere).
        let mut shard_nodes: Vec<Vec<Node>> = (0..w).map(|_| Vec::with_capacity(nodes.len())).collect();
        for (i, node) in nodes.into_iter().enumerate() {
            let own = owner[i] as usize;
            for (s, sn) in shard_nodes.iter_mut().enumerate() {
                if s != own {
                    sn.push(Node {
                        kind: NodeKind::Host,
                        ports: node.ports.clone(),
                        label: node.label.clone(),
                    });
                }
            }
            shard_nodes[own].push(node);
        }
        let mut shard_agents: Vec<Vec<Option<A>>> = (0..w).map(|_| Vec::with_capacity(owner.len())).collect();
        for (i, mut a) in agents.into_iter().enumerate() {
            let own = owner[i] as usize;
            for (s, sa) in shard_agents.iter_mut().enumerate() {
                sa.push(if s == own { a.take() } else { None });
            }
        }
        let mut shard_timers: Vec<Vec<crate::hash::FxHashMap<u64, TimerState>>> =
            (0..w).map(|_| Vec::with_capacity(owner.len())).collect();
        for (i, mut t) in timers.into_iter().enumerate() {
            let own = owner[i] as usize;
            for (s, st) in shard_timers.iter_mut().enumerate() {
                st.push(if s == own {
                    std::mem::take(&mut t)
                } else {
                    crate::hash::FxHashMap::default()
                });
            }
        }

        // Full link-table replication (pristine state asserted inside).
        let mut shard_links: Vec<Vec<Link<P>>> = (0..w).map(|_| Vec::with_capacity(links.len())).collect();
        for l in &links {
            for sl in shard_links.iter_mut() {
                sl.push(l.replicate());
            }
        }
        drop(links);

        // Route the master's pending events: faults to every shard (each
        // holds the full link table), timers to the owner, sampling ticks
        // re-installed per shard below. Traffic events cannot exist on a
        // pristine sim.
        let mut shard_events: Vec<Vec<(SimTime, u64, NetEvent<P>)>> =
            (0..w).map(|_| Vec::new()).collect();
        let mut eng = engine;
        while let Some((t, ev)) = eng.pop() {
            match ev {
                NetEvent::Fault { idx } => {
                    for se in shard_events.iter_mut() {
                        se.push((t, super::fault_key(idx), NetEvent::Fault { idx }));
                    }
                }
                NetEvent::Sample => {}
                NetEvent::Timer { node, token, gen } => {
                    shard_events[owner[node.0 as usize] as usize].push((
                        t,
                        super::timer_key(node),
                        NetEvent::Timer { node, token, gen },
                    ));
                }
                NetEvent::Deliver { .. } | NetEvent::TxDone { .. } => {
                    panic!("partitioning requires a pristine sim (traffic already scheduled)")
                }
            }
        }

        let mut shards = Vec::with_capacity(w);
        for s in 0..w {
            let mut engine = Engine::new();
            for (t, key, ev) in shard_events[s].drain(..) {
                engine.schedule_keyed(t, key, ev);
            }
            // Replicate the probes (uniform tick phase across shards); the
            // roles decide which series each shard actually records.
            let (shard_probes, watch_roles) = match &probe_cfg {
                Some(cfg) => {
                    let roles = cfg
                        .watch
                        .iter()
                        .map(|&(l, d)| {
                            let (tx, rx) = dir_owner[l.0 as usize][d as usize];
                            (tx == s as u32, rx == s as u32)
                        })
                        .collect();
                    let mut p = Probes::new(cfg.clone());
                    p.ranks = Some(Vec::new());
                    let first = SimTime::ZERO + p.interval;
                    if first <= p.until {
                        engine.schedule_keyed(first, SAMPLE_KEY, NetEvent::Sample);
                    }
                    (Some(p), roles)
                }
                None => (None, Vec::new()),
            };
            let remote_rx = dir_owner
                .iter()
                .map(|per| {
                    let mut bits = 0u8;
                    for (d, &(tx, rx)) in per.iter().enumerate() {
                        if tx == s as u32 && rx != s as u32 {
                            bits |= 1 << d;
                        }
                    }
                    bits
                })
                .collect();
            shards.push(Sim {
                engine,
                nodes: std::mem::take(&mut shard_nodes[s]),
                links: std::mem::take(&mut shard_links[s]),
                agents: std::mem::take(&mut shard_agents[s]),
                addr_book: addr_book.clone(),
                timers: std::mem::take(&mut shard_timers[s]),
                signals: VecDeque::new(),
                emit_pool: Vec::new(),
                rng: rng.clone(),
                trace: None,
                probes: shard_probes,
                profile: SimProfile::default(),
                tuning,
                addr_index: None,
                fibs: Vec::new(),
                fibs_ready: false,
                fault_timeline: fault_timeline.clone(),
                unroutable: if s == 0 { unroutable } else { 0 },
                audit_injected: if s == 0 { audit_injected } else { 0 },
                audit_delivered: if s == 0 { audit_delivered } else { 0 },
                audit_dropped: if s == 0 { audit_dropped } else { 0 },
                part: Some(Box::new(ShardState {
                    remote_rx,
                    outbox: Vec::new(),
                    rank: (0, 0),
                    watch_roles,
                })),
            });
        }

        PartitionedSim {
            shards,
            owner,
            dir_owner,
            lookahead,
            clock: SimTime::ZERO,
            op_seq: 0,
            wall_ns: 0,
            probe_cfg,
            probe_preamble,
            pending_signals: Vec::new(),
        }
    }

    /// Number of shards (worker threads).
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The conservative round bound: minimum cut-link propagation delay
    /// (`None` when no link crosses shards).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// Driver-visible clock (the last `run_until`/`advance_to` boundary).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Wall-clock nanoseconds spent inside `run_until` windows so far.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Drain every shard's outbox into the target shards' wheels (serial;
    /// used before rounds start and by `finish`). Deliveries are sorted by
    /// `(arrival, identity key, source order)` so scheduling order is
    /// deterministic.
    fn exchange(&mut self) {
        let w = self.shards.len();
        let mut per_target: Vec<Vec<Handoff<P>>> = (0..w).map(|_| Vec::new()).collect();
        for s in 0..w {
            let outbox = {
                let ps = self.shards[s].part.as_mut().expect("shard state");
                std::mem::take(&mut ps.outbox)
            };
            for (seq, (at, link, dir, gen, pkt)) in outbox.into_iter().enumerate() {
                let target = self.dir_owner[link.0 as usize][dir as usize].1 as usize;
                per_target[target].push((at, link, dir, gen, pkt, seq as u64));
            }
        }
        for (t, mut inbox) in per_target.into_iter().enumerate() {
            inbox.sort_by_key(|&(at, link, dir, _, _, seq)| (at, deliver_key(link, dir), seq));
            for (at, link, dir, gen, pkt, _) in inbox {
                self.shards[t].engine.schedule_keyed(
                    at,
                    deliver_key(link, dir),
                    NetEvent::Deliver {
                        link,
                        dir,
                        gen,
                        pkt,
                    },
                );
            }
        }
    }

    /// Process all events up to and including `deadline` on every shard,
    /// synchronizing conservatively in lookahead-bounded rounds. Agent
    /// signals are replayed to `on_signal` in serial event order after the
    /// window (see the module docs for the callback-timing caveat).
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        mut on_signal: impl FnMut(&mut Self, NodeId, u64),
    ) {
        assert!(deadline >= self.clock, "run_until into the past");
        let wall = std::time::Instant::now();
        // Driver injections since the last window may have produced
        // cross-shard deliveries; place them before the rounds start.
        self.exchange();
        let start = self.clock;
        let lookahead = self.lookahead;
        let w = self.shards.len();
        let dir_owner = &self.dir_owner;
        let barrier = Barrier::new(w);
        let buckets: Vec<Mutex<Vec<Handoff<P>>>> = (0..w).map(|_| Mutex::new(Vec::new())).collect();
        let mut sigs: Vec<Vec<SignalRec>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(w);
            for (s, sim) in self.shards.iter_mut().enumerate() {
                let barrier = &barrier;
                let buckets = &buckets;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<SignalRec> = Vec::new();
                    let mut h = start;
                    loop {
                        h = match lookahead {
                            Some(l) => (h + l).min(deadline),
                            None => deadline,
                        };
                        sim.run_until(h, |s2, node, code| {
                            let rank = s2.part.as_ref().map_or((0, 0), |ps| ps.rank);
                            local.push((s2.now(), rank, node, code));
                        });
                        barrier.wait();
                        // Drain this shard's outbox into per-target buffers.
                        let outbox = {
                            let ps = sim.part.as_mut().expect("shard state");
                            std::mem::take(&mut ps.outbox)
                        };
                        if !outbox.is_empty() {
                            for (seq, (at, link, dir, gen, pkt)) in outbox.into_iter().enumerate() {
                                let target =
                                    dir_owner[link.0 as usize][dir as usize].1 as usize;
                                buckets[target]
                                    .lock()
                                    .expect("bucket lock")
                                    .push((at, link, dir, gen, pkt, seq as u64));
                            }
                        }
                        barrier.wait();
                        // Absorb deliveries addressed to this shard. The
                        // sort key restores a deterministic order whatever
                        // the lock-acquisition interleaving was: equal
                        // (arrival, key) pairs share a source shard, where
                        // `seq` preserves emission order.
                        let mut inbox = std::mem::take(&mut *buckets[s].lock().expect("bucket lock"));
                        inbox.sort_by_key(|&(at, link, dir, _, _, seq)| {
                            (at, deliver_key(link, dir), seq)
                        });
                        for (at, link, dir, gen, pkt, _) in inbox {
                            sim.engine.schedule_keyed(
                                at,
                                deliver_key(link, dir),
                                NetEvent::Deliver {
                                    link,
                                    dir,
                                    gen,
                                    pkt,
                                },
                            );
                        }
                        barrier.wait();
                        if h >= deadline {
                            break;
                        }
                    }
                    local
                }));
            }
            sigs = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect();
        });
        self.clock = deadline;
        self.wall_ns += wall.elapsed().as_nanos() as u64;
        // Replay signals in serial event order: (time, event identity
        // rank); full ties share a shard, where collection order is the
        // serial order (stable sort + shard-ordered concatenation).
        let mut all: Vec<SignalRec> = std::mem::take(&mut self.pending_signals);
        all.extend(sigs.into_iter().flatten());
        all.sort_by_key(|&(t, rank, _, _)| (t, rank));
        for (_, _, node, code) in all {
            on_signal(self, node, code);
        }
    }

    /// `run_until` ignoring signals.
    pub fn run_until_quiet(&mut self, deadline: SimTime) {
        self.run_until(deadline, |_, _, _| {});
    }

    /// Advance every shard's clock to `t` (events up to `t` must already be
    /// processed) and set the driver-visible clock. Mirrors
    /// [`Sim::advance_to`].
    pub fn advance_to(&mut self, t: SimTime) {
        for sim in &mut self.shards {
            sim.advance_to(t);
        }
        self.clock = self.clock.max(t);
    }

    /// Run driver code against the concrete agent on `node`, on whichever
    /// shard owns it. Mirrors [`Sim::with_agent`]; the operation is ranked
    /// after all same-instant events for the probe-record merge.
    pub fn with_agent<T: Agent<P>, R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_, P>) -> R,
    ) -> R {
        let s = self.owner[node.0 as usize] as usize;
        self.op_seq += 1;
        let rank = (u64::MAX, DRIVER_RANK_BASE + self.op_seq);
        let sim = &mut self.shards[s];
        // A shard's engine clock rests on its last handled event, which may
        // trail the window deadline; anything the driver schedules now must
        // land at the partitioned clock or later, exactly as it would on a
        // serial sim that ran to the same instant.
        sim.advance_to(self.clock);
        if let Some(ps) = sim.part.as_mut() {
            ps.rank = rank;
        }
        let r = sim.with_agent(node, f);
        // A `ctx.signal` raised by the operation itself must not surface
        // under the next window's first event identity; stamp it with the
        // operation's own rank and deliver it with the window's signals.
        let clock = self.clock;
        while let Some((n, code)) = sim.signals.pop_front() {
            self.pending_signals.push((clock, rank, n, code));
        }
        r
    }

    /// Packet-conservation audit across all shards, accounting for
    /// in-flight cross-partition packets: a handed-off packet stays
    /// counted in the transmit shard's copy of the direction until the
    /// receive shard processes its `Deliver` (decrementing its own copy),
    /// so per-direction occupancy — and the global balance — is the
    /// *signed sum over every shard's copy*. Panics if the books don't
    /// balance.
    pub fn audit_conservation(&self) -> AuditReport {
        let mut injected = 0u64;
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        for sim in &self.shards {
            injected += sim.audit_injected;
            delivered += sim.audit_delivered;
            dropped += sim.audit_dropped;
        }
        let mut in_network = 0i64;
        for li in 0..self.dir_owner.len() {
            for d in 0..2usize {
                let sum: i64 = self
                    .shards
                    .iter()
                    .map(|s| s.links[li].dirs[d].in_network)
                    .sum();
                assert!(
                    sum >= 0,
                    "negative merged in-network count {sum} on link {li} dir {d}"
                );
                in_network += sum;
            }
        }
        let report = AuditReport {
            injected,
            delivered,
            dropped,
            in_network: in_network as u64,
        };
        assert_eq!(
            report.injected,
            report.delivered + report.dropped + report.in_network,
            "packet conservation violated across partitions: {report:?}"
        );
        report
    }

    /// Reassemble one serial [`Sim`] from the shards: owned node, agent and
    /// timer state; per-direction link state merged from the transmit- and
    /// receive-authoritative copies; pending events re-merged into one
    /// wheel in `(time, key)` order; probe records re-ordered into the
    /// serial recording order. The result is bit-identical to the serial
    /// run's end state for every driver-visible surface (stats, probes,
    /// audit, pending work) and can keep running serially.
    pub fn finish(mut self) -> Sim<P, A> {
        assert!(
            self.pending_signals.is_empty(),
            "undelivered driver signals at finish (run a window first)"
        );
        // Driver injections since the last window may still sit in
        // outboxes; place them so the merged wheel sees them.
        self.exchange();
        let w = self.shards.len();
        let n_nodes = self.owner.len();
        let n_links = self.dir_owner.len();

        let mut nodes_its = Vec::with_capacity(w);
        let mut agents_its = Vec::with_capacity(w);
        let mut timers_its = Vec::with_capacity(w);
        let mut links_its = Vec::with_capacity(w);
        let mut engines = Vec::with_capacity(w);
        let mut probes_list = Vec::with_capacity(w);
        let mut profile_sum = SimProfile::default();
        let mut unroutable = 0u64;
        let (mut injected, mut delivered, mut dropped) = (0u64, 0u64, 0u64);
        let mut first_meta: Option<SimMeta> = None;
        for sim in self.shards.drain(..) {
            let Sim {
                engine,
                nodes,
                links,
                agents,
                addr_book,
                timers,
                signals,
                emit_pool: _,
                rng,
                trace: _,
                probes,
                profile,
                tuning,
                addr_index: _,
                fibs: _,
                fibs_ready: _,
                fault_timeline,
                unroutable: ur,
                audit_injected,
                audit_delivered,
                audit_dropped,
                part: _,
            } = sim;
            assert!(signals.is_empty(), "undrained signals at finish");
            nodes_its.push(nodes.into_iter());
            agents_its.push(agents.into_iter());
            timers_its.push(timers.into_iter());
            links_its.push(links.into_iter());
            engines.push(engine);
            probes_list.push(probes);
            profile_sum.deliver += profile.deliver;
            profile_sum.tx_done += profile.tx_done;
            profile_sum.timer += profile.timer;
            profile_sum.fault += profile.fault;
            profile_sum.sample += profile.sample;
            profile_sum.pool_hits += profile.pool_hits;
            profile_sum.pool_misses += profile.pool_misses;
            profile_sum.fib_compile_ns += profile.fib_compile_ns;
            profile_sum.allocs += profile.allocs;
            unroutable += ur;
            injected += audit_injected;
            delivered += audit_delivered;
            dropped += audit_dropped;
            if first_meta.is_none() {
                first_meta = Some((addr_book, rng, tuning, fault_timeline));
            }
        }
        profile_sum.run_wall_ns = self.wall_ns;
        let (addr_book, rng, tuning, fault_timeline) = first_meta.expect("at least one shard");

        // Owned node/agent/timer state per index.
        let mut nodes = Vec::with_capacity(n_nodes);
        let mut agents = Vec::with_capacity(n_nodes);
        let mut timers = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            let own = self.owner[i] as usize;
            let mut node = None;
            let mut agent = None;
            let mut timer = None;
            for s in 0..w {
                let n = nodes_its[s].next().expect("node tables aligned");
                let a = agents_its[s].next().expect("agent tables aligned");
                let t = timers_its[s].next().expect("timer tables aligned");
                if s == own {
                    node = Some(n);
                    agent = Some(a);
                    timer = Some(t);
                }
            }
            nodes.push(node.expect("owner within shard count"));
            agents.push(agent.expect("owner within shard count"));
            timers.push(timer.expect("owner within shard count"));
        }

        // Link state merged per direction from the authoritative copies.
        let mut links = Vec::with_capacity(n_links);
        for li in 0..n_links {
            let copies: Vec<Link<P>> = links_its
                .iter_mut()
                .map(|it| it.next().expect("link tables aligned"))
                .collect();
            links.push(merge_link(copies, self.dir_owner[li]));
        }

        // One wheel from all pending events. Equal (time, key) pairs come
        // from one shard (identity ⇒ ownership), so a stable sort over the
        // shard-ordered concatenation reproduces the serial FIFO order.
        // Replicated Fault events dedup to shard 0's copy; per-shard
        // sampling ticks collapse to one (they share the tick phase).
        let mut processed = 0u64;
        let mut scheduled = 0u64;
        let mut sample_at: Option<SimTime> = None;
        let mut pend: Vec<(SimTime, u64, NetEvent<P>)> = Vec::new();
        for (s, mut eng) in engines.into_iter().enumerate() {
            processed += eng.processed();
            scheduled += eng.scheduled();
            while let Some((t, ev)) = eng.pop() {
                match &ev {
                    NetEvent::Fault { .. } if s != 0 => continue,
                    NetEvent::Sample => {
                        if s == 0 {
                            sample_at = Some(t);
                        }
                        continue;
                    }
                    _ => {}
                }
                pend.push((t, event_rank(&ev), ev));
            }
        }
        pend.sort_by_key(|e| (e.0, e.1));
        let mut engine = Engine::new();
        for (t, key, ev) in pend {
            engine.schedule_keyed(t, key, ev);
        }
        if let Some(t) = sample_at {
            engine.schedule_keyed(t, SAMPLE_KEY, NetEvent::Sample);
        }
        engine.advance_to(self.clock);
        engine.absorb_counters(processed, scheduled);

        // Probe records back into serial order: (time, event rank, shard
        // order). Only shards record (all records are timed); the pre-run
        // preamble (Meta lines) goes first, as pushed.
        let probes = self.probe_cfg.take().map(|cfg| {
            let mut tagged: Vec<(SimTime, (u64, u64), usize, ProbeRecord)> = Vec::new();
            for p in probes_list.into_iter() {
                let mut p = p.expect("probed run keeps shard probes");
                let ranks = p.ranks.take().expect("shard probes carry ranks");
                let records = p.take_records();
                assert_eq!(ranks.len(), records.len(), "rank channel out of sync");
                for (rec, rank) in records.into_iter().zip(ranks) {
                    let at = match &rec {
                        ProbeRecord::Queue { at, .. }
                        | ProbeRecord::Util { at, .. }
                        | ProbeRecord::Mark { at, .. }
                        | ProbeRecord::Cwnd { at, .. } => *at,
                        ProbeRecord::Meta { .. } => {
                            unreachable!("shards never record Meta lines")
                        }
                    };
                    let seq = tagged.len();
                    tagged.push((at, rank, seq, rec));
                }
            }
            tagged.sort_by_key(|&(at, rank, seq, _)| (at, rank, seq));
            let mut merged = Probes::new(cfg);
            for rec in self.probe_preamble.drain(..) {
                merged.push(rec);
            }
            for (_, _, _, rec) in tagged {
                merged.push(rec);
            }
            merged
        });

        Sim {
            engine,
            nodes,
            links,
            agents,
            addr_book,
            timers,
            signals: VecDeque::new(),
            emit_pool: Vec::new(),
            rng,
            trace: None,
            probes,
            profile: profile_sum,
            tuning,
            addr_index: None,
            fibs: Vec::new(),
            fibs_ready: false,
            fault_timeline,
            unroutable,
            audit_injected: injected,
            audit_delivered: delivered,
            audit_dropped: dropped,
            part: None,
        }
    }
}

/// Merge one link's shard copies: the transmit-authoritative copy carries
/// the queue, serialization pipeline, fault stream and tx-side counters
/// wholesale; the receive-authoritative copy overrides the delivery
/// counters and corruption stream and contributes its occupancy decrements
/// and stale-delivery blackholes.
fn merge_link<P: Payload>(copies: Vec<Link<P>>, dir_owner: [(u32, u32); 2]) -> Link<P> {
    // Rx-authoritative bits, cloned out before the move below.
    let rx_bits: Vec<(u64, xmp_des::ByteSize, u64, u64, i64, SimRng)> = (0..2usize)
        .map(|d| {
            let (_, rx) = dir_owner[d];
            let dd = &copies[rx as usize].dirs[d];
            (
                dd.stats.delivered,
                dd.stats.delivered_bytes,
                dd.stats.corrupted,
                dd.stats.blackholed,
                dd.in_network,
                dd.corrupt_rng.clone(),
            )
        })
        .collect();
    let mut meta: Option<(xmp_des::Bandwidth, SimDuration, String, crate::queue::QdiscConfig)> =
        None;
    let mut slots: [Option<crate::link::Direction<P>>; 2] = [None, None];
    for (s, link) in copies.into_iter().enumerate() {
        let Link {
            bandwidth,
            delay,
            dirs,
            label,
            qcfg,
        } = link;
        let [d0, d1] = dirs;
        if s as u32 == dir_owner[0].0 {
            slots[0] = Some(d0);
        }
        if s as u32 == dir_owner[1].0 {
            slots[1] = Some(d1);
        }
        if meta.is_none() {
            meta = Some((bandwidth, delay, label, qcfg));
        }
    }
    let (bandwidth, delay, label, qcfg) = meta.expect("at least one copy");
    let [slot0, slot1] = slots;
    let mut dirs = [
        slot0.expect("tx owner within shard count"),
        slot1.expect("tx owner within shard count"),
    ];
    for (d, dir) in dirs.iter_mut().enumerate() {
        let (tx, rx) = dir_owner[d];
        if tx != rx {
            let (del, del_bytes, corrupted, rx_blackholed, rx_in_network, corrupt_rng) =
                rx_bits[d].clone();
            // Tx copy never sees deliveries on a cut direction; the rx
            // copy's counters are authoritative. Blackholes accrue on both
            // sides (tx: down-at-enqueue and teardown purges; rx:
            // stale-generation arrivals) and sum; so do the signed
            // occupancy halves (tx +1 at accept, rx −1 at deliver).
            dir.stats.delivered = del;
            dir.stats.delivered_bytes = del_bytes;
            dir.stats.corrupted = corrupted;
            dir.stats.blackholed += rx_blackholed;
            dir.in_network += rx_in_network;
            dir.corrupt_rng = corrupt_rng;
        }
    }
    Link {
        bandwidth,
        delay,
        dirs,
        label,
        qcfg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::fault::FaultPlan;
    use crate::link::LinkParams;
    use crate::node::PortId;
    use crate::packet::{Ecn, FlowId, Packet};
    use crate::probe::ProbeConfig;
    use crate::queue::QdiscConfig;
    use crate::routing::StaticRouter;
    use std::any::Any;
    use xmp_des::{Bandwidth, ByteSize};

    type DynAgent = Box<dyn Agent<u64> + Send>;

    /// Paced source + sink: bursts `burst` packets to a fixed peer on each
    /// timer tick, records arrivals, raises a signal per delivery.
    struct Pacer {
        src: Addr,
        dst: Addr,
        flow: u64,
        ticks: u64,
        max_ticks: u64,
        burst: u32,
        period: SimDuration,
        received: Vec<(u64, u64)>,
    }

    impl Agent<u64> for Pacer {
        fn on_packet(&mut self, pkt: Packet<u64>, _port: PortId, ctx: &mut Ctx<'_, u64>) {
            self.received.push((ctx.now().as_nanos(), pkt.payload));
            ctx.signal(pkt.payload);
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_, u64>) {
            for i in 0..self.burst {
                let payload = self.flow * 1_000_000 + self.ticks * 100 + i as u64;
                ctx.send(
                    PortId(0),
                    Packet::new(
                        self.src,
                        self.dst,
                        FlowId(self.flow),
                        Ecn::Ect,
                        ByteSize::from_bytes(1500),
                        payload,
                    ),
                );
            }
            self.ticks += 1;
            if self.ticks < self.max_ticks {
                let next = ctx.now() + self.period;
                ctx.set_timer(0, next);
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn pacer(src: Addr, dst: Addr, flow: u64) -> DynAgent {
        Box::new(Pacer {
            src,
            dst,
            flow,
            ticks: 0,
            max_ticks: 30,
            burst: 3,
            period: SimDuration::from_micros(150),
            received: Vec::new(),
        })
    }

    /// Two "pods" (switch + two hosts each) joined by one inter-switch
    /// link: the cut link of the two-way partition. All four flows cross
    /// it. Returns the sim, the plan, the hosts and the cut link.
    fn build(workers: u32) -> (Sim<u64, DynAgent>, PartitionPlan, Vec<NodeId>, LinkId) {
        let mut sim: Sim<u64, DynAgent> = Sim::new(42);
        let a = |i: u8| Addr::new(10, 0, 0, i);
        let edge = LinkParams::new(
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(20),
            QdiscConfig::EcnThreshold { cap: 64, k: 4 },
        );
        let trunk = LinkParams::new(
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(40),
            QdiscConfig::EcnThreshold { cap: 64, k: 4 },
        );
        let h0 = sim.add_host("h0", pacer(a(1), a(3), 1));
        let h1 = sim.add_host("h1", pacer(a(2), a(4), 2));
        let sw0 = sim.add_switch("sw0", Box::new(StaticRouter::new()));
        let h2 = sim.add_host("h2", pacer(a(3), a(1), 3));
        let h3 = sim.add_host("h3", pacer(a(4), a(2), 4));
        let sw1 = sim.add_switch("sw1", Box::new(StaticRouter::new()));
        sim.connect(h0, sw0, &edge, "h0-sw0"); // sw0 port 0
        sim.connect(h1, sw0, &edge, "h1-sw0"); // sw0 port 1
        let cut = sim.connect(sw0, sw1, &trunk, "sw0-sw1"); // sw0 p2, sw1 p0
        sim.connect(h2, sw1, &edge, "h2-sw1"); // sw1 port 1
        sim.connect(h3, sw1, &edge, "h3-sw1"); // sw1 port 2
        for (i, h) in [h0, h1, h2, h3].iter().enumerate() {
            sim.bind_addr(a(i as u8 + 1), *h);
        }
        sim.set_router(
            sw0,
            Box::new(
                StaticRouter::new()
                    .to(a(1), PortId(0))
                    .to(a(2), PortId(1))
                    .to(a(3), PortId(2))
                    .to(a(4), PortId(2)),
            ),
        );
        sim.set_router(
            sw1,
            Box::new(
                StaticRouter::new()
                    .to(a(1), PortId(0))
                    .to(a(2), PortId(0))
                    .to(a(3), PortId(1))
                    .to(a(4), PortId(2)),
            ),
        );
        sim.install_fault_plan(
            &FaultPlan::new()
                .drop_rate(cut, 0.02)
                .corrupt_rate(cut, 0.01)
                .link_down(SimTime::from_micros(1500), cut)
                .link_up(SimTime::from_micros(2500), cut),
        );
        sim.install_probes(ProbeConfig {
            interval: SimDuration::from_micros(100),
            until: SimTime::from_micros(8000),
            watch: vec![(cut, 0), (cut, 1)],
            record_marks: true,
        });
        for h in [h0, h1, h2, h3] {
            sim.with_agent::<Pacer, _>(h, |_, ctx| {
                ctx.set_timer(0, SimTime::from_micros(10));
            });
        }
        let plan = if workers == 1 {
            PartitionPlan::single(6)
        } else {
            PartitionPlan::new(vec![0, 0, 0, 1, 1, 1])
        };
        (sim, plan, vec![h0, h1, h2, h3], cut)
    }

    /// Everything the driver can observe, digested for comparison.
    fn observe(sim: &mut Sim<u64, DynAgent>, hosts: &[NodeId]) -> String {
        let mut out = String::new();
        use std::fmt::Write;
        writeln!(out, "clock={:?}", sim.now()).unwrap();
        for &h in hosts {
            let recv = sim.with_agent::<Pacer, _>(h, |p, _| p.received.clone());
            writeln!(out, "host {h:?}: {recv:?}").unwrap();
        }
        for (id, l) in sim.links() {
            for d in 0..2 {
                writeln!(out, "{id:?}/{d}: {:?}", l.dirs[d].stats).unwrap();
            }
        }
        let p = sim.profile();
        writeln!(out, "deliver={} tx_done={} timer={}", p.deliver, p.tx_done, p.timer).unwrap();
        out
    }

    fn drive_serial(
        tuning: super::super::SimTuning,
    ) -> (String, Vec<(NodeId, u64)>, Vec<ProbeRecord>, AuditReport) {
        let (mut sim, _, hosts, _) = build(1);
        sim.set_tuning(tuning);
        let mut sigs = Vec::new();
        sim.run_until(SimTime::from_micros(2000), |_, n, c| sigs.push((n, c)));
        // Mid-run driver injection: one extra packet from h0, at exactly
        // t = 2 ms (the flow driver always advances to the stop instant
        // before touching agents, and `PartitionedSim::with_agent` matches
        // that convention).
        sim.advance_to(SimTime::from_micros(2000));
        let h0 = hosts[0];
        sim.with_agent::<Pacer, _>(h0, |p, ctx| {
            let pkt = Packet::new(
                p.src,
                p.dst,
                FlowId(p.flow),
                Ecn::Ect,
                ByteSize::from_bytes(700),
                999_999,
            );
            ctx.send(PortId(0), pkt);
        });
        sim.run_until(SimTime::from_micros(8000), |_, n, c| sigs.push((n, c)));
        let audit = sim.audit_conservation();
        let digest = observe(&mut sim, &hosts);
        let records = sim.take_probes().expect("probes installed").records().to_vec();
        (digest, sigs, records, audit)
    }

    fn drive_partitioned(
        workers: u32,
        tuning: super::super::SimTuning,
    ) -> (String, Vec<(NodeId, u64)>, Vec<ProbeRecord>, AuditReport) {
        let (mut sim, plan, hosts, _) = build(workers);
        sim.set_tuning(tuning);
        let mut part = PartitionedSim::new(sim, &plan);
        if workers > 1 {
            assert_eq!(part.lookahead(), Some(SimDuration::from_micros(40)));
        }
        let mut sigs = Vec::new();
        part.run_until(SimTime::from_micros(2000), |_, n, c| sigs.push((n, c)));
        let h0 = hosts[0];
        part.with_agent::<Pacer, _>(h0, |p, ctx| {
            let pkt = Packet::new(
                p.src,
                p.dst,
                FlowId(p.flow),
                Ecn::Ect,
                ByteSize::from_bytes(700),
                999_999,
            );
            ctx.send(PortId(0), pkt);
        });
        part.run_until(SimTime::from_micros(8000), |_, n, c| sigs.push((n, c)));
        let audit = part.audit_conservation();
        let mut merged = part.finish();
        let digest = observe(&mut merged, &hosts);
        let records = merged
            .take_probes()
            .expect("probes installed")
            .records()
            .to_vec();
        (digest, sigs, records, audit)
    }

    #[test]
    fn partitioned_matches_serial_across_tunings() {
        for &(compiled, lazy) in &[(false, false), (true, false), (false, true), (true, true)] {
            let tuning = super::super::SimTuning {
                compiled_fib: compiled,
                lazy_links: lazy,
                drop_unroutable: false,
            };
            let serial = drive_serial(tuning);
            for workers in [1u32, 2] {
                let part = drive_partitioned(workers, tuning);
                assert_eq!(serial.0, part.0, "digest mismatch (workers={workers})");
                assert_eq!(serial.1, part.1, "signal mismatch (workers={workers})");
                assert_eq!(serial.2, part.2, "probe mismatch (workers={workers})");
                assert_eq!(serial.3, part.3, "audit mismatch (workers={workers})");
            }
        }
    }

    #[test]
    fn finished_sim_keeps_running_serially() {
        // Cut the run mid-flight, reassemble, and let the merged serial sim
        // finish the workload: pending cross-partition deliveries must
        // survive the merge.
        let (sim, plan, hosts, _) = build(2);
        let mut part = PartitionedSim::new(sim, &plan);
        part.run_until_quiet(SimTime::from_micros(700));
        let mut merged = part.finish();
        assert!(merged.engine.pending() > 0, "expected in-flight work");
        merged.run_until_quiet(SimTime::from_micros(8000));
        merged.audit_conservation();

        let (mut serial, _, _, _cut) = build(1);
        serial.run_until_quiet(SimTime::from_micros(8000));
        let a = observe(&mut merged, &hosts);
        let b = observe(&mut serial, &hosts);
        assert_eq!(a, b, "resumed merged sim diverged from serial");
    }

    #[test]
    #[should_panic(expected = "pristine")]
    fn partitioning_a_run_sim_panics() {
        let (mut sim, plan, _, _) = build(2);
        sim.run_until_quiet(SimTime::from_micros(500));
        let _ = PartitionedSim::new(sim, &plan);
    }
}
