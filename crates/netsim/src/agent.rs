//! Host agents.
//!
//! An [`Agent`] is the code running on an end host: it receives packets and
//! timer expirations and reacts by emitting sends, timers and signals
//! through [`Ctx`]. Agents are pure state machines — they never touch the
//! network directly — which keeps transports unit-testable without a
//! simulator and keeps the event loop in one place.

use crate::node::PortId;
use crate::packet::Packet;
use std::any::Any;
use xmp_des::SimTime;

/// What an agent asked the simulator to do.
#[derive(Debug)]
pub enum Emit<P> {
    /// Transmit a packet out of the given local port.
    Send {
        /// Local port to transmit on.
        port: PortId,
        /// The packet.
        pkt: Packet<P>,
    },
    /// (Re)arm the timer identified by `token` to fire at `at`.
    /// Re-arming supersedes any previous setting of the same token.
    SetTimer {
        /// Agent-chosen timer identifier.
        token: u64,
        /// Absolute expiry time.
        at: SimTime,
    },
    /// Disarm the timer identified by `token`.
    CancelTimer {
        /// Agent-chosen timer identifier.
        token: u64,
    },
    /// Raise an out-of-band signal to the simulation driver
    /// (e.g. "flow 17 completed").
    Signal(u64),
}

/// Emission buffer handed to agent callbacks.
pub struct Ctx<'a, P> {
    now: SimTime,
    emits: &'a mut Vec<Emit<P>>,
}

impl<'a, P> Ctx<'a, P> {
    pub(crate) fn new(now: SimTime, emits: &'a mut Vec<Emit<P>>) -> Self {
        Ctx { now, emits }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Transmit `pkt` on local `port`.
    pub fn send(&mut self, port: PortId, pkt: Packet<P>) {
        self.emits.push(Emit::Send { port, pkt });
    }

    /// (Re)arm timer `token` to fire at `at`.
    pub fn set_timer(&mut self, token: u64, at: SimTime) {
        self.emits.push(Emit::SetTimer { token, at });
    }

    /// Disarm timer `token`.
    pub fn cancel_timer(&mut self, token: u64) {
        self.emits.push(Emit::CancelTimer { token });
    }

    /// Raise a driver signal.
    pub fn signal(&mut self, code: u64) {
        self.emits.push(Emit::Signal(code));
    }
}

/// The code running on an end host.
pub trait Agent<P>: Any {
    /// A packet arrived on local `port`.
    fn on_packet(&mut self, pkt: Packet<P>, port: PortId, ctx: &mut Ctx<'_, P>);

    /// Timer `token` fired.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, P>);

    /// Upcast for driver access to the concrete type
    /// (implementations return `self`).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A boxed agent is an agent: the escape hatch that lets
/// [`Sim`](crate::Sim) default to heterogeneous `Box<dyn Agent<P>>` hosts
/// while the hot path runs a concrete agent type with static dispatch.
///
/// `as_any_mut` delegates to the *inner* value, so
/// [`Sim::with_agent`](crate::Sim::with_agent) downcasts reach the concrete
/// agent identically through either dispatch path.
impl<P, A: Agent<P> + ?Sized> Agent<P> for Box<A> {
    fn on_packet(&mut self, pkt: Packet<P>, port: PortId, ctx: &mut Ctx<'_, P>) {
        (**self).on_packet(pkt, port, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, P>) {
        (**self).on_timer(token, ctx);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        (**self).as_any_mut()
    }
}
