//! Per-link-direction statistics.
//!
//! Everything the evaluation needs from the network side: delivered bytes
//! (→ Fig. 11 link utilization), mark/drop counts, and a time-weighted
//! queue-depth average (→ buffer-occupancy claims).

use xmp_des::{ByteSize, SimTime};

/// Depth buckets for the occupancy histogram: `[0, 1, 2, 4, 8, 16, 32,
/// 64, 128, ≥256)` packets — power-of-two edges cover the paper's
/// 100-packet queues with useful resolution near K.
pub const DEPTH_BUCKETS: [usize; 10] = [0, 1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Counters for one link direction.
#[derive(Debug, Default, Clone)]
pub struct DirStats {
    /// Packets accepted into the queue (marked or not).
    pub enqueued: u64,
    /// Packets CE-marked on arrival.
    pub marked: u64,
    /// Packets dropped by the queue discipline (incl. overflow).
    pub dropped: u64,
    /// Packets dropped by fault injection.
    pub fault_dropped: u64,
    /// Packets corrupted in transit and discarded by the receiving end.
    pub corrupted: u64,
    /// Packets blackholed by a link failure: offered while the direction
    /// was down, or purged mid-flight when it went down.
    pub blackholed: u64,
    /// Packets fully delivered to the far end.
    pub delivered: u64,
    /// Bytes fully delivered to the far end.
    pub delivered_bytes: ByteSize,
    /// Maximum observed queue depth (waiting + on-wire), packets.
    pub max_depth: usize,
    // Time-weighted queue depth accumulator.
    depth_weighted_ns: u128,
    // Time (ns) spent in each DEPTH_BUCKETS band.
    depth_hist_ns: [u128; DEPTH_BUCKETS.len()],
    last_sample: Option<(SimTime, usize)>,
}

fn bucket_of(depth: usize) -> usize {
    DEPTH_BUCKETS
        .iter()
        .rposition(|&lo| depth >= lo)
        .unwrap_or(0)
}

impl DirStats {
    /// Record the queue depth at `now`; the previous depth is weighted by
    /// the elapsed time since the last observation.
    pub fn observe_backlog(&mut self, now: SimTime, depth: usize) {
        if let Some((t0, d0)) = self.last_sample {
            let dt = now.as_nanos().saturating_sub(t0.as_nanos());
            self.depth_weighted_ns += dt as u128 * d0 as u128;
            self.depth_hist_ns[bucket_of(d0)] += dt as u128;
        }
        self.max_depth = self.max_depth.max(depth);
        self.last_sample = Some((now, depth));
    }

    /// Fraction of time (up to the last observation) the queue spent at a
    /// depth of at least `depth` packets — e.g. `occupancy_at_least(K)` is
    /// how often arrivals were being marked.
    pub fn occupancy_at_least(&self, depth: usize) -> f64 {
        let total: u128 = self.depth_hist_ns.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let from = bucket_of(depth);
        let above: u128 = self.depth_hist_ns[from..].iter().sum();
        above as f64 / total as f64
    }

    /// The time-weighted depth histogram as `(bucket lower edge, fraction
    /// of time)` pairs.
    pub fn depth_histogram(&self) -> Vec<(usize, f64)> {
        let total: u128 = self.depth_hist_ns.iter().sum();
        DEPTH_BUCKETS
            .iter()
            .zip(self.depth_hist_ns.iter())
            .map(|(&lo, &ns)| {
                let f = if total == 0 {
                    0.0
                } else {
                    ns as f64 / total as f64
                };
                (lo, f)
            })
            .collect()
    }

    /// Time-weighted mean queue depth over `[0, now]`, in packets.
    pub fn mean_depth(&self, now: SimTime) -> f64 {
        let mut acc = self.depth_weighted_ns;
        if let Some((t0, d0)) = self.last_sample {
            let dt = now.as_nanos().saturating_sub(t0.as_nanos());
            acc += dt as u128 * d0 as u128;
        }
        if now.as_nanos() == 0 {
            0.0
        } else {
            acc as f64 / now.as_nanos() as f64
        }
    }

    /// Utilization of a direction with capacity `bandwidth_bps` over `[0, dur]`.
    pub fn utilization(&self, bandwidth_bps: u64, duration_ns: u64) -> f64 {
        if bandwidth_bps == 0 || duration_ns == 0 {
            return 0.0;
        }
        let sent_bits = self.delivered_bytes.as_bytes() as f64 * 8.0;
        let cap_bits = bandwidth_bps as f64 * duration_ns as f64 / 1e9;
        sent_bits / cap_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmp_des::SimDuration;

    #[test]
    fn mean_depth_time_weighted() {
        let mut s = DirStats::default();
        s.observe_backlog(SimTime::ZERO, 0);
        s.observe_backlog(SimTime::from_micros(10), 10); // depth 0 for 10us
        s.observe_backlog(SimTime::from_micros(20), 0); // depth 10 for 10us
        // mean over [0, 20us] = (0*10 + 10*10)/20 = 5
        assert!((s.mean_depth(SimTime::from_micros(20)) - 5.0).abs() < 1e-9);
        assert_eq!(s.max_depth, 10);
    }

    #[test]
    fn mean_depth_extends_last_sample() {
        let mut s = DirStats::default();
        s.observe_backlog(SimTime::ZERO, 4);
        // Constant depth 4, never observed again: still 4 on average.
        assert!((s.mean_depth(SimTime::from_millis(1)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_mapping() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(100), 7);
        assert_eq!(bucket_of(5000), 9);
    }

    #[test]
    fn histogram_is_time_weighted() {
        let mut s = DirStats::default();
        s.observe_backlog(SimTime::ZERO, 0);
        s.observe_backlog(SimTime::from_micros(30), 10); // depth 0 for 30us
        s.observe_backlog(SimTime::from_micros(40), 0); // depth 10 for 10us
        let h = s.depth_histogram();
        let f0 = h.iter().find(|&&(lo, _)| lo == 0).unwrap().1;
        let f8 = h.iter().find(|&&(lo, _)| lo == 8).unwrap().1;
        assert!((f0 - 0.75).abs() < 1e-9, "f0={f0}");
        assert!((f8 - 0.25).abs() < 1e-9, "f8={f8}");
        assert!((s.occupancy_at_least(8) - 0.25).abs() < 1e-9);
        assert!((s.occupancy_at_least(0) - 1.0).abs() < 1e-9);
        assert_eq!(s.occupancy_at_least(128), 0.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = DirStats::default();
        assert_eq!(s.occupancy_at_least(1), 0.0);
        assert!(s.depth_histogram().iter().all(|&(_, f)| f == 0.0));
    }

    #[test]
    fn utilization_full_link() {
        // 1 Gbps for 1 ms = 125_000 bytes.
        let s = DirStats {
            delivered_bytes: ByteSize::from_bytes(125_000),
            ..DirStats::default()
        };
        let u = s.utilization(1_000_000_000, SimDuration::from_millis(1).as_nanos());
        assert!((u - 1.0).abs() < 1e-9);
        assert_eq!(s.utilization(0, 1), 0.0);
    }
}
