//! Network addresses.
//!
//! Addresses are four octets, interpreted by each topology's routing logic.
//! The fat-tree topology follows the Al-Fares convention
//! `(10, pod, switch, host-id)` and additionally hands each host **alias
//! addresses** that differ in a path-selector octet — the simulator's
//! equivalent of the paper's "we assigned multiple addresses to each host so
//! that an MPTCP flow can establish multiple subflows that go through
//! different paths".

use std::fmt;

/// A four-octet address, dotted-quad style.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub [u8; 4]);

impl Addr {
    /// Build from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr([a, b, c, d])
    }

    /// Octet accessors, named for the fat-tree convention.
    pub const fn net(self) -> u8 {
        self.0[0]
    }
    /// Second octet (pod index in the fat tree).
    pub const fn pod(self) -> u8 {
        self.0[1]
    }
    /// Third octet (switch index in the fat tree).
    pub const fn switch(self) -> u8 {
        self.0[2]
    }
    /// Fourth octet (host id / path selector in the fat tree).
    pub const fn host(self) -> u8 {
        self.0[3]
    }

    /// Same address with a replaced fourth octet (used for path aliases).
    pub const fn with_host(self, d: u8) -> Self {
        Addr([self.0[0], self.0[1], self.0[2], d])
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let a = Addr::new(10, 3, 1, 2);
        assert_eq!(a.net(), 10);
        assert_eq!(a.pod(), 3);
        assert_eq!(a.switch(), 1);
        assert_eq!(a.host(), 2);
        assert_eq!(a.to_string(), "10.3.1.2");
    }

    #[test]
    fn with_host_replaces_only_last_octet() {
        let a = Addr::new(10, 3, 1, 2);
        assert_eq!(a.with_host(7), Addr::new(10, 3, 1, 7));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Addr::new(10, 0, 0, 1) < Addr::new(10, 0, 1, 0));
        assert!(Addr::new(9, 9, 9, 9) < Addr::new(10, 0, 0, 0));
    }
}
