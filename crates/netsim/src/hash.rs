//! In-tree FxHash-style hasher for hot-path lookup tables.
//!
//! The standard library's default `HashMap` hasher (SipHash-1-3) is
//! DoS-resistant but costs tens of cycles per lookup — wasted work for
//! simulator-internal tables whose keys are trusted integers (timer
//! tokens, flow ids). This is the classic multiply-rotate scheme used by
//! rustc's `FxHashMap`: one rotate, one xor and one multiply per word.
//!
//! Determinism note: the hasher has **no random state** (unlike
//! `RandomState`), so map behavior is identical across runs — a property
//! the reproducibility guarantees lean on even though none of the current
//! call sites iterate their maps.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-shot multiply-rotate hasher (FxHash scheme).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `HashMap` with the fast deterministic hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_and_is_deterministic() {
        let build = || {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for i in 0..1000u64 {
                m.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i);
            }
            m
        };
        let m = build();
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m[&i.wrapping_mul(0x9E37_79B9_7F4A_7C15)], i);
        }
        // No random state: two maps built identically hash identically.
        let mut keys_a: Vec<_> = m.keys().copied().collect();
        let mut keys_b: Vec<_> = build().keys().copied().collect();
        keys_a.sort_unstable();
        keys_b.sort_unstable();
        assert_eq!(keys_a, keys_b);
    }

    #[test]
    fn distinct_words_rarely_collide() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        let mut hashes: Vec<u64> = (0..10_000u64).map(|i| bh.hash_one(i)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 10_000);
    }
}
