//! Nodes: hosts and switches.

use crate::link::LinkId;
use crate::routing::Router;
use std::fmt;

/// Index of a node in the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a port on a node (attachment order of `connect` calls).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What a node is.
pub enum NodeKind {
    /// An end host; packets delivered here go to the node's agent.
    Host,
    /// A switch; packets delivered here are forwarded by the router.
    Switch(Box<dyn Router>),
}

impl fmt::Debug for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Host => write!(f, "Host"),
            NodeKind::Switch(_) => write!(f, "Switch"),
        }
    }
}

/// A node and its port-to-link attachments.
#[derive(Debug)]
pub struct Node {
    /// Host or switch.
    pub kind: NodeKind,
    /// `ports[p] = (link, direction out of this node)`.
    pub ports: Vec<(LinkId, u8)>,
    /// Optional human-readable label (topology builders set it).
    pub label: String,
}

impl Node {
    pub(crate) fn new(kind: NodeKind, label: String) -> Self {
        Node {
            kind,
            ports: Vec::new(),
            label,
        }
    }

    /// Number of attached ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Whether this node is a host.
    pub fn is_host(&self) -> bool {
        matches!(self.kind, NodeKind::Host)
    }
}
