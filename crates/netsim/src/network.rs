//! The simulation: nodes + links + agents + the event loop.
//!
//! [`Sim`] owns everything and processes three event kinds:
//!
//! * `TxDone` — a packet finished serializing onto a link direction; it now
//!   propagates (scheduled `Deliver`) and the next queued packet starts
//!   transmitting,
//! * `Deliver` — a packet arrived at the far end: switches forward it
//!   (consulting their [`Router`](crate::routing) implementation), hosts hand it to
//!   their [`Agent`],
//! * `Timer` — an agent timer fired (with lazy generation-based
//!   cancellation).
//!
//! Drivers (workloads, experiments) interleave `run_until` with direct agent
//! access through [`Sim::with_agent`], and observe out-of-band agent signals
//! through the `run_until` callback.

use crate::addr::Addr;
use crate::agent::{Agent, Ctx, Emit};
use crate::fault::{FaultEvent, FaultPlan};
use crate::fib::{AddrIndex, CompiledFib};
use crate::hash::FxHashMap;
use crate::link::{Link, LinkId, LinkParams};
use crate::node::{Node, NodeId, NodeKind, PortId};
use crate::packet::{FlowId, Packet};
use crate::probe::{ProbeConfig, ProbeRecord, Probes, SimProfile};
use crate::queue::{EnqueueOutcome, Qdisc};
use crate::routing::Router;
use crate::trace::{TraceBuffer, TraceEvent, TraceKind};
use std::collections::VecDeque;
use xmp_des::{Engine, SimRng, SimTime};

#[path = "partition.rs"]
pub mod partition;

/// Payload requirements for simulated packets.
pub trait Payload: Clone + std::fmt::Debug + Send + 'static {}
impl<T: Clone + std::fmt::Debug + Send + 'static> Payload for T {}

/// Hot-path implementation switches. Both selections are proven
/// behaviour-preserving by differential tests; the slow paths stay in-tree
/// as benchmark baselines (`bench_pr2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimTuning {
    /// Forward through compiled flat FIBs ([`crate::fib`]) instead of the
    /// dynamic `Router::route` scan. Bit-identical by construction
    /// (compilation misses fall back to the dynamic router), so on by
    /// default.
    pub compiled_fib: bool,
    /// One engine event per packet-hop: skip `TxDone` and schedule the
    /// `Deliver` directly from precomputed departure times. Equivalence
    /// with the eager pipeline rests on propagation delay exceeding
    /// serialization time (true for every in-tree topology) and is pinned
    /// empirically by multi-seed differential tests; off by default.
    pub lazy_links: bool,
    /// Graceful no-route mode: instead of panicking when a switch has no
    /// route for a packet (the default, which treats an unroutable
    /// destination as a topology bug), count the packet as a
    /// [`TraceKind::NoRoute`] drop and continue — the right behaviour when
    /// fault injection partitions the network. Off by default.
    pub drop_unroutable: bool,
}

impl Default for SimTuning {
    fn default() -> Self {
        SimTuning {
            compiled_fib: true,
            lazy_links: false,
            drop_unroutable: false,
        }
    }
}

/// Events processed by the network simulation.
#[derive(Debug)]
pub enum NetEvent<P> {
    /// A packet finished serializing on `link` direction `dir`.
    TxDone {
        /// The link.
        link: LinkId,
        /// Direction index (0 = a→b, 1 = b→a).
        dir: u8,
        /// The direction's failure generation at scheduling time; stale
        /// events (the link failed in between) are ignored.
        gen: u32,
    },
    /// A packet reached the far end of `link` direction `dir`.
    Deliver {
        /// The link.
        link: LinkId,
        /// Direction index.
        dir: u8,
        /// Failure generation at scheduling time; a stale delivery means
        /// the packet was blackholed by a link failure mid-flight.
        gen: u32,
        /// The packet.
        pkt: Packet<P>,
    },
    /// Agent timer expiry (ignored if `gen` is stale).
    Timer {
        /// Owning node.
        node: NodeId,
        /// Agent-chosen token.
        token: u64,
        /// Generation at scheduling time.
        gen: u64,
    },
    /// A scheduled [`FaultEvent`] from the installed
    /// [`FaultPlan`] (index into the timeline).
    Fault {
        /// Index into the sim's installed fault timeline.
        idx: u32,
    },
    /// Periodic probe sampling tick (only ever scheduled by
    /// [`Sim::install_probes`]; re-schedules itself every interval).
    Sample,
}

/// Deadline-bump state for one `(node, token)` agent timer.
///
/// Re-arming a timer does **not** schedule a fresh engine event; it only
/// records the new deadline (`intent`) and lets the single tracked in-flight
/// event re-arm itself when it fires early. This matters enormously for
/// retransmission timers, which transports push out by a full RTO on every
/// ACK: the naive schedule-per-set approach keeps `ack rate × RTO` stale
/// events churning through the far-future overflow heap, while this scheme
/// keeps exactly one pending event per armed timer. A fresh event is
/// scheduled only when none is in flight or the deadline moved *earlier*
/// than the tracked event (the superseded event becomes an orphan, detected
/// by its stale `sched_gen`).
#[derive(Debug, Default, Clone, Copy)]
struct TimerState {
    /// The armed deadline; `None` while disarmed (cancelled or fired).
    intent: Option<SimTime>,
    /// The tracked in-flight engine event: `(fire time, schedule
    /// generation)`. An event carrying any other generation is an orphan
    /// and is ignored on expiry.
    sched: Option<(SimTime, u64)>,
    /// Monotone per-token schedule counter backing orphan detection.
    sched_gen: u64,
}

/// Same-instant tie keys for engine events (see `Engine::schedule_keyed`).
///
/// Events firing at the same instant are ranked by *identity*, not by when
/// they were scheduled: all packet arrivals first (by link, direction),
/// then agent timers (by node), then — eager pipeline only — `TxDone`
/// bookkeeping. This is load-bearing for the lazy/eager bit-identity: the
/// lazy pipeline schedules a packet's `Deliver` at enqueue time while the
/// eager one schedules it at transmit start, so scheduling order differs
/// between the modes but the identity rank does not. `TxDone` last ensures
/// every same-instant arrival is enqueued before the transmitter pops and
/// samples its backlog, matching the lazy pipeline's analytic replay
/// (which pops departures strictly *before* `now` at each enqueue).
fn deliver_key(link: LinkId, dir: u8) -> u64 {
    ((link.0 as u64) << 1) | dir as u64
}
fn timer_key(node: NodeId) -> u64 {
    (1 << 62) | node.0 as u64
}
fn tx_done_key(link: LinkId, dir: u8) -> u64 {
    (2 << 62) | ((link.0 as u64) << 1) | dir as u64
}
/// Faults rank after every packet/timer event at the same instant: traffic
/// scheduled "at t" still experiences the pre-fault topology at t, which
/// keeps the cut-over point identical across eager and lazy pipelines.
fn fault_key(idx: u32) -> u64 {
    (3 << 62) | idx as u64
}
/// Probe sampling ranks dead last at an instant: a tick at `t` observes the
/// state *after* every packet, timer and fault effect at `t`, which is what
/// makes the sampled queue depth identical across the eager and lazy link
/// pipelines (`u64::MAX` exceeds every `fault_key`, whose index is a u32).
const SAMPLE_KEY: u64 = u64::MAX;

/// Identity rank of the event `ev` would be scheduled under — the same key
/// `schedule_keyed` orders it by at an instant. Partitioned shards stamp
/// probe records with the rank of the event being processed so the merge
/// can reproduce the serial record order exactly (see
/// [`partition::PartitionedSim`]).
fn event_rank<P>(ev: &NetEvent<P>) -> u64 {
    match ev {
        NetEvent::Deliver { link, dir, .. } => deliver_key(*link, *dir),
        NetEvent::TxDone { link, dir, .. } => tx_done_key(*link, *dir),
        NetEvent::Timer { node, .. } => timer_key(*node),
        NetEvent::Fault { idx } => fault_key(*idx),
        NetEvent::Sample => SAMPLE_KEY,
    }
}

/// Per-shard bookkeeping present only while this `Sim` is one partition of
/// a [`partition::PartitionedSim`]. `None` in serial runs: the hot path
/// pays exactly one branch per scheduled delivery.
pub(crate) struct ShardState<P> {
    /// Per link, bit `dir` set means direction `dir`'s receiving node lives
    /// on another shard: its `Deliver` goes to the outbox, not the engine.
    pub(crate) remote_rx: Vec<u8>,
    /// Cross-partition deliveries produced this round, in emission order:
    /// `(arrival, link, dir, fail_gen, pkt)`.
    pub(crate) outbox: Vec<(SimTime, LinkId, u8, u32, Packet<P>)>,
    /// Identity rank of the event (or driver operation) currently being
    /// processed; stamped on probe records for the deterministic merge.
    pub(crate) rank: (u64, u64),
    /// Per probe-watch index: whether this shard owns the transmit side
    /// (records `Queue`/`Mark`) and the receive side (records `Util`).
    pub(crate) watch_roles: Vec<(bool, bool)>,
}

/// The whole simulation.
///
/// Generic over the agent type `A` running on hosts. The default,
/// `Box<dyn Agent<P>>`, accepts heterogeneous agents through one virtual
/// call per delivery — the historical behaviour. Fixing `A` to a concrete
/// type (the suite runner uses the in-tree transport host) devirtualizes
/// every packet delivery and timer callback; the blanket
/// `impl Agent<P> for Box<A>` keeps boxed call sites working unchanged.
pub struct Sim<P: Payload, A: Agent<P> = Box<dyn Agent<P>>> {
    engine: Engine<NetEvent<P>>,
    nodes: Vec<Node>,
    links: Vec<Link<P>>,
    agents: Vec<Option<A>>,
    /// Address book as a sorted `(addr-as-u32, node)` table: binary-search
    /// lookups, no hashing, deterministic iteration. Bindings happen only
    /// during topology construction.
    addr_book: Vec<(u32, NodeId)>,
    /// Per-node timer state, indexed densely by `NodeId`. Tokens are
    /// sparse agent-chosen u64s (connection × subflow × kind packed bits),
    /// so each node keeps a small fast-hash map rather than a dense slab.
    timers: Vec<FxHashMap<u64, TimerState>>,
    signals: VecDeque<(NodeId, u64)>,
    /// Recycled agent emission buffers: every packet delivery and timer
    /// expiry needs a scratch `Vec<Emit>`, and allocating one per event was
    /// the hot loop's last per-packet heap allocation.
    emit_pool: Vec<Vec<Emit<P>>>,
    rng: SimRng,
    trace: Option<TraceBuffer>,
    /// Installed time-series probes (`None` = subsystem fully disabled).
    probes: Option<Probes>,
    /// Always-on engine-loop profiling counters (pure observation).
    profile: SimProfile,
    tuning: SimTuning,
    /// Destination index over the address book, built with the FIBs.
    addr_index: Option<AddrIndex>,
    /// Per-node compiled forwarding table (`None` for hosts and for
    /// routers that don't compile).
    fibs: Vec<Option<CompiledFib>>,
    /// Cleared whenever topology or tuning changes; `run_until` rebuilds.
    fibs_ready: bool,
    /// Installed fault timeline; engine `Fault` events index into it.
    fault_timeline: Vec<FaultEvent>,
    /// Packets dropped for lack of a route (`drop_unroutable` mode).
    unroutable: u64,
    /// Conservation audit: packets injected by host agents (`Emit::Send`).
    audit_injected: u64,
    /// Conservation audit: packets handed to a destination host agent.
    audit_delivered: u64,
    /// Conservation audit: packets dropped anywhere, for any counted
    /// reason (qdisc, fault, corruption, blackhole, no-route).
    audit_dropped: u64,
    /// Set iff this sim is one shard of a [`partition::PartitionedSim`].
    part: Option<Box<ShardState<P>>>,
}

/// Packet-conservation snapshot from [`Sim::audit_conservation`]: every
/// injected packet must be delivered, dropped with a counted reason, or
/// still sitting in the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditReport {
    /// Packets injected by host agents.
    pub injected: u64,
    /// Packets handed to destination host agents.
    pub delivered: u64,
    /// Packets dropped, all reasons combined.
    pub dropped: u64,
    /// Packets accepted by some link direction and not yet delivered.
    pub in_network: u64,
}

impl<P: Payload, A: Agent<P>> Sim<P, A> {
    /// Fresh, empty simulation seeded with `seed` (drives fault injection
    /// and any other network-side randomness).
    pub fn new(seed: u64) -> Self {
        Sim {
            engine: Engine::new(),
            nodes: Vec::new(),
            links: Vec::new(),
            agents: Vec::new(),
            addr_book: Vec::new(),
            timers: Vec::new(),
            signals: VecDeque::new(),
            emit_pool: Vec::new(),
            rng: SimRng::new(seed),
            trace: None,
            probes: None,
            profile: SimProfile::default(),
            tuning: SimTuning::default(),
            addr_index: None,
            fibs: Vec::new(),
            fibs_ready: false,
            fault_timeline: Vec::new(),
            unroutable: 0,
            audit_injected: 0,
            audit_delivered: 0,
            audit_dropped: 0,
            part: None,
        }
    }

    /// Select hot-path implementations (call before running; changing the
    /// tuning invalidates any compiled FIBs).
    pub fn set_tuning(&mut self, tuning: SimTuning) {
        self.tuning = tuning;
        self.fibs_ready = false;
    }

    /// Current hot-path tuning.
    pub fn tuning(&self) -> SimTuning {
        self.tuning
    }

    fn take_emit_buf(&mut self) -> Vec<Emit<P>> {
        match self.emit_pool.pop() {
            Some(buf) => {
                self.profile.pool_hits += 1;
                buf
            }
            None => {
                self.profile.pool_misses += 1;
                Vec::new()
            }
        }
    }

    /// Turn on packet tracing with a ring buffer of `capacity` events
    /// (off by default; see [`crate::trace`]).
    pub fn enable_trace(&mut self, capacity: usize) -> &mut TraceBuffer {
        self.trace = Some(TraceBuffer::new(capacity));
        self.trace.as_mut().expect("just set")
    }

    /// The trace buffer, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Mutable trace access (to adjust filters mid-run).
    pub fn trace_mut(&mut self) -> Option<&mut TraceBuffer> {
        self.trace.as_mut()
    }

    /// Install time-series probes and schedule the first sampling tick.
    ///
    /// Follows the [`FaultPlan`] discipline: a sim that never calls this
    /// schedules no `Sample` event, touches no RNG stream, and stays
    /// bit-identical to a build without the subsystem. With probes
    /// installed, sampling is ranked after all same-instant traffic
    /// (`SAMPLE_KEY`) and only *observes* — flow outcomes are unchanged.
    ///
    /// # Panics
    /// Panics if probes are already installed.
    pub fn install_probes(&mut self, cfg: ProbeConfig) {
        assert!(self.probes.is_none(), "probes already installed");
        let p = Probes::new(cfg);
        let first = self.engine.now() + p.interval;
        if first <= p.until {
            self.engine
                .schedule_keyed(first, SAMPLE_KEY, NetEvent::Sample);
        }
        self.probes = Some(p);
    }

    /// The recorded probe series, if probes are installed.
    pub fn probes(&self) -> Option<&Probes> {
        self.probes.as_ref()
    }

    /// Mutable probe access (drivers push their own records, e.g.
    /// per-subflow cwnd snapshots).
    pub fn probes_mut(&mut self) -> Option<&mut Probes> {
        self.probes.as_mut()
    }

    /// Remove and return the probes (ends sampling: a still-pending tick
    /// finds no probes and does not re-schedule).
    pub fn take_probes(&mut self) -> Option<Probes> {
        self.probes.take()
    }

    /// Engine-loop profiling counters (events per kind, pool hit rate,
    /// wall time per phase). Always on; never part of simulated state.
    pub fn profile(&self) -> &SimProfile {
        &self.profile
    }

    /// Instantaneous backlog of a link direction in packets (queued +
    /// serializing), consistent across the eager and lazy pipelines at any
    /// driver-visible instant (run boundaries and probe ticks). A downed
    /// direction reads zero.
    pub fn queue_depth(&mut self, link: LinkId, dir: u8) -> usize {
        let now = self.engine.now();
        let lazy = self.tuning.lazy_links;
        let d = self.links[link.0 as usize].dir_mut(dir);
        if d.down {
            0
        } else if lazy {
            // `run_until`/`advance_to` already retired departures up to the
            // boundary; a probe tick at `t` flushes `depart <= t` itself,
            // mirroring the eager pipeline having processed every TxDone
            // at or before `t` (TxDone ranks before Sample at an instant).
            d.lazy_flush(now);
            d.pending.len()
        } else {
            d.queue.len() + usize::from(d.in_flight.is_some())
        }
    }

    /// One probe sampling tick: record watched queue depths and delivery
    /// counters, then re-arm unless past the configured end.
    fn on_sample(&mut self) {
        let Some(mut p) = self.probes.take() else {
            return; // probes were taken mid-run; stop sampling
        };
        let now = self.engine.now();
        for i in 0..p.watch.len() {
            let (link, dir) = p.watch[i];
            // In a partitioned shard, the transmit owner records the queue
            // series (depth and enqueue/mark/drop counters live tx-side)
            // and the receive owner records the utilization series
            // (delivery counters live rx-side). Serial records both.
            let (tx_role, rx_role) = match self.part.as_ref() {
                Some(ps) => ps.watch_roles[i],
                None => (true, true),
            };
            if tx_role {
                let depth = self.queue_depth(link, dir) as u64;
                let stats = &self.links[link.0 as usize].dir(dir).stats;
                p.push_ranked(
                    ProbeRecord::Queue {
                        at: now,
                        link: link.0,
                        dir,
                        depth,
                        enqueued: stats.enqueued,
                        marked: stats.marked,
                        dropped: stats.dropped,
                    },
                    (SAMPLE_KEY, (i as u64) * 2),
                );
            }
            if rx_role {
                let stats = &self.links[link.0 as usize].dir(dir).stats;
                p.push_ranked(
                    ProbeRecord::Util {
                        at: now,
                        link: link.0,
                        dir,
                        delivered_bytes: stats.delivered_bytes.as_bytes(),
                    },
                    (SAMPLE_KEY, (i as u64) * 2 + 1),
                );
            }
        }
        let next = now + p.interval;
        if next <= p.until {
            self.engine
                .schedule_keyed(next, SAMPLE_KEY, NetEvent::Sample);
        }
        self.probes = Some(p);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Total events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.engine.processed()
    }

    /// Total events ever scheduled on the engine (profiling; includes
    /// stale-cancelled timers and still-pending events).
    pub fn events_scheduled(&self) -> u64 {
        self.engine.scheduled()
    }

    /// Add an end host running `agent`.
    pub fn add_host(&mut self, label: impl Into<String>, agent: A) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(NodeKind::Host, label.into()));
        self.agents.push(Some(agent));
        self.timers.push(FxHashMap::default());
        id
    }

    /// Add a switch forwarding with `router`.
    pub fn add_switch(&mut self, label: impl Into<String>, mut router: Box<dyn Router>) -> NodeId {
        router.prepare();
        let id = NodeId(self.nodes.len() as u32);
        self.nodes
            .push(Node::new(NodeKind::Switch(router), label.into()));
        self.agents.push(None);
        self.timers.push(FxHashMap::default());
        self.fibs_ready = false;
        id
    }

    /// Replace a switch's router (topology builders wire routes after
    /// connecting, once port numbers are known).
    pub fn set_router(&mut self, node: NodeId, mut router: Box<dyn Router>) {
        router.prepare();
        match &mut self.nodes[node.0 as usize].kind {
            NodeKind::Switch(r) => *r = router,
            NodeKind::Host => panic!("set_router on a host"),
        }
        self.fibs_ready = false;
    }

    /// Connect `a` and `b` with a full-duplex link; returns its id.
    /// The new port indices are `a`'s and `b`'s next free ports.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        params: &LinkParams,
        label: impl Into<String>,
    ) -> LinkId {
        assert_ne!(a, b, "self-loop link");
        let id = LinkId(self.links.len() as u32);
        let pa = PortId(self.nodes[a.0 as usize].ports.len() as u16);
        let pb = PortId(self.nodes[b.0 as usize].ports.len() as u16);
        let link = Link::new(params, (a, pa), (b, pb), &self.rng, id.0, label.into());
        self.nodes[a.0 as usize].ports.push((id, 0));
        self.nodes[b.0 as usize].ports.push((id, 1));
        self.links.push(link);
        id
    }

    /// Bind an address to a node (a node may hold many addresses; the
    /// fat-tree path aliases rely on this).
    pub fn bind_addr(&mut self, addr: crate::addr::Addr, node: NodeId) {
        let key = u32::from_be_bytes(addr.0);
        match self.addr_book.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => panic!("address {addr} already bound to {:?}", self.addr_book[i].1),
            Err(i) => self.addr_book.insert(i, (key, node)),
        }
        self.fibs_ready = false;
    }

    /// Iterate all bound `(address, node)` pairs in address order.
    pub fn addresses(&self) -> impl Iterator<Item = (Addr, NodeId)> + '_ {
        self.addr_book
            .iter()
            .map(|&(k, n)| (Addr(k.to_be_bytes()), n))
    }

    /// Node owning `addr`, if bound.
    pub fn lookup_addr(&self, addr: crate::addr::Addr) -> Option<NodeId> {
        let key = u32::from_be_bytes(addr.0);
        self.addr_book
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| self.addr_book[i].1)
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Immutable link access.
    pub fn link(&self, id: LinkId) -> &Link<P> {
        &self.links[id.0 as usize]
    }

    /// Iterate all links with their ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link<P>)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Change a link's fault-injection drop probability at runtime
    /// (both directions). `p = 1.0` blackholes the link — the simulator's
    /// model of a link failure (the torus experiment closes L3 mid-run).
    pub fn set_link_drop_prob(&mut self, link: LinkId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        for d in &mut self.links[link.0 as usize].dirs {
            d.fault.drop_prob = p;
        }
    }

    /// Install a [`FaultPlan`]: apply its per-link loss/corruption rates
    /// and schedule its timeline on the engine. May be called before or
    /// during a run (events must not be in the past); installing several
    /// plans accumulates. An empty plan changes nothing — no RNG stream is
    /// touched and no event is scheduled, so results stay bit-identical to
    /// a run without fault machinery.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        let now = self.engine.now();
        for &(link, p) in &plan.loss {
            self.set_link_drop_prob(link, p);
        }
        for &(link, p) in &plan.corruption {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
            for d in &mut self.links[link.0 as usize].dirs {
                d.fault.corrupt_prob = p;
            }
        }
        for &(at, ev) in &plan.timeline {
            assert!(at >= now, "fault event {ev:?} scheduled in the past");
            let idx = u32::try_from(self.fault_timeline.len()).expect("fault timeline overflow");
            self.fault_timeline.push(ev);
            self.engine
                .schedule_keyed(at, fault_key(idx), NetEvent::Fault { idx });
        }
    }

    /// Fail both directions of `link` immediately.
    ///
    /// Queued and serializing packets are purged and counted as
    /// [`DirStats::blackholed`](crate::stats::DirStats::blackholed);
    /// packets already propagating die on arrival via the direction's
    /// failure generation (their `Deliver` events are recognized as
    /// stale). While down, everything offered to the link is blackholed
    /// (counted, no RNG consumed). Compiled FIB entries steering at either
    /// endpoint's dead port are demoted to `Miss` so forwarding falls back
    /// to the dynamic router — which still picks the dead port unless the
    /// topology's router is failure-aware, modelling a fabric whose
    /// routing hasn't reconverged; multipath transports are expected to
    /// shift load to surviving subflows instead (the failover experiment).
    pub fn take_link_down(&mut self, link: LinkId) {
        let now = self.engine.now();
        let lazy = self.tuning.lazy_links;
        let l = &mut self.links[link.0 as usize];
        let label = l.label.clone();
        let ends = [
            (l.dirs[0].to_node, l.dirs[0].to_port),
            (l.dirs[1].to_node, l.dirs[1].to_port),
        ];
        for dir in 0..2u8 {
            let d = l.dir_mut(dir);
            if d.down {
                continue;
            }
            d.down = true;
            d.fail_gen = d.fail_gen.wrapping_add(1);
            if lazy {
                // Every accepted packet already has a (now stale) Deliver
                // scheduled; it is counted blackholed on arrival. Replay
                // the departures that genuinely happened, then drop the
                // booking state so the backlog reads zero, mirroring the
                // eager drain below sample for sample.
                d.lazy_advance(now);
                d.pending.clear();
                d.busy_until = SimTime::ZERO;
                d.stats.observe_backlog(now, 0);
                debug_assert_eq!(
                    d.lazy_waiting(now),
                    0,
                    "lazy backlog nonzero after tearing down {label}/{dir}"
                );
            } else {
                // Queued and serializing packets have no Deliver event yet:
                // purge and count them here. The serializing packet's
                // TxDone arrives stale and is ignored.
                while let Some(p) = d.queue.dequeue() {
                    d.stats.blackholed += 1;
                    d.in_network -= 1;
                    self.audit_dropped += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.record(TraceEvent {
                            at: now,
                            link,
                            dir,
                            kind: TraceKind::LinkDownDrop,
                            flow: p.flow,
                            size: p.size.as_bytes(),
                            backlog: d.queue.len(),
                        });
                    }
                }
                if let Some(p) = d.in_flight.take() {
                    d.stats.blackholed += 1;
                    d.in_network -= 1;
                    self.audit_dropped += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.record(TraceEvent {
                            at: now,
                            link,
                            dir,
                            kind: TraceKind::LinkDownDrop,
                            flow: p.flow,
                            size: p.size.as_bytes(),
                            backlog: 0,
                        });
                    }
                }
                d.sample_backlog(now);
            }
        }
        // Stop compiled tables from steering at the dead ports. The
        // dynamic fallback stays authoritative for affected destinations
        // until repair recompiles.
        if self.fibs_ready {
            for (node, port) in ends {
                if let Some(Some(fib)) = self.fibs.get_mut(node.0 as usize) {
                    fib.invalidate_port(port);
                }
            }
        }
    }

    /// Repair both directions of `link`. In-flight state was already
    /// purged at failure; recompiling the two endpoints' FIBs restores
    /// compiled forwarding over the link.
    ///
    /// The recompilation is **incremental**: `take_link_down` only demoted
    /// entries in the two endpoint switches' compiled tables, so repair
    /// rebuilds exactly those two tables instead of invalidating the whole
    /// fleet and falling back to the dynamic router until the next
    /// `run_until`. Behaviour-identical to the full recompile (a compiled
    /// entry forwards exactly where the dynamic router would, and routing
    /// consumes no RNG), but the repair path stays off the slow path — and
    /// off the per-run full `compile_fibs` rebuild — for the rest of the
    /// run.
    pub fn bring_link_up(&mut self, link: LinkId) {
        let l = &self.links[link.0 as usize];
        let ends = [l.dirs[0].to_node, l.dirs[1].to_node];
        for d in &mut self.links[link.0 as usize].dirs {
            d.down = false;
        }
        if !self.fibs_ready || !self.tuning.compiled_fib {
            // Nothing compiled yet (or compilation disabled): the next
            // `run_until` builds from scratch anyway.
            return;
        }
        let dsts: Vec<Addr> = self
            .addr_book
            .iter()
            .map(|&(k, _)| Addr(k.to_be_bytes()))
            .collect();
        let wall = std::time::Instant::now();
        for node in ends {
            if let NodeKind::Switch(r) = &self.nodes[node.0 as usize].kind {
                self.fibs[node.0 as usize] = r.compile(&dsts);
            }
        }
        self.profile.fib_compile_ns += wall.elapsed().as_nanos() as u64;
    }

    /// Packets dropped for lack of a route (only under
    /// [`SimTuning::drop_unroutable`]).
    pub fn unroutable_drops(&self) -> u64 {
        self.unroutable
    }

    /// Check packet conservation: every packet injected by a host agent
    /// was delivered to a host, dropped with a counted reason, or is still
    /// sitting in some link direction. Panics (in all build profiles) if
    /// the books don't balance; returns the totals.
    pub fn audit_conservation(&self) -> AuditReport {
        let mut in_network = 0i64;
        for l in &self.links {
            for d in &l.dirs {
                assert!(
                    d.in_network >= 0,
                    "negative in-network count {} on {}",
                    d.in_network,
                    l.label
                );
                in_network += d.in_network;
            }
        }
        let report = AuditReport {
            injected: self.audit_injected,
            delivered: self.audit_delivered,
            dropped: self.audit_dropped,
            in_network: in_network as u64,
        };
        assert_eq!(
            report.injected,
            report.delivered + report.dropped + report.in_network,
            "packet conservation violated: {report:?}"
        );
        report
    }

    /// Run the concrete agent on `node` with driver code.
    ///
    /// The downcast target `T` is independent of the sim's agent parameter
    /// `A`: with boxed agents `T` names the concrete type inside the box
    /// (via the blanket `Box<A>` impl's delegating `as_any_mut`), with
    /// static dispatch it is usually `A` itself.
    ///
    /// # Panics
    /// Panics if `node` is not a host or its agent is not a `T`.
    pub fn with_agent<T: Agent<P>, R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_, P>) -> R,
    ) -> R {
        let mut agent = self.agents[node.0 as usize]
            .take()
            .unwrap_or_else(|| panic!("{node:?} has no agent (switch or reentrant access)"));
        let mut emits = self.take_emit_buf();
        let now = self.engine.now();
        let r = {
            let mut ctx = Ctx::new(now, &mut emits);
            let a = agent
                .as_any_mut()
                .downcast_mut::<T>()
                .expect("agent type mismatch");
            f(a, &mut ctx)
        };
        self.agents[node.0 as usize] = Some(agent);
        self.process_emits(node, emits);
        r
    }

    /// Process all events up to and including `deadline`. After each event,
    /// pending agent signals are handed to `on_signal` (which may itself use
    /// [`Sim::with_agent`] and generate more work).
    ///
    /// One queue access per event: `pop_at_or_before` replaces the old
    /// `peek_time` + `pop` pair, which paid the scheduler's find-minimum
    /// cost twice on every packet.
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        mut on_signal: impl FnMut(&mut Self, NodeId, u64),
    ) {
        self.compile_fibs();
        let wall = std::time::Instant::now();
        let alloc_start = crate::probe::read_alloc_probe();
        while let Some((_, ev)) = self.engine.pop_at_or_before(deadline) {
            self.handle(ev);
            while let Some((node, code)) = self.signals.pop_front() {
                on_signal(self, node, code);
            }
        }
        // Eager processed every TxDone up to the deadline; retire the
        // matching lazy departures so stats observed after the run window
        // (and any run that resumes later) see identical samples.
        self.flush_lazy(deadline);
        if let (Some(start), Some(end)) = (alloc_start, crate::probe::read_alloc_probe()) {
            self.profile.allocs += end.saturating_sub(start);
        }
        self.profile.run_wall_ns += wall.elapsed().as_nanos() as u64;
    }

    /// `run_until` ignoring signals.
    pub fn run_until_quiet(&mut self, deadline: SimTime) {
        self.run_until(deadline, |_, _, _| {});
    }

    /// Advance the clock to `t` after the event queue has been drained up
    /// to it (panics if that would skip an event). Drivers use this to
    /// start flows at exact scheduled instants between network events.
    pub fn advance_to(&mut self, t: SimTime) {
        self.engine.advance_to(t);
        self.flush_lazy(t);
    }

    /// Build the destination index and per-switch compiled FIBs (no-op when
    /// already current). `run_until` calls this automatically; tests that
    /// probe [`Sim::route_on`] directly call it themselves.
    pub fn compile_fibs(&mut self) {
        if self.fibs_ready {
            return;
        }
        let wall = std::time::Instant::now();
        if self.tuning.compiled_fib {
            let keys: Vec<u32> = self.addr_book.iter().map(|&(k, _)| k).collect();
            let dsts: Vec<Addr> = self
                .addr_book
                .iter()
                .map(|&(k, _)| Addr(k.to_be_bytes()))
                .collect();
            self.addr_index = Some(AddrIndex::build(&keys));
            self.fibs = self
                .nodes
                .iter()
                .map(|n| match &n.kind {
                    NodeKind::Switch(r) => r.compile(&dsts),
                    NodeKind::Host => None,
                })
                .collect();
        } else {
            self.addr_index = None;
            self.fibs = (0..self.nodes.len()).map(|_| None).collect();
        }
        self.fibs_ready = true;
        self.profile.fib_compile_ns += wall.elapsed().as_nanos() as u64;
    }

    /// Forwarding decision exactly as the hot path makes it: compiled FIB
    /// when available, dynamic router otherwise (requires
    /// [`Sim::compile_fibs`]). Panics on hosts and unroutable destinations,
    /// like forwarding would.
    pub fn route_on(&self, node: NodeId, dst: Addr, flow: FlowId, in_port: PortId) -> PortId {
        assert!(self.fibs_ready, "call compile_fibs() before route_on()");
        let compiled = self.fibs[node.0 as usize].as_ref();
        match (compiled, &self.addr_index) {
            (Some(fib), Some(ai)) => ai
                .lookup(dst)
                .and_then(|di| fib.lookup(di, flow))
                .unwrap_or_else(|| self.route_dynamic(node, dst, flow, in_port)),
            _ => self.route_dynamic(node, dst, flow, in_port),
        }
    }

    /// Forwarding decision from the dynamic router alone.
    pub fn route_dynamic(&self, node: NodeId, dst: Addr, flow: FlowId, in_port: PortId) -> PortId {
        match &self.nodes[node.0 as usize].kind {
            NodeKind::Switch(router) => router.route(dst, flow, in_port),
            NodeKind::Host => panic!("route_dynamic on a host"),
        }
    }

    fn flush_lazy(&mut self, t: SimTime) {
        if !self.tuning.lazy_links {
            return;
        }
        for l in &mut self.links {
            for d in &mut l.dirs {
                d.lazy_flush(t);
            }
        }
    }

    fn handle(&mut self, ev: NetEvent<P>) {
        if let Some(ps) = self.part.as_mut() {
            // Probe records and signals produced while handling this event
            // carry its identity rank, so the cross-shard merge can restore
            // the serial order at equal timestamps.
            ps.rank = (event_rank(&ev), 0);
        }
        match ev {
            NetEvent::TxDone { link, dir, gen } => {
                self.profile.tx_done += 1;
                self.on_tx_done(link, dir, gen);
            }
            NetEvent::Deliver {
                link,
                dir,
                gen,
                pkt,
            } => {
                self.profile.deliver += 1;
                self.on_deliver(link, dir, gen, pkt);
            }
            NetEvent::Timer { node, token, gen } => {
                self.profile.timer += 1;
                self.on_timer(node, token, gen);
            }
            NetEvent::Fault { idx } => {
                self.profile.fault += 1;
                self.on_fault(idx);
            }
            NetEvent::Sample => {
                self.profile.sample += 1;
                self.on_sample();
            }
        }
    }

    fn on_fault(&mut self, idx: u32) {
        match self.fault_timeline[idx as usize] {
            FaultEvent::LinkDown(l) => self.take_link_down(l),
            FaultEvent::LinkUp(l) => self.bring_link_up(l),
            FaultEvent::SwitchDown(n) => {
                let links: Vec<LinkId> = self.nodes[n.0 as usize]
                    .ports
                    .iter()
                    .map(|&(l, _)| l)
                    .collect();
                for l in links {
                    self.take_link_down(l);
                }
            }
        }
    }

    fn on_tx_done(&mut self, link: LinkId, dir: u8, gen: u32) {
        let now = self.engine.now();
        let l = &mut self.links[link.0 as usize];
        let delay = l.delay;
        let bandwidth = l.bandwidth;
        let d = l.dir_mut(dir);
        if gen != d.fail_gen {
            // The link failed since this was scheduled; the serializing
            // packet was already purged and counted by `take_link_down`.
            return;
        }
        let pkt = d
            .in_flight
            .take()
            .expect("TxDone with nothing in flight");
        let remote = match self.part.as_ref() {
            Some(ps) => ps.remote_rx[link.0 as usize] & (1 << dir) != 0,
            None => false,
        };
        if remote {
            self.part
                .as_mut()
                .expect("remote implies shard state")
                .outbox
                .push((now + delay, link, dir, gen, pkt));
        } else {
            self.engine.schedule_keyed(
                now + delay,
                deliver_key(link, dir),
                NetEvent::Deliver {
                    link,
                    dir,
                    gen,
                    pkt,
                },
            );
        }
        if let Some(next) = d.queue.dequeue() {
            let tx = bandwidth.transmission_time(next.size);
            d.in_flight = Some(next);
            self.engine.schedule_keyed(
                now + tx,
                tx_done_key(link, dir),
                NetEvent::TxDone { link, dir, gen },
            );
        }
        d.sample_backlog(now);
    }

    fn on_deliver(&mut self, link: LinkId, dir: u8, gen: u32, pkt: Packet<P>) {
        let now = self.engine.now();
        let lazy = self.tuning.lazy_links;
        let l = &mut self.links[link.0 as usize];
        let d = l.dir_mut(dir);
        d.in_network -= 1;
        if gen != d.fail_gen {
            // The link failed while this packet was in the pipeline.
            d.stats.blackholed += 1;
            self.audit_dropped += 1;
            if let Some(t) = self.trace.as_mut() {
                t.record(TraceEvent {
                    at: now,
                    link,
                    dir,
                    kind: TraceKind::LinkDownDrop,
                    flow: pkt.flow,
                    size: pkt.size.as_bytes(),
                    backlog: 0,
                });
            }
            return;
        }
        if d.fault.corrupt_prob > 0.0 && d.corrupt_rng.chance(d.fault.corrupt_prob) {
            // The frame failed its checksum at the receiver: it consumed
            // its full wire time (unlike a fault drop) but is discarded.
            // Drawn per *delivery* — the order packets leave a direction
            // is FIFO in both pipelines, so the stream stays aligned.
            d.stats.corrupted += 1;
            self.audit_dropped += 1;
            if lazy {
                d.lazy_advance(now);
            }
            if let Some(t) = self.trace.as_mut() {
                t.record(TraceEvent {
                    at: now,
                    link,
                    dir,
                    kind: TraceKind::Corrupt,
                    flow: pkt.flow,
                    size: pkt.size.as_bytes(),
                    backlog: 0,
                });
            }
            return;
        }
        d.stats.delivered += 1;
        d.stats.delivered_bytes += pkt.size;
        if let Some(t) = self.trace.as_mut() {
            // The lazy pipeline only reconstructs the waiting backlog when
            // someone looks (tracing is off in measurement runs).
            let backlog = if lazy {
                d.lazy_advance(now);
                d.lazy_waiting(now)
            } else {
                d.queue.len()
            };
            t.record(TraceEvent {
                at: now,
                link,
                dir,
                kind: TraceKind::Deliver,
                flow: pkt.flow,
                size: pkt.size.as_bytes(),
                backlog,
            });
        }
        let to_node = d.to_node;
        let to_port = d.to_port;
        match &self.nodes[to_node.0 as usize].kind {
            NodeKind::Switch(router) => {
                // Stale-safe: a mid-run topology change (signal callbacks
                // may mutate the sim) drops back to the dynamic router
                // until the next `run_until` recompiles.
                let compiled = if self.fibs_ready {
                    self.fibs.get(to_node.0 as usize).and_then(|f| f.as_ref())
                } else {
                    None
                };
                let compiled_port = match (compiled, &self.addr_index) {
                    (Some(fib), Some(ai)) => {
                        ai.lookup(pkt.dst).and_then(|di| fib.lookup(di, pkt.flow))
                    }
                    _ => None,
                };
                let out_port = match compiled_port {
                    Some(p) => Some(p),
                    // Graceful mode asks the router politely; the default
                    // keeps the historical "no route" panic.
                    None if self.tuning.drop_unroutable => {
                        router.try_route(pkt.dst, pkt.flow, to_port)
                    }
                    None => Some(router.route(pkt.dst, pkt.flow, to_port)),
                };
                let ports = &self.nodes[to_node.0 as usize].ports;
                let hop = out_port.map(|op| (op, ports.get(op.0 as usize).copied()));
                match hop {
                    Some((_, Some((out_link, out_dir)))) => {
                        assert!(
                            !(out_link == link && out_dir == dir ^ 1) || ports.len() == 1,
                            "switch {} bounced {:?} back out its ingress",
                            self.nodes[to_node.0 as usize].label,
                            pkt.flow
                        );
                        self.enqueue_on(out_link, out_dir, pkt);
                    }
                    Some((op, None)) if !self.tuning.drop_unroutable => {
                        panic!("router chose missing port {op:?}")
                    }
                    _ => {
                        // No usable route: count and drop instead of
                        // panicking (`SimTuning::drop_unroutable`).
                        self.unroutable += 1;
                        self.audit_dropped += 1;
                        if let Some(t) = self.trace.as_mut() {
                            t.record(TraceEvent {
                                at: now,
                                link,
                                dir,
                                kind: TraceKind::NoRoute,
                                flow: pkt.flow,
                                size: pkt.size.as_bytes(),
                                backlog: 0,
                            });
                        }
                    }
                }
            }
            NodeKind::Host => {
                self.audit_delivered += 1;
                self.dispatch_packet(to_node, pkt, to_port);
            }
        }
    }

    fn on_timer(&mut self, node: NodeId, token: u64, gen: u64) {
        let now = self.engine.now();
        let Some(st) = self.timers[node.0 as usize].get_mut(&token) else {
            return; // token never armed on this node
        };
        match st.sched {
            Some((_, g)) if g == gen => st.sched = None,
            _ => return, // orphan: superseded by an earlier re-schedule
        }
        match st.intent {
            None => return, // cancelled; the event rode out harmlessly
            Some(t) if t > now => {
                // Deadline was bumped out past this event: re-arm the one
                // tracked event at the current intent and keep waiting.
                st.sched_gen += 1;
                let g = st.sched_gen;
                st.sched = Some((t, g));
                self.engine
                    .schedule_keyed(t, timer_key(node), NetEvent::Timer { node, token, gen: g });
                return;
            }
            Some(t) => {
                debug_assert!(t == now, "tracked timer event fired late");
                st.intent = None;
            }
        }
        let mut agent = self.agents[node.0 as usize]
            .take()
            .expect("timer for node without agent");
        let mut emits = self.take_emit_buf();
        {
            let mut ctx = Ctx::new(self.engine.now(), &mut emits);
            agent.on_timer(token, &mut ctx);
        }
        self.agents[node.0 as usize] = Some(agent);
        self.process_emits(node, emits);
    }

    fn dispatch_packet(&mut self, node: NodeId, pkt: Packet<P>, port: PortId) {
        let mut agent = self.agents[node.0 as usize]
            .take()
            .expect("packet delivered to host without agent");
        let mut emits = self.take_emit_buf();
        {
            let mut ctx = Ctx::new(self.engine.now(), &mut emits);
            agent.on_packet(pkt, port, &mut ctx);
        }
        self.agents[node.0 as usize] = Some(agent);
        self.process_emits(node, emits);
    }

    fn process_emits(&mut self, node: NodeId, mut emits: Vec<Emit<P>>) {
        let now = self.engine.now();
        for emit in emits.drain(..) {
            match emit {
                Emit::Send { port, pkt } => {
                    let &(link, dir) = self.nodes[node.0 as usize]
                        .ports
                        .get(port.0 as usize)
                        .unwrap_or_else(|| panic!("{node:?} has no port {port:?}"));
                    self.audit_injected += 1;
                    self.enqueue_on(link, dir, pkt);
                }
                Emit::SetTimer { token, at } => {
                    let at = at.max(now);
                    let st = self.timers[node.0 as usize].entry(token).or_default();
                    st.intent = Some(at);
                    // Ride the tracked in-flight event whenever it fires at
                    // or before the new deadline (it re-arms itself on
                    // expiry); schedule only when none is pending or the
                    // deadline moved earlier.
                    if st.sched.is_none_or(|(p, _)| p > at) {
                        st.sched_gen += 1;
                        let gen = st.sched_gen;
                        st.sched = Some((at, gen));
                        self.engine.schedule_keyed(
                            at,
                            timer_key(node),
                            NetEvent::Timer { node, token, gen },
                        );
                    }
                }
                Emit::CancelTimer { token } => {
                    if let Some(st) = self.timers[node.0 as usize].get_mut(&token) {
                        st.intent = None;
                    }
                }
                Emit::Signal(code) => self.signals.push_back((node, code)),
            }
        }
        self.emit_pool.push(emits);
    }

    fn enqueue_on(&mut self, link: LinkId, dir: u8, pkt: Packet<P>) {
        let now = self.engine.now();
        let lazy = self.tuning.lazy_links;
        let l = &mut self.links[link.0 as usize];
        let bandwidth = l.bandwidth;
        let delay = l.delay;
        let d = l.dir_mut(dir);
        if d.down {
            // Failed link: blackhole without consuming any RNG stream, so
            // a failure window never perturbs draws made after repair.
            d.stats.blackholed += 1;
            self.audit_dropped += 1;
            if let Some(t) = self.trace.as_mut() {
                t.record(TraceEvent {
                    at: now,
                    link,
                    dir,
                    kind: TraceKind::LinkDownDrop,
                    flow: pkt.flow,
                    size: pkt.size.as_bytes(),
                    backlog: 0,
                });
            }
            return;
        }
        if lazy {
            d.lazy_advance(now);
        }
        if d.fault.drop_prob > 0.0 && d.fault_rng.chance(d.fault.drop_prob) {
            d.stats.fault_dropped += 1;
            self.audit_dropped += 1;
            if let Some(t) = self.trace.as_mut() {
                t.record(TraceEvent {
                    at: now,
                    link,
                    dir,
                    kind: TraceKind::FaultDrop,
                    flow: pkt.flow,
                    size: pkt.size.as_bytes(),
                    backlog: if lazy { d.lazy_waiting(now) } else { d.queue.len() },
                });
            }
            return;
        }
        if lazy {
            // One-event pipeline: FIFO non-preemptive service means this
            // packet's transmission window is decided right now — classify
            // against the analytic waiting count, book the `(start,
            // depart)` window, and schedule the arrival directly.
            let mut pkt = pkt;
            let waiting = d.lazy_waiting(now);
            let (flow, size) = (pkt.flow, pkt.size.as_bytes());
            let outcome = d.queue.classify(waiting, &mut pkt);
            if outcome == EnqueueOutcome::Dropped {
                d.stats.dropped += 1;
                self.audit_dropped += 1;
                if let Some(t) = self.trace.as_mut() {
                    t.record(TraceEvent {
                        at: now,
                        link,
                        dir,
                        kind: TraceKind::Drop,
                        flow,
                        size,
                        backlog: waiting,
                    });
                }
                return;
            }
            d.stats.enqueued += 1;
            d.in_network += 1;
            if outcome == EnqueueOutcome::EnqueuedMarked {
                d.stats.marked += 1;
                if let Some(p) = self.probes.as_mut() {
                    let rank = self.part.as_ref().map(|ps| ps.rank);
                    p.on_mark(now, link, dir, rank);
                }
            }
            if let Some(t) = self.trace.as_mut() {
                t.record(TraceEvent {
                    at: now,
                    link,
                    dir,
                    kind: if outcome == EnqueueOutcome::EnqueuedMarked {
                        TraceKind::Mark
                    } else {
                        TraceKind::Enqueue
                    },
                    flow,
                    size,
                    backlog: waiting + 1,
                });
            }
            let start = d.busy_until.max(now);
            let depart = start + bandwidth.transmission_time(pkt.size);
            d.busy_until = depart;
            d.pending.push_back((start, depart));
            d.stats.observe_backlog(now, d.pending.len());
            let remote = match self.part.as_ref() {
                Some(ps) => ps.remote_rx[link.0 as usize] & (1 << dir) != 0,
                None => false,
            };
            if remote {
                let gen = d.fail_gen;
                self.part
                    .as_mut()
                    .expect("remote implies shard state")
                    .outbox
                    .push((depart + delay, link, dir, gen, pkt));
            } else {
                self.engine.schedule_keyed(
                    depart + delay,
                    deliver_key(link, dir),
                    NetEvent::Deliver {
                        link,
                        dir,
                        gen: d.fail_gen,
                        pkt,
                    },
                );
            }
            return;
        }
        let (flow, size) = (pkt.flow, pkt.size.as_bytes());
        match d.queue.enqueue(pkt) {
            EnqueueOutcome::Dropped => {
                d.stats.dropped += 1;
                self.audit_dropped += 1;
                if let Some(t) = self.trace.as_mut() {
                    t.record(TraceEvent {
                        at: now,
                        link,
                        dir,
                        kind: TraceKind::Drop,
                        flow,
                        size,
                        backlog: d.queue.len(),
                    });
                }
            }
            outcome => {
                d.stats.enqueued += 1;
                d.in_network += 1;
                if outcome == EnqueueOutcome::EnqueuedMarked {
                    d.stats.marked += 1;
                    let rank = self.part.as_ref().map(|ps| ps.rank);
                    if let Some(p) = self.probes.as_mut() {
                        p.on_mark(now, link, dir, rank);
                    }
                }
                if let Some(t) = self.trace.as_mut() {
                    t.record(TraceEvent {
                        at: now,
                        link,
                        dir,
                        kind: if outcome == EnqueueOutcome::EnqueuedMarked {
                            TraceKind::Mark
                        } else {
                            TraceKind::Enqueue
                        },
                        flow,
                        size,
                        backlog: d.queue.len(),
                    });
                }
                if d.in_flight.is_none() {
                    let next = d.queue.dequeue().expect("just enqueued");
                    let tx = bandwidth.transmission_time(next.size);
                    d.in_flight = Some(next);
                    self.engine.schedule_keyed(
                        now + tx,
                        tx_done_key(link, dir),
                        NetEvent::TxDone {
                            link,
                            dir,
                            gen: d.fail_gen,
                        },
                    );
                }
                d.sample_backlog(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::packet::{Ecn, FlowId};
    use crate::queue::QdiscConfig;
    use crate::routing::{AddrPattern, StaticRouter};
    use std::any::Any;
    use xmp_des::{Bandwidth, ByteSize, SimDuration};

    /// Minimal agent: counts arrivals, echoes once if asked, records times.
    #[derive(Default)]
    struct Probe {
        received: Vec<(u64, u64)>, // (arrival ns, payload)
        echo: bool,
        timer_fired: Vec<u64>,
    }

    impl Agent<u64> for Probe {
        fn on_packet(&mut self, pkt: Packet<u64>, _port: PortId, ctx: &mut Ctx<'_, u64>) {
            self.received.push((ctx.now().as_nanos(), pkt.payload));
            if self.echo {
                // Reuse the delivered packet for the echo instead of
                // cloning it: swap the endpoints in place.
                let mut back = pkt;
                std::mem::swap(&mut back.src, &mut back.dst);
                back.payload += 1000;
                let code = back.payload;
                ctx.send(PortId(0), back);
                ctx.signal(code);
            }
        }
        fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_, u64>) {
            self.timer_fired.push(token);
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn params_1g() -> LinkParams {
        LinkParams::new(
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(20),
            QdiscConfig::DropTail { cap: 100 },
        )
    }

    fn pkt(src: Addr, dst: Addr, payload: u64) -> Packet<u64> {
        Packet::new(src, dst, FlowId(7), Ecn::NotEct, ByteSize::from_bytes(1500), payload)
    }

    #[test]
    fn two_hosts_timing_is_exact() {
        let mut sim: Sim<u64> = Sim::new(1);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let b = sim.add_host("b", Box::new(Probe::default()));
        sim.connect(a, b, &params_1g(), "ab");
        let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        sim.with_agent::<Probe, _>(a, |_, ctx| {
            ctx.send(PortId(0), pkt(sa, da, 42));
        });
        sim.run_until_quiet(SimTime::from_millis(1));
        // 1500B at 1Gbps = 12us serialization + 20us propagation = 32us.
        sim.with_agent::<Probe, _>(b, |p, _| {
            assert_eq!(p.received, vec![(32_000, 42)]);
        });
    }

    #[test]
    fn serialization_is_back_to_back() {
        let mut sim: Sim<u64> = Sim::new(1);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let b = sim.add_host("b", Box::new(Probe::default()));
        sim.connect(a, b, &params_1g(), "ab");
        let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        sim.with_agent::<Probe, _>(a, |_, ctx| {
            for i in 0..3 {
                ctx.send(PortId(0), pkt(sa, da, i));
            }
        });
        sim.run_until_quiet(SimTime::from_millis(1));
        sim.with_agent::<Probe, _>(b, |p, _| {
            // Arrivals at 32, 44, 56 us: pipelined 12us apart.
            assert_eq!(
                p.received.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
                vec![32_000, 44_000, 56_000]
            );
        });
    }

    #[test]
    fn switch_forwards_by_static_route() {
        let mut sim: Sim<u64> = Sim::new(1);
        let h1 = sim.add_host("h1", Box::new(Probe::default()));
        let h2 = sim.add_host("h2", Box::new(Probe::default()));
        let sw = sim.add_switch("sw", Box::new(StaticRouter::new()));
        sim.connect(h1, sw, &params_1g(), "h1-sw"); // sw port 0
        sim.connect(h2, sw, &params_1g(), "h2-sw"); // sw port 1
        let (a1, a2) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        sim.set_router(
            sw,
            Box::new(StaticRouter::new().to(a1, PortId(0)).to(a2, PortId(1))),
        );
        sim.with_agent::<Probe, _>(h1, |_, ctx| ctx.send(PortId(0), pkt(a1, a2, 5)));
        sim.run_until_quiet(SimTime::from_millis(1));
        sim.with_agent::<Probe, _>(h2, |p, _| {
            // Two hops: 2 x (12us tx + 20us prop) = 64us.
            assert_eq!(p.received, vec![(64_000, 5)]);
        });
    }

    #[test]
    fn echo_and_signals_round_trip() {
        let mut sim: Sim<u64> = Sim::new(1);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let b = sim.add_host(
            "b",
            Box::new(Probe {
                echo: true,
                ..Default::default()
            }),
        );
        sim.connect(a, b, &params_1g(), "ab");
        let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        sim.with_agent::<Probe, _>(a, |_, ctx| ctx.send(PortId(0), pkt(sa, da, 1)));
        let mut signals = Vec::new();
        sim.run_until(SimTime::from_millis(1), |_, node, code| {
            signals.push((node, code));
        });
        assert_eq!(signals, vec![(b, 1001)]);
        sim.with_agent::<Probe, _>(a, |p, _| {
            assert_eq!(p.received, vec![(64_000, 1001)]);
        });
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut sim: Sim<u64> = Sim::new(1);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let b = sim.add_host("b", Box::new(Probe::default()));
        sim.connect(a, b, &params_1g(), "ab");
        sim.with_agent::<Probe, _>(a, |_, ctx| {
            ctx.set_timer(1, SimTime::from_micros(10));
            ctx.set_timer(2, SimTime::from_micros(20));
            ctx.set_timer(3, SimTime::from_micros(30));
            ctx.cancel_timer(2);
            // Re-arm 3 later: only the new expiry fires.
            ctx.set_timer(3, SimTime::from_micros(40));
        });
        sim.run_until_quiet(SimTime::from_millis(1));
        sim.with_agent::<Probe, _>(a, |p, _| {
            assert_eq!(p.timer_fired, vec![1, 3]);
        });
        assert_eq!(sim.now(), SimTime::from_micros(40));
    }

    #[test]
    fn droptail_overflow_accounted() {
        let mut sim: Sim<u64> = Sim::new(1);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let b = sim.add_host("b", Box::new(Probe::default()));
        let l = sim.connect(
            a,
            b,
            &LinkParams::new(
                Bandwidth::from_mbps(1),
                SimDuration::from_micros(1),
                QdiscConfig::DropTail { cap: 2 },
            ),
            "slow",
        );
        let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        sim.with_agent::<Probe, _>(a, |_, ctx| {
            for i in 0..10 {
                ctx.send(PortId(0), pkt(sa, da, i));
            }
        });
        sim.run_until_quiet(SimTime::from_secs(1));
        let d = sim.link(l).dir(0);
        // 1 in flight + 2 queued accepted; 7 dropped.
        assert_eq!(d.stats.enqueued, 3);
        assert_eq!(d.stats.dropped, 7);
        assert_eq!(d.stats.delivered, 3);
        sim.with_agent::<Probe, _>(b, |p, _| assert_eq!(p.received.len(), 3));
    }

    #[test]
    fn fault_injection_drops_roughly_at_rate() {
        let mut sim: Sim<u64> = Sim::new(99);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let b = sim.add_host("b", Box::new(Probe::default()));
        let l = sim.connect(a, b, &params_1g().with_drop_prob(0.5), "lossy");
        let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        for burst in 0..10 {
            sim.with_agent::<Probe, _>(a, |_, ctx| {
                for i in 0..100 {
                    ctx.send(PortId(0), pkt(sa, da, burst * 100 + i));
                }
            });
            sim.run_until_quiet(SimTime::from_millis(10 * (burst + 1)));
        }
        let s = &sim.link(l).dir(0).stats;
        assert_eq!(s.fault_dropped + s.enqueued, 1000);
        assert!(
            (300..700).contains(&s.fault_dropped),
            "drop count {} far from 50%",
            s.fault_dropped
        );
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<(u64, u64)> {
            let mut sim: Sim<u64> = Sim::new(seed);
            let a = sim.add_host("a", Box::new(Probe::default()));
            let b = sim.add_host("b", Box::new(Probe::default()));
            sim.connect(a, b, &params_1g().with_drop_prob(0.3), "l");
            let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
            sim.with_agent::<Probe, _>(a, |_, ctx| {
                for i in 0..50 {
                    ctx.send(PortId(0), pkt(sa, da, i));
                }
            });
            sim.run_until_quiet(SimTime::from_secs(1));
            sim.with_agent::<Probe, _>(b, |p, _| p.received.clone())
        }
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn addr_binding() {
        let mut sim: Sim<u64> = Sim::new(1);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let addr = Addr::new(10, 0, 0, 1);
        sim.bind_addr(addr, a);
        sim.bind_addr(addr.with_host(9), a);
        assert_eq!(sim.lookup_addr(addr), Some(a));
        assert_eq!(sim.lookup_addr(addr.with_host(9)), Some(a));
        assert_eq!(sim.lookup_addr(Addr::new(9, 9, 9, 9)), None);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn duplicate_addr_panics() {
        let mut sim: Sim<u64> = Sim::new(1);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let b = sim.add_host("b", Box::new(Probe::default()));
        sim.bind_addr(Addr::new(10, 0, 0, 1), a);
        sim.bind_addr(Addr::new(10, 0, 0, 1), b);
    }

    #[test]
    fn ecn_threshold_marks_under_load() {
        let mut sim: Sim<u64> = Sim::new(1);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let b = sim.add_host("b", Box::new(Probe::default()));
        let l = sim.connect(
            a,
            b,
            &LinkParams::new(
                Bandwidth::from_mbps(10),
                SimDuration::from_micros(1),
                QdiscConfig::EcnThreshold { cap: 100, k: 3 },
            ),
            "mk",
        );
        let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        sim.with_agent::<Probe, _>(a, |_, ctx| {
            for i in 0..10 {
                let mut p = pkt(sa, da, i);
                p.ecn = Ecn::Ect;
                ctx.send(PortId(0), p);
            }
        });
        sim.run_until_quiet(SimTime::from_secs(1));
        let s = &sim.link(l).dir(0).stats;
        // Arrivals are instantaneous: 1 in flight, backlog grows 0..=8;
        // arrivals seeing backlog >= 3 get marked: packets 4..9 => 6 marks.
        assert_eq!(s.marked, 6);
        sim.with_agent::<Probe, _>(b, |p, _| assert_eq!(p.received.len(), 10));
        // The paper's premise: mean queue depth stays near K under load.
        assert!(sim.link(l).dir(0).stats.max_depth <= 10);
    }

    #[test]
    fn tracing_records_the_packet_life_cycle() {
        use crate::trace::TraceKind;
        let mut sim: Sim<u64> = Sim::new(1);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let b = sim.add_host("b", Box::new(Probe::default()));
        sim.connect(
            a,
            b,
            &LinkParams::new(
                Bandwidth::from_mbps(10),
                SimDuration::from_micros(1),
                QdiscConfig::EcnThreshold { cap: 3, k: 1 },
            ),
            "l",
        );
        sim.enable_trace(64);
        let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        sim.with_agent::<Probe, _>(a, |_, ctx| {
            for i in 0..6 {
                let mut p = pkt(sa, da, i);
                p.ecn = Ecn::Ect;
                ctx.send(PortId(0), p);
            }
        });
        sim.run_until_quiet(SimTime::from_secs(1));
        let trace = sim.trace().expect("enabled");
        let kinds: Vec<TraceKind> = trace.events().map(|e| e.kind).collect();
        // 6 offered: 1 straight to the wire, 1 unmarked enqueue, 2 marked,
        // 2 overflow drops; 4 deliveries interleave.
        assert_eq!(kinds.iter().filter(|&&k| k == TraceKind::Drop).count(), 2);
        assert_eq!(kinds.iter().filter(|&&k| k == TraceKind::Mark).count(), 2);
        assert_eq!(
            kinds.iter().filter(|&&k| k == TraceKind::Deliver).count(),
            4
        );
        // Render includes the queue depth annotations.
        assert!(trace.render().contains("q="));
    }

    #[test]
    fn pattern_any_route_matches() {
        // Guards against AddrPattern::any() regressions in longest-match.
        let p = AddrPattern::any();
        assert_eq!(p.specificity(), 0);
        assert!(p.matches(Addr::new(0, 0, 0, 0)));
    }

    const LAZY: SimTuning = SimTuning {
        compiled_fib: true,
        lazy_links: true,
        drop_unroutable: false,
    };

    #[test]
    fn lazy_two_hosts_timing_is_exact() {
        let mut sim: Sim<u64> = Sim::new(1);
        sim.set_tuning(LAZY);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let b = sim.add_host("b", Box::new(Probe::default()));
        sim.connect(a, b, &params_1g(), "ab");
        let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        sim.with_agent::<Probe, _>(a, |_, ctx| {
            ctx.send(PortId(0), pkt(sa, da, 42));
        });
        sim.run_until_quiet(SimTime::from_millis(1));
        sim.with_agent::<Probe, _>(b, |p, _| {
            assert_eq!(p.received, vec![(32_000, 42)]);
        });
    }

    #[test]
    fn lazy_serialization_is_back_to_back() {
        let mut sim: Sim<u64> = Sim::new(1);
        sim.set_tuning(LAZY);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let b = sim.add_host("b", Box::new(Probe::default()));
        sim.connect(a, b, &params_1g(), "ab");
        let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        sim.with_agent::<Probe, _>(a, |_, ctx| {
            for i in 0..3 {
                ctx.send(PortId(0), pkt(sa, da, i));
            }
        });
        sim.run_until_quiet(SimTime::from_millis(1));
        sim.with_agent::<Probe, _>(b, |p, _| {
            assert_eq!(
                p.received.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
                vec![32_000, 44_000, 56_000]
            );
        });
    }

    #[test]
    fn lazy_droptail_overflow_accounted() {
        let mut sim: Sim<u64> = Sim::new(1);
        sim.set_tuning(LAZY);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let b = sim.add_host("b", Box::new(Probe::default()));
        let l = sim.connect(
            a,
            b,
            &LinkParams::new(
                Bandwidth::from_mbps(1),
                SimDuration::from_micros(1),
                QdiscConfig::DropTail { cap: 2 },
            ),
            "slow",
        );
        let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        sim.with_agent::<Probe, _>(a, |_, ctx| {
            for i in 0..10 {
                ctx.send(PortId(0), pkt(sa, da, i));
            }
        });
        sim.run_until_quiet(SimTime::from_secs(1));
        let d = sim.link(l).dir(0);
        assert_eq!(d.stats.enqueued, 3);
        assert_eq!(d.stats.dropped, 7);
        assert_eq!(d.stats.delivered, 3);
        sim.with_agent::<Probe, _>(b, |p, _| assert_eq!(p.received.len(), 3));
    }

    #[test]
    fn lazy_ecn_threshold_marks_under_load() {
        let mut sim: Sim<u64> = Sim::new(1);
        sim.set_tuning(LAZY);
        let a = sim.add_host("a", Box::new(Probe::default()));
        let b = sim.add_host("b", Box::new(Probe::default()));
        let l = sim.connect(
            a,
            b,
            &LinkParams::new(
                Bandwidth::from_mbps(10),
                SimDuration::from_micros(1),
                QdiscConfig::EcnThreshold { cap: 100, k: 3 },
            ),
            "mk",
        );
        let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        sim.with_agent::<Probe, _>(a, |_, ctx| {
            for i in 0..10 {
                let mut p = pkt(sa, da, i);
                p.ecn = Ecn::Ect;
                ctx.send(PortId(0), p);
            }
        });
        sim.run_until_quiet(SimTime::from_secs(1));
        let s = &sim.link(l).dir(0).stats;
        assert_eq!(s.marked, 6);
        assert!(sim.link(l).dir(0).stats.max_depth <= 10);
        sim.with_agent::<Probe, _>(b, |p, _| assert_eq!(p.received.len(), 10));
    }

    /// Lazy pipeline halves engine events per packet-hop: 10 delivered
    /// packets cost 10 Deliver events instead of 10 TxDone + 10 Deliver.
    #[test]
    fn lazy_halves_events_per_hop() {
        let count_events = |tuning: SimTuning| {
            let mut sim: Sim<u64> = Sim::new(1);
            sim.set_tuning(tuning);
            let a = sim.add_host("a", Box::new(Probe::default()));
            let b = sim.add_host("b", Box::new(Probe::default()));
            sim.connect(a, b, &params_1g(), "ab");
            let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
            sim.with_agent::<Probe, _>(a, |_, ctx| {
                for i in 0..10 {
                    ctx.send(PortId(0), pkt(sa, da, i));
                }
            });
            sim.run_until_quiet(SimTime::from_millis(1));
            sim.events_processed()
        };
        let eager = count_events(SimTuning::default());
        let lazy = count_events(LAZY);
        assert_eq!(eager, 20);
        assert_eq!(lazy, 10);
    }

    /// Multi-seed differential: eager and lazy pipelines produce identical
    /// arrival times, payloads, per-direction stats and trace counters on a
    /// lossy contended link.
    #[test]
    fn lazy_matches_eager_seeded() {
        fn run(seed: u64, tuning: SimTuning) -> (Vec<(u64, u64)>, String, Vec<u64>) {
            let mut sim: Sim<u64> = Sim::new(seed);
            sim.set_tuning(tuning);
            let a = sim.add_host("a", Box::new(Probe::default()));
            let b = sim.add_host("b", Box::new(Probe::default()));
            let l = sim.connect(
                a,
                b,
                &LinkParams::new(
                    Bandwidth::from_mbps(10),
                    SimDuration::from_micros(50),
                    QdiscConfig::EcnThreshold { cap: 8, k: 3 },
                )
                .with_drop_prob(0.1),
                "l",
            );
            sim.enable_trace(16);
            let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
            let mut rng = SimRng::new(seed ^ 0xD1FF);
            // Bursty arrivals across several run windows.
            for burst in 0..5u64 {
                let n = 1 + rng.index(12);
                sim.with_agent::<Probe, _>(a, |_, ctx| {
                    for i in 0..n {
                        let mut p = pkt(sa, da, burst * 100 + i as u64);
                        p.ecn = Ecn::Ect;
                        ctx.send(PortId(0), p);
                    }
                });
                let stop = SimTime::from_millis(3 * (burst + 1));
                sim.run_until_quiet(stop);
                sim.advance_to(stop);
            }
            let d = sim.link(l).dir(0);
            let stats = format!("{:?}", d.stats);
            let t = sim.trace().unwrap();
            let counts = [
                TraceKind::Enqueue,
                TraceKind::Mark,
                TraceKind::Drop,
                TraceKind::FaultDrop,
                TraceKind::Deliver,
            ]
            .iter()
            .map(|&k| t.count(k))
            .collect();
            let received = sim.with_agent::<Probe, _>(b, |p, _| p.received.clone());
            (received, stats, counts)
        }
        for seed in 0..40u64 {
            let eager = run(seed, SimTuning::default());
            let lazy = run(seed, LAZY);
            assert_eq!(eager, lazy, "seed {seed} diverged");
        }
    }

    /// The compiled-FIB path and the dynamic path deliver identically; the
    /// test hooks agree with each other.
    #[test]
    fn compiled_fib_matches_dynamic_forwarding() {
        fn run(compiled: bool) -> Vec<(u64, u64)> {
            let mut sim: Sim<u64> = Sim::new(1);
            sim.set_tuning(SimTuning {
                compiled_fib: compiled,
                lazy_links: false,
                drop_unroutable: false,
            });
            let h1 = sim.add_host("h1", Box::new(Probe::default()));
            let h2 = sim.add_host("h2", Box::new(Probe::default()));
            let sw = sim.add_switch("sw", Box::new(StaticRouter::new()));
            sim.connect(h1, sw, &params_1g(), "h1-sw");
            sim.connect(h2, sw, &params_1g(), "h2-sw");
            let (a1, a2) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
            sim.bind_addr(a1, h1);
            sim.bind_addr(a2, h2);
            sim.set_router(
                sw,
                Box::new(StaticRouter::new().to(a1, PortId(0)).to(a2, PortId(1))),
            );
            sim.with_agent::<Probe, _>(h1, |_, ctx| {
                for i in 0..5 {
                    ctx.send(PortId(0), pkt(a1, a2, i));
                }
            });
            sim.run_until_quiet(SimTime::from_millis(1));
            sim.with_agent::<Probe, _>(h2, |p, _| p.received.clone())
        }
        assert_eq!(run(true), run(false));

        // Hook-level agreement, including an unbound destination (FIB miss
        // falling back to the dynamic default route).
        let mut sim: Sim<u64> = Sim::new(1);
        let h1 = sim.add_host("h1", Box::new(Probe::default()));
        let sw = sim.add_switch("sw", Box::new(StaticRouter::new()));
        sim.connect(h1, sw, &params_1g(), "h1-sw");
        let a1 = Addr::new(10, 0, 0, 1);
        sim.bind_addr(a1, h1);
        sim.set_router(sw, Box::new(StaticRouter::new().default_via(PortId(0))));
        sim.compile_fibs();
        for f in 0..8 {
            assert_eq!(
                sim.route_on(sw, a1, FlowId(f), PortId(0)),
                sim.route_dynamic(sw, a1, FlowId(f), PortId(0))
            );
            let unbound = Addr::new(9, 9, 9, 9);
            assert_eq!(
                sim.route_on(sw, unbound, FlowId(f), PortId(0)),
                sim.route_dynamic(sw, unbound, FlowId(f), PortId(0))
            );
        }
    }

    /// Link failure mid-burst: both pipelines blackhole the same packets,
    /// repair restores delivery, and the conservation books balance.
    #[test]
    fn link_down_blackholes_identically_in_both_pipelines() {
        fn run(tuning: SimTuning) -> (Vec<(u64, u64)>, u64, u64, AuditReport) {
            let mut sim: Sim<u64> = Sim::new(1);
            sim.set_tuning(tuning);
            let a = sim.add_host("a", Box::new(Probe::default()));
            let b = sim.add_host("b", Box::new(Probe::default()));
            let l = sim.connect(
                a,
                b,
                &LinkParams::new(
                    Bandwidth::from_mbps(1), // 12 ms per 1500B packet
                    SimDuration::from_micros(1),
                    QdiscConfig::DropTail { cap: 100 },
                ),
                "frail",
            );
            sim.install_fault_plan(
                &FaultPlan::new()
                    .link_down(SimTime::from_millis(30), l)
                    .link_up(SimTime::from_millis(60), l),
            );
            let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
            sim.with_agent::<Probe, _>(a, |_, ctx| {
                for i in 0..10 {
                    ctx.send(PortId(0), pkt(sa, da, i));
                }
            });
            sim.run_until_quiet(SimTime::from_millis(50));
            // While down: offered traffic blackholes at the port.
            sim.with_agent::<Probe, _>(a, |_, ctx| {
                ctx.send(PortId(0), pkt(sa, da, 100));
            });
            sim.run_until_quiet(SimTime::from_millis(59));
            assert!(sim.link(l).dir(0).is_down());
            // After repair: traffic flows again.
            sim.run_until_quiet(SimTime::from_millis(61));
            assert!(!sim.link(l).dir(0).is_down());
            sim.advance_to(SimTime::from_millis(61));
            sim.with_agent::<Probe, _>(a, |_, ctx| {
                for i in 0..3 {
                    ctx.send(PortId(0), pkt(sa, da, 200 + i));
                }
            });
            sim.run_until_quiet(SimTime::from_millis(200));
            let s = sim.link(l).dir(0).stats.clone();
            let received = sim.with_agent::<Probe, _>(b, |p, _| p.received.clone());
            (received, s.blackholed, s.delivered, sim.audit_conservation())
        }
        let eager = run(SimTuning::default());
        let lazy = run(LAZY);
        assert_eq!(eager, lazy, "pipelines diverged under link failure");
        let (received, blackholed, delivered, audit) = eager;
        // 2 of the burst arrive (12 ms apart) before the 30 ms failure; the
        // other 8 die in the pipeline, plus the one offered while down.
        assert_eq!(delivered, 5);
        assert_eq!(blackholed, 9);
        assert_eq!(received.len(), 5);
        assert_eq!(
            received.iter().map(|&(_, p)| p).collect::<Vec<_>>(),
            vec![0, 1, 200, 201, 202]
        );
        assert_eq!(
            audit,
            AuditReport {
                injected: 14,
                delivered: 5,
                dropped: 9,
                in_network: 0
            }
        );
    }

    /// A scheduled switch failure takes down every attached link.
    #[test]
    fn switch_down_kills_all_attached_links() {
        let mut sim: Sim<u64> = Sim::new(1);
        let h1 = sim.add_host("h1", Box::new(Probe::default()));
        let h2 = sim.add_host("h2", Box::new(Probe::default()));
        let sw = sim.add_switch("sw", Box::new(StaticRouter::new()));
        let l1 = sim.connect(h1, sw, &params_1g(), "h1-sw");
        let l2 = sim.connect(h2, sw, &params_1g(), "h2-sw");
        let (a1, a2) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        sim.bind_addr(a1, h1);
        sim.bind_addr(a2, h2);
        sim.set_router(
            sw,
            Box::new(StaticRouter::new().to(a1, PortId(0)).to(a2, PortId(1))),
        );
        sim.install_fault_plan(&FaultPlan::new().switch_down(SimTime::from_micros(5), sw));
        sim.with_agent::<Probe, _>(h1, |_, ctx| ctx.send(PortId(0), pkt(a1, a2, 5)));
        sim.run_until_quiet(SimTime::from_millis(1));
        assert!(sim.link(l1).dir(0).is_down());
        assert!(sim.link(l2).dir(0).is_down());
        sim.with_agent::<Probe, _>(h2, |p, _| assert!(p.received.is_empty()));
        let audit = sim.audit_conservation();
        assert_eq!(audit.delivered, 0);
        assert_eq!(audit.dropped, 1);
    }

    /// Seeded corruption discards at roughly the configured rate, in both
    /// pipelines identically, and the books still balance.
    #[test]
    fn corruption_discards_at_rate_and_conserves() {
        fn run(tuning: SimTuning) -> (u64, u64, AuditReport) {
            let mut sim: Sim<u64> = Sim::new(7);
            sim.set_tuning(tuning);
            let a = sim.add_host("a", Box::new(Probe::default()));
            let b = sim.add_host("b", Box::new(Probe::default()));
            let l = sim.connect(a, b, &params_1g(), "noisy");
            sim.install_fault_plan(&FaultPlan::new().corrupt_rate(l, 0.5));
            let (sa, da) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
            for burst in 0..10 {
                sim.with_agent::<Probe, _>(a, |_, ctx| {
                    for i in 0..100 {
                        ctx.send(PortId(0), pkt(sa, da, burst * 100 + i));
                    }
                });
                sim.run_until_quiet(SimTime::from_millis(10 * (burst + 1)));
            }
            let s = &sim.link(l).dir(0).stats;
            (s.corrupted, s.delivered, sim.audit_conservation())
        }
        let eager = run(SimTuning::default());
        let lazy = run(LAZY);
        assert_eq!(eager, lazy, "pipelines diverged under corruption");
        let (corrupted, delivered, audit) = eager;
        assert_eq!(corrupted + delivered, 1000);
        assert!(
            (300..700).contains(&corrupted),
            "corruption count {corrupted} far from 50%"
        );
        assert_eq!(audit.injected, 1000);
        assert_eq!(audit.delivered, delivered);
        assert_eq!(audit.dropped, corrupted);
    }

    /// `drop_unroutable` turns the "no route" panic into a counted drop on
    /// a partitioned topology (no-route destination behind a live switch).
    #[test]
    fn drop_unroutable_degrades_instead_of_panicking() {
        let mut sim: Sim<u64> = Sim::new(1);
        sim.set_tuning(SimTuning {
            drop_unroutable: true,
            ..SimTuning::default()
        });
        let h1 = sim.add_host("h1", Box::new(Probe::default()));
        let h2 = sim.add_host("h2", Box::new(Probe::default()));
        let sw = sim.add_switch("sw", Box::new(StaticRouter::new()));
        sim.connect(h1, sw, &params_1g(), "h1-sw");
        sim.connect(h2, sw, &params_1g(), "h2-sw");
        let (a1, a2) = (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2));
        sim.bind_addr(a1, h1);
        sim.bind_addr(a2, h2);
        // The switch only knows how to reach h1: h2 is partitioned off.
        sim.set_router(sw, Box::new(StaticRouter::new().to(a1, PortId(0))));
        sim.enable_trace(16);
        sim.with_agent::<Probe, _>(h1, |_, ctx| {
            for i in 0..4 {
                ctx.send(PortId(0), pkt(a1, a2, i));
            }
            // An address bound nowhere takes the same graceful path.
            ctx.send(PortId(0), pkt(a1, Addr::new(9, 9, 9, 9), 99));
        });
        sim.run_until_quiet(SimTime::from_millis(1));
        assert_eq!(sim.unroutable_drops(), 5);
        assert_eq!(sim.trace().expect("enabled").count(TraceKind::NoRoute), 5);
        sim.with_agent::<Probe, _>(h2, |p, _| assert!(p.received.is_empty()));
        let audit = sim.audit_conservation();
        assert_eq!(audit.injected, 5);
        assert_eq!(audit.dropped, 5);
        assert_eq!(audit.in_network, 0);
    }
}
