//! Packets and ECN codepoints.

use crate::addr::Addr;
use std::fmt;
use xmp_des::ByteSize;

/// ECN codepoint in the IP header (RFC 3168).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Ecn {
    /// Not ECN-capable transport: congested queues must drop, not mark.
    #[default]
    NotEct,
    /// ECN-capable transport.
    Ect,
    /// Congestion Experienced — set by a switch on an ECT packet.
    Ce,
}

impl Ecn {
    /// Whether a switch may mark this packet instead of dropping it.
    pub fn is_capable(self) -> bool {
        !matches!(self, Ecn::NotEct)
    }
}

/// Opaque flow identifier, assigned by the transport/workload layer.
/// Used for ECMP hashing, tracing and accounting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FlowId(pub u64);

impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

/// A simulated packet: addressing + ECN + wire size + transport payload.
///
/// `size` is the **wire size** (headers + payload) and is what queues and
/// link serialization account; the payload carries transport semantics.
#[derive(Clone, Debug)]
pub struct Packet<P> {
    /// Source address.
    pub src: Addr,
    /// Destination address (drives routing).
    pub dst: Addr,
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// ECN codepoint.
    pub ecn: Ecn,
    /// Total on-wire size.
    pub size: ByteSize,
    /// Transport payload (e.g. a TCP segment header).
    pub payload: P,
}

impl<P> Packet<P> {
    /// Convenience constructor.
    pub fn new(src: Addr, dst: Addr, flow: FlowId, ecn: Ecn, size: ByteSize, payload: P) -> Self {
        Packet {
            src,
            dst,
            flow,
            ecn,
            size,
            payload,
        }
    }

    /// Apply a Congestion Experienced mark (only meaningful on ECT packets).
    pub fn mark_ce(&mut self) {
        debug_assert!(self.ecn.is_capable(), "marking a non-ECT packet");
        self.ecn = Ecn::Ce;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecn_capability() {
        assert!(!Ecn::NotEct.is_capable());
        assert!(Ecn::Ect.is_capable());
        assert!(Ecn::Ce.is_capable());
    }

    #[test]
    fn mark_ce_transitions() {
        let mut p = Packet::new(
            Addr::new(10, 0, 0, 2),
            Addr::new(10, 1, 0, 2),
            FlowId(1),
            Ecn::Ect,
            ByteSize::from_bytes(1500),
            (),
        );
        p.mark_ce();
        assert_eq!(p.ecn, Ecn::Ce);
    }
}
