//! Packet-event tracing (the simulator's analogue of smoltcp's `--pcap`).
//!
//! A [`TraceBuffer`] records per-link packet events — enqueue, mark, drop,
//! delivery — into a bounded ring buffer that can be filtered and rendered
//! as text. Tracing is opt-in per [`Sim`](crate::Sim) via
//! [`Sim::enable_trace`](crate::Sim::enable_trace) and costs nothing when
//! disabled.

use crate::link::LinkId;
use crate::packet::FlowId;
use std::collections::VecDeque;
use std::fmt;
use xmp_des::SimTime;

/// What happened to a packet at a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Accepted into the queue unmarked.
    Enqueue,
    /// Accepted and CE-marked.
    Mark,
    /// Dropped by the queue discipline (overflow or early drop).
    Drop,
    /// Dropped by fault injection.
    FaultDrop,
    /// Delivered to the far end.
    Deliver,
    /// Corrupted in transit, discarded by the receiving end.
    Corrupt,
    /// Blackholed by a failed link (offered while down, or purged in
    /// flight by the failure).
    LinkDownDrop,
    /// No route to the destination under
    /// [`SimTuning::drop_unroutable`](crate::SimTuning::drop_unroutable).
    NoRoute,
}

/// Number of [`TraceKind`] variants (per-kind counter array size).
pub(crate) const TRACE_KINDS: usize = 8;

impl TraceKind {
    /// Dense index for per-kind counters.
    const fn idx(self) -> usize {
        match self {
            TraceKind::Enqueue => 0,
            TraceKind::Mark => 1,
            TraceKind::Drop => 2,
            TraceKind::FaultDrop => 3,
            TraceKind::Deliver => 4,
            TraceKind::Corrupt => 5,
            TraceKind::LinkDownDrop => 6,
            TraceKind::NoRoute => 7,
        }
    }

    fn glyph(self) -> &'static str {
        match self {
            TraceKind::Enqueue => "+",
            TraceKind::Mark => "M",
            TraceKind::Drop => "X",
            TraceKind::FaultDrop => "F",
            TraceKind::Deliver => ">",
            TraceKind::Corrupt => "C",
            TraceKind::LinkDownDrop => "!",
            TraceKind::NoRoute => "?",
        }
    }
}

/// One recorded event.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// Which link.
    pub link: LinkId,
    /// Which direction (0 = a→b).
    pub dir: u8,
    /// What happened.
    pub kind: TraceKind,
    /// The packet's flow.
    pub flow: FlowId,
    /// The packet's wire size in bytes.
    pub size: u64,
    /// Queue backlog right after the event (packets).
    pub backlog: usize,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12} {} {:?}.{} {:?} {}B q={}",
            self.at.as_nanos(),
            self.kind.glyph(),
            self.link,
            self.dir,
            self.flow,
            self.size,
            self.backlog
        )
    }
}

/// Bounded ring buffer of trace events.
#[derive(Debug)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    recorded: u64,
    /// Events pushed out of the ring by capacity overflow.
    evicted: u64,
    /// Cumulative post-filter counts per [`TraceKind`]; unlike the retained
    /// events these survive ring eviction.
    counts: [u64; TRACE_KINDS],
    /// Restrict recording to one link, if set.
    pub only_link: Option<LinkId>,
    /// Restrict recording to one flow, if set.
    pub only_flow: Option<FlowId>,
}

impl TraceBuffer {
    /// A buffer holding the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        TraceBuffer {
            events: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            recorded: 0,
            evicted: 0,
            counts: [0; TRACE_KINDS],
            only_link: None,
            only_flow: None,
        }
    }

    /// Record an event (applies the filters; evicts the oldest on
    /// overflow). Returns `false` when the ring was full and an older
    /// event was evicted to make room — callers that must not lose history
    /// can assert on it; the lost count also shows up in
    /// [`TraceBuffer::evicted`] and at the end of [`TraceBuffer::render`].
    pub fn record(&mut self, ev: TraceEvent) -> bool {
        if self.only_link.is_some_and(|l| l != ev.link) {
            return true; // filtered out, nothing lost
        }
        if self.only_flow.is_some_and(|f| f != ev.flow) {
            return true;
        }
        let overflow = self.events.len() == self.capacity;
        if overflow {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(ev);
        self.recorded += 1;
        self.counts[ev.kind.idx()] += 1;
        !overflow
    }

    /// Cumulative count of recorded events of `kind` (post-filter; includes
    /// events since evicted from the ring).
    pub fn count(&self, kind: TraceKind) -> u64 {
        self.counts[kind.idx()]
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events recorded (including evicted ones).
    pub fn recorded_total(&self) -> u64 {
        self.recorded
    }

    /// Events lost to ring eviction (recorded but no longer retained).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Render the retained events as text, one per line; a trailing line
    /// reports events lost to ring eviction, so truncated output can't be
    /// mistaken for the full history.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        if self.evicted > 0 {
            out.push_str(&format!(
                "... {} earlier event(s) evicted (ring capacity {})\n",
                self.evicted, self.capacity
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64, link: u32, flow: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(ns),
            link: LinkId(link),
            dir: 0,
            kind,
            flow: FlowId(flow),
            size: 1500,
            backlog: 3,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = TraceBuffer::new(3);
        for i in 0..3 {
            assert!(t.record(ev(i, 0, 1, TraceKind::Enqueue)), "no eviction yet");
        }
        for i in 3..5 {
            assert!(
                !t.record(ev(i, 0, 1, TraceKind::Enqueue)),
                "overflow must be signalled"
            );
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded_total(), 5);
        assert_eq!(t.evicted(), 2);
        let first = t.events().next().unwrap();
        assert_eq!(first.at.as_nanos(), 2);
    }

    #[test]
    fn render_reports_evicted_count() {
        let mut t = TraceBuffer::new(2);
        for i in 0..5 {
            t.record(ev(i, 0, 1, TraceKind::Enqueue));
        }
        let s = t.render();
        assert_eq!(s.lines().count(), 3, "{s}");
        assert!(s.contains("3 earlier event(s) evicted"), "{s}");
        // Filtered-out events are not evictions and don't flip the flag.
        let mut q = TraceBuffer::new(1);
        q.only_link = Some(LinkId(9));
        assert!(q.record(ev(0, 1, 1, TraceKind::Enqueue)));
        assert_eq!(q.evicted(), 0);
        assert!(!q.render().contains("evicted"));
    }

    #[test]
    fn per_kind_counters_survive_eviction() {
        let mut t = TraceBuffer::new(2);
        for i in 0..6 {
            t.record(ev(i, 0, 1, TraceKind::Enqueue));
        }
        t.record(ev(7, 0, 1, TraceKind::Mark));
        t.record(ev(8, 0, 1, TraceKind::Drop));
        t.record(ev(9, 0, 1, TraceKind::FaultDrop));
        t.record(ev(10, 0, 1, TraceKind::Deliver));
        t.record(ev(11, 0, 1, TraceKind::Corrupt));
        t.record(ev(12, 0, 1, TraceKind::LinkDownDrop));
        t.record(ev(13, 0, 1, TraceKind::NoRoute));
        // Ring keeps only 2 events, counters keep everything.
        assert_eq!(t.len(), 2);
        assert_eq!(t.count(TraceKind::Enqueue), 6);
        assert_eq!(t.count(TraceKind::Mark), 1);
        assert_eq!(t.count(TraceKind::Drop), 1);
        assert_eq!(t.count(TraceKind::FaultDrop), 1);
        assert_eq!(t.count(TraceKind::Deliver), 1);
        assert_eq!(t.count(TraceKind::Corrupt), 1);
        assert_eq!(t.count(TraceKind::LinkDownDrop), 1);
        assert_eq!(t.count(TraceKind::NoRoute), 1);
        // Filtered-out events don't count.
        t.only_link = Some(LinkId(7));
        t.record(ev(11, 8, 1, TraceKind::Enqueue));
        assert_eq!(t.count(TraceKind::Enqueue), 6);
    }

    #[test]
    fn filters_apply() {
        let mut t = TraceBuffer::new(10);
        t.only_link = Some(LinkId(7));
        t.only_flow = Some(FlowId(42));
        t.record(ev(1, 7, 42, TraceKind::Mark)); // kept
        t.record(ev(2, 8, 42, TraceKind::Mark)); // wrong link
        t.record(ev(3, 7, 43, TraceKind::Mark)); // wrong flow
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn render_is_line_per_event() {
        let mut t = TraceBuffer::new(4);
        t.record(ev(12_000, 1, 9, TraceKind::Mark));
        t.record(ev(13_000, 1, 9, TraceKind::Deliver));
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("M l1.0 flow#9 1500B q=3"), "{s}");
        assert!(s.contains("> l1.0"), "{s}");
    }
}
