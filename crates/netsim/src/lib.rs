//! # xmp-netsim — packet-level data-center network simulator
//!
//! This crate models the network substrate the XMP paper evaluates on
//! (the paper used NS-3.14 and a DummyNet testbed):
//!
//! * [`packet::Packet`] — packets with ECN codepoints and a generic payload
//!   (the transport crate supplies TCP segments),
//! * [`queue`] — queue disciplines: [`queue::DropTail`], the paper's
//!   instantaneous-threshold ECN marker [`queue::EcnThreshold`], and classic
//!   [`queue::Red`] with EWMA averaging (whose `Wq = 1`, `min = max = K`
//!   configuration — the paper's Section 3 "two configuration tricks" —
//!   degenerates to the threshold marker),
//! * [`link::Link`] — full-duplex links with store-and-forward
//!   serialization, propagation delay and optional fault injection,
//! * [`routing::Router`] — pluggable per-switch forwarding,
//! * [`fault::FaultPlan`] — deterministic fault injection: scheduled
//!   link/switch failures plus seeded loss and corruption,
//! * [`network::Sim`] — the event loop tying nodes, links and host
//!   [`agent::Agent`]s together on top of the `xmp-des` kernel.
//!
//! Everything is deterministic: same topology + same seed ⇒ bit-identical
//! results. Runs are single-threaded by default; a
//! [`network::partition::PartitionedSim`] shards one simulation across
//! threads with a conservative synchronization protocol that preserves
//! bit-identity with the serial run.

#![warn(missing_docs)]

pub mod addr;
pub mod agent;
pub mod fault;
pub mod fib;
pub mod hash;
pub mod link;
pub mod network;
pub mod node;
pub mod packet;
pub mod probe;
pub mod queue;
pub mod routing;
pub mod stats;
pub mod trace;

pub use addr::Addr;
pub use agent::{Agent, Ctx};
pub use fault::{FaultEvent, FaultPlan};
pub use fib::{AddrIndex, CompiledFib, FibBuilder, FibEntry};
pub use link::{FaultConfig, LinkId, LinkParams};
pub use network::partition::{PartitionPlan, PartitionedSim};
pub use network::{AuditReport, NetEvent, Sim, SimTuning};
pub use node::{NodeId, PortId};
pub use packet::{Ecn, FlowId, Packet};
pub use probe::{set_alloc_probe, CcSnapshot, ProbeConfig, ProbeRecord, Probes, SimProfile};
pub use queue::{
    DropTail, EcnThreshold, EnqueueOutcome, Qdisc, QdiscConfig, QdiscKind, Red, RedMode,
};
pub use routing::{mix64, EcmpRouter, Router, StaticRouter};
pub use trace::{TraceBuffer, TraceEvent, TraceKind};
