//! Integration tests of the multipath machinery: coupling, shifting,
//! subflow joins, and scheme coexistence.

use xmp_suite::prelude::*;
use xmp_suite::topo::testbed::{Path, ShiftTestbed, TestbedConfig};

fn stack() -> Box<HostStack> {
    Box::new(HostStack::new(StackConfig::default()))
}

fn spec(p: Path) -> SubflowSpec {
    SubflowSpec {
        local_port: p.port,
        src: p.src,
        dst: p.dst,
    }
}

#[test]
fn trash_shifts_towards_the_empty_bottleneck() {
    // Flow 2 spans DN1 and DN2; a competitor saturates only DN1.
    let mut sim: Sim<Segment> = Sim::new(17);
    let cfg = TestbedConfig::default();
    let tb = ShiftTestbed::build(&mut sim, &cfg, |_| stack());
    let mut d = Driver::new();
    let mk = |node, subflows, n| FlowSpecBuilder {
        src_node: node,
        subflows,
        size: u64::MAX,
        scheme: Scheme::Xmp { beta: 4, subflows: n },
        start: SimTime::ZERO,
        category: None,
        tag: 0,
    };
    let flow2 = d.submit(mk(
        tb.s[1],
        tb.flow2_paths().into_iter().map(spec).collect(),
        2,
    ));
    let _competitor = d.submit(mk(tb.bg_src[0], vec![spec(tb.bg_path(0))], 1));
    d.run(&mut sim, SimTime::from_secs(2), |_, _, _| {});
    let mut sampler = RateSampler::new();
    sampler.sample(&mut sim, &d, flow2, 0);
    sampler.sample(&mut sim, &d, flow2, 1);
    d.run(&mut sim, SimTime::from_secs(5), |_, _, _| {});
    let r_dn1 = sampler.sample(&mut sim, &d, flow2, 0);
    let r_dn2 = sampler.sample(&mut sim, &d, flow2, 1);
    // DN2 is private to Flow 2; DN1 is shared with the competitor. The
    // Congestion Equality Principle moves the bulk onto DN2.
    assert!(
        r_dn2 > 2.0 * r_dn1,
        "expected shift to the empty path: DN1={r_dn1} DN2={r_dn2}"
    );
    // And DN2 is essentially saturated by subflow 2.
    assert!(r_dn2 > 0.75 * cfg.bandwidth.as_bps() as f64, "DN2={r_dn2}");
}

#[test]
fn aggregate_throughput_exceeds_single_path_under_competition() {
    // The whole point of MPTCP in the paper: a 2-subflow XMP flow gets
    // more than a single-path flow would when one path is busy.
    let total_rate = |two_paths: bool| {
        let mut sim: Sim<Segment> = Sim::new(23);
        let cfg = TestbedConfig::default();
        let tb = ShiftTestbed::build(&mut sim, &cfg, |_| stack());
        let mut d = Driver::new();
        let paths = tb.flow2_paths();
        let subflows = if two_paths {
            paths.into_iter().map(spec).collect()
        } else {
            vec![spec(paths[0])]
        };
        let n = subflows.len();
        let flow = d.submit(FlowSpecBuilder {
            src_node: tb.s[1],
            subflows,
            size: u64::MAX,
            scheme: Scheme::Xmp { beta: 4, subflows: n },
            start: SimTime::ZERO,
            category: None,
            tag: 0,
        });
        // Competitor on DN1 only.
        d.submit(FlowSpecBuilder {
            src_node: tb.bg_src[0],
            subflows: vec![spec(tb.bg_path(0))],
            size: u64::MAX,
            scheme: Scheme::xmp(1),
            start: SimTime::ZERO,
            category: None,
            tag: 1,
        });
        d.run(&mut sim, SimTime::from_secs(2), |_, _, _| {});
        let mut s = RateSampler::new();
        for r in 0..n {
            s.sample(&mut sim, &d, flow, r);
        }
        d.run(&mut sim, SimTime::from_secs(4), |_, _, _| {});
        (0..n).map(|r| s.sample(&mut sim, &d, flow, r)).sum::<f64>()
    };
    let single = total_rate(false);
    let multi = total_rate(true);
    assert!(
        multi > 1.5 * single,
        "multipath {multi} should far exceed single-path {single}"
    );
}

#[test]
fn joined_subflow_carries_traffic() {
    let mut sim: Sim<Segment> = Sim::new(29);
    let cfg = TestbedConfig::default();
    let tb = ShiftTestbed::build(&mut sim, &cfg, |_| stack());
    let mut d = Driver::new();
    let paths = tb.flow2_paths();
    // Start with one subflow on DN1 only.
    let flow = d.submit(FlowSpecBuilder {
        src_node: tb.s[1],
        subflows: vec![spec(paths[0])],
        size: u64::MAX,
        scheme: Scheme::xmp(1),
        start: SimTime::ZERO,
        category: None,
        tag: 0,
    });
    d.run(&mut sim, SimTime::from_secs(1), |_, _, _| {});
    // Join the DN2 subflow mid-flight.
    d.add_subflow(&mut sim, flow, spec(paths[1]));
    d.run(&mut sim, SimTime::from_secs(3), |_, _, _| {});
    let acked0 = d.subflow_acked(&mut sim, flow, 0);
    let acked1 = d.subflow_acked(&mut sim, flow, 1);
    assert!(acked1 > 10_000_000, "joined subflow moved data: {acked1}");
    assert!(acked0 > 10_000_000, "original subflow still alive: {acked0}");
}

#[test]
fn xmp_and_dctcp_coexist_productively_on_one_queue() {
    // Note: the paper's Table 2 parity (485 : 485) is measured across a
    // fat tree where XMP can shift load between paths. On a *single*
    // shared queue the algorithms are asymmetric — DCTCP's proportional
    // cut (alpha/2) concedes less than XMP's fixed 1/beta whenever the
    // queue hovers at K — so the defensible single-bottleneck claims are:
    // no starvation, no losses, full utilization.
    let mut sim: Sim<Segment> = Sim::new(31);
    let db = Dumbbell::build(
        &mut sim,
        2,
        Bandwidth::from_mbps(300),
        SimDuration::from_micros(1800),
        QdiscConfig::EcnThreshold { cap: 100, k: 15 },
        |_| stack(),
    );
    let mut d = Driver::new();
    let flow = |i: usize, scheme| FlowSpecBuilder {
        src_node: db.sources[i],
        subflows: vec![SubflowSpec {
            local_port: PortId(0),
            src: Dumbbell::src_addr(i),
            dst: Dumbbell::dst_addr(i),
        }],
        size: u64::MAX,
        scheme,
        start: SimTime::ZERO,
        category: None,
        tag: 0,
    };
    let cx = d.submit(flow(0, Scheme::xmp(1)));
    let cd = d.submit(flow(1, Scheme::Dctcp));
    d.run(&mut sim, SimTime::from_secs(2), |_, _, _| {});
    let mut s = RateSampler::new();
    s.sample(&mut sim, &d, cx, 0);
    s.sample(&mut sim, &d, cd, 0);
    d.run(&mut sim, SimTime::from_secs(6), |_, _, _| {});
    let rx = s.sample(&mut sim, &d, cx, 0);
    let rd = s.sample(&mut sim, &d, cd, 0);
    assert!(rx > 0.05 * 300e6, "XMP starved: {rx}");
    assert!(rd > 0.05 * 300e6, "DCTCP starved: {rd}");
    assert!(rx + rd > 0.8 * 300e6, "link underused: {}", rx + rd);
    assert_eq!(
        sim.link(db.bottleneck).dir(0).stats.dropped,
        0,
        "two ECN schemes must not overflow the queue"
    );
}

#[test]
fn lia_and_xmp_complete_multipath_transfers_exactly() {
    for scheme in [Scheme::lia(2), Scheme::xmp(2)] {
        let mut sim: Sim<Segment> = Sim::new(37);
        let cfg = TestbedConfig::default();
        let tb = ShiftTestbed::build(&mut sim, &cfg, |_| stack());
        let mut d = Driver::new();
        let size = 7_777_777u64;
        let c = d.submit(FlowSpecBuilder {
            src_node: tb.s[1],
            subflows: tb.flow2_paths().into_iter().map(spec).collect(),
            size,
            scheme,
            start: SimTime::ZERO,
            category: None,
            tag: 0,
        });
        d.run(&mut sim, SimTime::from_secs(20), |_, _, _| {});
        let rec = d.record(c).unwrap();
        assert!(
            rec.completed.is_some(),
            "{} did not finish",
            scheme.label()
        );
        let delivered = sim.with_agent::<HostStack, _>(tb.d[1], |st, _| {
            st.receiver(c).map(|r| r.delivered()).unwrap_or(0)
        });
        assert_eq!(delivered, size, "{}", scheme.label());
    }
}
