//! Determinism regression tests for the hot-path overhaul.
//!
//! The timing-wheel scheduler, pooled emission buffers and the parallel
//! suite runner must all be *bit-invisible*: same seed ⇒ identical event
//! counts, identical simulated clock, identical per-flow results — and the
//! parallel runner must return byte-for-byte what the serial loop returns.

use xmp_suite::experiments::fig1::{self, Fig1Config};
use xmp_suite::experiments::suite::{run_suite, run_suite_parallel, Pattern, SuiteConfig};
use xmp_suite::prelude::*;

/// FNV-1a over a string rendering — a cheap digest for comparing whole
/// result structures (f64 Debug formatting round-trips exactly, so equal
/// digests mean bit-equal numbers).
fn digest(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A fig1-style dumbbell scenario, instrumented: returns (events
/// processed, final sim clock, goodput digest over all flows).
fn dumbbell_run(seed: u64) -> (u64, u64, u64) {
    let mut sim: Sim<Segment> = Sim::new(seed);
    let db = Dumbbell::build(
        &mut sim,
        4,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(400),
        QdiscConfig::EcnThreshold { cap: 100, k: 10 },
        |_| Box::new(HostStack::new(StackConfig::default())),
    );
    // A lossy bottleneck makes the run genuinely seed-dependent (the only
    // network-side randomness is fault injection), so the cross-seed
    // inequality check below is meaningful.
    sim.set_link_drop_prob(db.bottleneck, 0.02);
    let mut d = Driver::new();
    for i in 0..4 {
        d.submit(FlowSpecBuilder {
            src_node: db.sources[i],
            subflows: vec![SubflowSpec {
                local_port: PortId(0),
                src: Dumbbell::src_addr(i),
                dst: Dumbbell::dst_addr(i),
            }],
            size: 2_000_000,
            scheme: if i % 2 == 0 { Scheme::xmp(1) } else { Scheme::Dctcp },
            start: SimTime::from_millis(i as u64),
            category: None,
            tag: i as u64,
        });
    }
    d.run(&mut sim, SimTime::from_secs(10), |_, _, _| {});
    let flows: Vec<String> = d
        .records()
        .map(|r| format!("{}:{:?}:{:.6}", r.tag, r.completed, r.goodput_bps))
        .collect();
    (
        sim.events_processed(),
        sim.now().as_nanos(),
        digest(&flows.join(";")),
    )
}

#[test]
fn same_seed_same_run_bit_for_bit() {
    for seed in [1u64, 7, 42] {
        let a = dumbbell_run(seed);
        let b = dumbbell_run(seed);
        assert_eq!(a, b, "seed {seed}: reruns diverged");
        assert!(a.0 > 1000, "seed {seed}: suspiciously few events ({})", a.0);
    }
    // And different seeds genuinely differ (the digest is not degenerate).
    assert_ne!(dumbbell_run(1).2, dumbbell_run(2).2);
}

/// The dumbbell scenario under a full fault plan — a mid-run outage of
/// the bottleneck with Bernoulli loss and corruption on top — returning
/// (events, final clock, flow digest, conservation digest).
fn faulted_dumbbell_run(seed: u64, tuning: SimTuning) -> (u64, u64, u64, u64) {
    let mut sim: Sim<Segment> = Sim::new(seed);
    sim.set_tuning(tuning);
    let db = Dumbbell::build(
        &mut sim,
        4,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(400),
        QdiscConfig::EcnThreshold { cap: 100, k: 10 },
        |_| Box::new(HostStack::new(StackConfig::default())),
    );
    sim.install_fault_plan(
        &FaultPlan::new()
            .drop_rate(db.bottleneck, 0.02)
            .corrupt_rate(db.bottleneck, 0.01)
            .link_down(SimTime::from_millis(50), db.bottleneck)
            .link_up(SimTime::from_millis(120), db.bottleneck),
    );
    let mut d = Driver::new();
    for i in 0..4 {
        d.submit(FlowSpecBuilder {
            src_node: db.sources[i],
            subflows: vec![SubflowSpec {
                local_port: PortId(0),
                src: Dumbbell::src_addr(i),
                dst: Dumbbell::dst_addr(i),
            }],
            size: 2_000_000,
            scheme: if i % 2 == 0 { Scheme::xmp(1) } else { Scheme::Dctcp },
            start: SimTime::from_millis(i as u64),
            category: None,
            tag: i as u64,
        });
    }
    d.run(&mut sim, SimTime::from_secs(10), |_, _, _| {});
    let flows: Vec<String> = d
        .records()
        .map(|r| format!("{}:{:?}:{:.6}:{}", r.tag, r.completed, r.goodput_bps, r.rtos))
        .collect();
    // Panics if any packet is unaccounted for; its digest must be stable.
    let audit = sim.audit_conservation();
    (
        sim.events_processed(),
        sim.now().as_nanos(),
        digest(&flows.join(";")),
        digest(&format!("{audit:?}")),
    )
}

const ALL_TUNINGS: [SimTuning; 4] = [
    SimTuning { compiled_fib: false, lazy_links: false, drop_unroutable: false },
    SimTuning { compiled_fib: true, lazy_links: false, drop_unroutable: false },
    SimTuning { compiled_fib: false, lazy_links: true, drop_unroutable: false },
    SimTuning { compiled_fib: true, lazy_links: true, drop_unroutable: false },
];

#[test]
fn fault_seeded_runs_are_bit_identical_under_every_tuning() {
    for tuning in ALL_TUNINGS {
        let a = faulted_dumbbell_run(5, tuning);
        let b = faulted_dumbbell_run(5, tuning);
        assert_eq!(a, b, "{tuning:?}: fault-seeded reruns diverged");
        assert!(a.0 > 1000, "{tuning:?}: suspiciously few events ({})", a.0);
    }
    // Different fault seeds genuinely change the outcome.
    assert_ne!(
        faulted_dumbbell_run(5, ALL_TUNINGS[0]).2,
        faulted_dumbbell_run(6, ALL_TUNINGS[0]).2
    );
}

#[test]
fn fault_outcomes_agree_across_tunings() {
    // The event count differs by design (2 events per hop eager, 1 lazy),
    // but the simulated outcome — clock, per-flow results, conservation
    // totals — must be identical whichever fast path computed it.
    let base = faulted_dumbbell_run(5, ALL_TUNINGS[0]);
    for tuning in &ALL_TUNINGS[1..] {
        let r = faulted_dumbbell_run(5, *tuning);
        assert_eq!(
            (r.1, r.2, r.3),
            (base.1, base.2, base.3),
            "{tuning:?}: fault outcome diverged from the baseline pipeline"
        );
    }
}

#[test]
fn fig1_rerun_is_identical() {
    let cfg = Fig1Config {
        interval: SimDuration::from_millis(60),
        bin: SimDuration::from_millis(20),
        seed: 3,
        ..Fig1Config::default()
    };
    let a = format!("{:?}", fig1::run(&cfg));
    let b = format!("{:?}", fig1::run(&cfg));
    assert_eq!(digest(&a), digest(&b), "fig1 rerun diverged");
}

#[test]
fn parallel_suite_is_byte_identical_to_serial() {
    let cell = |scheme, pattern, seed| SuiteConfig {
        target_flows: 8,
        max_sim: SimDuration::from_secs(3),
        seed,
        ..SuiteConfig::quick(scheme, pattern)
    };
    let cells = [
        cell(Scheme::xmp(2), Pattern::Permutation, 11),
        cell(Scheme::Dctcp, Pattern::Random, 12),
        cell(Scheme::lia(2), Pattern::Permutation, 13),
    ];
    let serial: Vec<u64> = cells
        .iter()
        .map(|c| digest(&format!("{:?}", run_suite(c))))
        .collect();
    let parallel: Vec<u64> = run_suite_parallel(&cells)
        .iter()
        .map(|r| digest(&format!("{r:?}")))
        .collect();
    assert_eq!(serial, parallel, "parallel suite diverged from serial");
}
