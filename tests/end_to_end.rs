//! Cross-crate integration: transport over the simulated network.

use xmp_suite::prelude::*;

fn stack() -> Box<HostStack> {
    Box::new(HostStack::new(StackConfig::default()))
}

fn dumbbell(n: usize, queue: QdiscConfig, seed: u64) -> (Sim<Segment>, Dumbbell) {
    let mut sim: Sim<Segment> = Sim::new(seed);
    let db = Dumbbell::build(
        &mut sim,
        n,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(400),
        queue,
        |_| stack(),
    );
    (sim, db)
}

fn one_flow(db: &Dumbbell, i: usize, size: u64, scheme: Scheme) -> FlowSpecBuilder {
    FlowSpecBuilder {
        src_node: db.sources[i],
        subflows: vec![SubflowSpec {
            local_port: PortId(0),
            src: Dumbbell::src_addr(i),
            dst: Dumbbell::dst_addr(i),
        }],
        size,
        scheme,
        start: SimTime::ZERO,
        category: None,
        tag: 0,
    }
}

#[test]
fn exact_byte_counts_across_sizes() {
    // Transfers of awkward sizes complete exactly (single segment, odd
    // tails, multi-window).
    for size in [1u64, 100, 1460, 1461, 2920, 100_000, 1_234_567] {
        let (mut sim, db) = dumbbell(1, QdiscConfig::EcnThreshold { cap: 100, k: 10 }, 1);
        let mut d = Driver::new();
        let c = d.submit(one_flow(&db, 0, size, Scheme::xmp(1)));
        d.run(&mut sim, SimTime::from_secs(10), |_, _, _| {});
        let rec = d.record(c).unwrap();
        assert!(rec.completed.is_some(), "size {size} did not complete");
        // The sender-side receiver agreement: delivered == size.
        let delivered = sim.with_agent::<HostStack, _>(db.sinks[0], |st, _| {
            st.receiver(c).map(|r| r.delivered()).unwrap_or(0)
        });
        assert_eq!(delivered, size, "receiver got every byte exactly once");
    }
}

#[test]
fn determinism_same_seed_identical_results() {
    let run = |seed: u64| {
        let (mut sim, db) = dumbbell(4, QdiscConfig::EcnThreshold { cap: 100, k: 10 }, seed);
        let mut d = Driver::new();
        let conns: Vec<_> = (0..4)
            .map(|i| d.submit(one_flow(&db, i, 2_000_000, Scheme::xmp(1))))
            .collect();
        d.run(&mut sim, SimTime::from_secs(10), |_, _, _| {});
        conns
            .iter()
            .map(|&c| {
                let r = d.record(c).unwrap();
                (r.completed.unwrap().as_nanos(), r.goodput_bps.to_bits())
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(5), run(5), "same seed must reproduce bit-identically");
}

#[test]
fn xmp_bounds_buffer_occupancy_lia_fills_it() {
    // The paper's core buffer-occupancy claim, end to end: with the same
    // switch, XMP holds the queue near K while LIA (loss-driven) drives it
    // to the 100-packet cap.
    let occupancy = |scheme: Scheme| {
        let (mut sim, db) = dumbbell(2, QdiscConfig::EcnThreshold { cap: 100, k: 10 }, 7);
        let mut d = Driver::new();
        let c1 = d.submit(one_flow(&db, 0, u64::MAX, scheme));
        let c2 = d.submit(one_flow(&db, 1, u64::MAX, scheme));
        d.run(&mut sim, SimTime::from_secs(1), |_, _, _| {});
        let s = &sim.link(db.bottleneck).dir(0).stats;
        let mean = s.mean_depth(sim.now());
        let max = s.max_depth;
        d.stop_flow(&mut sim, c1);
        d.stop_flow(&mut sim, c2);
        (mean, max)
    };
    let (xmp_mean, xmp_max) = occupancy(Scheme::xmp(1));
    let (lia_mean, lia_max) = occupancy(Scheme::lia(1));
    assert!(xmp_mean < 20.0, "XMP mean queue {xmp_mean} should sit near K=10");
    assert!(xmp_max < 60, "XMP max queue {xmp_max}");
    assert!(
        lia_mean > 2.0 * xmp_mean,
        "LIA mean {lia_mean} should far exceed XMP {xmp_mean}"
    );
    assert!(lia_max >= 99, "LIA should fill the buffer, max={lia_max}");
}

#[test]
fn flows_survive_random_loss_via_retransmission() {
    // smoltcp-style fault injection: 2% random drops; the transfer still
    // completes exactly.
    let mut sim: Sim<Segment> = Sim::new(13);
    let db = Dumbbell::build(
        &mut sim,
        1,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(400),
        QdiscConfig::DropTail { cap: 100 },
        |_| stack(),
    );
    sim.set_link_drop_prob(db.bottleneck, 0.02);
    let mut d = Driver::new();
    let c = d.submit(one_flow(&db, 0, 500_000, Scheme::Tcp));
    d.run(&mut sim, SimTime::from_secs(30), |_, _, _| {});
    let rec = d.record(c).unwrap();
    assert!(rec.completed.is_some(), "flow must survive 2% loss");
    assert!(
        rec.fast_retransmits + rec.rtos > 0,
        "losses must actually have happened"
    );
    let delivered = sim.with_agent::<HostStack, _>(db.sinks[0], |st, _| {
        st.receiver(c).map(|r| r.delivered()).unwrap_or(0)
    });
    assert_eq!(delivered, 500_000);
}

#[test]
fn rto_min_dominates_short_flow_loss_recovery() {
    // The paper's Fig. 9 mechanism: a tail loss on a short TCP flow costs
    // one RTOmin (200 ms). Force it with a heavy fault burst.
    let mut sim: Sim<Segment> = Sim::new(3);
    let db = Dumbbell::build(
        &mut sim,
        1,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(400),
        QdiscConfig::DropTail { cap: 100 },
        |_| stack(),
    );
    // Drop everything briefly right as the flow starts, then heal.
    sim.set_link_drop_prob(db.bottleneck, 1.0);
    let mut d = Driver::new();
    let c = d.submit(one_flow(&db, 0, 10_000, Scheme::Tcp));
    d.run(&mut sim, SimTime::from_millis(50), |_, _, _| {});
    sim.set_link_drop_prob(db.bottleneck, 0.0);
    d.run(&mut sim, SimTime::from_secs(5), |_, _, _| {});
    let rec = d.record(c).unwrap();
    let done = rec.completed.expect("completes after healing");
    assert!(
        done >= SimTime::from_millis(200),
        "completion {done} cannot beat RTOmin"
    );
    assert!(rec.rtos >= 1);
}

#[test]
fn ecn_keeps_losses_at_zero_under_saturation() {
    let (mut sim, db) = dumbbell(4, QdiscConfig::EcnThreshold { cap: 100, k: 10 }, 21);
    let mut d = Driver::new();
    let conns: Vec<_> = (0..4)
        .map(|i| d.submit(one_flow(&db, i, u64::MAX, Scheme::xmp(1))))
        .collect();
    d.run(&mut sim, SimTime::from_secs(2), |_, _, _| {});
    let s = &sim.link(db.bottleneck).dir(0).stats;
    assert_eq!(s.dropped, 0, "ECN flows should never overflow a 100-pkt queue");
    assert!(s.marked > 100, "marking must be active");
    // And the link is still nearly fully utilized (the Eq. 1 trade-off).
    let util = s.utilization(1_000_000_000, sim.now().as_nanos());
    assert!(util > 0.85, "utilization {util}");
    for c in conns {
        d.stop_flow(&mut sim, c);
    }
}
