//! Integration test: the paper's fluid model (Section 2) predicts the
//! simulated system.

use xmp_suite::core::analysis;
use xmp_suite::prelude::*;

/// One BOS flow on a 1 Gbps bottleneck: returns (mean window, observed
/// per-round reduction probability, measured srtt seconds).
fn steady_state(beta: u32, k: usize) -> (f64, f64, f64) {
    let mut sim: Sim<Segment> = Sim::new(11);
    let db = Dumbbell::build(
        &mut sim,
        1,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(400),
        QdiscConfig::EcnThreshold { cap: 400, k },
        |_| Box::new(HostStack::new(StackConfig::default())),
    );
    let mut d = Driver::new();
    let conn = d.submit(FlowSpecBuilder {
        src_node: db.sources[0],
        subflows: vec![SubflowSpec {
            local_port: PortId(0),
            src: Dumbbell::src_addr(0),
            dst: Dumbbell::dst_addr(0),
        }],
        size: u64::MAX,
        scheme: Scheme::Xmp { beta, subflows: 1 },
        start: SimTime::ZERO,
        category: None,
        tag: 0,
    });
    d.run(&mut sim, SimTime::from_millis(500), |_, _, _| {});
    let (mut w_sum, mut n, mut srtt) = (0.0, 0u32, 0.0);
    for ms in (510..=1500).step_by(10) {
        d.run(&mut sim, SimTime::from_millis(ms), |_, _, _| {});
        sim.with_agent::<HostStack, _>(db.sources[0], |st, _| {
            if let Some(s) = st.sender(conn) {
                w_sum += s.view()[0].cwnd;
                n += 1;
                srtt = s.view()[0].srtt.map_or(srtt, |d| d.as_secs_f64());
            }
        });
    }
    let p = sim.with_agent::<HostStack, _>(db.sources[0], |st, _| {
        st.sender(conn)
            .and_then(|s| s.cc().observed_round_p(0))
            .unwrap_or(0.0)
    });
    (w_sum / f64::from(n), p, srtt)
}

#[test]
fn eq3_equilibrium_holds_across_beta_k() {
    // Observed reductions-per-round must match p = 1/(1 + w/(delta*beta))
    // at the observed window, for the paper's parameter range.
    for (beta, k) in [(2u32, 20usize), (4, 10), (6, 10)] {
        let (w, p_obs, _) = steady_state(beta, k);
        let p_model = analysis::equilibrium_mark_prob(w, 1.0, f64::from(beta));
        let rel = (p_obs - p_model).abs() / p_model;
        assert!(
            rel < 0.30,
            "beta={beta} K={k}: observed p {p_obs:.3} vs Eq.3 {p_model:.3} (rel {rel:.2})"
        );
    }
}

#[test]
fn steady_window_is_one_bdp_of_the_inflated_rtt() {
    // BOS holds ~BDP(srtt) in flight: the queue contribution is inside the
    // measured srtt, so w ~ srtt * C / packet.
    for (beta, k) in [(4u32, 10usize), (4, 20)] {
        let (w, _, srtt) = steady_state(beta, k);
        let bdp = srtt * 1e9 / 8.0 / 1500.0;
        let rel = (w - bdp).abs() / bdp;
        assert!(
            rel < 0.25,
            "beta={beta} K={k}: w={w:.1} vs BDP(srtt)={bdp:.1} (rel {rel:.2})"
        );
    }
}

#[test]
fn eq1_bound_separates_full_from_partial_utilization() {
    // Throughput check of Eq. 1 on the real stack: K >= BDP/(beta-1) keeps
    // goodput near line rate; far below the bound it visibly drops.
    let goodput = |beta: u32, k: usize| {
        let mut sim: Sim<Segment> = Sim::new(3);
        let db = Dumbbell::build(
            &mut sim,
            1,
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(400),
            QdiscConfig::EcnThreshold { cap: 200, k },
            |_| Box::new(HostStack::new(StackConfig::default())),
        );
        let mut d = Driver::new();
        let c = d.submit(FlowSpecBuilder {
            src_node: db.sources[0],
            subflows: vec![SubflowSpec {
                local_port: PortId(0),
                src: Dumbbell::src_addr(0),
                dst: Dumbbell::dst_addr(0),
            }],
            size: u64::MAX,
            scheme: Scheme::Xmp { beta, subflows: 1 },
            start: SimTime::ZERO,
            category: None,
            tag: 0,
        });
        let mut sampler = RateSampler::new();
        d.run(&mut sim, SimTime::from_millis(500), |_, _, _| {});
        sampler.sample(&mut sim, &d, c, 0);
        d.run(&mut sim, SimTime::from_millis(1500), |_, _, _| {});
        sampler.sample(&mut sim, &d, c, 0) / 1e9
    };
    // BDP = 33 pkts. beta=2 needs K >= 33; K=40 satisfies, K=3 is far under.
    let high = goodput(2, 40);
    let low = goodput(2, 3);
    assert!(high > 0.90, "K above the Eq.1 bound: {high}");
    assert!(low < high - 0.05, "K far below the bound must cost: {low} vs {high}");
}
