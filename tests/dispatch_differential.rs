//! Dispatch differential: the statically dispatched hot path (inline
//! agents, `QdiscKind` enums, `CcKind` controllers) must be **bit
//! identical** to the historical dynamic path (`Box<dyn Agent>`, boxed
//! qdiscs, `CcKind::Custom` controllers) — same clock, same per-flow
//! records, same conservation totals, same probe stream — under every
//! simulator tuning, with faults and probes enabled. Devirtualization is
//! a pure performance change or it is a bug.

use xmp_suite::experiments::suite::{run_suite_profiled, Pattern, SuiteConfig};
use xmp_suite::netsim::{Agent, ProbeConfig, ProbeRecord};
use xmp_suite::prelude::*;
use xmp_suite::workloads::Host;

/// FNV-1a over a string rendering (f64 Debug formatting round-trips
/// exactly, so equal digests mean bit-equal numbers).
fn digest(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const ALL_TUNINGS: [SimTuning; 4] = [
    SimTuning { compiled_fib: false, lazy_links: false, drop_unroutable: false },
    SimTuning { compiled_fib: true, lazy_links: false, drop_unroutable: false },
    SimTuning { compiled_fib: false, lazy_links: true, drop_unroutable: false },
    SimTuning { compiled_fib: true, lazy_links: true, drop_unroutable: false },
];

/// One faulted, probed dumbbell scenario, generic over agent storage.
/// Returns (final clock, flow digest, audit digest, probe JSONL digest).
fn faulted_probed_run<A: Agent<Segment>>(
    seed: u64,
    tuning: SimTuning,
    boxed_cc_and_qdisc: bool,
    mut make_host: impl FnMut() -> A,
) -> (u64, u64, u64, u64) {
    let mut sim: Sim<Segment, A> = Sim::new(seed);
    sim.set_tuning(tuning);
    let mut qdisc = QdiscConfig::EcnThreshold { cap: 100, k: 10 };
    if boxed_cc_and_qdisc {
        qdisc = qdisc.boxed();
    }
    let db = Dumbbell::build(
        &mut sim,
        4,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(400),
        qdisc,
        |_| make_host(),
    );
    sim.install_fault_plan(
        &FaultPlan::new()
            .drop_rate(db.bottleneck, 0.02)
            .corrupt_rate(db.bottleneck, 0.01)
            .link_down(SimTime::from_millis(50), db.bottleneck)
            .link_up(SimTime::from_millis(120), db.bottleneck),
    );
    sim.install_probes(
        ProbeConfig::every(SimDuration::from_millis(5))
            .until(SimTime::from_secs(10))
            .watch_queue(db.bottleneck, 0)
            .watch_queue(db.bottleneck, 1)
            .with_marks(),
    );
    let mut d = Driver::new();
    d.set_boxed_cc(boxed_cc_and_qdisc);
    for i in 0..4 {
        d.submit(FlowSpecBuilder {
            src_node: db.sources[i],
            subflows: vec![SubflowSpec {
                local_port: PortId(0),
                src: Dumbbell::src_addr(i),
                dst: Dumbbell::dst_addr(i),
            }],
            size: 2_000_000,
            scheme: if i % 2 == 0 { Scheme::xmp(1) } else { Scheme::Dctcp },
            start: SimTime::from_millis(i as u64),
            category: None,
            tag: i as u64,
        });
    }
    d.run(&mut sim, SimTime::from_secs(10), |_, _, _| {});
    let flows: Vec<String> = d
        .records()
        .map(|r| format!("{}:{:?}:{:.6}:{}", r.tag, r.completed, r.goodput_bps, r.rtos))
        .collect();
    let audit = sim.audit_conservation();
    let probes = sim.take_probes().expect("probes were installed");
    assert!(!probes.is_empty(), "probe stream empty");
    (
        sim.now().as_nanos(),
        digest(&flows.join(";")),
        digest(&format!("{audit:?}")),
        digest(&probes.export_jsonl()),
    )
}

#[test]
fn enum_and_boxed_dumbbell_runs_are_bit_identical_under_every_tuning() {
    for tuning in ALL_TUNINGS {
        let stat = faulted_probed_run::<Host>(5, tuning, false, || {
            HostStack::new(StackConfig::default())
        });
        let dynam = faulted_probed_run::<Box<dyn Agent<Segment>>>(5, tuning, true, || {
            Box::new(HostStack::new(StackConfig::default()))
        });
        assert_eq!(
            stat, dynam,
            "{tuning:?}: static dispatch diverged from the boxed path"
        );
    }
}

#[test]
fn suite_cells_are_bit_identical_across_dispatch_under_every_tuning() {
    for tuning in ALL_TUNINGS {
        let cell = |boxed| SuiteConfig {
            target_flows: 8,
            max_sim: SimDuration::from_secs(3),
            seed: 17,
            tuning,
            probe_interval: Some(SimDuration::from_millis(10)),
            boxed_dispatch: boxed,
            ..SuiteConfig::quick(Scheme::xmp(2), Pattern::Permutation)
        };
        let (rs, es, _) = run_suite_profiled(&cell(false));
        let (rb, eb, _) = run_suite_profiled(&cell(true));
        assert_eq!(es, eb, "{tuning:?}: event counts diverged across dispatch");
        assert_eq!(
            digest(&format!("{rs:?}")),
            digest(&format!("{rb:?}")),
            "{tuning:?}: suite outcome diverged across dispatch"
        );
    }
}

#[test]
fn probe_records_match_one_for_one_across_dispatch() {
    // Beyond the digest: the probe streams have the same length and every
    // queue-sample record parses back identically from JSONL.
    let collect = |boxed: bool| -> Vec<String> {
        let mut sim: Sim<Segment, Host> = Sim::new(3);
        let mut qdisc = QdiscConfig::EcnThreshold { cap: 100, k: 10 };
        if boxed {
            qdisc = qdisc.boxed();
        }
        let db = Dumbbell::build(
            &mut sim,
            2,
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(400),
            qdisc,
            |_| HostStack::new(StackConfig::default()),
        );
        sim.install_probes(
            ProbeConfig::every(SimDuration::from_millis(2))
                .until(SimTime::from_secs(5))
                .watch_queue(db.bottleneck, 0)
                .with_marks(),
        );
        let mut d = Driver::new();
        d.set_boxed_cc(boxed);
        for i in 0..2 {
            d.submit(FlowSpecBuilder {
                src_node: db.sources[i],
                subflows: vec![SubflowSpec {
                    local_port: PortId(0),
                    src: Dumbbell::src_addr(i),
                    dst: Dumbbell::dst_addr(i),
                }],
                size: 1_000_000,
                scheme: Scheme::xmp(1),
                start: SimTime::ZERO,
                category: None,
                tag: i as u64,
            });
        }
        d.run(&mut sim, SimTime::from_secs(5), |_, _, _| {});
        let probes = sim.take_probes().expect("probes were installed");
        probes
            .records()
            .iter()
            .map(|r| {
                let line = r.to_json();
                let back = ProbeRecord::parse(&line).expect("probe JSONL round-trips");
                assert_eq!(format!("{r:?}"), format!("{back:?}"));
                line
            })
            .collect()
    };
    let a = collect(false);
    let b = collect(true);
    assert!(!a.is_empty());
    assert_eq!(a, b, "probe streams diverged across dispatch");
}
