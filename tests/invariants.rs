//! Seeded cross-crate invariants: each test drives a whole simulation per
//! case from a `SimRng`-derived parameter draw, 24 cases each (one case is
//! an entire sim, so the counts mirror the old property-test budget). On
//! failure the seed is printed — rerun with that seed to reproduce.

use xmp_suite::prelude::*;

fn stack() -> Box<HostStack> {
    Box::new(HostStack::new(StackConfig::default()))
}

/// Any transfer size over a lossy link completes exactly, for every
/// scheme (the reassembly + retransmission machinery is watertight).
#[test]
fn lossy_transfers_are_exact_seeded() {
    for seed in 0..24u64 {
        let mut rng = SimRng::new(seed);
        let size = 1 + rng.uniform_u64(0, 1_999_998);
        let drop_pct = rng.index(8) as u32;
        let scheme = [Scheme::Tcp, Scheme::Dctcp, Scheme::xmp(1), Scheme::lia(1)][rng.index(4)];
        let mut sim: Sim<Segment> = Sim::new(seed);
        let db = Dumbbell::build(
            &mut sim,
            1,
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(400),
            QdiscConfig::EcnThreshold { cap: 100, k: 10 },
            |_| stack(),
        );
        sim.set_link_drop_prob(db.bottleneck, f64::from(drop_pct) / 100.0);
        let mut d = Driver::new();
        let c = d.submit(FlowSpecBuilder {
            src_node: db.sources[0],
            subflows: vec![SubflowSpec {
                local_port: PortId(0),
                src: Dumbbell::src_addr(0),
                dst: Dumbbell::dst_addr(0),
            }],
            size,
            scheme,
            start: SimTime::ZERO,
            category: None,
            tag: 0,
        });
        d.run(&mut sim, SimTime::from_secs(120), |_, _, _| {});
        let rec = d.record(c).unwrap();
        assert!(
            rec.completed.is_some(),
            "seed {seed}: size={size} drop={drop_pct}% scheme={} never completed",
            scheme.label()
        );
        let delivered = sim.with_agent::<HostStack, _>(db.sinks[0], |st, _| {
            st.receiver(c).map(|r| r.delivered()).unwrap_or(0)
        });
        assert_eq!(delivered, size, "seed {seed}: bytes delivered");
    }
}

/// Multipath transfers across the fat tree deliver exactly, for any
/// (src, dst, subflow-count) combination.
#[test]
fn fat_tree_multipath_exact_seeded() {
    for seed in 0..24u64 {
        let mut rng = SimRng::new(seed);
        let src = rng.index(16);
        let dst = rng.index(16);
        if src == dst {
            continue;
        }
        let n_subflows = 1 + rng.index(3);
        let mut sim: Sim<Segment> = Sim::new(seed);
        let cfg = FatTreeConfig {
            k: 4,
            ..FatTreeConfig::paper(QdiscConfig::EcnThreshold { cap: 100, k: 10 })
        };
        let ft = FatTree::build(&mut sim, &cfg, |_| stack());
        let subflows =
            xmp_suite::workloads::patterns::fat_tree_subflows(&ft, src, dst, n_subflows, &mut rng);
        let size = 500_000u64 + seed * 1000;
        let mut d = Driver::new();
        let c = d.submit(FlowSpecBuilder {
            src_node: ft.host(src),
            subflows,
            size,
            scheme: Scheme::Xmp {
                beta: 4,
                subflows: n_subflows,
            },
            start: SimTime::ZERO,
            category: Some(ft.category(src, dst)),
            tag: 0,
        });
        d.run(&mut sim, SimTime::from_secs(30), |_, _, _| {});
        assert!(
            d.record(c).unwrap().completed.is_some(),
            "seed {seed}: {src}->{dst} x{n_subflows} never completed"
        );
        let delivered = sim.with_agent::<HostStack, _>(ft.host(dst), |st, _| {
            st.receiver(c).map(|r| r.delivered()).unwrap_or(0)
        });
        assert_eq!(delivered, size, "seed {seed}: bytes delivered");
    }
}

/// Network-wide packet conservation: for every link direction,
/// enqueued = delivered + still queued/in flight.
#[test]
fn link_packet_conservation_seeded() {
    for seed in 0..24u64 {
        let mut rng = SimRng::new(seed);
        let drop_pct = rng.index(20) as u32;
        let mut sim: Sim<Segment> = Sim::new(seed);
        let db = Dumbbell::build(
            &mut sim,
            2,
            Bandwidth::from_mbps(100),
            SimDuration::from_micros(400),
            QdiscConfig::DropTail { cap: 20 },
            |_| stack(),
        );
        sim.set_link_drop_prob(db.bottleneck, f64::from(drop_pct) / 100.0);
        let mut d = Driver::new();
        for i in 0..2 {
            d.submit(FlowSpecBuilder {
                src_node: db.sources[i],
                subflows: vec![SubflowSpec {
                    local_port: PortId(0),
                    src: Dumbbell::src_addr(i),
                    dst: Dumbbell::dst_addr(i),
                }],
                size: 300_000,
                scheme: Scheme::Tcp,
                start: SimTime::ZERO,
                category: None,
                tag: 0,
            });
        }
        d.run(&mut sim, SimTime::from_millis(200), |_, _, _| {});
        for (_, link) in sim.links() {
            for dir in &link.dirs {
                let s = &dir.stats;
                let resident = dir.queue.len() as u64 + u64::from(dir.in_flight.is_some());
                assert_eq!(
                    s.enqueued,
                    s.delivered + resident,
                    "seed {seed}: enqueued {} != delivered {} + resident {}",
                    s.enqueued,
                    s.delivered,
                    resident
                );
            }
        }
    }
}

/// Determinism holds across every scheme: running twice with the same
/// seed yields identical completion times.
#[test]
fn determinism_all_schemes_seeded() {
    for seed in 0..24u64 {
        let mut rng = SimRng::new(seed);
        let scheme = [
            Scheme::Tcp,
            Scheme::Dctcp,
            Scheme::xmp(1),
            Scheme::xmp(2),
            Scheme::lia(2),
            Scheme::Olia { subflows: 2 },
        ][rng.index(6)];
        let run = || {
            let mut sim: Sim<Segment> = Sim::new(seed);
            let db = Dumbbell::build(
                &mut sim,
                1,
                Bandwidth::from_mbps(500),
                SimDuration::from_micros(400),
                QdiscConfig::EcnThreshold { cap: 100, k: 10 },
                |_| stack(),
            );
            let mut d = Driver::new();
            let specs = vec![
                SubflowSpec {
                    local_port: PortId(0),
                    src: Dumbbell::src_addr(0),
                    dst: Dumbbell::dst_addr(0),
                };
                scheme.subflow_count()
            ];
            let c = d.submit(FlowSpecBuilder {
                src_node: db.sources[0],
                subflows: specs,
                size: 777_777,
                scheme,
                start: SimTime::ZERO,
                category: None,
                tag: 0,
            });
            d.run(&mut sim, SimTime::from_secs(20), |_, _, _| {});
            d.record(c).unwrap().completed.map(|t| t.as_nanos())
        };
        let a = run();
        assert!(a.is_some(), "seed {seed}: {} never completed", scheme.label());
        assert_eq!(a, run(), "seed {seed}: {} nondeterministic", scheme.label());
    }
}
