//! # xmp-suite — umbrella crate of the XMP reproduction
//!
//! Re-exports the whole workspace under one roof and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! The layers, bottom-up:
//!
//! * [`des`] — deterministic discrete-event kernel,
//! * [`netsim`] — packet-level network simulator (ECN queues, links,
//!   switches, routing),
//! * [`transport`] — TCP/DCTCP/MPTCP state machines and the
//!   congestion-control plug-in interface,
//! * [`core`] — **XMP** itself: the BOS and TraSh algorithms of the
//!   CoNEXT'13 paper, plus its analytical model,
//! * [`topo`] — fat tree (two-level routing), torus, testbeds,
//! * [`workloads`] — the paper's traffic patterns and metrics,
//! * [`experiments`] — one module per paper table/figure.
//!
//! ## Quickstart
//!
//! ```
//! use xmp_suite::prelude::*;
//!
//! // Two hosts, one ECN-marking bottleneck, one 1 MiB XMP transfer.
//! let mut sim: Sim<Segment> = Sim::new(7);
//! let db = Dumbbell::build(
//!     &mut sim,
//!     1,
//!     Bandwidth::from_gbps(1),
//!     SimDuration::from_micros(400),
//!     QdiscConfig::EcnThreshold { cap: 100, k: 10 },
//!     |_| Box::new(HostStack::new(StackConfig::default())),
//! );
//! let mut driver = Driver::new();
//! let conn = driver.submit(FlowSpecBuilder {
//!     src_node: db.sources[0],
//!     subflows: vec![SubflowSpec {
//!         local_port: PortId(0),
//!         src: Dumbbell::src_addr(0),
//!         dst: Dumbbell::dst_addr(0),
//!     }],
//!     size: 1 << 20,
//!     scheme: Scheme::xmp(1),
//!     start: SimTime::ZERO,
//!     category: None,
//!     tag: 0,
//! });
//! driver.run(&mut sim, SimTime::from_secs(1), |_, _, _| {});
//! let rec = driver.record(conn).unwrap();
//! assert!(rec.completed.is_some());
//! assert!(rec.goodput_bps > 100e6);
//! ```

pub use xmp_core as core;
pub use xmp_des as des;
pub use xmp_experiments as experiments;
pub use xmp_netsim as netsim;
pub use xmp_topo as topo;
pub use xmp_transport as transport;
pub use xmp_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use xmp_core::{Bos, Xmp, XmpParams};
    pub use xmp_des::{Bandwidth, ByteSize, SimDuration, SimRng, SimTime};
    pub use xmp_netsim::{
        Addr, Ecn, FaultPlan, LinkParams, NodeId, PortId, Qdisc, QdiscConfig, Sim, SimTuning,
    };
    pub use xmp_topo::{Dumbbell, FatTree, FatTreeConfig, FlowCategory, Torus};
    pub use xmp_transport::{
        CongestionControl, Dctcp, Lia, Reno, Segment, StackConfig, SubflowSpec,
    };
    // `HostStack` in the prelude is the workloads `Host` alias — the stack
    // specialised to the statically dispatched `CcKind` controllers, which
    // is what `Driver`/`Scheme` drive. The generic stack stays available as
    // `xmp_transport::HostStack<C>`.
    pub use xmp_workloads::Host as HostStack;
    pub use xmp_workloads::{
        jain_index, Cdf, Driver, FlowSpecBuilder, IncastPattern, PatternConfig,
        PermutationPattern, RandomPattern, RateSampler, Scheme,
    };
}
