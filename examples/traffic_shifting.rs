//! Traffic shifting: the paper's first testbed experiment (Fig. 3a / 4).
//!
//! Flow 2 holds one subflow through bottleneck DN1 and one through DN2.
//! When a background flow appears on DN1, TraSh retunes the subflow gains
//! and the traffic moves to DN2 — and back when the background flow moves.
//! The example prints Flow 2's per-subflow rates every half second.
//!
//! Run with: `cargo run --release --example traffic_shifting`

use xmp_suite::prelude::*;
use xmp_suite::topo::testbed::{ShiftTestbed, TestbedConfig};

fn main() {
    let mut sim: Sim<Segment> = Sim::new(1);
    let cfg = TestbedConfig::default(); // 300 Mbps, RTT 1.8 ms, K = 15
    let tb = ShiftTestbed::build(&mut sim, &cfg, |_| {
        Box::new(HostStack::new(StackConfig::default()))
    });
    let cap = cfg.bandwidth.as_bps() as f64;

    let spec = |p: xmp_suite::topo::testbed::Path| SubflowSpec {
        local_port: p.port,
        src: p.src,
        dst: p.dst,
    };
    let mut driver = Driver::new();
    let flow = |node, subflows, n, start_s| FlowSpecBuilder {
        src_node: node,
        subflows,
        size: u64::MAX,
        scheme: Scheme::Xmp { beta: 4, subflows: n },
        start: SimTime::from_secs(start_s),
        category: None,
        tag: 0,
    };

    driver.submit(flow(tb.s[0], vec![spec(tb.flow1_path())], 1, 0));
    let flow2 = driver.submit(flow(
        tb.s[1],
        tb.flow2_paths().into_iter().map(spec).collect(),
        2,
        0,
    ));
    driver.submit(flow(tb.s[2], vec![spec(tb.flow3_path())], 1, 0));
    let bg1 = driver.submit(flow(tb.bg_src[0], vec![spec(tb.bg_path(0))], 1, 2));
    let bg2 = driver.submit(flow(tb.bg_src[1], vec![spec(tb.bg_path(1))], 1, 4));

    println!("t(s)   flow2-1(DN1)  flow2-2(DN2)   phase");
    let mut sampler = RateSampler::new();
    let mut stopped = (false, false);
    for half in 1..=16u64 {
        let t = SimTime::from_millis(500 * half);
        driver.run(&mut sim, t, |_, _, _| {});
        if !stopped.0 && t >= SimTime::from_secs(4) {
            driver.stop_flow(&mut sim, bg1);
            stopped.0 = true;
        }
        if !stopped.1 && t >= SimTime::from_secs(6) {
            driver.stop_flow(&mut sim, bg2);
            stopped.1 = true;
        }
        let r1 = sampler.sample(&mut sim, &driver, flow2, 0) / cap;
        let r2 = sampler.sample(&mut sim, &driver, flow2, 1) / cap;
        let phase = match half {
            1..=4 => "no background",
            5..=8 => "background on DN1 -> shift to DN2",
            9..=12 => "background on DN2 -> shift to DN1",
            _ => "background gone -> rebalance",
        };
        println!("{:>4.1}   {:>12.2}  {:>12.2}   {phase}", t.as_secs_f64(), r1, r2);
    }
}
