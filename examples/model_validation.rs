//! Fluid model vs. simulation: does the paper's math predict the code?
//!
//! The paper derives BOS's equilibrium (Eq. 3): at steady state the
//! per-round marking probability is `p̃ = 1/(1 + w̃/(δβ))`, equivalently
//! `w̃ = δβ(1−p)/p`. On a single bottleneck the queue sits at ≈K, so a
//! lone flow's steady window should be ≈ BDP + K, which pins down p̃ — and
//! the measured marking rate should match.
//!
//! This example runs one BOS/XMP flow per (β, K) configuration, measures
//! the steady-state window and the fraction of marked rounds, and compares
//! both to the closed forms from `xmp_core::analysis`.
//!
//! Run with: `cargo run --release --example model_validation`

use xmp_suite::core::analysis;
use xmp_suite::prelude::*;

struct Point {
    beta: u32,
    k: usize,
    measured_w: f64,
    predicted_w: f64,
    measured_p: f64,
    predicted_p: f64,
    naive_p: f64,
}

fn run_point(beta: u32, k: usize) -> Point {
    let mut sim: Sim<Segment> = Sim::new(11);
    let rtt = SimDuration::from_micros(400);
    let db = Dumbbell::build(
        &mut sim,
        1,
        Bandwidth::from_gbps(1),
        rtt,
        QdiscConfig::EcnThreshold { cap: 400, k },
        |_| Box::new(HostStack::new(StackConfig::default())),
    );
    let mut d = Driver::new();
    let conn = d.submit(FlowSpecBuilder {
        src_node: db.sources[0],
        subflows: vec![SubflowSpec {
            local_port: PortId(0),
            src: Dumbbell::src_addr(0),
            dst: Dumbbell::dst_addr(0),
        }],
        size: u64::MAX,
        scheme: Scheme::Xmp { beta, subflows: 1 },
        start: SimTime::ZERO,
        category: None,
        tag: 0,
    });
    // Warm up, then sample the window and marking rate over 1.5 s.
    d.run(&mut sim, SimTime::from_millis(500), |_, _, _| {});
    let marked0 = sim.link(db.bottleneck).dir(0).stats.marked;
    let enq0 = sim.link(db.bottleneck).dir(0).stats.enqueued;
    let mut w_sum = 0.0;
    let mut w_n = 0u32;
    let mut srtt_ns = 0u64;
    for ms in (510..=2000).step_by(10) {
        d.run(&mut sim, SimTime::from_millis(ms), |_, _, _| {});
        sim.with_agent::<HostStack, _>(db.sources[0], |st, _| {
            if let Some(s) = st.sender(conn) {
                w_sum += s.view()[0].cwnd;
                w_n += 1;
                srtt_ns = s.view()[0].srtt.map_or(srtt_ns, |d| d.as_nanos());
            }
        });
    }
    let s = &sim.link(db.bottleneck).dir(0).stats;
    let marked = (s.marked - marked0) as f64;
    let total = (s.enqueued - enq0) as f64;
    let measured_w = w_sum / f64::from(w_n);
    // Naive estimate assuming independent per-packet marking — the paper's
    // Section 2.1 argues this is WRONG in DCNs (marks arrive in batches):
    let f = marked / total.max(1.0);
    let naive_p = 1.0 - (1.0 - f).powf(measured_w);
    // The real congestion metric: observed reductions per round.
    let measured_p = sim.with_agent::<HostStack, _>(db.sources[0], |st, _| {
        st.sender(conn)
            .and_then(|snd| snd.cc().observed_round_p(0))
            .unwrap_or(0.0)
    });
    
    // Prediction: the flow fills BDP + K on average.
    let bdp = Bandwidth::from_gbps(1)
        .bytes_in(SimDuration::from_nanos(srtt_ns.max(1)))
        .as_bytes() as f64
        / 1500.0;
    let predicted_w = bdp;
    let predicted_p = analysis::equilibrium_mark_prob(measured_w, 1.0, f64::from(beta));
    Point {
        beta,
        k,
        measured_w,
        predicted_w,
        measured_p,
        predicted_p,
        naive_p,
    }
}

fn main() {
    println!("Eq. 3 validation: one BOS flow per (beta, K); steady window vs BDP(srtt),");
    println!("round reduction probability vs p = 1/(1 + w/(delta*beta)), and the");
    println!("naive independent-marking estimate the paper rejects (Section 2.1).\n");
    println!("beta   K   w_measured  w_model(BDP+q)  p_measured  p_eq3  p_naive");
    for (beta, k) in [(2u32, 20usize), (3, 15), (4, 10), (4, 20), (5, 15), (6, 10)] {
        let p = run_point(beta, k);
        println!(
            "{:>4} {:>3} {:>12.1} {:>15.1} {:>11.3} {:>7.3} {:>8.3}",
            p.beta, p.k, p.measured_w, p.predicted_w, p.measured_p, p.predicted_p, p.naive_p
        );
    }
    println!();
    println!("w_model uses the *measured* srtt (queueing included): agreement means the");
    println!("flow holds one BDP in flight. p_measured tracking p_eq3 validates Eq. 3;");
    println!("p_naive's wild overestimate is the paper's batch-marking argument for");
    println!("using the per-round metric p(t) instead of a per-packet q(t).");
}
