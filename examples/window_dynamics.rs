//! Window dynamics: the shape of each algorithm's congestion window.
//!
//! One flow per scheme saturates a private 300 Mbps / 1.8 ms bottleneck
//! (BDP ≈ 45 packets, K = 15). The example samples `cwnd` every 10 ms and
//! renders a tiny ASCII strip chart per scheme:
//!
//! * **XMP/BOS (β=4)** — a sawtooth that cuts exactly 1/4 once per round
//!   and climbs +δ per round,
//! * **DCTCP** — shallow α-proportional cuts around a similar operating
//!   point,
//! * **LIA/TCP** — the tall loss-driven sawtooth that fills the whole
//!   100-packet buffer before halving.
//!
//! Run with: `cargo run --release --example window_dynamics`

use xmp_suite::prelude::*;

fn sample_cwnd(scheme: Scheme) -> Vec<f64> {
    let mut sim: Sim<Segment> = Sim::new(5);
    let db = Dumbbell::build(
        &mut sim,
        1,
        Bandwidth::from_mbps(300),
        SimDuration::from_micros(1800),
        QdiscConfig::EcnThreshold { cap: 100, k: 15 },
        |_| Box::new(HostStack::new(StackConfig::default())),
    );
    let mut d = Driver::new();
    let conn = d.submit(FlowSpecBuilder {
        src_node: db.sources[0],
        subflows: vec![SubflowSpec {
            local_port: PortId(0),
            src: Dumbbell::src_addr(0),
            dst: Dumbbell::dst_addr(0),
        }],
        size: u64::MAX,
        scheme,
        start: SimTime::ZERO,
        category: None,
        tag: 0,
    });
    // Skip the slow-start transient, then sample for 0.8 s.
    d.run(&mut sim, SimTime::from_millis(400), |_, _, _| {});
    let mut samples = Vec::new();
    for ms in (410..=1200).step_by(10) {
        d.run(&mut sim, SimTime::from_millis(ms), |_, _, _| {});
        let cwnd = sim.with_agent::<HostStack, _>(db.sources[0], |st, _| {
            st.sender(conn).map_or(0.0, |s| s.view()[0].cwnd)
        });
        samples.push(cwnd);
    }
    d.stop_flow(&mut sim, conn);
    samples
}

fn strip_chart(samples: &[f64], max: f64) -> String {
    const GLYPHS: [char; 8] = [' ', '.', ':', '-', '=', '+', '*', '#'];
    samples
        .iter()
        .map(|&v| {
            let idx = ((v / max) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

fn main() {
    println!("congestion window over 0.8 s (10 ms samples), one flow per scheme");
    println!("BDP ~45 pkts, K = 15, queue 100; chart scale 0..150 pkts\n");
    for scheme in [Scheme::xmp(1), Scheme::Dctcp, Scheme::Tcp] {
        let samples = sample_cwnd(scheme);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        println!("{:<6} |{}|", scheme.label(), strip_chart(&samples, 150.0));
        println!(
            "       cwnd min/mean/max = {min:.0}/{mean:.0}/{max:.0} pkts\n"
        );
    }
    println!("XMP rides just above the BDP (marking keeps the queue near K);");
    println!("TCP must climb to the buffer limit (~100) before every loss-cut.");
}
