//! Incast jobs: latency-sensitive small flows sharing the fabric with
//! large flows (the paper's Incast pattern, Fig. 9 / Table 3 in miniature).
//!
//! A k=4 fat tree runs 4 concurrent 9-host Jobs (2 KB requests, 64 KB
//! responses over plain TCP) on top of Random-pattern large background
//! flows. The example compares XMP-2 and LIA-2 as the large-flow scheme:
//! because XMP keeps queues near K, the small TCP flows see short queues
//! and the Jobs finish fast; LIA fills the 100-packet buffers and the Jobs
//! absorb queueing delay and 200 ms RTO stalls.
//!
//! Run with: `cargo run --release --example incast_jobs`

use xmp_suite::prelude::*;
use xmp_suite::topo::FatTreeConfig;

fn run(scheme: Scheme) -> (usize, f64, f64, f64) {
    let mut sim: Sim<Segment> = Sim::new(11);
    let ft_cfg = FatTreeConfig {
        k: 4,
        ..FatTreeConfig::paper(QdiscConfig::EcnThreshold { cap: 100, k: 10 })
    };
    let ft = FatTree::build(&mut sim, &ft_cfg, |_| {
        Box::new(HostStack::new(StackConfig::default()))
    });
    let mut driver = Driver::new();
    let mut pattern = IncastPattern::new(PatternConfig::new(scheme, 5, 256, usize::MAX));
    pattern.start(&mut sim, &mut driver, &ft, 4);
    driver.run(&mut sim, SimTime::from_secs(10), |sim, d, conn| {
        pattern.on_complete(sim, d, &ft, conn);
    });
    let jt = Cdf::new(pattern.job_times_ms.iter().copied());
    (
        jt.len(),
        jt.mean(),
        jt.percentile(90.0),
        jt.fraction_above(300.0) * 100.0,
    )
}

fn main() {
    println!("large-flow scheme   jobs   mean JCT   p90 JCT   >300ms");
    for scheme in [Scheme::xmp(2), Scheme::lia(2)] {
        let (n, mean, p90, over) = run(scheme);
        println!(
            "{:<18} {:>5} {:>8.1}ms {:>8.1}ms {:>7.1}%",
            scheme.label(),
            n,
            mean,
            p90,
            over
        );
    }
    println!();
    println!("(small flows always use plain TCP; only the large-flow scheme varies)");
}
