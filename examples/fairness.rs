//! Fairness: flows with different subflow counts share one bottleneck
//! (the paper's second testbed experiment, Fig. 3b / 6).
//!
//! Four XMP flows with 3 / 2 / 1 / 1 subflows compete for 300 Mbps.
//! Because TraSh couples each flow's subflows, every *flow* converges to
//! ~1/4 of the link regardless of how many subflows it opened — contrast
//! with uncoupled flows, where a 3-subflow flow would take ~3x the share.
//!
//! Run with: `cargo run --release --example fairness`

use xmp_suite::prelude::*;
use xmp_suite::topo::testbed::{FairnessTestbed, TestbedConfig};

fn main() {
    let mut sim: Sim<Segment> = Sim::new(3);
    let cfg = TestbedConfig::default();
    let tb = FairnessTestbed::build(&mut sim, &cfg, |_| {
        Box::new(HostStack::new(StackConfig::default()))
    });
    let cap = cfg.bandwidth.as_bps() as f64;

    let subflow_counts = [3usize, 2, 1, 1];
    let mut driver = Driver::new();
    let conns: Vec<_> = (0..4)
        .map(|i| {
            let p = tb.flow_path(i);
            let spec = SubflowSpec {
                local_port: p.port,
                src: p.src,
                dst: p.dst,
            };
            driver.submit(FlowSpecBuilder {
                src_node: tb.net.sources[i],
                subflows: vec![spec; subflow_counts[i]],
                size: u64::MAX,
                scheme: Scheme::Xmp {
                    beta: 4,
                    subflows: subflow_counts[i],
                },
                start: SimTime::ZERO,
                category: None,
                tag: i as u64,
            })
        })
        .collect();

    // Let the flows converge, then measure over a 3 s window.
    driver.run(&mut sim, SimTime::from_secs(2), |_, _, _| {});
    let mut sampler = RateSampler::new();
    let mut shares = vec![0.0f64; 4];
    for (i, &c) in conns.iter().enumerate() {
        for r in 0..subflow_counts[i] {
            sampler.sample(&mut sim, &driver, c, r);
        }
    }
    driver.run(&mut sim, SimTime::from_secs(5), |_, _, _| {});
    for (i, &c) in conns.iter().enumerate() {
        for r in 0..subflow_counts[i] {
            shares[i] += sampler.sample(&mut sim, &driver, c, r) / cap;
        }
    }

    println!("flow   subflows   share of 300 Mbps");
    for i in 0..4 {
        println!("{:>4}   {:>8}   {:>6.2}", i + 1, subflow_counts[i], shares[i]);
    }
    println!();
    println!("Jain fairness index: {:.3} (1.0 = perfectly fair)", jain_index(&shares));
    println!("aggregate utilization: {:.2}", shares.iter().sum::<f64>());
}
