//! Quickstart: one XMP flow over an ECN-marking bottleneck.
//!
//! Builds a dumbbell (1 Gbps, 400 µs RTT, K = 10, queue 100), transfers
//! 64 MiB with single-path XMP (= the BOS algorithm), and prints goodput,
//! RTT and the bottleneck buffer occupancy — demonstrating the paper's
//! core claim: near-full utilization with the queue pinned near K.
//!
//! Run with: `cargo run --release --example quickstart`

use xmp_suite::prelude::*;

fn main() {
    let mut sim: Sim<Segment> = Sim::new(7);
    let db = Dumbbell::build(
        &mut sim,
        1,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(400),
        QdiscConfig::EcnThreshold { cap: 100, k: 10 },
        |_| Box::new(HostStack::new(StackConfig::default())),
    );

    let mut driver = Driver::new();
    let conn = driver.submit(FlowSpecBuilder {
        src_node: db.sources[0],
        subflows: vec![SubflowSpec {
            local_port: PortId(0),
            src: Dumbbell::src_addr(0),
            dst: Dumbbell::dst_addr(0),
        }],
        size: 64 << 20,
        scheme: Scheme::xmp(1),
        start: SimTime::ZERO,
        category: None,
        tag: 0,
    });

    // Step until the flow completes so the queue statistics cover exactly
    // the busy period.
    let mut t = SimTime::ZERO;
    while driver.record(conn).unwrap().completed.is_none() && t < SimTime::from_secs(5) {
        t += SimDuration::from_millis(50);
        driver.run(&mut sim, t, |_, _, _| {});
    }

    let rec = driver.record(conn).expect("flow record");
    let done = rec.completed.expect("flow should complete well within 5s");
    let queue = &sim.link(db.bottleneck).dir(0).stats;
    println!("transferred : 64 MiB with {}", rec.scheme);
    println!("completed at: {done}");
    println!("goodput     : {:.1} Mbps", rec.goodput_bps / 1e6);
    println!("mean RTT    : {:.0} us", rec.mean_rtt_ns as f64 / 1e3);
    println!(
        "bottleneck  : mean queue {:.1} pkts (K = 10), max {} pkts, {} marks, {} drops",
        queue.mean_depth(sim.now()),
        queue.max_depth,
        queue.marked,
        queue.dropped,
    );
    println!(
        "events      : {} processed in {} simulated",
        sim.events_processed(),
        sim.now()
    );
}
