//! Rate compensation on the five-bottleneck torus (paper Fig. 5 / 7).
//!
//! Five XMP-2 flows ring the torus; background flows congest L3 mid-run,
//! and L3 is finally taken down. Watch the two subflows crossing L3 shrink
//! while their siblings grow ("attenuated Dominos"), and the L3 subflows
//! collapse to zero when the link dies while the flows keep running on
//! their other path.
//!
//! Run with: `cargo run --release --example rate_compensation`

use xmp_suite::prelude::*;
use xmp_suite::topo::torus::{TorusConfig, CAPACITIES_GBPS, RING};

fn main() {
    let mut sim: Sim<Segment> = Sim::new(2);
    let torus = Torus::build(&mut sim, &TorusConfig::default(), |_| {
        Box::new(HostStack::new(StackConfig::default()))
    });
    let mut driver = Driver::new();
    let spec = |p: xmp_suite::topo::testbed::Path| SubflowSpec {
        local_port: p.port,
        src: p.src,
        dst: p.dst,
    };

    // All five two-subflow flows from t = 0.
    let flows: Vec<_> = (0..RING)
        .map(|i| {
            driver.submit(FlowSpecBuilder {
                src_node: torus.src[i],
                subflows: torus.flow_paths(i).into_iter().map(spec).collect(),
                size: u64::MAX,
                scheme: Scheme::xmp(2),
                start: SimTime::ZERO,
                category: None,
                tag: i as u64,
            })
        })
        .collect();
    // Background congestion on L3 during [2 s, 4 s); L3 dies at 5 s.
    let bg: Vec<_> = (0..4)
        .map(|b| {
            driver.submit(FlowSpecBuilder {
                src_node: torus.bg_src,
                subflows: vec![spec(torus.bg_path())],
                size: u64::MAX,
                scheme: Scheme::xmp(1),
                start: SimTime::from_secs(2),
                category: None,
                tag: 100 + b,
            })
        })
        .collect();

    let mut sampler = RateSampler::new();
    println!("phase                 | subflow rates, normalized to each bottleneck");
    println!(
        "                      | {}",
        (0..RING)
            .flat_map(|i| (0..2).map(move |x| format!("{}-{}", i + 1, x + 1)))
            .collect::<Vec<_>>()
            .join("   ")
    );
    let mut bg_stopped = false;
    let mut l3_down = false;
    for sec in 1..=7u64 {
        let t = SimTime::from_secs(sec);
        driver.run(&mut sim, t, |_, _, _| {});
        if !bg_stopped && sec >= 4 {
            for &b in &bg {
                driver.stop_flow(&mut sim, b);
            }
            bg_stopped = true;
        }
        if !l3_down && sec >= 5 {
            sim.set_link_drop_prob(torus.bottlenecks[2], 1.0);
            l3_down = true;
        }
        let phase = match sec {
            1..=2 => "steady state        ",
            3..=4 => "bg flows congest L3 ",
            5 => "bg gone             ",
            _ => "L3 link down        ",
        };
        let mut cells = Vec::new();
        for (i, &c) in flows.iter().enumerate() {
            for x in 0..2 {
                let bps = sampler.sample(&mut sim, &driver, c, x);
                let cap = CAPACITIES_GBPS[(i + x) % RING] * 1e9;
                cells.push(format!("{:.2}", bps / cap));
            }
        }
        println!("{phase} | {}", cells.join("  "));
    }
    println!();
    println!("flows 2-2 and 3-1 ride L3: they dip under congestion and die with the");
    println!("link, while 2-1 and 3-2 compensate — the paper's \"attenuated Dominos\".");
}
