#!/usr/bin/env bash
# Tier-1 gate: the release build plus the full test suite, fully offline.
# This is the command CI and the roadmap treat as the health check.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test -q --workspace --offline
# Lint gate: clippy clean across every target (tests, benches, binaries).
cargo clippy --workspace --all-targets --offline -- -D warnings
# Rustdoc gate: every pub item documented, no broken intra-doc links.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline
# Smoke: the failover experiment must survive a mid-run link failure
# (and its packet-conservation audit) end to end.
cargo run --release --offline -p xmp-experiments -- failover --quick
# Smoke: the partitioned simulation must stay bit-identical to serial on
# a k=8 fat-tree wave with faults and probes live (the scale command
# digest-checks the sharded run against the serial one and exits nonzero
# on a mismatch).
cargo run --release --offline -p xmp-experiments -- scale --quick --workers 4
# Smoke: dynamics must export parseable JSONL traces, and `trace report`
# (the std-only checker) must round-trip them. results/ stays untracked.
cargo run --release --offline -p xmp-experiments -- dynamics --quick
cargo run --release --offline -p xmp-experiments -- trace report \
  results/dynamics_xmp-2.jsonl results/dynamics_dctcp.jsonl
if git check-ignore -q results/dynamics_xmp-2.jsonl; then
  : # exported artifacts are ignored, as intended
else
  echo "check.sh: results/ must be gitignored" >&2
  exit 1
fi
echo "check.sh: all green"
