#!/usr/bin/env bash
# Tier-1 gate: the release build plus the full test suite, fully offline.
# This is the command CI and the roadmap treat as the health check.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test -q --workspace --offline
# Smoke: the failover experiment must survive a mid-run link failure
# (and its packet-conservation audit) end to end.
cargo run --release --offline -p xmp-experiments -- failover --quick
echo "check.sh: all green"
