#!/usr/bin/env bash
# Perf snapshot: builds the bench runner in release mode and writes
# BENCH_pr1.json into the repo root (scheduler microbench wheel-vs-heap,
# scaled-down fig1 and table1 wall clocks, serial-vs-parallel suite).
#
# The per-figure benches remain runnable individually via
#   cargo bench --bench fig1   (etc.)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p xmp-bench
./target/release/bench_pr1
echo "bench.sh: wrote $(pwd)/BENCH_pr1.json"
