#!/usr/bin/env bash
# Perf snapshot: builds the bench runners in release mode and writes
# BENCH_pr1.json through BENCH_pr6.json into the repo root.
#
#   bench_pr1 — scheduler microbench wheel-vs-heap, scaled-down fig1 and
#               table1 wall clocks, serial-vs-parallel suite
#   bench_pr2 — forwarding fast path: {dynamic router, compiled FIB} x
#               {eager, lazy link pipeline} on fig1 and a table1 cell
#   bench_pr3 — fault-machinery overhead (empty plan) vs the committed
#               BENCH_pr2.json, plus the failover experiment itself
#   bench_pr4 — probe overhead (off vs 1 ms core-link sampling) on the
#               suite cell, engine profile counters, dynamics timing
#   bench_pr5 — steady-state allocation rate under a counting global
#               allocator (asserts 0 allocs/packet-hop), static vs boxed
#               dispatch on the suite cell
#   bench_pr6 — partitioned k=16 scale run, 1 vs 4 workers, digest-checked
#               against serial (asserts bit-identity); re-asserts the
#               zero-alloc steady state; continues the table1 cell series
#
# bench_trend then prints the longitudinal table1_cell_quick medians
# across every committed BENCH_pr*.json.
#
# The per-figure benches remain runnable individually via
#   cargo bench --bench fig1   (etc.)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p xmp-bench
./target/release/bench_pr1
echo "bench.sh: wrote $(pwd)/BENCH_pr1.json"
./target/release/bench_pr2
echo "bench.sh: wrote $(pwd)/BENCH_pr2.json"
./target/release/bench_pr3
echo "bench.sh: wrote $(pwd)/BENCH_pr3.json"
./target/release/bench_pr4
echo "bench.sh: wrote $(pwd)/BENCH_pr4.json"
./target/release/bench_pr5
echo "bench.sh: wrote $(pwd)/BENCH_pr5.json"
./target/release/bench_pr6
echo "bench.sh: wrote $(pwd)/BENCH_pr6.json"
./target/release/bench_trend
